# Empty dependencies file for tpch_equivalence_test.
# This may be replaced when dependencies are built.
