file(REMOVE_RECURSE
  "CMakeFiles/tpch_equivalence_test.dir/tpch_equivalence_test.cc.o"
  "CMakeFiles/tpch_equivalence_test.dir/tpch_equivalence_test.cc.o.d"
  "tpch_equivalence_test"
  "tpch_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
