file(REMOVE_RECURSE
  "CMakeFiles/replayer_test.dir/replayer_test.cc.o"
  "CMakeFiles/replayer_test.dir/replayer_test.cc.o.d"
  "replayer_test"
  "replayer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
