# Empty dependencies file for partial_query_test.
# This may be replaced when dependencies are built.
