file(REMOVE_RECURSE
  "CMakeFiles/partial_query_test.dir/partial_query_test.cc.o"
  "CMakeFiles/partial_query_test.dir/partial_query_test.cc.o.d"
  "partial_query_test"
  "partial_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
