# Empty dependencies file for engine_scenarios_test.
# This may be replaced when dependencies are built.
