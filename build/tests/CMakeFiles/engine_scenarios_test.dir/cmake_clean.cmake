file(REMOVE_RECURSE
  "CMakeFiles/engine_scenarios_test.dir/engine_scenarios_test.cc.o"
  "CMakeFiles/engine_scenarios_test.dir/engine_scenarios_test.cc.o.d"
  "engine_scenarios_test"
  "engine_scenarios_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
