file(REMOVE_RECURSE
  "CMakeFiles/multi_user_invariants_test.dir/multi_user_invariants_test.cc.o"
  "CMakeFiles/multi_user_invariants_test.dir/multi_user_invariants_test.cc.o.d"
  "multi_user_invariants_test"
  "multi_user_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_user_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
