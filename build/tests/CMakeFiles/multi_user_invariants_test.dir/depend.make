# Empty dependencies file for multi_user_invariants_test.
# This may be replaced when dependencies are built.
