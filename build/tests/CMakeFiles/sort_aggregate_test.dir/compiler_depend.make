# Empty compiler generated dependencies file for sort_aggregate_test.
# This may be replaced when dependencies are built.
