file(REMOVE_RECURSE
  "CMakeFiles/sort_aggregate_test.dir/sort_aggregate_test.cc.o"
  "CMakeFiles/sort_aggregate_test.dir/sort_aggregate_test.cc.o.d"
  "sort_aggregate_test"
  "sort_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
