# Empty dependencies file for manipulation_test.
# This may be replaced when dependencies are built.
