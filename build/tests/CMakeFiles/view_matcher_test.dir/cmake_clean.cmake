file(REMOVE_RECURSE
  "CMakeFiles/view_matcher_test.dir/view_matcher_test.cc.o"
  "CMakeFiles/view_matcher_test.dir/view_matcher_test.cc.o.d"
  "view_matcher_test"
  "view_matcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
