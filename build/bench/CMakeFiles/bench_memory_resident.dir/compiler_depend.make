# Empty compiler generated dependencies file for bench_memory_resident.
# This may be replaced when dependencies are built.
