file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_resident.dir/bench_memory_resident.cpp.o"
  "CMakeFiles/bench_memory_resident.dir/bench_memory_resident.cpp.o.d"
  "bench_memory_resident"
  "bench_memory_resident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_resident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
