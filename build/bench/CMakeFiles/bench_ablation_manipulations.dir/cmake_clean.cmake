file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_manipulations.dir/bench_ablation_manipulations.cpp.o"
  "CMakeFiles/bench_ablation_manipulations.dir/bench_ablation_manipulations.cpp.o.d"
  "bench_ablation_manipulations"
  "bench_ablation_manipulations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_manipulations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
