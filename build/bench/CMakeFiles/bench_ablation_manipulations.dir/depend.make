# Empty dependencies file for bench_ablation_manipulations.
# This may be replaced when dependencies are built.
