file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_matviews.dir/bench_fig6_matviews.cpp.o"
  "CMakeFiles/bench_fig6_matviews.dir/bench_fig6_matviews.cpp.o.d"
  "bench_fig6_matviews"
  "bench_fig6_matviews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_matviews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
