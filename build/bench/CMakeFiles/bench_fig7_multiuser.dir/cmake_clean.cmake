file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_multiuser.dir/bench_fig7_multiuser.cpp.o"
  "CMakeFiles/bench_fig7_multiuser.dir/bench_fig7_multiuser.cpp.o.d"
  "bench_fig7_multiuser"
  "bench_fig7_multiuser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_multiuser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
