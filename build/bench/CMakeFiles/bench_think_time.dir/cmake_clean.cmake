file(REMOVE_RECURSE
  "CMakeFiles/bench_think_time.dir/bench_think_time.cpp.o"
  "CMakeFiles/bench_think_time.dir/bench_think_time.cpp.o.d"
  "bench_think_time"
  "bench_think_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_think_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
