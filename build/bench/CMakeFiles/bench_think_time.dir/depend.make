# Empty dependencies file for bench_think_time.
# This may be replaced when dependencies are built.
