file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_extremes.dir/bench_fig5_extremes.cpp.o"
  "CMakeFiles/bench_fig5_extremes.dir/bench_fig5_extremes.cpp.o.d"
  "bench_fig5_extremes"
  "bench_fig5_extremes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_extremes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
