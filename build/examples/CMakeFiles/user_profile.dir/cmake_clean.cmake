file(REMOVE_RECURSE
  "CMakeFiles/user_profile.dir/user_profile.cpp.o"
  "CMakeFiles/user_profile.dir/user_profile.cpp.o.d"
  "user_profile"
  "user_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
