# Empty dependencies file for user_profile.
# This may be replaced when dependencies are built.
