file(REMOVE_RECURSE
  "CMakeFiles/multiuser_demo.dir/multiuser_demo.cpp.o"
  "CMakeFiles/multiuser_demo.dir/multiuser_demo.cpp.o.d"
  "multiuser_demo"
  "multiuser_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiuser_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
