# Empty dependencies file for multiuser_demo.
# This may be replaced when dependencies are built.
