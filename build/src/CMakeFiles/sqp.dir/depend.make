# Empty dependencies file for sqp.
# This may be replaced when dependencies are built.
