src/CMakeFiles/sqp.dir/common/agg_func.cc.o: \
 /root/repo/src/common/agg_func.cc /usr/include/stdc-predef.h \
 /root/repo/src/common/agg_func.h
