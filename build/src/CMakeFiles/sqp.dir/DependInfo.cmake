
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/sqp.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/sqp.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/sqp.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/sqp.dir/catalog/schema.cc.o.d"
  "/root/repo/src/common/agg_func.cc" "src/CMakeFiles/sqp.dir/common/agg_func.cc.o" "gcc" "src/CMakeFiles/sqp.dir/common/agg_func.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/sqp.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/sqp.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/sqp.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/sqp.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/sqp.dir/common/status.cc.o" "gcc" "src/CMakeFiles/sqp.dir/common/status.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/sqp.dir/common/value.cc.o" "gcc" "src/CMakeFiles/sqp.dir/common/value.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/sqp.dir/db/database.cc.o" "gcc" "src/CMakeFiles/sqp.dir/db/database.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/sqp.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/sqp.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/executors.cc" "src/CMakeFiles/sqp.dir/exec/executors.cc.o" "gcc" "src/CMakeFiles/sqp.dir/exec/executors.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/sqp.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/sqp.dir/exec/expression.cc.o.d"
  "/root/repo/src/exec/materializer.cc" "src/CMakeFiles/sqp.dir/exec/materializer.cc.o" "gcc" "src/CMakeFiles/sqp.dir/exec/materializer.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/CMakeFiles/sqp.dir/exec/sort.cc.o" "gcc" "src/CMakeFiles/sqp.dir/exec/sort.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/sqp.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/sqp.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/metrics.cc" "src/CMakeFiles/sqp.dir/harness/metrics.cc.o" "gcc" "src/CMakeFiles/sqp.dir/harness/metrics.cc.o.d"
  "/root/repo/src/harness/multi_user_replayer.cc" "src/CMakeFiles/sqp.dir/harness/multi_user_replayer.cc.o" "gcc" "src/CMakeFiles/sqp.dir/harness/multi_user_replayer.cc.o.d"
  "/root/repo/src/harness/replayer.cc" "src/CMakeFiles/sqp.dir/harness/replayer.cc.o" "gcc" "src/CMakeFiles/sqp.dir/harness/replayer.cc.o.d"
  "/root/repo/src/index/bplus_tree.cc" "src/CMakeFiles/sqp.dir/index/bplus_tree.cc.o" "gcc" "src/CMakeFiles/sqp.dir/index/bplus_tree.cc.o.d"
  "/root/repo/src/optimizer/cost.cc" "src/CMakeFiles/sqp.dir/optimizer/cost.cc.o" "gcc" "src/CMakeFiles/sqp.dir/optimizer/cost.cc.o.d"
  "/root/repo/src/optimizer/planner.cc" "src/CMakeFiles/sqp.dir/optimizer/planner.cc.o" "gcc" "src/CMakeFiles/sqp.dir/optimizer/planner.cc.o.d"
  "/root/repo/src/optimizer/query_graph.cc" "src/CMakeFiles/sqp.dir/optimizer/query_graph.cc.o" "gcc" "src/CMakeFiles/sqp.dir/optimizer/query_graph.cc.o.d"
  "/root/repo/src/optimizer/view_matcher.cc" "src/CMakeFiles/sqp.dir/optimizer/view_matcher.cc.o" "gcc" "src/CMakeFiles/sqp.dir/optimizer/view_matcher.cc.o.d"
  "/root/repo/src/sim/sim_server.cc" "src/CMakeFiles/sqp.dir/sim/sim_server.cc.o" "gcc" "src/CMakeFiles/sqp.dir/sim/sim_server.cc.o.d"
  "/root/repo/src/speculation/cost_model.cc" "src/CMakeFiles/sqp.dir/speculation/cost_model.cc.o" "gcc" "src/CMakeFiles/sqp.dir/speculation/cost_model.cc.o.d"
  "/root/repo/src/speculation/engine.cc" "src/CMakeFiles/sqp.dir/speculation/engine.cc.o" "gcc" "src/CMakeFiles/sqp.dir/speculation/engine.cc.o.d"
  "/root/repo/src/speculation/learner.cc" "src/CMakeFiles/sqp.dir/speculation/learner.cc.o" "gcc" "src/CMakeFiles/sqp.dir/speculation/learner.cc.o.d"
  "/root/repo/src/speculation/manipulation.cc" "src/CMakeFiles/sqp.dir/speculation/manipulation.cc.o" "gcc" "src/CMakeFiles/sqp.dir/speculation/manipulation.cc.o.d"
  "/root/repo/src/speculation/manipulation_space.cc" "src/CMakeFiles/sqp.dir/speculation/manipulation_space.cc.o" "gcc" "src/CMakeFiles/sqp.dir/speculation/manipulation_space.cc.o.d"
  "/root/repo/src/speculation/partial_query.cc" "src/CMakeFiles/sqp.dir/speculation/partial_query.cc.o" "gcc" "src/CMakeFiles/sqp.dir/speculation/partial_query.cc.o.d"
  "/root/repo/src/speculation/speculator.cc" "src/CMakeFiles/sqp.dir/speculation/speculator.cc.o" "gcc" "src/CMakeFiles/sqp.dir/speculation/speculator.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/sqp.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/sqp.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/sqp.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/sqp.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/sqp.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/sqp.dir/sql/parser.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/sqp.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/sqp.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/selectivity.cc" "src/CMakeFiles/sqp.dir/stats/selectivity.cc.o" "gcc" "src/CMakeFiles/sqp.dir/stats/selectivity.cc.o.d"
  "/root/repo/src/stats/table_stats.cc" "src/CMakeFiles/sqp.dir/stats/table_stats.cc.o" "gcc" "src/CMakeFiles/sqp.dir/stats/table_stats.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/sqp.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/sqp.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/sqp.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/sqp.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/sqp.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/sqp.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/CMakeFiles/sqp.dir/storage/tuple.cc.o" "gcc" "src/CMakeFiles/sqp.dir/storage/tuple.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/sqp.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/sqp.dir/trace/trace.cc.o.d"
  "/root/repo/src/trace/trace_generator.cc" "src/CMakeFiles/sqp.dir/trace/trace_generator.cc.o" "gcc" "src/CMakeFiles/sqp.dir/trace/trace_generator.cc.o.d"
  "/root/repo/src/trace/user_model.cc" "src/CMakeFiles/sqp.dir/trace/user_model.cc.o" "gcc" "src/CMakeFiles/sqp.dir/trace/user_model.cc.o.d"
  "/root/repo/src/workload/datagen.cc" "src/CMakeFiles/sqp.dir/workload/datagen.cc.o" "gcc" "src/CMakeFiles/sqp.dir/workload/datagen.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/CMakeFiles/sqp.dir/workload/tpch.cc.o" "gcc" "src/CMakeFiles/sqp.dir/workload/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
