file(REMOVE_RECURSE
  "libsqp.a"
)
