# Empty compiler generated dependencies file for sqp.
# This may be replaced when dependencies are built.
