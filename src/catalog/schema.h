// Column and schema metadata.
//
// Convention inherited from the TPC-H subset workload: column names are
// globally unique (l_orderkey, c_custkey, ...), so an unqualified column
// name identifies its table. The binder relies on this.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace sqp {

struct Column {
  std::string name;
  TypeId type = TypeId::kInt64;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of `name`, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  bool HasColumn(const std::string& name) const {
    return ColumnIndex(name).has_value();
  }

  /// Schema of a join output: this ++ other.
  Schema Concat(const Schema& other) const;

  /// Schema restricted to the named columns (projection).
  Schema Project(const std::vector<std::string>& names) const;

  /// Average serialized tuple width in bytes, assuming 12 bytes per
  /// string column; used for page-count estimation.
  size_t EstimatedTupleWidth() const;

  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace sqp
