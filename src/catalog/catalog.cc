#include "catalog/catalog.h"

#include <cassert>

#include "common/fault_injector.h"

namespace sqp {

Result<TableInfo*> Catalog::CreateTable(const std::string& name,
                                        const Schema& schema,
                                        bool is_materialized) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table " + name);
  }
  auto info = std::make_unique<TableInfo>();
  info->name = name;
  info->schema = schema;
  info->heap = std::make_unique<HeapFile>(pool_);
  if (disk_->shard_count() > 1 && !is_materialized) {
    // Base tables must survive node loss: hash-shard them over every
    // storage node and shadow each page on a second node. Materialized
    // results stay single-copy — they are disposable by contract, so a
    // node loss just drops them (DESIGN.md §12).
    HeapPlacement placement;
    placement.replicated = true;
    placement.shards = disk_->shard_count();
    info->heap->SetPlacement(placement);
  }
  info->is_materialized = is_materialized;
  TableInfo* raw = info.get();
  tables_[name] = std::move(info);
  return raw;
}

Result<TableInfo*> Catalog::RestoreTable(const std::string& name,
                                         const Schema& schema,
                                         bool is_materialized,
                                         std::vector<page_id_t> pages,
                                         uint64_t tuple_count) {
  auto created = CreateTable(name, schema, is_materialized);
  if (!created.ok()) return created.status();
  TableInfo* info = *created;
  info->heap->Restore(std::move(pages), tuple_count);
  Status analyzed = AnalyzeTable(name);
  if (!analyzed.ok()) {
    // Validation failed (torn page, I/O error): detach the page list so
    // the caller decides whether to drop the pages or surface the loss.
    info->heap->Restore({}, 0);
    tables_.erase(name);
    return analyzed;
  }
  return info;
}

TableInfo* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const TableInfo* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  TableInfo* info = it->second.get();
  // Drop dependent indexes and histograms.
  for (const auto& col : info->schema.columns()) {
    indexes_.erase(Key(name, col.name));
    histograms_.erase(Key(name, col.name));
  }
  info->heap->Drop(disk_);
  tables_.erase(it);
  return Status::OK();
}

Status Catalog::AnalyzeTable(const std::string& name) {
  TableInfo* info = GetTable(name);
  if (info == nullptr) return Status::NotFound("table " + name);
  TableStats stats;
  stats.Begin(info->schema);
  auto iter = info->heap->Scan();
  std::vector<Tuple> page_rows;
  for (;;) {
    page_rows.clear();
    auto more = iter.NextPage(&page_rows);
    if (!more.ok()) return more.status();
    if (!*more) break;
    for (const Tuple& row : page_rows) stats.Observe(row);
  }
  stats.Finish(info->heap->page_count());
  info->stats = std::move(stats);
  return Status::OK();
}

Result<BPlusTree*> Catalog::CreateIndex(const std::string& table,
                                        const std::string& column) {
  TableInfo* info = GetTable(table);
  if (info == nullptr) return Status::NotFound("table " + table);
  auto col_idx = info->schema.ColumnIndex(column);
  if (!col_idx.has_value()) {
    return Status::NotFound("column " + column + " in " + table);
  }
  std::string key = Key(table, column);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index on " + key);
  }
  SQP_INJECT_FAULT("catalog.index_build");
  auto tree = std::make_unique<BPlusTree>();
  // Build: full scan, inserting (key, rid). The scan's buffer-pool
  // traffic charges the build's simulated I/O cost.
  const auto& pages = info->heap->pages();
  for (page_id_t page_id : pages) {
    auto page = pool_->FetchPage(page_id);
    if (!page.ok()) return page.status();
    PageGuard guard(pool_, page_id, *page);
    const Page* p = guard.get();
    for (uint16_t slot = 0; slot < p->slot_count(); slot++) {
      uint16_t len = 0;
      const uint8_t* rec = p->Record(slot, &len);
      Tuple tuple = DeserializeTuple(rec, len);
      tree->Insert(tuple[*col_idx], Rid{page_id, slot});
    }
  }
  BPlusTree* raw = tree.get();
  indexes_[key] = std::move(tree);
  return raw;
}

BPlusTree* Catalog::GetIndex(const std::string& table,
                             const std::string& column) {
  auto it = indexes_.find(Key(table, column));
  return it == indexes_.end() ? nullptr : it->second.get();
}

bool Catalog::HasIndex(const std::string& table,
                       const std::string& column) const {
  return indexes_.count(Key(table, column)) > 0;
}

Status Catalog::DropIndex(const std::string& table,
                          const std::string& column) {
  return indexes_.erase(Key(table, column)) > 0
             ? Status::OK()
             : Status::NotFound("index on " + Key(table, column));
}

Status Catalog::DropHistogram(const std::string& table,
                              const std::string& column) {
  return histograms_.erase(Key(table, column)) > 0
             ? Status::OK()
             : Status::NotFound("histogram on " + Key(table, column));
}

Status Catalog::CreateHistogram(const std::string& table,
                                const std::string& column) {
  TableInfo* info = GetTable(table);
  if (info == nullptr) return Status::NotFound("table " + table);
  auto col_idx = info->schema.ColumnIndex(column);
  if (!col_idx.has_value()) {
    return Status::NotFound("column " + column + " in " + table);
  }
  SQP_INJECT_FAULT("catalog.histogram_build");
  std::vector<Value> values;
  values.reserve(info->heap->tuple_count());
  auto iter = info->heap->Scan();
  std::vector<Tuple> page_rows;
  for (;;) {
    page_rows.clear();
    auto more = iter.NextPage(&page_rows);
    if (!more.ok()) return more.status();
    if (!*more) break;
    for (const Tuple& row : page_rows) values.push_back(row[*col_idx]);
  }
  histograms_[Key(table, column)] = Histogram::Build(std::move(values));
  return Status::OK();
}

const Histogram* Catalog::GetHistogram(const std::string& table,
                                       const std::string& column) const {
  auto it = histograms_.find(Key(table, column));
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, info] : tables_) names.push_back(name);
  return names;
}

std::vector<std::string> Catalog::MaterializedTableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, info] : tables_) {
    if (info->is_materialized) names.push_back(name);
  }
  return names;
}

}  // namespace sqp
