// Catalog: tables, indexes, and histograms.
//
// Index builds and histogram builds scan through the buffer pool, so
// their simulated cost accrues on the shared CostMeter — exactly what
// the speculation cost model needs when weighing index-creation and
// histogram-creation manipulations.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "index/bplus_tree.h"
#include "stats/histogram.h"
#include "stats/table_stats.h"
#include "storage/heap_file.h"

namespace sqp {

struct TableInfo {
  std::string name;
  Schema schema;
  std::unique_ptr<HeapFile> heap;
  TableStats stats;
  /// True for tables created by materialization (speculative or DDL
  /// CREATE TABLE AS); these are garbage-collected by the speculation
  /// engine and never carry indexes unless explicitly built.
  bool is_materialized = false;
};

class Catalog {
 public:
  /// `disk` may be a single DiskManager or a ShardedStorageRouter; on a
  /// sharded store base tables are created replicated + hash-sharded
  /// over every node, materialized results single-copy (disposable).
  Catalog(PageStore* disk, BufferPool* pool) : disk_(disk), pool_(pool) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Result<TableInfo*> CreateTable(const std::string& name,
                                 const Schema& schema,
                                 bool is_materialized = false);

  /// Crash recovery: recreate a table around an existing on-disk page
  /// list (recorded in the manifest), then recompute its stats with a
  /// validating full scan — every page read verifies its checksum, so a
  /// torn page surfaces here as kDataLoss.
  Result<TableInfo*> RestoreTable(const std::string& name,
                                  const Schema& schema, bool is_materialized,
                                  std::vector<page_id_t> pages,
                                  uint64_t tuple_count);

  /// nullptr when absent.
  TableInfo* GetTable(const std::string& name);
  const TableInfo* GetTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  /// Recompute a table's stats with a full scan (called after bulk load
  /// or materialization).
  Status AnalyzeTable(const std::string& name);

  /// Build a B+-tree on `table.column` from a full scan.
  Result<BPlusTree*> CreateIndex(const std::string& table,
                                 const std::string& column);
  BPlusTree* GetIndex(const std::string& table, const std::string& column);
  bool HasIndex(const std::string& table, const std::string& column) const;

  /// Drop one index (used when a speculative index creation is
  /// cancelled).
  Status DropIndex(const std::string& table, const std::string& column);

  /// Build an equi-depth histogram on `table.column` from a full scan.
  Status CreateHistogram(const std::string& table, const std::string& column);

  /// Drop one histogram (cancelled speculative histogram creation).
  Status DropHistogram(const std::string& table, const std::string& column);
  const Histogram* GetHistogram(const std::string& table,
                                const std::string& column) const;

  std::vector<std::string> TableNames() const;

  /// Names of materialized tables only (candidates for view matching).
  std::vector<std::string> MaterializedTableNames() const;

 private:
  static std::string Key(const std::string& table,
                         const std::string& column) {
    return table + "." + column;
  }

  PageStore* disk_;
  BufferPool* pool_;
  std::unordered_map<std::string, std::unique_ptr<TableInfo>> tables_;
  std::unordered_map<std::string, std::unique_ptr<BPlusTree>> indexes_;
  std::unordered_map<std::string, Histogram> histograms_;
};

}  // namespace sqp
