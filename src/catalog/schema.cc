#include "catalog/schema.h"

#include <cassert>

namespace sqp {

std::optional<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); i++) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (const auto& name : names) {
    auto idx = ColumnIndex(name);
    assert(idx.has_value() && "projection of unknown column");
    cols.push_back(columns_[*idx]);
  }
  return Schema(std::move(cols));
}

size_t Schema::EstimatedTupleWidth() const {
  size_t width = 1;  // field-count byte
  for (const auto& col : columns_) {
    width += 1;  // tag byte
    width += col.type == TypeId::kString ? 16 : 8;
  }
  return width;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); i++) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace sqp
