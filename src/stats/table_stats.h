// Basic per-table statistics, always maintained by the catalog.
//
// These are the "cheap" statistics every table has (row/page counts,
// per-column min/max/distinct). Histograms are created separately — by
// DDL or by the speculation subsystem's histogram-creation manipulation.
#pragma once

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "catalog/schema.h"
#include "common/value.h"
#include "storage/tuple.h"

namespace sqp {

struct ColumnStats {
  std::optional<Value> min;
  std::optional<Value> max;
  size_t distinct_count = 0;
};

class TableStats {
 public:
  TableStats() = default;

  /// Compute stats from a full pass over the rows.
  static TableStats Compute(const Schema& schema,
                            const std::vector<Tuple>& rows,
                            uint64_t page_count);

  /// Incremental variant used during bulk load: feed rows one by one.
  void Begin(const Schema& schema);
  void Observe(const Tuple& row);
  void Finish(uint64_t page_count);

  uint64_t row_count() const { return row_count_; }
  uint64_t page_count() const { return page_count_; }
  const ColumnStats& column(size_t i) const { return columns_[i]; }
  size_t num_columns() const { return columns_.size(); }

 private:
  uint64_t row_count_ = 0;
  uint64_t page_count_ = 0;
  std::vector<ColumnStats> columns_;
  // Exact distinct tracking during load, capped to bound memory; beyond
  // the cap the distinct count keeps the cap value (an underestimate,
  // which is how real engines' sampled NDVs behave on huge columns).
  std::vector<std::unordered_set<std::string>> distinct_sets_;
  bool building_ = false;

  static constexpr size_t kDistinctCap = 1 << 16;
};

}  // namespace sqp
