// Selectivity estimation: System-R style formulas that upgrade to
// histogram-based estimates when a histogram is available.
#pragma once

#include "common/compare_op.h"
#include "common/value.h"
#include "stats/histogram.h"
#include "stats/table_stats.h"

namespace sqp {

/// Fraction of rows satisfying `col op constant`. When `hist` is null,
/// falls back to uniform interpolation over [min, max] (numeric) or
/// 1/distinct (equality), mirroring a 2003-era optimizer without
/// histograms — the estimate a histogram-creation manipulation improves.
double EstimateSelectionSelectivity(const ColumnStats& stats,
                                    const Histogram* hist, CompareOp op,
                                    const Value& constant);

/// Selectivity of an equijoin between columns with the given distinct
/// counts: 1 / max(d_left, d_right).
double EstimateJoinSelectivity(size_t distinct_left, size_t distinct_right);

}  // namespace sqp
