#include "stats/selectivity.h"

#include <algorithm>

namespace sqp {

namespace {
// Defaults used when the column has no usable stats at all.
constexpr double kDefaultEq = 0.05;
constexpr double kDefaultRange = 1.0 / 3.0;

double UniformLt(const ColumnStats& stats, const Value& constant,
                 bool inclusive) {
  if (!stats.min.has_value() || !stats.max.has_value() ||
      !stats.min->is_numeric() || !constant.is_numeric()) {
    return kDefaultRange;
  }
  double lo = stats.min->NumericValue();
  double hi = stats.max->NumericValue();
  double c = constant.NumericValue();
  if (hi <= lo) {
    // Single-valued column.
    int cmp = Value(c).Compare(Value(lo));
    return (cmp > 0 || (cmp == 0 && inclusive)) ? 1.0 : 0.0;
  }
  return std::clamp((c - lo) / (hi - lo), 0.0, 1.0);
}

double UniformEq(const ColumnStats& stats, const Value& constant) {
  if (stats.min.has_value() && stats.max.has_value() &&
      constant.is_numeric() && stats.min->is_numeric()) {
    double c = constant.NumericValue();
    if (c < stats.min->NumericValue() || c > stats.max->NumericValue()) {
      return 0.0;
    }
  }
  if (stats.distinct_count > 0) return 1.0 / stats.distinct_count;
  return kDefaultEq;
}
}  // namespace

double EstimateSelectionSelectivity(const ColumnStats& stats,
                                    const Histogram* hist, CompareOp op,
                                    const Value& constant) {
  if (hist != nullptr) return hist->EstimateSelectivity(op, constant);
  switch (op) {
    case CompareOp::kEq:
      return UniformEq(stats, constant);
    case CompareOp::kNe:
      return std::clamp(1.0 - UniformEq(stats, constant), 0.0, 1.0);
    case CompareOp::kLt:
      return UniformLt(stats, constant, false);
    case CompareOp::kLe:
      return UniformLt(stats, constant, true);
    case CompareOp::kGt:
      return std::clamp(1.0 - UniformLt(stats, constant, true), 0.0, 1.0);
    case CompareOp::kGe:
      return std::clamp(1.0 - UniformLt(stats, constant, false), 0.0, 1.0);
  }
  return kDefaultRange;
}

double EstimateJoinSelectivity(size_t distinct_left, size_t distinct_right) {
  size_t d = std::max<size_t>({distinct_left, distinct_right, 1});
  return 1.0 / static_cast<double>(d);
}

}  // namespace sqp
