// Equi-depth histogram with a most-common-values list.
//
// "Histogram creation" is one of the paper's manipulation types (§3.2): it
// improves the optimizer's selectivity estimates on skewed fields, which
// can flip access-path and join-order decisions. Without a histogram the
// optimizer falls back to uniform assumptions over [min, max].
#pragma once

#include <string>
#include <vector>

#include "common/compare_op.h"
#include "common/value.h"

namespace sqp {

class Histogram {
 public:
  /// Build an equi-depth histogram with `num_buckets` buckets plus a
  /// `num_mcvs`-entry most-common-values list from a full column scan.
  /// Values may be numeric or string; strings are handled purely by the
  /// MCV list and distinct counts.
  static Histogram Build(std::vector<Value> values, size_t num_buckets = 32,
                         size_t num_mcvs = 8);

  /// Fraction of rows satisfying `col op constant`; in [0, 1].
  double EstimateSelectivity(CompareOp op, const Value& constant) const;

  size_t row_count() const { return row_count_; }
  size_t distinct_count() const { return distinct_count_; }
  size_t bucket_count() const { return bounds_.empty() ? 0 : bounds_.size() - 1; }

  std::string ToString() const;

 private:
  struct Mcv {
    Value value;
    double fraction = 0;
  };

  double EstimateEq(const Value& constant) const;
  double EstimateLt(const Value& constant, bool inclusive) const;

  size_t row_count_ = 0;
  size_t distinct_count_ = 0;
  bool numeric_ = true;

  // Equi-depth buckets over the non-MCV numeric values:
  // bucket i covers [bounds_[i], bounds_[i+1]); counts_[i] rows;
  // distincts_[i] distinct values.
  std::vector<double> bounds_;
  std::vector<double> counts_;
  std::vector<double> distincts_;
  double non_mcv_rows_ = 0;

  std::vector<Mcv> mcvs_;
};

}  // namespace sqp
