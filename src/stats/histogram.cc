#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <sstream>

namespace sqp {

Histogram Histogram::Build(std::vector<Value> values, size_t num_buckets,
                           size_t num_mcvs) {
  Histogram h;
  h.row_count_ = values.size();
  if (values.empty()) return h;

  h.numeric_ = values.front().is_numeric();

  // Frequency map (Value::Compare is a total order within one type).
  std::map<double, size_t> numeric_freq;
  std::map<std::string, size_t> string_freq;
  for (const Value& v : values) {
    if (h.numeric_) {
      numeric_freq[v.NumericValue()]++;
    } else {
      string_freq[v.AsString()]++;
    }
  }
  h.distinct_count_ = h.numeric_ ? numeric_freq.size() : string_freq.size();

  // Most common values.
  struct Freq {
    Value value;
    size_t count;
  };
  std::vector<Freq> freqs;
  if (h.numeric_) {
    for (auto& [val, count] : numeric_freq) {
      freqs.push_back({Value(val), count});
    }
  } else {
    for (auto& [val, count] : string_freq) {
      freqs.push_back({Value(val), count});
    }
  }
  std::stable_sort(freqs.begin(), freqs.end(),
                   [](const Freq& a, const Freq& b) {
                     return a.count > b.count;
                   });
  size_t mcv_take = std::min(num_mcvs, freqs.size());
  std::vector<bool> is_mcv(freqs.size(), false);
  for (size_t i = 0; i < mcv_take; i++) {
    h.mcvs_.push_back(
        {freqs[i].value,
         static_cast<double>(freqs[i].count) / h.row_count_});
    is_mcv[i] = true;
  }

  if (!h.numeric_) return h;  // strings: MCVs + distinct count only

  // Equi-depth buckets over the remaining (non-MCV) values.
  std::vector<double> rest;
  for (size_t i = mcv_take; i < freqs.size(); i++) {
    double v = freqs[i].value.NumericValue();
    for (size_t c = 0; c < freqs[i].count; c++) rest.push_back(v);
  }
  h.non_mcv_rows_ = rest.size();
  if (rest.empty()) return h;
  std::sort(rest.begin(), rest.end());

  size_t buckets = std::min(num_buckets, rest.size());
  double depth = static_cast<double>(rest.size()) / buckets;
  h.bounds_.push_back(rest.front());
  size_t start = 0;
  for (size_t b = 1; b <= buckets; b++) {
    size_t end = b == buckets
                     ? rest.size()
                     : static_cast<size_t>(std::round(b * depth));
    if (end <= start) continue;
    // Extend the boundary past duplicates so buckets nest cleanly.
    while (end < rest.size() && rest[end] == rest[end - 1]) end++;
    if (end <= start) continue;
    double hi = rest[end - 1];
    size_t distinct = 1;
    for (size_t i = start + 1; i < end; i++) {
      if (rest[i] != rest[i - 1]) distinct++;
    }
    h.bounds_.push_back(hi);
    h.counts_.push_back(static_cast<double>(end - start));
    h.distincts_.push_back(static_cast<double>(distinct));
    start = end;
    if (start >= rest.size()) break;
  }
  return h;
}

double Histogram::EstimateEq(const Value& constant) const {
  for (const Mcv& mcv : mcvs_) {
    if (mcv.value.type() == constant.type() ||
        (mcv.value.is_numeric() && constant.is_numeric())) {
      if (mcv.value.Compare(constant) == 0) return mcv.fraction;
    }
  }
  if (!numeric_ || bounds_.empty()) {
    // Uniform over non-MCV distinct values.
    size_t non_mcv_distinct =
        distinct_count_ > mcvs_.size() ? distinct_count_ - mcvs_.size() : 1;
    double mcv_mass = 0;
    for (const Mcv& m : mcvs_) mcv_mass += m.fraction;
    return (1.0 - mcv_mass) / non_mcv_distinct;
  }
  if (!constant.is_numeric()) return 0.0;
  double c = constant.NumericValue();
  if (c < bounds_.front() || c > bounds_.back()) return 0.0;
  for (size_t b = 0; b + 1 < bounds_.size(); b++) {
    if (c <= bounds_[b + 1] || b + 2 == bounds_.size()) {
      double in_bucket = counts_[b] / std::max(1.0, distincts_[b]);
      return in_bucket / row_count_;
    }
  }
  return 0.0;
}

double Histogram::EstimateLt(const Value& constant, bool inclusive) const {
  // Mass strictly below `constant` (+ eq mass when inclusive).
  double mass = 0;
  for (const Mcv& mcv : mcvs_) {
    if (!mcv.value.is_numeric() || !constant.is_numeric()) continue;
    int cmp = mcv.value.Compare(constant);
    if (cmp < 0 || (cmp == 0 && inclusive)) mass += mcv.fraction;
  }
  if (numeric_ && !bounds_.empty() && constant.is_numeric()) {
    double c = constant.NumericValue();
    double covered = 0;  // rows below c among non-MCV values
    for (size_t b = 0; b + 1 < bounds_.size(); b++) {
      double lo = bounds_[b], hi = bounds_[b + 1];
      if (c >= hi) {
        covered += counts_[b];
      } else if (c > lo) {
        covered += counts_[b] * (c - lo) / (hi - lo);
        break;
      } else {
        break;
      }
    }
    mass += covered / row_count_;
  }
  return std::clamp(mass, 0.0, 1.0);
}

double Histogram::EstimateSelectivity(CompareOp op,
                                      const Value& constant) const {
  if (row_count_ == 0) return 0.0;
  switch (op) {
    case CompareOp::kEq:
      return std::clamp(EstimateEq(constant), 0.0, 1.0);
    case CompareOp::kNe:
      return std::clamp(1.0 - EstimateEq(constant), 0.0, 1.0);
    case CompareOp::kLt:
      return EstimateLt(constant, /*inclusive=*/false);
    case CompareOp::kLe:
      return EstimateLt(constant, /*inclusive=*/true);
    case CompareOp::kGt:
      return std::clamp(1.0 - EstimateLt(constant, true), 0.0, 1.0);
    case CompareOp::kGe:
      return std::clamp(1.0 - EstimateLt(constant, false), 0.0, 1.0);
  }
  return 0.5;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "Histogram(rows=" << row_count_ << ", distinct=" << distinct_count_
     << ", mcvs=" << mcvs_.size() << ", buckets=" << bucket_count() << ")";
  return os.str();
}

}  // namespace sqp
