#include "stats/table_stats.h"

#include <cassert>

namespace sqp {

namespace {
std::string DistinctKey(const Value& v) {
  switch (v.type()) {
    case TypeId::kInt64:
      return "i" + std::to_string(v.AsInt64());
    case TypeId::kDouble:
      return "d" + std::to_string(v.AsDouble());
    case TypeId::kString:
      return "s" + v.AsString();
  }
  return "";
}
}  // namespace

TableStats TableStats::Compute(const Schema& schema,
                               const std::vector<Tuple>& rows,
                               uint64_t page_count) {
  TableStats stats;
  stats.Begin(schema);
  for (const Tuple& row : rows) stats.Observe(row);
  stats.Finish(page_count);
  return stats;
}

void TableStats::Begin(const Schema& schema) {
  row_count_ = 0;
  columns_.assign(schema.size(), ColumnStats{});
  distinct_sets_.assign(schema.size(), {});
  building_ = true;
}

void TableStats::Observe(const Tuple& row) {
  assert(building_);
  assert(row.size() == columns_.size());
  row_count_++;
  for (size_t i = 0; i < row.size(); i++) {
    ColumnStats& cs = columns_[i];
    const Value& v = row[i];
    if (!cs.min.has_value() || v < *cs.min) cs.min = v;
    if (!cs.max.has_value() || v > *cs.max) cs.max = v;
    if (distinct_sets_[i].size() < kDistinctCap) {
      distinct_sets_[i].insert(DistinctKey(v));
    }
  }
}

void TableStats::Finish(uint64_t page_count) {
  assert(building_);
  page_count_ = page_count;
  for (size_t i = 0; i < columns_.size(); i++) {
    columns_[i].distinct_count = distinct_sets_[i].size();
  }
  distinct_sets_.clear();
  distinct_sets_.shrink_to_fit();
  building_ = false;
}

}  // namespace sqp
