// Database facade: the "DBMS" box of the paper's Figure 3.
//
// Owns storage, catalog, views, and planner; exposes DDL, bulk load,
// query execution, and materialization. All operations charge simulated
// time on the shared CostMeter; per-operation durations are reported in
// the result structs. The speculation subsystem talks to the database
// exclusively through this interface, mirroring the paper's middleware
// architecture (speculator outside the server).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/cost_meter.h"
#include "common/status.h"
#include "optimizer/planner.h"
#include "optimizer/query_graph.h"
#include "optimizer/view_matcher.h"

namespace sqp {

struct DatabaseOptions {
  /// Buffer pool frames (4096 × 8 KiB = 32 MiB, the paper's single-user
  /// setting; the multi-user experiment uses 96 MiB = 12288).
  size_t buffer_pool_pages = 4096;
  CostConfig cost;
};

struct QueryResult {
  uint64_t row_count = 0;
  /// Simulated wall time of this execution.
  double seconds = 0;
  uint64_t blocks = 0;
  std::string plan_explain;
  std::vector<std::string> views_used;
  /// Populated only when ExecuteOptions::keep_rows is set.
  std::vector<Tuple> rows;
  Schema schema;
};

struct ExecuteOptions {
  bool keep_rows = false;
  ViewMode view_mode = ViewMode::kCostBased;
};

struct MaterializeResult {
  std::string table_name;
  uint64_t row_count = 0;
  double seconds = 0;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ------------------------------------------------------------- DDL
  Status CreateTable(const std::string& name, const Schema& schema);

  /// Append rows to a table, recompute its stats, flush to disk.
  Status BulkLoad(const std::string& name, const std::vector<Tuple>& rows);

  Status CreateIndex(const std::string& table, const std::string& column);
  Status CreateHistogram(const std::string& table, const std::string& column);

  /// Drop a table (and, if it is a materialized view, its registration).
  Status DropTable(const std::string& name);

  // ----------------------------------------------------------- Query
  /// Plan and run `query`; returns timing plus (optionally) rows.
  Result<QueryResult> Execute(const QueryGraph& query,
                              const ExecuteOptions& options = {});

  /// Parse, bind and run a SQL statement, including aggregate /
  /// GROUP BY / ORDER BY / LIMIT decorations executed on top of the
  /// (speculatively rewritable) SPJ core.
  Result<QueryResult> ExecuteSql(const std::string& sql,
                                 const ExecuteOptions& options = {});

  /// Optimizer cost estimate without executing.
  Result<double> EstimateCost(const QueryGraph& query,
                              ViewMode mode = ViewMode::kCostBased) const;

  /// Materialize `query` into a stored table. With `register_view` the
  /// result is immediately usable for rewriting; the speculation engine
  /// passes false and registers on (simulated) completion, so in-flight
  /// manipulations are invisible to concurrent queries. The
  /// materialization itself may use existing views (the paper's
  /// enumeration reuses completed materializations, §3.5).
  Result<MaterializeResult> Materialize(const QueryGraph& query,
                                        const std::string& table_name,
                                        bool register_view = true);

  /// Register a previously materialized (unregistered) result.
  void RegisterView(const QueryGraph& definition,
                    const std::string& table_name);

  /// Empty the buffer pool: the next operation starts cold (§4.2).
  /// Fails only on a disk write error while flushing dirty frames.
  Status ColdStart();

  // ------------------------------------------------------- Accessors
  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  ViewRegistry& views() { return views_; }
  const ViewRegistry& views() const { return views_; }
  const Planner& planner() const { return *planner_; }
  CostMeter& meter() { return meter_; }
  const DatabaseOptions& options() const { return options_; }
  BufferPool& buffer_pool() { return *pool_; }
  /// Exposed for leak accounting (chaos tests compare live_pages()
  /// across sessions) — not for direct page I/O.
  const DiskManager& disk_manager() const { return *disk_; }

  /// Total simulated seconds of work this database has performed.
  double TotalSimSeconds() const { return meter_.ElapsedSeconds(); }

 private:
  DatabaseOptions options_;
  CostMeter meter_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  ViewRegistry views_;
  std::unique_ptr<Planner> planner_;
  uint64_t next_matview_id_ = 0;
};

}  // namespace sqp
