// Database facade: the "DBMS" box of the paper's Figure 3.
//
// Owns storage, catalog, views, and planner; exposes DDL, bulk load,
// query execution, and materialization. All operations charge simulated
// time on the shared CostMeter; per-operation durations are reported in
// the result structs. The speculation subsystem talks to the database
// exclusively through this interface, mirroring the paper's middleware
// architecture (speculator outside the server).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/attribution.h"
#include "common/cost_meter.h"
#include "common/status.h"
#include "common/task_scheduler.h"
#include "common/tracing.h"
#include "db/manifest.h"
#include "db/replicated_manifest.h"
#include "optimizer/planner.h"
#include "optimizer/query_graph.h"
#include "optimizer/view_matcher.h"
#include "storage/sharded_router.h"

namespace sqp {

/// Counters from the last Reopen() (crash recovery) — surfaced through
/// harness/metrics so chaos reports show what recovery did.
struct RecoveryStats {
  size_t manifest_records_replayed = 0;
  size_t tables_recovered = 0;
  size_t matviews_recovered = 0;
  size_t views_registered = 0;
  size_t indexes_rebuilt = 0;
  size_t histograms_rebuilt = 0;
  /// Materialized views whose validation scan hit a torn page; they are
  /// disposable, so recovery drops them instead of failing.
  size_t corrupt_matviews_dropped = 0;
  /// Checksum mismatches detected during recovery validation scans.
  size_t torn_pages_detected = 0;
  /// Live pages referenced by no committed table (half-built speculative
  /// materializations) deallocated by recovery GC.
  size_t orphan_pages_collected = 0;
  /// Materialized views dropped because some of their (unreplicated)
  /// pages lived on a lost storage node.
  size_t matviews_lost_with_node = 0;
  /// Storage nodes permanently lost at the time of this recovery
  /// (killed; gracefully decommissioned nodes are not lost).
  size_t nodes_lost = 0;
  /// Physical pages with no logical owner — staged rebalance/repair
  /// copies a crash cut loose — freed by recovery.
  size_t physical_orphans_collected = 0;
  /// Physical pages on surviving nodes referenced by no logical page
  /// after recovery — the per-node orphan audit; must be zero.
  size_t orphan_pages_per_node_audit = 0;
  /// Simulated seconds this Reopen() charged (validation scans, GC).
  double recovery_sim_seconds = 0;
};

/// Counters from the last Repair() pass (re-protection after node loss;
/// DESIGN.md §13) — surfaced through harness/metrics.
struct RepairStats {
  /// Page copies staged + committed to restore redundancy (new
  /// primaries promoted off shadows, new shadows for bare primaries).
  size_t pages_reprotected = 0;
  /// Shard slots re-homed off dead nodes.
  size_t shards_rehomed = 0;
  /// Dead members dropped from the manifest configuration.
  size_t members_removed = 0;
  /// Matviews that died with a node and are left to the speculation
  /// engine to re-materialize (they are requeued naturally as
  /// candidates once dropped from the view registry).
  size_t matviews_requeued = 0;
  /// Pages still under-replicated when the pass stopped (budget hit).
  size_t pages_remaining = 0;
  /// Every page is back to full redundancy.
  bool complete = false;
  /// Simulated seconds this pass charged (copy I/O + syncs).
  double repair_sim_seconds = 0;
};

struct DatabaseOptions {
  /// Buffer pool frames (4096 × 8 KiB = 32 MiB, the paper's single-user
  /// setting; the multi-user experiment uses 96 MiB = 12288).
  size_t buffer_pool_pages = 4096;
  CostConfig cost;
  /// Rows per executor batch when draining query results (DESIGN.md
  /// §10). Affects real wall-clock only, never simulated charges.
  size_t exec_batch_size = 1024;
  /// Simulated storage nodes (DESIGN.md §12). 1 = the classic
  /// single-disk database, bit-identical to the pre-sharding stack.
  /// More nodes shard base tables (replicated) across the tier and
  /// replicate the manifest with one log per node.
  size_t storage_nodes = 1;
  /// Copies kept of each base-table page (2 = one shadow; capped at 2).
  size_t replication_factor = 2;
  /// Manifest commit quorum; 0 selects a majority of storage_nodes.
  size_t manifest_quorum = 0;
  /// Alternate reads of healthy replicated pages between the primary
  /// and the shadow copy (deterministic round-robin; DESIGN.md §13).
  bool replica_read_balancing = true;
  /// Optional span tracer: Reopen() records a recovery span when set.
  Tracer* tracer = nullptr;
  /// Total execution parallelism, counting the query thread itself
  /// (DESIGN.md §15). 1 = no worker pool, bit-identical to the
  /// sequential engine. N > 1 spawns N-1 morsel workers; results,
  /// CostMeter charges, fault schedules, and EXPLAIN ANALYZE actuals
  /// are identical at every setting — only wall-clock changes.
  size_t exec_threads = 1;
};

struct QueryResult {
  uint64_t row_count = 0;
  /// Simulated wall time of this execution.
  double seconds = 0;
  uint64_t blocks = 0;
  std::string plan_explain;
  std::vector<std::string> views_used;
  /// Planner's root-cardinality estimate (always populated; root
  /// Q-error = max(est/act, act/est) is cheap even without profiling).
  double est_rows = 0;
  /// Per-operator EXPLAIN ANALYZE profile; populated only when
  /// ExecuteOptions::explain_analyze is set (DESIGN.md §11).
  std::shared_ptr<PlanProfile> profile;
  /// Populated only when ExecuteOptions::keep_rows is set.
  std::vector<Tuple> rows;
  Schema schema;
};

struct ExecuteOptions {
  bool keep_rows = false;
  ViewMode view_mode = ViewMode::kCostBased;
  /// Collect per-operator actuals (rows, batches, pages, charges) into
  /// QueryResult::profile. Never affects simulated charges or results.
  bool explain_analyze = false;
};

struct MaterializeResult {
  std::string table_name;
  uint64_t row_count = 0;
  double seconds = 0;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ------------------------------------------------------------- DDL
  Status CreateTable(const std::string& name, const Schema& schema);

  /// Append rows to a table, recompute its stats, flush to disk.
  Status BulkLoad(const std::string& name, const std::vector<Tuple>& rows);

  Status CreateIndex(const std::string& table, const std::string& column);
  Status CreateHistogram(const std::string& table, const std::string& column);

  /// Drop one index / histogram (cancelled speculative creations). The
  /// drop is recorded in the manifest so recovery does not resurrect it.
  Status DropIndex(const std::string& table, const std::string& column);
  Status DropHistogram(const std::string& table, const std::string& column);

  /// Drop a table (and, if it is a materialized view, its registration).
  Status DropTable(const std::string& name);

  // ----------------------------------------------------------- Query
  /// Plan and run `query`; returns timing plus (optionally) rows.
  Result<QueryResult> Execute(const QueryGraph& query,
                              const ExecuteOptions& options = {});

  /// Parse, bind and run a SQL statement, including aggregate /
  /// GROUP BY / ORDER BY / LIMIT decorations executed on top of the
  /// (speculatively rewritable) SPJ core.
  Result<QueryResult> ExecuteSql(const std::string& sql,
                                 const ExecuteOptions& options = {});

  /// Optimizer cost estimate without executing.
  Result<double> EstimateCost(const QueryGraph& query,
                              ViewMode mode = ViewMode::kCostBased) const;

  /// Materialize `query` into a stored table. With `register_view` the
  /// result is immediately usable for rewriting; the speculation engine
  /// passes false and registers on (simulated) completion, so in-flight
  /// manipulations are invisible to concurrent queries. The
  /// materialization itself may use existing views (the paper's
  /// enumeration reuses completed materializations, §3.5).
  /// `home_node` pins the materialized table's pages to one storage
  /// node (multi-node tiers; the speculation engine passes the cost
  /// model's placement choice — DESIGN.md §14). kAnyNode keeps the
  /// default node-sticky behaviour.
  Result<MaterializeResult> Materialize(
      const QueryGraph& query, const std::string& table_name,
      bool register_view = true,
      uint32_t home_node = PageAllocOptions::kAnyNode);

  /// Register a previously materialized (unregistered) result. Fails
  /// only when the manifest commit cannot reach quorum; the view is
  /// then not registered.
  Status RegisterView(const QueryGraph& definition,
                      const std::string& table_name);

  /// Empty the buffer pool: the next operation starts cold (§4.2).
  /// Fails only on a disk write error while flushing dirty frames.
  Status ColdStart();

  // ------------------------------------------------- Crash durability
  /// Simulate a machine crash: buffer-pool contents, unsynced disk
  /// writes, uncommitted manifest records, and the in-memory catalog
  /// are all lost; at most one in-flight page tears. Every storage
  /// operation fails with kDataLoss until Reopen(). (The "disk.crash"
  /// fault point triggers the same thing from inside a write or sync.)
  void SimulateCrash();

  /// Permanently lose storage node `k`: its durable image, write cache,
  /// and manifest replica die with it (DESIGN.md §12). Call Reopen() to
  /// fail over: base tables keep serving from replicas, matviews whose
  /// pages lived there are dropped, and the manifest recovers from the
  /// surviving quorum. No-op on a single-node database; idempotent on
  /// an already-dead (or retired) node. kFailedPrecondition when the
  /// kill would drop the manifest below quorum — the cluster refuses to
  /// ruin itself; run Repair() after earlier losses first.
  Status KillNode(size_t k);

  // ------------------------------------- membership & self-healing
  /// Join a fresh, empty storage node to the cluster (DESIGN.md §13):
  /// a two-phase joint-consensus manifest membership change, then a
  /// deterministic minimal shard rebalance onto the new node (page
  /// copies staged + synced before each per-shard manifest commit
  /// group flips ownership — crash-safe at every step). Returns the
  /// new node id. On a joint-quorum failure the change is rolled back
  /// and the retryable error returned; a rebalance failure after the
  /// membership committed leaves a consistent (merely imbalanced)
  /// cluster and surfaces the error.
  Result<size_t> AddNode();

  /// Gracefully remove alive node `k`: open a joint-consensus
  /// transition, drain the node (move its shard homes, page primaries
  /// and shadows to the survivors under the joint quorum), commit the
  /// final configuration, and retire the node. Idempotent on an
  /// already-retired node; kFailedPrecondition for a dead node (run
  /// Repair() instead) or when too few nodes would remain.
  Status DecommissionNode(size_t k);

  /// Re-protection pass after node loss: drop dead members from the
  /// manifest configuration, re-home shard slots off dead nodes, and
  /// re-replicate every degraded page (promote shadows to new
  /// primaries, stage fresh shadows) so a *second* node loss is
  /// survivable. Interruptible: `max_pages` > 0 bounds the page copies
  /// charged in this pass (call again to continue; pages_remaining and
  /// complete report progress). All work is charged on the simulated
  /// clock as background cost.
  Result<RepairStats> Repair(size_t max_pages = 0);

  /// Counters from the last Repair().
  const RepairStats& last_repair() const { return last_repair_; }

  /// Recover from the durable on-disk image: recover the manifest from
  /// a quorum of surviving replicas, replay its committed records,
  /// validate every recovered table with a checksum scan (dropping
  /// corrupt materialized views; a corrupt *base* table is
  /// unrecoverable and returns kDataLoss), drop matviews whose pages
  /// died with a lost node, re-register committed views, rebuild
  /// committed indexes/histograms, and garbage-collect orphan pages
  /// left by half-built speculative materializations — per node. Also
  /// usable without a prior crash (a clean restart loses only unsynced
  /// state).
  Status Reopen();

  /// Counters from the last Reopen().
  const RecoveryStats& last_recovery() const { return last_recovery_; }

  // ------------------------------------------------------- Accessors
  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  ViewRegistry& views() { return views_; }
  const ViewRegistry& views() const { return views_; }
  const Planner& planner() const { return *planner_; }
  /// Placement oracle the planner / speculation cost model consult
  /// (DESIGN.md §14). Always non-null; reports node_count() == 1 on a
  /// single-node database, which deactivates every placement term.
  const PlacementProvider* placement() const;
  CostMeter& meter() { return meter_; }
  /// Per-session resource attribution over the meter (DESIGN.md §16).
  /// Replayers SetSession() before handing the engine an event;
  /// Execute/Materialize/Reopen/Repair open the scopes themselves.
  Attribution& attribution() { return attribution_; }
  const Attribution& attribution() const { return attribution_; }
  const DatabaseOptions& options() const { return options_; }
  BufferPool& buffer_pool() { return *pool_; }
  /// Exposed for leak accounting (chaos tests compare live_pages()
  /// across sessions) — not for direct page I/O. The router is a thin
  /// pass-through around one DiskManager on a single-node database.
  const ShardedStorageRouter& disk_manager() const { return *disk_; }
  const ShardedStorageRouter& storage() const { return *disk_; }
  /// Morsel worker pool; null when options.exec_threads <= 1.
  TaskScheduler* scheduler() { return scheduler_.get(); }
  /// The durable, replicated metadata log (exposed for recovery tests).
  const ReplicatedManifest& manifest() const { return manifest_; }

  /// Total simulated seconds of work this database has performed.
  double TotalSimSeconds() const { return meter_.ElapsedSeconds(); }

 private:
  /// PlacementProvider over catalog_ + disk_ (defined in database.cc;
  /// reads through the Database so it survives Reopen()'s rebuilds).
  class PlacementSource;

  DatabaseOptions options_;
  CostMeter meter_;
  Attribution attribution_{&meter_};
  /// Morsel worker pool (exec_threads - 1 workers); created once at
  /// construction, shared by query execution and speculative
  /// materialization. Null at exec_threads <= 1 so every parallel
  /// branch in the executors is compiled out of the hot path.
  std::unique_ptr<TaskScheduler> scheduler_;
  std::unique_ptr<ShardedStorageRouter> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  ViewRegistry views_;
  std::unique_ptr<PlacementSource> placement_source_;
  std::unique_ptr<Planner> planner_;
  ReplicatedManifest manifest_;
  RecoveryStats last_recovery_;
  RepairStats last_repair_;
  uint64_t next_matview_id_ = 0;

  /// Stage every page of shard slot `s` onto `target`, sync, commit a
  /// ShardMove manifest group, then flip placements + slot home.
  Status MoveShard(size_t s, size_t target);
  /// Move floor(slots/alive) shard slots onto freshly joined `node`.
  Status RebalanceOntoNode(size_t node);
  /// Move every placement off alive node `k` (decommission drain).
  Status DrainNode(size_t k);
  /// Least-loaded (by primary-placement count, ties lowest id) alive
  /// node, excluding `exclude`; node_count() when none.
  size_t LeastLoadedAliveNode(size_t exclude,
                              size_t exclude2 = static_cast<size_t>(-1)) const;
};

}  // namespace sqp
