#include "db/database.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <set>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "exec/aggregate.h"
#include "exec/materializer.h"
#include "exec/sort.h"
#include "sql/binder.h"

namespace sqp {

/// Placement oracle over the live catalog + storage router (DESIGN.md
/// §14). Reads through the Database pointer so Reopen()'s catalog /
/// pool rebuilds are transparent to a provider handed out earlier.
class Database::PlacementSource : public PlacementProvider {
 public:
  explicit PlacementSource(const Database* db) : db_(db) {}

  size_t node_count() const override { return db_->disk_->node_count(); }

  bool NodeAlive(size_t k) const override {
    return db_->disk_->node_count() <= 1 || db_->disk_->NodeAlive(k);
  }

  TablePlacement TablePlacementOf(const std::string& table) const override {
    TablePlacement p;
    const size_t nodes = db_->disk_->node_count();
    const TableInfo* info = db_->catalog_->GetTable(table);
    if (info == nullptr || nodes <= 1) return p;
    const HeapPlacement& heap = info->heap->placement();
    if (heap.shards > 1 && info->schema.size() > 0) {
      p.sharded = true;
      p.shard_column = info->schema.columns().front().name;
      p.shard_slots = heap.shards;
    }
    std::vector<double> counts(nodes, 0.0);
    double total = 0.0;
    for (page_id_t page : info->heap->pages()) {
      uint32_t node = db_->disk_->PagePrimaryNode(page);
      if (node < nodes) {
        counts[node] += 1.0;
        total += 1.0;
      }
    }
    if (total > 0) {
      for (double& c : counts) c /= total;
      p.node_page_fraction = std::move(counts);
    }
    return p;
  }

  std::vector<double> ShardSlotShare() const override {
    const size_t nodes = db_->disk_->node_count();
    std::vector<double> share(nodes, 0.0);
    if (nodes <= 1) {
      share.assign(1, 1.0);
      return share;
    }
    const size_t slots = db_->disk_->shard_count();
    for (size_t s = 0; s < slots; s++) {
      size_t home = db_->disk_->shard_home(s);
      if (home < nodes) share[home] += 1.0 / static_cast<double>(slots);
    }
    return share;
  }

 private:
  const Database* db_;
};

Database::Database(DatabaseOptions options)
    : options_(options),
      meter_(options.cost),
      manifest_(options.storage_nodes == 0 ? 1 : options.storage_nodes,
                options.manifest_quorum) {
  if (options_.exec_threads > 1) {
    // exec_threads counts the query thread, so the pool holds N-1
    // workers. Null at 1 => executors take the sequential path.
    scheduler_ = std::make_unique<TaskScheduler>(options_.exec_threads - 1);
  }
  disk_ = std::make_unique<ShardedStorageRouter>(
      &meter_, options_.storage_nodes == 0 ? 1 : options_.storage_nodes,
      options_.replication_factor, options_.replica_read_balancing);
  pool_ = std::make_unique<BufferPool>(disk_.get(),
                                       options_.buffer_pool_pages);
  catalog_ = std::make_unique<Catalog>(disk_.get(), pool_.get());
  placement_source_ = std::make_unique<PlacementSource>(this);
  planner_ = std::make_unique<Planner>(catalog_.get(), options_.cost,
                                       placement_source_.get());
}

Database::~Database() = default;

const PlacementProvider* Database::placement() const {
  return placement_source_.get();
}

Status Database::CreateTable(const std::string& name, const Schema& schema) {
  auto table = catalog_->CreateTable(name, schema);
  if (!table.ok()) return table.status();
  manifest_.Append(ManifestRecord::CreateTable(name, schema,
                                               /*is_materialized=*/false));
  Status committed = manifest_.Commit();
  if (!committed.ok()) {
    // Quorum failed: the table must not outlive its missing record.
    (void)catalog_->DropTable(name);
    return committed;
  }
  return Status::OK();
}

Status Database::BulkLoad(const std::string& name,
                          const std::vector<Tuple>& rows) {
  TableInfo* info = catalog_->GetTable(name);
  if (info == nullptr) return Status::NotFound("table " + name);
  TableStats stats;
  stats.Begin(info->schema);
  for (const Tuple& row : rows) {
    if (row.size() != info->schema.size()) {
      return Status::InvalidArgument("row arity mismatch for " + name);
    }
    stats.Observe(row);
    auto rid = info->heap->Append(row);
    if (!rid.ok()) return rid.status();
  }
  stats.Finish(info->heap->page_count());
  info->stats = std::move(stats);
  for (page_id_t page_id : info->heap->pages()) {
    SQP_RETURN_IF_ERROR(pool_->FlushPage(page_id));
  }
  // Commit point: pages become durable *before* the manifest record
  // that references them (write-ahead discipline) — a crash in between
  // leaves committed bytes plus an uncommitted record, never the
  // reverse.
  SQP_RETURN_IF_ERROR(disk_->Sync());
  manifest_.Append(ManifestRecord::BulkLoadCommit(
      name, info->heap->pages(), info->heap->tuple_count()));
  // A failed quorum here leaves the loaded rows uncommitted: after the
  // next Reopen they fold away as orphans. Surface the failure so the
  // caller knows the load did not commit.
  return manifest_.Commit();
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& column) {
  auto index = catalog_->CreateIndex(table, column);
  if (!index.ok()) return index.status();
  manifest_.Append(ManifestRecord::CreateIndex(table, column));
  Status committed = manifest_.Commit();
  if (!committed.ok()) {
    (void)catalog_->DropIndex(table, column);
    return committed;
  }
  return Status::OK();
}

Status Database::CreateHistogram(const std::string& table,
                                 const std::string& column) {
  SQP_RETURN_IF_ERROR(catalog_->CreateHistogram(table, column));
  manifest_.Append(ManifestRecord::CreateHistogram(table, column));
  Status committed = manifest_.Commit();
  if (!committed.ok()) {
    (void)catalog_->DropHistogram(table, column);
    return committed;
  }
  return Status::OK();
}

Status Database::DropIndex(const std::string& table,
                           const std::string& column) {
  if (!catalog_->HasIndex(table, column)) {
    return Status::NotFound("index on " + table + "." + column);
  }
  // Log-before-action (an index cannot be un-dropped if the commit
  // fails afterwards).
  manifest_.Append(ManifestRecord::DropIndex(table, column));
  SQP_RETURN_IF_ERROR(manifest_.Commit());
  return catalog_->DropIndex(table, column);
}

Status Database::DropHistogram(const std::string& table,
                               const std::string& column) {
  if (catalog_->GetHistogram(table, column) == nullptr) {
    return Status::NotFound("histogram on " + table + "." + column);
  }
  manifest_.Append(ManifestRecord::DropHistogram(table, column));
  SQP_RETURN_IF_ERROR(manifest_.Commit());
  return catalog_->DropHistogram(table, column);
}

Status Database::DropTable(const std::string& name) {
  if (catalog_->GetTable(name) == nullptr) {
    return Status::NotFound("table " + name);
  }
  // Log-before-action: commit the drop record first, then free the
  // pages. A crash in between leaves orphan pages for recovery GC —
  // never a committed table pointing at deallocated pages. A failed
  // quorum aborts the drop entirely (the table stays).
  manifest_.Append(ManifestRecord::DropTable(name));
  SQP_RETURN_IF_ERROR(manifest_.Commit());
  views_.Unregister(name);
  return catalog_->DropTable(name);
}

namespace {
/// Drain `exec` into a QueryResult batch at a time, timing against
/// `meter`.
Result<QueryResult> RunToResult(Executor* exec, CostMeter& meter,
                                const ExecuteOptions& options,
                                std::string plan_explain,
                                std::vector<std::string> views_used,
                                size_t batch_size) {
  CostScope scope(meter);
  QueryResult result;
  result.plan_explain = std::move(plan_explain);
  result.views_used = std::move(views_used);
  result.schema = exec->output_schema();

  SQP_RETURN_IF_ERROR(exec->Init());
  TupleBatch batch(batch_size);
  for (;;) {
    auto more = exec->NextBatch(&batch);
    if (!more.ok()) return more.status();
    if (batch.empty()) break;
    result.row_count += batch.size();
    if (options.keep_rows) {
      result.rows.insert(result.rows.end(),
                         std::make_move_iterator(batch.begin()),
                         std::make_move_iterator(batch.end()));
    }
  }
  result.seconds = scope.ElapsedSeconds();
  result.blocks = scope.ElapsedBlocks();
  return result;
}
}  // namespace

namespace {
/// Copy a closed query scope's inclusive cost into the profile's
/// EXPLAIN ANALYZE attribution block (DESIGN.md §16).
void FillAttribution(const AttributionScope& attr,
                     const Attribution& attribution, PlanProfile* profile) {
  if (profile == nullptr || !attr.closed()) return;
  profile->attribution.present = true;
  profile->attribution.session = attr.session();
  profile->attribution.seconds = attribution.Seconds(attr.inclusive());
  profile->attribution.blocks = attr.inclusive().blocks;
  profile->attribution.tuples = attr.inclusive().tuples;
}

/// Fold a finished profile's root Q-error into the global registry so
/// long replays expose estimation accuracy without keeping profiles.
void ObserveProfile(const std::shared_ptr<PlanProfile>& profile) {
  if (profile == nullptr || profile->root == nullptr) return;
  // Q-error is >= 1 by construction; a bound at exactly 1.0 anchors
  // quantile interpolation so p50 never reads below the floor.
  static const std::vector<double> kQErrorBounds = {1.0, 1.5, 2,   4,  8,
                                                    16,  64,  256, 1024};
  MetricsRegistry::Global()
      .GetHistogram("exec.plan.q_error", kQErrorBounds)
      ->Observe(profile->root->QError());
}
}  // namespace

Result<QueryResult> Database::Execute(const QueryGraph& query,
                                      const ExecuteOptions& options) {
  AttributionScope attr(&attribution_, Attribution::Kind::kQuery);
  auto plan = planner_->Plan(query, &views_, options.view_mode);
  if (!plan.ok()) return plan.status();
  std::shared_ptr<PlanProfile> profile;
  if (options.explain_analyze) profile = std::make_shared<PlanProfile>();
  auto exec = planner_->Build(*plan, catalog_.get(), pool_.get(), &meter_,
                              profile.get(),
                              ExecParallel{scheduler_.get(), false});
  if (!exec.ok()) return exec.status();
  auto result = RunToResult(exec->get(), meter_, options, plan->Explain(),
                            plan->views_used, options_.exec_batch_size);
  if (scheduler_ != nullptr) scheduler_->FoldStats();
  attr.Close();
  if (result.ok()) {
    result->est_rows = plan->est_rows;
    FillAttribution(attr, attribution_, profile.get());
    ObserveProfile(profile);
    result->profile = std::move(profile);
    SQP_LOG_DEBUG << "Execute " << query.ToSql() << " -> "
                  << result->row_count << " rows in " << result->seconds
                  << "s";
  }
  return result;
}

Result<QueryResult> Database::ExecuteSql(const std::string& sql,
                                         const ExecuteOptions& options) {
  auto bound = ParseAndBindFull(sql, *catalog_);
  if (!bound.ok()) return bound.status();
  if (!bound->has_decorations()) return Execute(bound->graph, options);

  AttributionScope attr(&attribution_, Attribution::Kind::kQuery);
  auto plan = planner_->Plan(bound->graph, &views_, options.view_mode);
  if (!plan.ok()) return plan.status();
  std::shared_ptr<PlanProfile> profile;
  if (options.explain_analyze) profile = std::make_shared<PlanProfile>();
  auto built = planner_->Build(*plan, catalog_.get(), pool_.get(), &meter_,
                               profile.get(),
                               ExecParallel{scheduler_.get(), false});
  if (!built.ok()) return built.status();
  std::unique_ptr<Executor> exec = std::move(*built);
  // Decorations stacked below re-root the profile as they wrap the
  // executor; `cur_est` tracks the running output-cardinality estimate.
  double cur_est = plan->est_rows;

  // Aggregation / grouping on top of the SPJ core.
  if (!bound->aggregates.empty() || !bound->group_by.empty()) {
    const Schema& in = exec->output_schema();
    std::vector<size_t> group_idx;
    for (const auto& name : bound->group_by) {
      auto idx = in.ColumnIndex(name);
      if (!idx.has_value()) {
        return Status::NotFound("GROUP BY column " + name);
      }
      group_idx.push_back(*idx);
    }
    std::vector<AggSpec> specs;
    for (const auto& agg : bound->aggregates) {
      AggSpec spec;
      spec.func = agg.func;
      spec.output_name = agg.output_name;
      if (agg.star) {
        spec.column_index = AggSpec::kStar;
      } else {
        auto idx = in.ColumnIndex(agg.column);
        if (!idx.has_value()) {
          return Status::NotFound("aggregate column " + agg.column);
        }
        spec.column_index = *idx;
      }
      specs.push_back(std::move(spec));
    }
    std::string agg_detail;
    for (const auto& name : bound->group_by) {
      if (!agg_detail.empty()) agg_detail += ", ";
      agg_detail += name;
    }
    exec = std::make_unique<HashAggregateExecutor>(
        std::move(exec), std::move(group_idx), std::move(specs), &meter_);
    // No group-count estimate exists; ungrouped aggregation provably
    // yields one row, grouped output is bounded by the input.
    cur_est = bound->group_by.empty() ? 1 : cur_est;
    if (profile != nullptr) {
      exec = MakeProfiled(
          std::move(exec), &meter_,
          profile->PushRoot("Aggregate", agg_detail, cur_est));
    }
  }

  if (!bound->order_by.empty()) {
    const Schema& in = exec->output_schema();
    std::vector<SortKey> keys;
    for (const auto& order : bound->order_by) {
      auto idx = in.ColumnIndex(order.column);
      if (!idx.has_value()) {
        return Status::NotFound("ORDER BY column " + order.column);
      }
      keys.push_back(SortKey{*idx, order.descending});
    }
    std::string sort_detail;
    for (const auto& order : bound->order_by) {
      if (!sort_detail.empty()) sort_detail += ", ";
      sort_detail += order.column;
      if (order.descending) sort_detail += " DESC";
    }
    exec = std::make_unique<SortExecutor>(std::move(exec), std::move(keys),
                                          &meter_);
    if (profile != nullptr) {
      exec = MakeProfiled(std::move(exec), &meter_,
                          profile->PushRoot("Sort", sort_detail, cur_est));
    }
  }

  if (bound->limit.has_value()) {
    exec = std::make_unique<LimitExecutor>(std::move(exec), *bound->limit);
    cur_est = std::min(cur_est, static_cast<double>(*bound->limit));
    if (profile != nullptr) {
      exec = MakeProfiled(
          std::move(exec), &meter_,
          profile->PushRoot("Limit", std::to_string(*bound->limit), cur_est));
    }
  }

  auto result = RunToResult(exec.get(), meter_, options, plan->Explain(),
                            plan->views_used, options_.exec_batch_size);
  if (scheduler_ != nullptr) scheduler_->FoldStats();
  attr.Close();
  if (result.ok()) {
    result->est_rows = cur_est;
    FillAttribution(attr, attribution_, profile.get());
    ObserveProfile(profile);
    result->profile = std::move(profile);
  }
  return result;
}

Result<double> Database::EstimateCost(const QueryGraph& query,
                                      ViewMode mode) const {
  return planner_->EstimateCost(query, &views_, mode);
}

Result<MaterializeResult> Database::Materialize(
    const QueryGraph& query, const std::string& table_name,
    bool register_view, uint32_t home_node) {
  AttributionScope attr(&attribution_, Attribution::Kind::kManipulation);
  // SELECT * semantics: the stored view keeps every column.
  QueryGraph definition = query;
  definition.SetProjections({});
  auto plan = planner_->Plan(definition, &views_, ViewMode::kCostBased);
  if (!plan.ok()) return plan.status();
  // Speculative materializations run their morsels at background
  // priority: workers drain foreground query morsels first, so a
  // concurrent user query is never starved by speculation (DESIGN.md
  // §15).
  auto exec = planner_->Build(*plan, catalog_.get(), pool_.get(), &meter_,
                              /*profile=*/nullptr,
                              ExecParallel{scheduler_.get(), true});
  if (!exec.ok()) return exec.status();

  if (disk_->node_count() <= 1) home_node = PageAllocOptions::kAnyNode;
  CostScope scope(meter_);
  auto table = MaterializeInto(catalog_.get(), pool_.get(), &meter_,
                               exec->get(), table_name,
                               /*is_materialized=*/true, home_node);
  if (scheduler_ != nullptr) scheduler_->FoldStats();
  if (!table.ok()) return table.status();

  // Commit point: sync the result pages, then commit the table (and
  // optionally its view registration) as one atomic manifest group. A
  // crash before the commit leaves only orphan pages for recovery GC.
  Status synced = disk_->Sync();
  if (!synced.ok()) {
    (void)DropTable(table_name);
    return synced;
  }
  manifest_.Append(ManifestRecord::CreateTable(table_name,
                                               (*table)->schema,
                                               /*is_materialized=*/true));
  manifest_.Append(ManifestRecord::BulkLoadCommit(
      table_name, (*table)->heap->pages(), (*table)->heap->tuple_count()));
  if (register_view) {
    manifest_.Append(ManifestRecord::RegisterView(table_name, definition));
  }
  Status committed = manifest_.Commit();
  if (!committed.ok()) {
    // Quorum failed: undo at the catalog level (not DropTable — that
    // would log a drop of a table the manifest never saw).
    (void)catalog_->DropTable(table_name);
    return committed;
  }

  if (register_view) {
    views_.Register(ViewDefinition{table_name, definition});
  }
  MaterializeResult result;
  result.table_name = table_name;
  result.row_count = (*table)->stats.row_count();
  result.seconds = scope.ElapsedSeconds();
  SQP_LOG_DEBUG << "Materialize " << definition.ToSql() << " -> "
                << table_name << " (" << result.row_count << " rows, "
                << result.seconds << "s)";
  return result;
}

Status Database::RegisterView(const QueryGraph& definition,
                              const std::string& table_name) {
  QueryGraph def = definition;
  def.SetProjections({});
  manifest_.Append(ManifestRecord::RegisterView(table_name, def));
  SQP_RETURN_IF_ERROR(manifest_.Commit());
  views_.Register(ViewDefinition{table_name, std::move(def)});
  return Status::OK();
}

Status Database::ColdStart() { return pool_->Reset(); }

void Database::SimulateCrash() {
  disk_->SimulateCrash();
  manifest_.DropUncommitted();
}

Status Database::KillNode(size_t k) {
  if (disk_->node_count() <= 1 || k >= disk_->node_count()) {
    return Status::OK();  // no node API on a single-node database
  }
  if (!disk_->NodeAlive(k)) return Status::OK();  // idempotent
  if (manifest_.WouldBreakQuorum(k)) {
    // Refuse to ruin the cluster: below quorum the manifest — and with
    // it every committed table — is unrecoverable. Repair() after the
    // earlier loss shrinks the configuration so the next kill passes.
    return Status::FailedPrecondition(
        "killing node " + std::to_string(k) +
        " would break manifest quorum (" +
        std::to_string(manifest_.alive_members()) + " alive members, " +
        "quorum " + std::to_string(manifest_.quorum()) +
        "); run Repair() or add nodes first");
  }
  disk_->KillNode(k);
  manifest_.KillReplica(k);
  MetricsRegistry::Global().GetCounter("storage.node.lost")->Increment();
  SQP_LOG_DEBUG << "node " << k << " lost (" << disk_->alive_nodes() << "/"
                << disk_->node_count() << " alive)";
  return Status::OK();
}

size_t Database::LeastLoadedAliveNode(size_t exclude, size_t exclude2) const {
  size_t best = disk_->node_count();
  size_t best_load = 0;
  for (size_t k = 0; k < disk_->node_count(); k++) {
    if (k == exclude || k == exclude2 || !disk_->NodeAlive(k)) continue;
    size_t load = disk_->PagesWithPrimaryOn(k).size();
    if (best == disk_->node_count() || load < best_load) {
      best = k;
      best_load = load;
    }
  }
  return best;
}

Status Database::MoveShard(size_t s, size_t target) {
  const size_t old_home = disk_->shard_home(s);
  std::vector<ShardedStorageRouter::StagedCopy> staged;
  auto abort_all = [&] {
    for (const auto& copy : staged) disk_->AbortCopy(copy);
  };
  for (page_id_t global : disk_->PagesInShard(s)) {
    if (disk_->PagePrimaryNode(global) != old_home) continue;
    auto copy = disk_->StageCopy(global, target, /*as_primary=*/true);
    if (!copy.ok()) {
      abort_all();
      return copy.status();
    }
    staged.push_back(*copy);
    if (disk_->PageReplicaNode(global) == target) {
      // The shadow already lives on the target: moving the primary
      // there too would collapse both copies onto one node. Relocate
      // the shadow back to the old home (alive, and now primary-free
      // for this page).
      auto shadow = disk_->StageCopy(global, old_home, /*as_primary=*/false);
      if (!shadow.ok()) {
        abort_all();
        return shadow.status();
      }
      staged.push_back(*shadow);
    }
  }
  // Crash-safe ordering: staged bytes become durable, then the manifest
  // commit group records the move, then placements flip. A crash
  // replays to exactly one owner — before the commit the old placements
  // stand and the staged pages are physical orphans; after it the flip
  // is deterministic replay state.
  Status synced = disk_->Sync();
  if (!synced.ok()) {
    abort_all();
    return synced;
  }
  manifest_.Append(
      ManifestRecord::ShardMove(s, static_cast<uint32_t>(target)));
  Status committed = manifest_.Commit();
  if (!committed.ok()) {
    abort_all();
    return committed;
  }
  for (const auto& copy : staged) {
    SQP_RETURN_IF_ERROR(disk_->CommitCopy(copy));
  }
  disk_->SetShardHome(s, target);
  MetricsRegistry::Global().GetCounter("membership.shards_moved")->Increment();
  return Status::OK();
}

Status Database::RebalanceOntoNode(size_t node) {
  const size_t fair = disk_->shard_count() / disk_->alive_nodes();
  while (disk_->ShardsHomedAt(node).size() < fair) {
    // Donor: the node homing the most slots (ties to the lowest id);
    // take its lowest slot. Fully deterministic, so every replay moves
    // the same pages.
    size_t donor = disk_->node_count();
    size_t donor_slots = 0;
    for (size_t k = 0; k < disk_->node_count(); k++) {
      if (k == node || !disk_->NodeAlive(k)) continue;
      size_t held = disk_->ShardsHomedAt(k).size();
      if (held > donor_slots) {
        donor = k;
        donor_slots = held;
      }
    }
    if (donor >= disk_->node_count() || donor_slots == 0) break;
    SQP_RETURN_IF_ERROR(MoveShard(disk_->ShardsHomedAt(donor).front(), node));
  }
  return Status::OK();
}

Status Database::DrainNode(size_t k) {
  // Shard homes first: each slot moves with its pages under its own
  // commit group.
  for (size_t s : disk_->ShardsHomedAt(k)) {
    size_t target = LeastLoadedAliveNode(k);
    if (target >= disk_->node_count()) {
      return Status::FailedPrecondition("no surviving node to drain to");
    }
    SQP_RETURN_IF_ERROR(MoveShard(s, target));
  }
  // Remaining placements: node-sticky matview primaries and shadows.
  std::vector<ShardedStorageRouter::StagedCopy> staged;
  auto abort_all = [&] {
    for (const auto& copy : staged) disk_->AbortCopy(copy);
  };
  for (page_id_t global : disk_->PagesWithPrimaryOn(k)) {
    size_t target = LeastLoadedAliveNode(k, disk_->PageReplicaNode(global));
    if (target >= disk_->node_count()) {
      abort_all();
      return Status::FailedPrecondition("no surviving node to drain to");
    }
    auto copy = disk_->StageCopy(global, target, /*as_primary=*/true);
    if (!copy.ok()) {
      abort_all();
      return copy.status();
    }
    staged.push_back(*copy);
  }
  for (page_id_t global : disk_->PagesWithReplicaOn(k)) {
    size_t target = LeastLoadedAliveNode(k, disk_->PagePrimaryNode(global));
    if (target >= disk_->node_count()) {
      abort_all();
      return Status::FailedPrecondition("no surviving node to drain to");
    }
    auto copy = disk_->StageCopy(global, target, /*as_primary=*/false);
    if (!copy.ok()) {
      abort_all();
      return copy.status();
    }
    staged.push_back(*copy);
  }
  if (!staged.empty()) {
    Status synced = disk_->Sync();
    if (!synced.ok()) {
      abort_all();
      return synced;
    }
    manifest_.Append(ManifestRecord::Repair(
        "drain node " + std::to_string(k) + ": " +
        std::to_string(staged.size()) + " copies"));
    Status committed = manifest_.Commit();
    if (!committed.ok()) {
      abort_all();
      return committed;
    }
    for (const auto& copy : staged) {
      SQP_RETURN_IF_ERROR(disk_->CommitCopy(copy));
    }
  }
  return Status::OK();
}

Result<size_t> Database::AddNode() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (disk_->node_count() <= 1) {
    return Status::FailedPrecondition(
        "single-node database has no membership");
  }
  if (disk_->has_crashed()) {
    return Status::FailedPrecondition(
        "reopen required before membership changes");
  }
  if (disk_->node_count() >= kMaxStorageNodes) {
    return Status::InvalidArgument("storage tier is full");
  }
  const double sim_before = meter_.ElapsedSeconds();
  Tracer::SpanId span = Tracer::kInvalidSpan;
  if (options_.tracer != nullptr) {
    span = options_.tracer->BeginSpan("db.membership.add", "membership",
                                      sim_before);
  }
  auto end_span = [&](const char* note) {
    if (options_.tracer != nullptr) {
      options_.tracer->EndSpan(span, meter_.ElapsedSeconds(), note);
    }
  };
  // Two-phase joint consensus: the joint configuration commits under
  // both quorums, then the final configuration seals the handover.
  auto joined = manifest_.BeginAddReplica();
  if (!joined.ok()) {
    registry.GetCounter("membership.jointcommit_failures")->Increment();
    end_span("joint config refused");
    return joined.status();
  }
  size_t node = disk_->AddNode();
  assert(node == *joined && "router/manifest node ids diverged");
  Status sealed = manifest_.CompleteMembershipChange();
  if (!sealed.ok()) {
    // Deterministic rollback: configuration reverts, and the (still
    // empty) router node retires so ids stay aligned for a later join.
    (void)manifest_.AbortMembershipChange();
    (void)disk_->RetireNode(node);
    registry.GetCounter("membership.jointcommit_failures")->Increment();
    end_span("joint final refused");
    return sealed;
  }
  registry.GetCounter("membership.joins")->Increment();
  SQP_LOG_DEBUG << "node " << node << " joined (" << disk_->alive_nodes()
                << " alive)";
  // Minimal rebalance: whole shard slots move until the new node holds
  // its fair share. A failure here leaves a consistent (merely
  // imbalanced) cluster — the membership itself stands.
  Status moved = RebalanceOntoNode(node);
  if (!moved.ok()) {
    end_span("rebalance failed");
    return moved;
  }
  end_span("joined");
  return node;
}

Status Database::DecommissionNode(size_t k) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (disk_->node_count() <= 1) {
    return Status::FailedPrecondition(
        "single-node database has no membership");
  }
  if (k >= disk_->node_count()) {
    return Status::InvalidArgument("no such node " + std::to_string(k));
  }
  if (disk_->NodeRetired(k)) return Status::OK();  // idempotent
  if (!disk_->NodeAlive(k)) {
    return Status::FailedPrecondition(
        "node " + std::to_string(k) + " is dead; run Repair() instead");
  }
  if (disk_->has_crashed()) {
    return Status::FailedPrecondition(
        "reopen required before membership changes");
  }
  if (disk_->alive_nodes() <= 2) {
    return Status::FailedPrecondition(
        "replication needs at least two remaining nodes");
  }
  const double sim_before = meter_.ElapsedSeconds();
  Tracer::SpanId span = Tracer::kInvalidSpan;
  if (options_.tracer != nullptr) {
    span = options_.tracer->BeginSpan("db.membership.decommission",
                                      "membership", sim_before);
  }
  auto end_span = [&](const char* note) {
    if (options_.tracer != nullptr) {
      options_.tracer->EndSpan(span, meter_.ElapsedSeconds(), note);
    }
  };
  Status begun = manifest_.BeginRemoveReplicas({k});
  if (!begun.ok()) {
    end_span("joint config refused");
    return begun;
  }
  // Every drain commit below runs under the joint rule: both the old
  // and the new configuration must ack, so neither can later disown
  // the moves.
  Status drained = DrainNode(k);
  if (!drained.ok()) {
    (void)manifest_.AbortMembershipChange();
    end_span("drain failed");
    return drained;
  }
  Status sealed = manifest_.CompleteMembershipChange();
  if (!sealed.ok()) {
    (void)manifest_.AbortMembershipChange();
    registry.GetCounter("membership.jointcommit_failures")->Increment();
    end_span("joint final refused");
    return sealed;
  }
  Status retired = disk_->RetireNode(k);
  assert(retired.ok() && "decommission left placements behind");
  (void)retired;
  manifest_.KillReplica(k);  // the replica leaves service with its node
  registry.GetCounter("membership.decommissions")->Increment();
  SQP_LOG_DEBUG << "node " << k << " decommissioned ("
                << disk_->alive_nodes() << " alive)";
  end_span("decommissioned");
  return Status::OK();
}

Result<RepairStats> Database::Repair(size_t max_pages) {
  AttributionScope attr(&attribution_, Attribution::Kind::kMaintenance);
  RepairStats stats;
  if (disk_->node_count() <= 1) {
    stats.complete = true;
    last_repair_ = stats;
    return stats;
  }
  if (disk_->has_crashed()) {
    return Status::FailedPrecondition("reopen required before repair");
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  const double sim_before = meter_.ElapsedSeconds();
  Tracer::SpanId span = Tracer::kInvalidSpan;
  if (options_.tracer != nullptr) {
    span = options_.tracer->BeginSpan("db.repair", "repair", sim_before);
  }
  auto end_span = [&](const char* note) {
    if (options_.tracer != nullptr) {
      options_.tracer->EndSpan(span, meter_.ElapsedSeconds(), note);
    }
  };
  // 1. Shrink the manifest configuration past dead members, so quorum
  // is judged against the survivors and the *next* loss is tolerable.
  std::vector<size_t> dead = manifest_.DeadMembers();
  if (!dead.empty() && !manifest_.in_joint_transition()) {
    Status begun = manifest_.BeginRemoveReplicas(dead);
    if (!begun.ok()) {
      end_span("config shrink refused");
      return begun;
    }
    Status sealed = manifest_.CompleteMembershipChange();
    if (!sealed.ok()) {
      (void)manifest_.AbortMembershipChange();
      end_span("config shrink failed");
      return sealed;
    }
    stats.members_removed = dead.size();
  }
  // 2. Re-home shard slots whose home node died. No copies move here:
  // the slot's pages get fresh primaries in step 3; the new home only
  // steers future allocations.
  std::vector<std::pair<size_t, size_t>> rehomes;
  std::vector<size_t> pending_slots(disk_->node_count(), 0);
  for (size_t s = 0; s < disk_->shard_count(); s++) {
    if (disk_->NodeAlive(disk_->shard_home(s))) continue;
    size_t target = disk_->node_count();
    size_t target_load = 0;
    for (size_t k = 0; k < disk_->node_count(); k++) {
      if (!disk_->NodeAlive(k)) continue;
      size_t load = disk_->ShardsHomedAt(k).size() + pending_slots[k];
      if (target == disk_->node_count() || load < target_load) {
        target = k;
        target_load = load;
      }
    }
    if (target >= disk_->node_count()) {
      end_span("no node for shard re-home");
      return Status::DataLoss("no storage node alive");
    }
    pending_slots[target]++;
    rehomes.emplace_back(s, target);
  }
  if (!rehomes.empty()) {
    for (const auto& [s, target] : rehomes) {
      manifest_.Append(
          ManifestRecord::ShardMove(s, static_cast<uint32_t>(target)));
    }
    Status committed = manifest_.Commit();
    if (!committed.ok()) {
      end_span("shard re-home commit failed");
      return committed;
    }
    for (const auto& [s, target] : rehomes) disk_->SetShardHome(s, target);
    stats.shards_rehomed = rehomes.size();
  }
  // 3. Page re-protection under the interruptible budget: promote
  // shadows whose primary died, then re-replicate bare primaries —
  // deterministic (global-id) order, all I/O charged on the meter.
  std::vector<ShardedStorageRouter::RepairNeed> needs =
      disk_->PagesNeedingRepair();
  const size_t budget =
      max_pages == 0 ? needs.size() : std::min(max_pages, needs.size());
  std::vector<ShardedStorageRouter::StagedCopy> staged;
  auto abort_all = [&] {
    for (const auto& copy : staged) disk_->AbortCopy(copy);
  };
  size_t skipped = 0;
  for (size_t i = 0; i < budget; i++) {
    const auto& need = needs[i];
    size_t target;
    bool as_primary;
    if (need.primary_dead) {
      // New primary: prefer the page's shard home (keeps the shard
      // together) unless the shadow already sits there.
      as_primary = true;
      uint32_t shadow_node = disk_->PageReplicaNode(need.global);
      uint32_t shard = disk_->PageShard(need.global);
      if (shard != PageAllocOptions::kNoShard &&
          disk_->NodeAlive(disk_->shard_home(shard)) &&
          disk_->shard_home(shard) != shadow_node) {
        target = disk_->shard_home(shard);
      } else {
        target = LeastLoadedAliveNode(shadow_node);
      }
    } else {
      as_primary = false;
      target = LeastLoadedAliveNode(disk_->PagePrimaryNode(need.global));
    }
    if (target >= disk_->node_count()) {
      skipped++;  // nowhere to put a second copy (one-node remainder)
      continue;
    }
    auto copy = disk_->StageCopy(need.global, target, as_primary);
    if (!copy.ok()) {
      abort_all();
      end_span("stage failed");
      return copy.status();
    }
    staged.push_back(*copy);
  }
  if (!staged.empty()) {
    Status synced = disk_->Sync();
    if (!synced.ok()) {
      abort_all();
      end_span("sync failed");
      return synced;
    }
    manifest_.Append(ManifestRecord::Repair(
        "re-protected " + std::to_string(staged.size()) + " pages"));
    Status committed = manifest_.Commit();
    if (!committed.ok()) {
      abort_all();
      end_span("repair commit failed");
      return committed;
    }
    for (const auto& copy : staged) {
      SQP_RETURN_IF_ERROR(disk_->CommitCopy(copy));
      stats.pages_reprotected++;
    }
  }
  stats.pages_remaining = needs.size() - budget + skipped;
  stats.complete = stats.pages_remaining == 0;
  if (stats.complete) {
    // Matviews that died with their node were dropped by Reopen(); the
    // speculation engine re-derives them as candidates organically.
    stats.matviews_requeued = last_recovery_.matviews_lost_with_node;
  }
  stats.repair_sim_seconds = meter_.ElapsedSeconds() - sim_before;
  registry.GetCounter("repair.runs")->Increment();
  registry.GetCounter("repair.pages_reprotected")
      ->Increment(stats.pages_reprotected);
  registry.GetCounter("repair.shards_rehomed")
      ->Increment(stats.shards_rehomed);
  registry.GetCounter("repair.members_removed")
      ->Increment(stats.members_removed);
  registry.GetCounter("repair.matviews_requeued")
      ->Increment(stats.matviews_requeued);
  last_repair_ = stats;
  SQP_LOG_DEBUG << "Repair: " << stats.pages_reprotected
                << " pages re-protected, " << stats.shards_rehomed
                << " shards re-homed, " << stats.members_removed
                << " members removed, " << stats.pages_remaining
                << " remaining";
  end_span(stats.complete ? "redundancy restored" : "budget exhausted");
  return stats;
}

Status Database::Reopen() {
  AttributionScope attr(&attribution_, Attribution::Kind::kMaintenance);
  manifest_.DropUncommitted();
  disk_->Restart();
  const double sim_before = meter_.ElapsedSeconds();
  Tracer::SpanId span = Tracer::kInvalidSpan;
  if (options_.tracer != nullptr) {
    span = options_.tracer->BeginSpan("db.reopen", "recovery", sim_before);
  }
  // The manifest first: elect a leader among the surviving replicas and
  // heal their logs, so everything below folds the quorum's view.
  Status quorum = manifest_.RecoverFromQuorum();
  if (!quorum.ok()) {
    if (options_.tracer != nullptr) {
      options_.tracer->EndSpan(span, meter_.ElapsedSeconds(),
                               "quorum lost");
    }
    return quorum;
  }
  // The old pool/catalog/views mirror pre-crash memory: discard them and
  // rebuild from the durable image.
  pool_ = std::make_unique<BufferPool>(disk_.get(),
                                       options_.buffer_pool_pages);
  catalog_ = std::make_unique<Catalog>(disk_.get(), pool_.get());
  views_ = ViewRegistry();
  planner_ = std::make_unique<Planner>(catalog_.get(), options_.cost,
                                       placement_source_.get());
  last_recovery_ = RecoveryStats();
  last_recovery_.manifest_records_replayed = manifest_.committed_count();
  last_recovery_.nodes_lost = disk_->killed_nodes();
  const uint64_t checksum_failures_before = disk_->checksum_failures();

  ManifestFoldResult fold = FoldManifest(manifest_.committed());
  for (const auto& [name, state] : fold.tables) {
    // Pages that died with a lost node: a base table never hits this
    // (every page has a shadow on another node), but an unreplicated
    // matview that lived on the dead node is gone.
    bool pages_lost = false;
    for (page_id_t page_id : state.pages) {
      if (!disk_->PageAvailable(page_id)) {
        pages_lost = true;
        break;
      }
    }
    if (pages_lost) {
      if (!state.is_materialized) {
        return Status::DataLoss("base table " + name +
                                " lost pages with a storage node");
      }
      // Free the copies that did survive and record the drop so later
      // replays agree.
      for (page_id_t page_id : state.pages) {
        pool_->EvictPage(page_id);
        (void)disk_->DeallocatePage(page_id);
      }
      manifest_.Append(ManifestRecord::DropTable(name));
      SQP_RETURN_IF_ERROR(manifest_.Commit());
      last_recovery_.matviews_lost_with_node++;
      continue;
    }
    auto restored =
        catalog_->RestoreTable(name, state.schema, state.is_materialized,
                               state.pages, state.tuple_count);
    if (!restored.ok()) {
      if (restored.status().code() == StatusCode::kDataLoss &&
          state.is_materialized) {
        // A corrupt speculative materialization is disposable: release
        // its pages and record the drop so later replays agree.
        for (page_id_t page_id : state.pages) {
          pool_->EvictPage(page_id);
          (void)disk_->DeallocatePage(page_id);
        }
        manifest_.Append(ManifestRecord::DropTable(name));
        SQP_RETURN_IF_ERROR(manifest_.Commit());
        last_recovery_.corrupt_matviews_dropped++;
        continue;
      }
      // A corrupt base table (or a non-checksum failure) is
      // unrecoverable data loss; surface it instead of serving it.
      return restored.status();
    }
    last_recovery_.tables_recovered++;
    if (state.is_materialized) last_recovery_.matviews_recovered++;
    for (const auto& column : state.index_columns) {
      auto index = catalog_->CreateIndex(name, column);
      if (!index.ok()) return index.status();
      last_recovery_.indexes_rebuilt++;
    }
    for (const auto& column : state.histogram_columns) {
      SQP_RETURN_IF_ERROR(catalog_->CreateHistogram(name, column));
      last_recovery_.histograms_rebuilt++;
    }
    if (state.has_view) {
      QueryGraph def = state.view_definition;
      def.SetProjections({});
      views_.Register(ViewDefinition{name, std::move(def)});
      last_recovery_.views_registered++;
    }
  }

  // Orphan GC: live pages referenced by no recovered table are the
  // remains of half-built (uncommitted) work — free them, node by node.
  std::set<page_id_t> owned;
  for (const auto& name : catalog_->TableNames()) {
    for (page_id_t page_id : catalog_->GetTable(name)->heap->pages()) {
      owned.insert(page_id);
    }
  }
  for (page_id_t page_id : disk_->LivePages()) {
    if (owned.count(page_id) > 0) continue;
    pool_->EvictPage(page_id);
    SQP_RETURN_IF_ERROR(disk_->DeallocatePage(page_id));
    last_recovery_.orphan_pages_collected++;
  }
  // Staged rebalance/repair copies a crash cut loose (allocated on the
  // target but never committed into a placement) are physical orphans:
  // free them before the audit below.
  last_recovery_.physical_orphans_collected = disk_->CollectPhysicalOrphans();
  // Per-node audit: after GC no surviving node may hold physical pages
  // that no logical page references.
  last_recovery_.orphan_pages_per_node_audit = disk_->OrphanPhysicalPages();
  last_recovery_.torn_pages_detected =
      disk_->checksum_failures() - checksum_failures_before;
  last_recovery_.recovery_sim_seconds =
      meter_.ElapsedSeconds() - sim_before;
  // Mirror this recovery into the unified registry (DESIGN.md §9).
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("db.recovery.runs")->Increment();
  registry.GetCounter("db.recovery.tables_recovered")
      ->Increment(last_recovery_.tables_recovered);
  registry.GetCounter("db.recovery.matviews_recovered")
      ->Increment(last_recovery_.matviews_recovered);
  registry.GetCounter("db.recovery.corrupt_matviews_dropped")
      ->Increment(last_recovery_.corrupt_matviews_dropped);
  registry.GetCounter("db.recovery.matviews_lost_with_node")
      ->Increment(last_recovery_.matviews_lost_with_node);
  registry.GetCounter("db.recovery.torn_pages_detected")
      ->Increment(last_recovery_.torn_pages_detected);
  registry.GetCounter("db.recovery.orphan_pages_collected")
      ->Increment(last_recovery_.orphan_pages_collected);
  registry.GetCounter("db.recovery.physical_orphans_collected")
      ->Increment(last_recovery_.physical_orphans_collected);
  if (options_.tracer != nullptr) {
    options_.tracer->EndSpan(span, meter_.ElapsedSeconds(), "recovered");
  }
  SQP_LOG_DEBUG << "Reopen: " << last_recovery_.tables_recovered
                << " tables, " << last_recovery_.views_registered
                << " views, " << last_recovery_.orphan_pages_collected
                << " orphan pages collected, "
                << last_recovery_.corrupt_matviews_dropped
                << " corrupt matviews dropped, "
                << last_recovery_.matviews_lost_with_node
                << " matviews lost with nodes";
  return Status::OK();
}

}  // namespace sqp
