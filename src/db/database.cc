#include "db/database.h"

#include "common/logging.h"
#include "exec/aggregate.h"
#include "exec/materializer.h"
#include "exec/sort.h"
#include "sql/binder.h"

namespace sqp {

Database::Database(DatabaseOptions options)
    : options_(options), meter_(options.cost) {
  disk_ = std::make_unique<DiskManager>(&meter_);
  pool_ = std::make_unique<BufferPool>(disk_.get(),
                                       options_.buffer_pool_pages);
  catalog_ = std::make_unique<Catalog>(disk_.get(), pool_.get());
  planner_ = std::make_unique<Planner>(catalog_.get(), options_.cost);
}

Status Database::CreateTable(const std::string& name, const Schema& schema) {
  auto table = catalog_->CreateTable(name, schema);
  return table.ok() ? Status::OK() : table.status();
}

Status Database::BulkLoad(const std::string& name,
                          const std::vector<Tuple>& rows) {
  TableInfo* info = catalog_->GetTable(name);
  if (info == nullptr) return Status::NotFound("table " + name);
  TableStats stats;
  stats.Begin(info->schema);
  for (const Tuple& row : rows) {
    if (row.size() != info->schema.size()) {
      return Status::InvalidArgument("row arity mismatch for " + name);
    }
    stats.Observe(row);
    auto rid = info->heap->Append(row);
    if (!rid.ok()) return rid.status();
  }
  stats.Finish(info->heap->page_count());
  info->stats = std::move(stats);
  for (page_id_t page_id : info->heap->pages()) {
    SQP_RETURN_IF_ERROR(pool_->FlushPage(page_id));
  }
  return Status::OK();
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& column) {
  auto index = catalog_->CreateIndex(table, column);
  return index.ok() ? Status::OK() : index.status();
}

Status Database::CreateHistogram(const std::string& table,
                                 const std::string& column) {
  return catalog_->CreateHistogram(table, column);
}

Status Database::DropTable(const std::string& name) {
  views_.Unregister(name);
  return catalog_->DropTable(name);
}

namespace {
/// Drain `exec` into a QueryResult, timing against `meter`.
Result<QueryResult> RunToResult(Executor* exec, CostMeter& meter,
                                const ExecuteOptions& options,
                                std::string plan_explain,
                                std::vector<std::string> views_used) {
  CostScope scope(meter);
  QueryResult result;
  result.plan_explain = std::move(plan_explain);
  result.views_used = std::move(views_used);
  result.schema = exec->output_schema();

  SQP_RETURN_IF_ERROR(exec->Init());
  for (;;) {
    auto row = exec->Next();
    if (!row.ok()) return row.status();
    if (!row->has_value()) break;
    result.row_count++;
    if (options.keep_rows) result.rows.push_back(std::move(**row));
  }
  result.seconds = scope.ElapsedSeconds();
  result.blocks = scope.ElapsedBlocks();
  return result;
}
}  // namespace

Result<QueryResult> Database::Execute(const QueryGraph& query,
                                      const ExecuteOptions& options) {
  auto plan = planner_->Plan(query, &views_, options.view_mode);
  if (!plan.ok()) return plan.status();
  auto exec = planner_->Build(*plan, catalog_.get(), pool_.get(), &meter_);
  if (!exec.ok()) return exec.status();
  auto result = RunToResult(exec->get(), meter_, options, plan->Explain(),
                            plan->views_used);
  if (result.ok()) {
    SQP_LOG_DEBUG << "Execute " << query.ToSql() << " -> "
                  << result->row_count << " rows in " << result->seconds
                  << "s";
  }
  return result;
}

Result<QueryResult> Database::ExecuteSql(const std::string& sql,
                                         const ExecuteOptions& options) {
  auto bound = ParseAndBindFull(sql, *catalog_);
  if (!bound.ok()) return bound.status();
  if (!bound->has_decorations()) return Execute(bound->graph, options);

  auto plan = planner_->Plan(bound->graph, &views_, options.view_mode);
  if (!plan.ok()) return plan.status();
  auto built = planner_->Build(*plan, catalog_.get(), pool_.get(), &meter_);
  if (!built.ok()) return built.status();
  std::unique_ptr<Executor> exec = std::move(*built);

  // Aggregation / grouping on top of the SPJ core.
  if (!bound->aggregates.empty() || !bound->group_by.empty()) {
    const Schema& in = exec->output_schema();
    std::vector<size_t> group_idx;
    for (const auto& name : bound->group_by) {
      auto idx = in.ColumnIndex(name);
      if (!idx.has_value()) {
        return Status::NotFound("GROUP BY column " + name);
      }
      group_idx.push_back(*idx);
    }
    std::vector<AggSpec> specs;
    for (const auto& agg : bound->aggregates) {
      AggSpec spec;
      spec.func = agg.func;
      spec.output_name = agg.output_name;
      if (agg.star) {
        spec.column_index = AggSpec::kStar;
      } else {
        auto idx = in.ColumnIndex(agg.column);
        if (!idx.has_value()) {
          return Status::NotFound("aggregate column " + agg.column);
        }
        spec.column_index = *idx;
      }
      specs.push_back(std::move(spec));
    }
    exec = std::make_unique<HashAggregateExecutor>(
        std::move(exec), std::move(group_idx), std::move(specs), &meter_);
  }

  if (!bound->order_by.empty()) {
    const Schema& in = exec->output_schema();
    std::vector<SortKey> keys;
    for (const auto& order : bound->order_by) {
      auto idx = in.ColumnIndex(order.column);
      if (!idx.has_value()) {
        return Status::NotFound("ORDER BY column " + order.column);
      }
      keys.push_back(SortKey{*idx, order.descending});
    }
    exec = std::make_unique<SortExecutor>(std::move(exec), std::move(keys),
                                          &meter_);
  }

  if (bound->limit.has_value()) {
    exec = std::make_unique<LimitExecutor>(std::move(exec), *bound->limit);
  }

  return RunToResult(exec.get(), meter_, options, plan->Explain(),
                     plan->views_used);
}

Result<double> Database::EstimateCost(const QueryGraph& query,
                                      ViewMode mode) const {
  return planner_->EstimateCost(query, &views_, mode);
}

Result<MaterializeResult> Database::Materialize(
    const QueryGraph& query, const std::string& table_name,
    bool register_view) {
  // SELECT * semantics: the stored view keeps every column.
  QueryGraph definition = query;
  definition.SetProjections({});
  auto plan = planner_->Plan(definition, &views_, ViewMode::kCostBased);
  if (!plan.ok()) return plan.status();
  auto exec = planner_->Build(*plan, catalog_.get(), pool_.get(), &meter_);
  if (!exec.ok()) return exec.status();

  CostScope scope(meter_);
  auto table = MaterializeInto(catalog_.get(), pool_.get(), &meter_,
                               exec->get(), table_name,
                               /*is_materialized=*/true);
  if (!table.ok()) return table.status();

  if (register_view) {
    views_.Register(ViewDefinition{table_name, definition});
  }
  MaterializeResult result;
  result.table_name = table_name;
  result.row_count = (*table)->stats.row_count();
  result.seconds = scope.ElapsedSeconds();
  SQP_LOG_DEBUG << "Materialize " << definition.ToSql() << " -> "
                << table_name << " (" << result.row_count << " rows, "
                << result.seconds << "s)";
  return result;
}

void Database::RegisterView(const QueryGraph& definition,
                            const std::string& table_name) {
  QueryGraph def = definition;
  def.SetProjections({});
  views_.Register(ViewDefinition{table_name, std::move(def)});
}

Status Database::ColdStart() { return pool_->Reset(); }

}  // namespace sqp
