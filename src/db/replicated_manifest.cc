#include "db/replicated_manifest.h"

#include <cassert>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/metrics_registry.h"

namespace sqp {

ReplicatedManifest::ReplicatedManifest(size_t replicas, size_t quorum)
    : quorum_(quorum == 0 ? replicas / 2 + 1 : quorum) {
  assert(replicas >= 1);
  assert(quorum_ >= 1 && quorum_ <= replicas);
  replicas_.resize(replicas);
  FaultInjector& injector = FaultInjector::Global();
  for (size_t k = 0; k < replicas; k++) {
    std::string tag = "node" + std::to_string(k);
    replicas_[k].replicate_point = tag + ".manifest.replicate";
    replicas_[k].partition_point = tag + ".partition";
    if (replicas > 1) {
      injector.RegisterPoint(replicas_[k].replicate_point);
    }
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  m_commits_ = registry.GetCounter("manifest.replication.commits");
  m_quorum_failures_ =
      registry.GetCounter("manifest.replication.quorum_failures");
  m_elections_ = registry.GetCounter("manifest.replication.elections");
  m_catchup_entries_ =
      registry.GetCounter("manifest.replication.catchup_entries");
  m_truncated_entries_ =
      registry.GetCounter("manifest.replication.truncated_entries");
}

void ReplicatedManifest::Append(ManifestRecord record) {
  staged_.push_back(std::move(record));
}

size_t ReplicatedManifest::alive_replicas() const {
  size_t alive = 0;
  for (const auto& replica : replicas_) {
    if (replica.alive) alive++;
  }
  return alive;
}

size_t ReplicatedManifest::MostUpToDate() const {
  size_t best = replicas_.size();
  for (size_t k = 0; k < replicas_.size(); k++) {
    if (!replicas_[k].alive) continue;
    if (best == replicas_.size()) {
      best = k;
      continue;
    }
    auto last_term = [&](size_t i) {
      return replicas_[i].log.empty() ? 0 : replicas_[i].log.back().term;
    };
    if (last_term(k) > last_term(best) ||
        (last_term(k) == last_term(best) &&
         replicas_[k].log.size() > replicas_[best].log.size())) {
      best = k;
    }
  }
  return best;
}

void ReplicatedManifest::ElectLeader() {
  size_t best = MostUpToDate();
  assert(best < replicas_.size() && "election with no alive replica");
  term_++;
  leader_ = best;
  m_elections_->Increment();
  SQP_LOG_DEBUG << "manifest: replica " << leader_ << " elected leader, term "
                << term_;
}

void ReplicatedManifest::CatchUp(size_t k) {
  const auto& leader_log = replicas_[leader_].log;
  auto& log = replicas_[k].log;
  // Term check: a follower entry whose term disagrees with the leader's
  // at the same index belongs to a rolled-back lineage — discard it and
  // everything after it.
  size_t match = 0;
  while (match < log.size() && match < leader_log.size() &&
         log[match].term == leader_log[match].term) {
    match++;
  }
  if (match < log.size()) {
    m_truncated_entries_->Increment(log.size() - match);
    log.resize(match);
  }
  if (match < leader_log.size()) {
    m_catchup_entries_->Increment(leader_log.size() - match);
    for (size_t i = match; i < leader_log.size(); i++) {
      log.push_back(leader_log[i]);
    }
  }
}

Status ReplicatedManifest::Commit() {
  if (staged_.empty()) return Status::OK();
  if (!replicas_[leader_].alive) {
    // The leader's node died under us: fail over before committing.
    if (alive_replicas() < quorum_) {
      staged_.clear();
      return Status::DataLoss("manifest quorum lost");
    }
    ElectLeader();
  }

  ManifestLogEntry entry;
  entry.term = term_;
  entry.group = staged_;

  replicas_[leader_].log.push_back(entry);
  size_t acks = 1;
  std::vector<size_t> acked;
  FaultInjector& injector = FaultInjector::Global();
  for (size_t k = 0; k < replicas_.size(); k++) {
    if (k == leader_ || !replicas_[k].alive) continue;
    if (injector.armed()) {
      // An unreachable or faulted follower simply misses this round; it
      // is caught up by a later commit or by recovery.
      if (!injector.Check(replicas_[k].partition_point).ok()) continue;
      if (!injector.Check(replicas_[k].replicate_point).ok()) continue;
    }
    CatchUp(k);
    acks++;
    acked.push_back(k);
  }

  if (acks < quorum_) {
    // Quorum failed: the entry must not survive anywhere, or a later
    // election could resurrect an operation the caller was told failed.
    replicas_[leader_].log.pop_back();
    for (size_t k : acked) replicas_[k].log.pop_back();
    staged_.clear();
    quorum_failures_++;
    m_quorum_failures_->Increment();
    return Status::ResourceExhausted(
        "manifest commit: " + std::to_string(acks) + "/" +
        std::to_string(quorum_) + " acks");
  }

  for (auto& record : staged_) {
    committed_flat_.push_back(std::move(record));
  }
  staged_.clear();
  m_commits_->Increment();
  return Status::OK();
}

void ReplicatedManifest::KillReplica(size_t k) {
  if (k >= replicas_.size()) return;
  replicas_[k].alive = false;
}

Status ReplicatedManifest::RecoverFromQuorum() {
  staged_.clear();
  if (alive_replicas() < quorum_) {
    return Status::DataLoss("manifest quorum lost: " +
                            std::to_string(alive_replicas()) + " of " +
                            std::to_string(replicas_.size()) +
                            " replicas survive, quorum is " +
                            std::to_string(quorum_));
  }
  ElectLeader();
  for (size_t k = 0; k < replicas_.size(); k++) {
    if (k == leader_ || !replicas_[k].alive) continue;
    CatchUp(k);
  }
  RebuildCommitted();
  return Status::OK();
}

void ReplicatedManifest::RebuildCommitted() {
  committed_flat_.clear();
  for (const auto& entry : replicas_[leader_].log) {
    for (const auto& record : entry.group) {
      committed_flat_.push_back(record);
    }
  }
}

}  // namespace sqp
