#include "db/replicated_manifest.h"

#include <algorithm>
#include <cassert>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "storage/page.h"

namespace sqp {

namespace {
/// Fault point simulating a failed joint quorum during a membership
/// transition (DESIGN.md §13).
constexpr const char* kJointCommitPoint = "membership.jointcommit";

bool Contains(const std::vector<size_t>& config, size_t k) {
  return std::find(config.begin(), config.end(), k) != config.end();
}

size_t MajorityOf(size_t n) { return n / 2 + 1; }
}  // namespace

ReplicatedManifest::ReplicatedManifest(size_t replicas, size_t quorum)
    : quorum_(quorum == 0 ? MajorityOf(replicas) : quorum) {
  assert(replicas >= 1);
  assert(quorum_ >= 1 && quorum_ <= replicas);
  FaultInjector& injector = FaultInjector::Global();
  for (size_t k = 0; k < replicas; k++) {
    AddReplicaSlot();
    if (replicas > 1) {
      injector.RegisterPoint(replicas_[k].replicate_point);
    }
    members_.push_back(k);
  }
  if (replicas > 1) injector.RegisterPoint(kJointCommitPoint);
  MetricsRegistry& registry = MetricsRegistry::Global();
  m_commits_ = registry.GetCounter("manifest.replication.commits");
  m_quorum_failures_ =
      registry.GetCounter("manifest.replication.quorum_failures");
  m_elections_ = registry.GetCounter("manifest.replication.elections");
  m_catchup_entries_ =
      registry.GetCounter("manifest.replication.catchup_entries");
  m_truncated_entries_ =
      registry.GetCounter("manifest.replication.truncated_entries");
  m_config_commits_ =
      registry.GetCounter("manifest.replication.config_commits");
}

void ReplicatedManifest::AddReplicaSlot() {
  size_t k = replicas_.size();
  Replica replica;
  std::string tag = "node" + std::to_string(k);
  replica.replicate_point = tag + ".manifest.replicate";
  replica.partition_point = tag + ".partition";
  replicas_.push_back(std::move(replica));
}

void ReplicatedManifest::Append(ManifestRecord record) {
  staged_.push_back(std::move(record));
}

bool ReplicatedManifest::IsMember(size_t k) const {
  return Contains(members_, k);
}

bool ReplicatedManifest::IsParticipant(size_t k) const {
  if (Contains(members_, k)) return true;
  return target_members_.has_value() && Contains(*target_members_, k);
}

size_t ReplicatedManifest::AliveIn(const std::vector<size_t>& config) const {
  size_t alive = 0;
  for (size_t k : config) {
    if (k < replicas_.size() && replicas_[k].alive) alive++;
  }
  return alive;
}

size_t ReplicatedManifest::alive_members() const { return AliveIn(members_); }

std::vector<size_t> ReplicatedManifest::DeadMembers() const {
  std::vector<size_t> dead;
  for (size_t k : members_) {
    if (!replicas_[k].alive) dead.push_back(k);
  }
  return dead;
}

bool ReplicatedManifest::WouldBreakQuorum(size_t k) const {
  if (k >= replicas_.size() || !replicas_[k].alive) return false;
  if (Contains(members_, k) && AliveIn(members_) - 1 < quorum_) return true;
  if (target_members_.has_value() && Contains(*target_members_, k) &&
      AliveIn(*target_members_) - 1 < target_quorum_) {
    return true;
  }
  return false;
}

size_t ReplicatedManifest::MostUpToDate() const {
  size_t best = replicas_.size();
  for (size_t k = 0; k < replicas_.size(); k++) {
    if (!replicas_[k].alive || !IsParticipant(k)) continue;
    if (best == replicas_.size()) {
      best = k;
      continue;
    }
    auto last_term = [&](size_t i) {
      return replicas_[i].log.empty() ? 0 : replicas_[i].log.back().term;
    };
    if (last_term(k) > last_term(best) ||
        (last_term(k) == last_term(best) &&
         replicas_[k].log.size() > replicas_[best].log.size())) {
      best = k;
    }
  }
  return best;
}

void ReplicatedManifest::ElectLeader() {
  size_t best = MostUpToDate();
  assert(best < replicas_.size() && "election with no alive member");
  term_++;
  leader_ = best;
  m_elections_->Increment();
  SQP_LOG_DEBUG << "manifest: replica " << leader_ << " elected leader, term "
                << term_;
}

Status ReplicatedManifest::EnsureLeader() {
  if (replicas_[leader_].alive && IsParticipant(leader_)) return Status::OK();
  // The leader's node died (or left the configuration) under us: fail
  // over before committing.
  if (alive_members() < quorum_ ||
      (target_members_.has_value() &&
       AliveIn(*target_members_) < target_quorum_)) {
    return Status::DataLoss("manifest quorum lost");
  }
  ElectLeader();
  return Status::OK();
}

void ReplicatedManifest::CatchUp(size_t k) {
  const auto& leader_log = replicas_[leader_].log;
  auto& log = replicas_[k].log;
  // Term check: a follower entry whose term disagrees with the leader's
  // at the same index belongs to a rolled-back lineage — discard it and
  // everything after it.
  size_t match = 0;
  while (match < log.size() && match < leader_log.size() &&
         log[match].term == leader_log[match].term) {
    match++;
  }
  if (match < log.size()) {
    m_truncated_entries_->Increment(log.size() - match);
    log.resize(match);
  }
  if (match < leader_log.size()) {
    m_catchup_entries_->Increment(leader_log.size() - match);
    for (size_t i = match; i < leader_log.size(); i++) {
      log.push_back(leader_log[i]);
    }
  }
}

Status ReplicatedManifest::ReplicateEntry(ManifestLogEntry entry) {
  FaultInjector& injector = FaultInjector::Global();
  if (target_members_.has_value() && injector.armed()) {
    // A commit under the joint rule can be failed as a unit: the fault
    // models the two configurations disagreeing before any log took
    // the entry.
    Status joint = injector.Check(kJointCommitPoint);
    if (!joint.ok()) {
      quorum_failures_++;
      m_quorum_failures_->Increment();
      return Status::ResourceExhausted(
          "manifest joint commit: injected joint-quorum failure");
    }
  }
  entry.term = term_;
  replicas_[leader_].log.push_back(entry);
  std::vector<size_t> acked = {leader_};
  for (size_t k = 0; k < replicas_.size(); k++) {
    if (k == leader_ || !replicas_[k].alive || !IsParticipant(k)) continue;
    if (injector.armed()) {
      // An unreachable or faulted follower simply misses this round; it
      // is caught up by a later commit or by recovery.
      if (!injector.Check(replicas_[k].partition_point).ok()) continue;
      if (!injector.Check(replicas_[k].replicate_point).ok()) continue;
    }
    CatchUp(k);
    acked.push_back(k);
  }

  auto acks_in = [&](const std::vector<size_t>& config) {
    size_t acks = 0;
    for (size_t k : acked) {
      if (Contains(config, k)) acks++;
    }
    return acks;
  };
  size_t old_acks = acks_in(members_);
  bool reached = old_acks >= quorum_;
  if (reached && target_members_.has_value()) {
    // Joint rule: the entry must also hold on a quorum of the proposed
    // configuration before it counts as committed.
    reached = acks_in(*target_members_) >= target_quorum_;
  }
  if (!reached) {
    // Quorum failed: the entry must not survive anywhere, or a later
    // election could resurrect an operation the caller was told failed.
    for (size_t k : acked) replicas_[k].log.pop_back();
    quorum_failures_++;
    m_quorum_failures_->Increment();
    return Status::ResourceExhausted(
        "manifest commit: " + std::to_string(old_acks) + "/" +
        std::to_string(quorum_) + " acks" +
        (target_members_.has_value() ? " (joint)" : ""));
  }
  return Status::OK();
}

Status ReplicatedManifest::Commit() {
  if (staged_.empty()) return Status::OK();
  Status leader_ok = EnsureLeader();
  if (!leader_ok.ok()) {
    staged_.clear();
    return leader_ok;
  }

  ManifestLogEntry entry;
  entry.kind = ManifestLogEntry::Kind::kRecords;
  entry.group = staged_;
  Status replicated = ReplicateEntry(std::move(entry));
  if (!replicated.ok()) {
    staged_.clear();
    return replicated;
  }

  for (auto& record : staged_) {
    committed_flat_.push_back(std::move(record));
  }
  staged_.clear();
  m_commits_->Increment();
  return Status::OK();
}

Result<size_t> ReplicatedManifest::BeginAddReplica() {
  if (target_members_.has_value()) {
    return Status::FailedPrecondition(
        "a membership change is already in progress");
  }
  if (replicas_.size() >= kMaxStorageNodes) {
    return Status::InvalidArgument("replica set is full");
  }
  SQP_RETURN_IF_ERROR(EnsureLeader());
  size_t k = replicas_.size();
  AddReplicaSlot();
  FaultInjector::Global().RegisterPoint(replicas_[k].replicate_point);

  std::vector<size_t> next = members_;
  next.push_back(k);
  std::sort(next.begin(), next.end());
  target_members_ = next;
  target_quorum_ = MajorityOf(next.size());
  joint_added_replica_ = k;

  ManifestLogEntry entry;
  entry.kind = ManifestLogEntry::Kind::kJointConfig;
  entry.config_members = next;
  Status committed = ReplicateEntry(std::move(entry));
  if (!committed.ok()) {
    // The joint entry never committed: the slot never existed.
    target_members_.reset();
    target_quorum_ = 0;
    joint_added_replica_.reset();
    replicas_.pop_back();
    return committed;
  }
  m_config_commits_->Increment();
  SQP_LOG_DEBUG << "manifest: joint config open, adding replica " << k;
  return k;
}

Status ReplicatedManifest::BeginRemoveReplicas(
    const std::vector<size_t>& leaving) {
  if (target_members_.has_value()) {
    return Status::FailedPrecondition(
        "a membership change is already in progress");
  }
  std::vector<size_t> next;
  for (size_t k : members_) {
    if (!Contains(leaving, k)) next.push_back(k);
  }
  if (next.size() == members_.size()) {
    return Status::FailedPrecondition("no members to remove");
  }
  if (next.empty()) {
    return Status::InvalidArgument("cannot remove every manifest member");
  }
  size_t next_quorum = MajorityOf(next.size());
  if (AliveIn(next) < next_quorum) {
    return Status::FailedPrecondition(
        "surviving configuration would not reach quorum");
  }
  SQP_RETURN_IF_ERROR(EnsureLeader());
  target_members_ = next;
  target_quorum_ = next_quorum;
  joint_added_replica_.reset();

  ManifestLogEntry entry;
  entry.kind = ManifestLogEntry::Kind::kJointConfig;
  entry.config_members = next;
  Status committed = ReplicateEntry(std::move(entry));
  if (!committed.ok()) {
    target_members_.reset();
    target_quorum_ = 0;
    return committed;
  }
  m_config_commits_->Increment();
  SQP_LOG_DEBUG << "manifest: joint config open, removing "
                << leaving.size() << " member(s)";
  return Status::OK();
}

Status ReplicatedManifest::CompleteMembershipChange() {
  if (!target_members_.has_value()) {
    return Status::FailedPrecondition("no membership change in progress");
  }
  SQP_RETURN_IF_ERROR(EnsureLeader());
  ManifestLogEntry entry;
  entry.kind = ManifestLogEntry::Kind::kFinalConfig;
  entry.config_members = *target_members_;
  // The final entry is still committed under the joint rule — both
  // configurations acknowledge the handover.
  SQP_RETURN_IF_ERROR(ReplicateEntry(std::move(entry)));
  members_ = *target_members_;
  quorum_ = target_quorum_;
  target_members_.reset();
  target_quorum_ = 0;
  joint_added_replica_.reset();
  m_config_commits_->Increment();
  // A leader that just left the configuration steps down.
  if (!IsMember(leader_) || !replicas_[leader_].alive) ElectLeader();
  SQP_LOG_DEBUG << "manifest: configuration now " << members_.size()
                << " members, quorum " << quorum_;
  return Status::OK();
}

Status ReplicatedManifest::AbortMembershipChange() {
  if (!target_members_.has_value()) return Status::OK();
  // Close the transition first so the restoring entry commits under the
  // old quorum alone — the old configuration is self-sufficient.
  target_members_.reset();
  target_quorum_ = 0;
  joint_added_replica_.reset();
  Status leader_ok = EnsureLeader();
  if (leader_ok.ok()) {
    // Best-effort history note; the live configuration (members_) is
    // authoritative, so a failed append changes nothing.
    ManifestLogEntry entry;
    entry.kind = ManifestLogEntry::Kind::kFinalConfig;
    entry.config_members = members_;
    (void)ReplicateEntry(std::move(entry));
  }
  SQP_LOG_DEBUG << "manifest: membership change aborted, back to "
                << members_.size() << " members";
  return Status::OK();
}

void ReplicatedManifest::KillReplica(size_t k) {
  if (k >= replicas_.size()) return;
  replicas_[k].alive = false;
}

Status ReplicatedManifest::RecoverFromQuorum() {
  staged_.clear();
  if (target_members_.has_value()) {
    // A crash mid-transition: deterministic rollback. The joint entry
    // may survive in logs as history; the configuration reverts.
    target_members_.reset();
    target_quorum_ = 0;
    joint_added_replica_.reset();
    SQP_LOG_DEBUG << "manifest: in-flight membership change aborted by "
                     "recovery";
  }
  if (alive_members() < quorum_) {
    return Status::DataLoss("manifest quorum lost: " +
                            std::to_string(alive_members()) + " of " +
                            std::to_string(members_.size()) +
                            " members survive, quorum is " +
                            std::to_string(quorum_));
  }
  ElectLeader();
  for (size_t k = 0; k < replicas_.size(); k++) {
    if (k == leader_ || !replicas_[k].alive || !IsParticipant(k)) continue;
    CatchUp(k);
  }
  RebuildCommitted();
  return Status::OK();
}

void ReplicatedManifest::RebuildCommitted() {
  committed_flat_.clear();
  for (const auto& entry : replicas_[leader_].log) {
    if (entry.kind != ManifestLogEntry::Kind::kRecords) continue;
    for (const auto& record : entry.group) {
      committed_flat_.push_back(record);
    }
  }
}

}  // namespace sqp
