// Replicated redo manifest: the metadata log survives node loss.
//
// The single-node Manifest (manifest.h) models one durable file. At
// scale the manifest is the database's root of trust — matview
// registrations and bulk-load commit groups must survive losing any one
// storage node — so the sharded tier replicates it with a minimal
// raft-style log (DESIGN.md §12):
//
//   * one replica per storage node; replica k dies with node k;
//   * a fixed leader appends each commit group as one log entry stamped
//     with its term, then replicates it to every reachable follower
//     (lagging followers are caught up first);
//   * the entry commits only when a quorum (majority by default) holds
//     it; a failed quorum rolls the entry back off every log that took
//     it and the Commit() returns a retryable error;
//   * after a crash or node loss, RecoverFromQuorum() elects the most
//     up-to-date surviving replica as leader (max last-term, then max
//     log length, ties to the lowest id; the term increments), and
//     catches every survivor up with term-checked truncation — a
//     follower entry whose term disagrees with the leader's at the same
//     index is discarded before copying.
//
// No dynamic membership: the replica set is fixed at construction and
// only shrinks (KillReplica). Everything is in-process and
// deterministic; "replication" charges no simulated I/O — the log is
// tiny metadata next to the page traffic it describes.
//
// With one replica (a single-node database) every Commit() trivially
// reaches quorum locally and the class behaves exactly like Manifest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/manifest.h"

namespace sqp {

class Counter;

/// One committed group of manifest records, stamped with the leader
/// term that appended it.
struct ManifestLogEntry {
  uint64_t term = 0;
  std::vector<ManifestRecord> group;
};

class ReplicatedManifest {
 public:
  /// `replicas` logs (one per storage node). `quorum` 0 selects a
  /// majority (replicas/2 + 1).
  explicit ReplicatedManifest(size_t replicas = 1, size_t quorum = 0);

  ReplicatedManifest(const ReplicatedManifest&) = delete;
  ReplicatedManifest& operator=(const ReplicatedManifest&) = delete;

  /// Stage a record (volatile until the next Commit).
  void Append(ManifestRecord record);

  /// Atomically commit every staged record as one log entry, once a
  /// quorum of replicas holds it. On a failed quorum the entry is
  /// rolled back everywhere it landed, the staged records are
  /// discarded, and the retryable kResourceExhausted is returned — the
  /// caller undoes the covered catalog action.
  Status Commit();

  /// Crash: the staged (uncommitted) tail is lost.
  void DropUncommitted() { staged_.clear(); }

  /// Flattened committed record sequence (what FoldManifest consumes).
  const std::vector<ManifestRecord>& committed() const {
    return committed_flat_;
  }
  size_t committed_count() const { return committed_flat_.size(); }
  size_t staged_count() const { return staged_.size(); }

  /// Node k is gone; its manifest replica with it.
  void KillReplica(size_t k);

  /// After a crash or node loss: elect a leader among the survivors and
  /// heal every surviving log. kDataLoss when fewer than `quorum`
  /// replicas survive — the manifest can no longer be trusted.
  Status RecoverFromQuorum();

  size_t replica_count() const { return replicas_.size(); }
  size_t alive_replicas() const;
  size_t quorum() const { return quorum_; }
  size_t leader() const { return leader_; }
  uint64_t term() const { return term_; }
  /// Log length of replica k (tests inspect catch-up behavior).
  size_t log_size(size_t k) const { return replicas_[k].log.size(); }

  uint64_t quorum_failures() const { return quorum_failures_; }

 private:
  struct Replica {
    std::vector<ManifestLogEntry> log;
    bool alive = true;
    /// Fault point gating replication to this replica
    /// ("node<k>.manifest.replicate").
    std::string replicate_point;
    /// Shared with the storage node ("node<k>.partition").
    std::string partition_point;
  };

  /// Most up-to-date alive replica: max last term, then max log length,
  /// ties to the lowest id. replicas_.size() when none is alive.
  size_t MostUpToDate() const;

  /// Bump the term and install the most up-to-date survivor as leader.
  void ElectLeader();

  /// Copy leader entries the follower is missing, after term-checked
  /// truncation of any divergent suffix.
  void CatchUp(size_t k);

  void RebuildCommitted();

  std::vector<Replica> replicas_;
  size_t quorum_;
  size_t leader_ = 0;
  uint64_t term_ = 1;
  std::vector<ManifestRecord> staged_;
  std::vector<ManifestRecord> committed_flat_;
  uint64_t quorum_failures_ = 0;
  Counter* m_commits_;
  Counter* m_quorum_failures_;
  Counter* m_elections_;
  Counter* m_catchup_entries_;
  Counter* m_truncated_entries_;
};

}  // namespace sqp
