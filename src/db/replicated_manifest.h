// Replicated redo manifest: the metadata log survives node loss.
//
// The single-node Manifest (manifest.h) models one durable file. At
// scale the manifest is the database's root of trust — matview
// registrations and bulk-load commit groups must survive losing any one
// storage node — so the sharded tier replicates it with a minimal
// raft-style log (DESIGN.md §12–13):
//
//   * one replica per storage node; replica k dies with node k;
//   * a fixed leader appends each commit group as one log entry stamped
//     with its term, then replicates it to every reachable follower
//     (lagging followers are caught up first);
//   * the entry commits only when a quorum (majority by default) holds
//     it; a failed quorum rolls the entry back off every log that took
//     it and the Commit() returns a retryable error;
//   * after a crash or node loss, RecoverFromQuorum() elects the most
//     up-to-date surviving member as leader (max last-term, then max
//     log length, ties to the lowest id; the term increments), and
//     catches every survivor up with term-checked truncation — a
//     follower entry whose term disagrees with the leader's at the same
//     index is discarded before copying.
//
// Membership is dynamic, changed with a two-phase joint-consensus
// transition in raft's style: BeginAddReplica/BeginRemoveReplicas
// commit a joint-configuration entry, after which *every* commit —
// including the final-configuration entry that ends the transition —
// must be acked by a quorum of BOTH the old and the new configuration.
// A failed joint quorum (including the "membership.jointcommit" fault
// point) rolls the entry back and the transition can be deterministically
// aborted back to the old configuration with AbortMembershipChange();
// a crash mid-transition aborts it in RecoverFromQuorum(). Replica
// slots are never reused: an aborted add leaves a dead, non-member
// slot so replica ids stay aligned with storage-node ids.
//
// Everything is in-process and deterministic; "replication" charges no
// simulated I/O — the log is tiny metadata next to the page traffic it
// describes.
//
// With one replica (a single-node database) every Commit() trivially
// reaches quorum locally and the class behaves exactly like Manifest.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/manifest.h"

namespace sqp {

class Counter;

/// One log entry, stamped with the leader term that appended it:
/// either a committed group of manifest records or a configuration
/// change (joint or final).
struct ManifestLogEntry {
  enum class Kind { kRecords, kJointConfig, kFinalConfig };

  uint64_t term = 0;
  Kind kind = Kind::kRecords;
  std::vector<ManifestRecord> group;
  /// kJointConfig/kFinalConfig: the proposed member set.
  std::vector<size_t> config_members;
};

class ReplicatedManifest {
 public:
  /// `replicas` logs (one per storage node), all initially members.
  /// `quorum` 0 selects a majority (replicas/2 + 1).
  explicit ReplicatedManifest(size_t replicas = 1, size_t quorum = 0);

  ReplicatedManifest(const ReplicatedManifest&) = delete;
  ReplicatedManifest& operator=(const ReplicatedManifest&) = delete;

  /// Stage a record (volatile until the next Commit).
  void Append(ManifestRecord record);

  /// Atomically commit every staged record as one log entry, once a
  /// quorum of members holds it (during a membership transition: a
  /// quorum of both the old and the new configuration). On a failed
  /// quorum the entry is rolled back everywhere it landed, the staged
  /// records are discarded, and the retryable kResourceExhausted is
  /// returned — the caller undoes the covered catalog action.
  Status Commit();

  /// Crash: the staged (uncommitted) tail is lost.
  void DropUncommitted() { staged_.clear(); }

  /// Flattened committed record sequence (what FoldManifest consumes).
  const std::vector<ManifestRecord>& committed() const {
    return committed_flat_;
  }
  size_t committed_count() const { return committed_flat_.size(); }
  size_t staged_count() const { return staged_.size(); }

  // ------------------------------------------------------ membership
  /// Phase 1 of adding a member: create the replica slot (id ==
  /// replica_count()) and commit the joint configuration under both
  /// quorums. On failure the slot is removed again and the retryable
  /// error returned; on success the transition is open until
  /// CompleteMembershipChange/AbortMembershipChange.
  Result<size_t> BeginAddReplica();

  /// Phase 1 of removing members (non-members in `leaving` are
  /// ignored). kFailedPrecondition when the surviving configuration
  /// could not reach its own quorum, or a transition is already open.
  Status BeginRemoveReplicas(const std::vector<size_t>& leaving);

  /// Phase 2: commit the final configuration (still under the joint
  /// rule) and switch to it. The transition stays open on failure so
  /// the caller can retry or abort.
  Status CompleteMembershipChange();

  /// Deterministic rollback to the old configuration. Never fails;
  /// a best-effort final entry restoring the old config is appended
  /// under the old quorum alone. No-op without an open transition.
  Status AbortMembershipChange();

  bool in_joint_transition() const { return target_members_.has_value(); }
  bool IsMember(size_t k) const;
  size_t member_count() const { return members_.size(); }
  /// Alive members of the current configuration.
  size_t alive_members() const;
  /// Members whose replica is dead (their node was killed) — the set
  /// Repair() removes from the configuration.
  std::vector<size_t> DeadMembers() const;
  /// Would killing node k's replica drop the current (or, mid-
  /// transition, the target) configuration below quorum?
  bool WouldBreakQuorum(size_t k) const;

  /// Node k is gone; its manifest replica with it.
  void KillReplica(size_t k);

  /// After a crash or node loss: abort any in-flight membership
  /// transition, elect a leader among the surviving members and heal
  /// every surviving log. kDataLoss when fewer than `quorum` members
  /// survive — the manifest can no longer be trusted.
  Status RecoverFromQuorum();

  size_t replica_count() const { return replicas_.size(); }
  /// Alive members (historical name; non-member slots don't count).
  size_t alive_replicas() const { return alive_members(); }
  size_t quorum() const { return quorum_; }
  size_t leader() const { return leader_; }
  uint64_t term() const { return term_; }
  /// Log length of replica k (tests inspect catch-up behavior).
  size_t log_size(size_t k) const { return replicas_[k].log.size(); }

  uint64_t quorum_failures() const { return quorum_failures_; }

 private:
  struct Replica {
    std::vector<ManifestLogEntry> log;
    bool alive = true;
    /// Fault point gating replication to this replica
    /// ("node<k>.manifest.replicate").
    std::string replicate_point;
    /// Shared with the storage node ("node<k>.partition").
    std::string partition_point;
  };

  /// Is k a voter: current member, or member of the open target config.
  bool IsParticipant(size_t k) const;
  size_t AliveIn(const std::vector<size_t>& config) const;

  /// Most up-to-date alive participant: max last term, then max log
  /// length, ties to the lowest id. replicas_.size() when none.
  size_t MostUpToDate() const;

  /// Bump the term and install the most up-to-date survivor as leader.
  void ElectLeader();

  /// Fail over if the leader's replica died or left the configuration.
  /// kDataLoss when no electable quorum remains.
  Status EnsureLeader();

  /// Append `entry` to the leader, replicate to reachable participants,
  /// and enforce the (joint) quorum rule; rolls the entry back off
  /// every log on failure. Also checks "membership.jointcommit" while
  /// a transition is open.
  Status ReplicateEntry(ManifestLogEntry entry);

  /// Grow replicas_ by one slot with its fault-point names.
  void AddReplicaSlot();

  /// Copy leader entries the follower is missing, after term-checked
  /// truncation of any divergent suffix.
  void CatchUp(size_t k);

  void RebuildCommitted();

  std::vector<Replica> replicas_;
  /// Current committed configuration (sorted replica ids) + quorum.
  std::vector<size_t> members_;
  size_t quorum_;
  /// Open membership transition: proposed config + its quorum.
  std::optional<std::vector<size_t>> target_members_;
  size_t target_quorum_ = 0;
  /// Slot created by an open BeginAddReplica (for rollback accounting).
  std::optional<size_t> joint_added_replica_;
  size_t leader_ = 0;
  uint64_t term_ = 1;
  std::vector<ManifestRecord> staged_;
  std::vector<ManifestRecord> committed_flat_;
  uint64_t quorum_failures_ = 0;
  Counter* m_commits_;
  Counter* m_quorum_failures_;
  Counter* m_elections_;
  Counter* m_catchup_entries_;
  Counter* m_truncated_entries_;
  Counter* m_config_commits_;
};

}  // namespace sqp
