// Redo manifest: the database's durable metadata log.
//
// The paper's speculation subsystem sits on a real DBMS whose committed
// state survives failures while speculative materializations are
// disposable (§3.1). Our simulated engine reproduces that contract with
// a small ARIES-flavoured redo log of *metadata* operations: DDL, bulk
// load completion, index/histogram creation, materialized-view
// registration, and drops. Page contents are made durable by
// DiskManager::Sync() *before* the covering manifest record commits
// (write-ahead discipline), so a committed record always describes
// pages whose bytes — and checksums — are already on disk.
//
// Records are staged with Append() and become durable atomically with
// Commit(): a crash discards the staged tail but never splits a commit
// group. Database::Reopen() folds the committed records into the final
// logical state and rebuilds catalog/views from it; live disk pages not
// referenced by any recovered table are orphans (half-built speculative
// materializations) and are garbage-collected.
//
// The manifest lives in memory but models a durable file: it survives
// DiskManager::SimulateCrash() untouched except for its staged tail.
#pragma once

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "optimizer/query_graph.h"
#include "storage/page.h"

namespace sqp {

enum class ManifestRecordType {
  kCreateTable,      // table, schema, is_materialized
  kBulkLoadCommit,   // table, pages, tuple_count (cumulative)
  kCreateIndex,      // table, column
  kDropIndex,        // table, column
  kCreateHistogram,  // table, column
  kDropHistogram,    // table, column
  kRegisterView,     // table, view_definition
  kDropTable,        // table (also drops its indexes/histograms/view)
  kShardMove,        // shard, target_node (slot re-homed by rebalance)
  kRepair,           // table carries a note (re-protection marker)
};

struct ManifestRecord {
  ManifestRecordType type = ManifestRecordType::kCreateTable;
  std::string table;
  std::string column;
  Schema schema;
  bool is_materialized = false;
  std::vector<page_id_t> pages;
  uint64_t tuple_count = 0;
  QueryGraph view_definition;
  /// kShardMove: which slot moved and where it now lives.
  uint64_t shard = 0;
  uint32_t target_node = 0;

  static ManifestRecord CreateTable(std::string table, Schema schema,
                                    bool is_materialized);
  static ManifestRecord BulkLoadCommit(std::string table,
                                       std::vector<page_id_t> pages,
                                       uint64_t tuple_count);
  static ManifestRecord CreateIndex(std::string table, std::string column);
  static ManifestRecord DropIndex(std::string table, std::string column);
  static ManifestRecord CreateHistogram(std::string table,
                                        std::string column);
  static ManifestRecord DropHistogram(std::string table, std::string column);
  static ManifestRecord RegisterView(std::string table,
                                     QueryGraph definition);
  static ManifestRecord DropTable(std::string table);
  static ManifestRecord ShardMove(uint64_t shard, uint32_t target_node);
  static ManifestRecord Repair(std::string note);
};

class Manifest {
 public:
  /// Stage a record (volatile until the next Commit).
  void Append(ManifestRecord record);

  /// Atomically make every staged record durable. All-or-nothing with
  /// respect to a crash.
  void Commit();

  /// Crash: the staged (uncommitted) tail is lost.
  void DropUncommitted() { staged_.clear(); }

  const std::vector<ManifestRecord>& committed() const { return records_; }
  size_t committed_count() const { return records_.size(); }
  size_t staged_count() const { return staged_.size(); }

 private:
  std::vector<ManifestRecord> records_;  // durable prefix
  std::vector<ManifestRecord> staged_;   // volatile commit group
};

/// Final logical state after folding a committed record sequence:
/// exactly what Reopen() must rebuild.
struct ManifestTableState {
  Schema schema;
  bool is_materialized = false;
  std::vector<page_id_t> pages;
  uint64_t tuple_count = 0;
  std::vector<std::string> index_columns;
  std::vector<std::string> histogram_columns;
  bool has_view = false;
  QueryGraph view_definition;
};

struct ManifestFoldResult {
  /// Insertion-ordered (creation order) surviving tables.
  std::vector<std::pair<std::string, ManifestTableState>> tables;
};

/// Fold committed records front to back: later records supersede
/// earlier ones; a kDropTable erases the table and everything hanging
/// off it (mirroring Catalog::DropTable).
ManifestFoldResult FoldManifest(const std::vector<ManifestRecord>& records);

}  // namespace sqp
