#include "db/manifest.h"

#include <algorithm>

namespace sqp {

ManifestRecord ManifestRecord::CreateTable(std::string table, Schema schema,
                                           bool is_materialized) {
  ManifestRecord r;
  r.type = ManifestRecordType::kCreateTable;
  r.table = std::move(table);
  r.schema = std::move(schema);
  r.is_materialized = is_materialized;
  return r;
}

ManifestRecord ManifestRecord::BulkLoadCommit(std::string table,
                                              std::vector<page_id_t> pages,
                                              uint64_t tuple_count) {
  ManifestRecord r;
  r.type = ManifestRecordType::kBulkLoadCommit;
  r.table = std::move(table);
  r.pages = std::move(pages);
  r.tuple_count = tuple_count;
  return r;
}

ManifestRecord ManifestRecord::CreateIndex(std::string table,
                                           std::string column) {
  ManifestRecord r;
  r.type = ManifestRecordType::kCreateIndex;
  r.table = std::move(table);
  r.column = std::move(column);
  return r;
}

ManifestRecord ManifestRecord::DropIndex(std::string table,
                                         std::string column) {
  ManifestRecord r;
  r.type = ManifestRecordType::kDropIndex;
  r.table = std::move(table);
  r.column = std::move(column);
  return r;
}

ManifestRecord ManifestRecord::CreateHistogram(std::string table,
                                               std::string column) {
  ManifestRecord r;
  r.type = ManifestRecordType::kCreateHistogram;
  r.table = std::move(table);
  r.column = std::move(column);
  return r;
}

ManifestRecord ManifestRecord::DropHistogram(std::string table,
                                             std::string column) {
  ManifestRecord r;
  r.type = ManifestRecordType::kDropHistogram;
  r.table = std::move(table);
  r.column = std::move(column);
  return r;
}

ManifestRecord ManifestRecord::RegisterView(std::string table,
                                            QueryGraph definition) {
  ManifestRecord r;
  r.type = ManifestRecordType::kRegisterView;
  r.table = std::move(table);
  r.view_definition = std::move(definition);
  return r;
}

ManifestRecord ManifestRecord::DropTable(std::string table) {
  ManifestRecord r;
  r.type = ManifestRecordType::kDropTable;
  r.table = std::move(table);
  return r;
}

ManifestRecord ManifestRecord::ShardMove(uint64_t shard,
                                         uint32_t target_node) {
  ManifestRecord r;
  r.type = ManifestRecordType::kShardMove;
  r.shard = shard;
  r.target_node = target_node;
  return r;
}

ManifestRecord ManifestRecord::Repair(std::string note) {
  ManifestRecord r;
  r.type = ManifestRecordType::kRepair;
  r.table = std::move(note);
  return r;
}

void Manifest::Append(ManifestRecord record) {
  staged_.push_back(std::move(record));
}

void Manifest::Commit() {
  records_.insert(records_.end(),
                  std::make_move_iterator(staged_.begin()),
                  std::make_move_iterator(staged_.end()));
  staged_.clear();
}

namespace {
void AddOnce(std::vector<std::string>& columns, const std::string& column) {
  if (std::find(columns.begin(), columns.end(), column) == columns.end()) {
    columns.push_back(column);
  }
}

void RemoveColumn(std::vector<std::string>& columns,
                  const std::string& column) {
  columns.erase(std::remove(columns.begin(), columns.end(), column),
                columns.end());
}
}  // namespace

ManifestFoldResult FoldManifest(const std::vector<ManifestRecord>& records) {
  ManifestFoldResult out;
  auto find = [&](const std::string& table) -> ManifestTableState* {
    for (auto& [name, state] : out.tables) {
      if (name == table) return &state;
    }
    return nullptr;
  };
  for (const ManifestRecord& r : records) {
    switch (r.type) {
      case ManifestRecordType::kCreateTable: {
        ManifestTableState state;
        state.schema = r.schema;
        state.is_materialized = r.is_materialized;
        out.tables.emplace_back(r.table, std::move(state));
        break;
      }
      case ManifestRecordType::kBulkLoadCommit:
        if (ManifestTableState* state = find(r.table)) {
          state->pages = r.pages;
          state->tuple_count = r.tuple_count;
        }
        break;
      case ManifestRecordType::kCreateIndex:
        if (ManifestTableState* state = find(r.table)) {
          AddOnce(state->index_columns, r.column);
        }
        break;
      case ManifestRecordType::kDropIndex:
        if (ManifestTableState* state = find(r.table)) {
          RemoveColumn(state->index_columns, r.column);
        }
        break;
      case ManifestRecordType::kCreateHistogram:
        if (ManifestTableState* state = find(r.table)) {
          AddOnce(state->histogram_columns, r.column);
        }
        break;
      case ManifestRecordType::kDropHistogram:
        if (ManifestTableState* state = find(r.table)) {
          RemoveColumn(state->histogram_columns, r.column);
        }
        break;
      case ManifestRecordType::kRegisterView:
        if (ManifestTableState* state = find(r.table)) {
          state->has_view = true;
          state->view_definition = r.view_definition;
        }
        break;
      case ManifestRecordType::kDropTable:
        for (auto it = out.tables.begin(); it != out.tables.end(); ++it) {
          if (it->first == r.table) {
            out.tables.erase(it);
            break;
          }
        }
        break;
      case ManifestRecordType::kShardMove:
      case ManifestRecordType::kRepair:
        // Placement history, not table state: the router's placement
        // journal is authoritative; these records only document the
        // commit points of membership/repair work.
        break;
    }
  }
  return out;
}

}  // namespace sqp
