#include "sim/sim_server.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/metrics_registry.h"
#include "common/metrics_timeline.h"

namespace sqp {

SimServer::SimServer(size_t lanes) : lanes_(std::max<size_t>(1, lanes)) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  m_submitted_ = registry.GetCounter("sim.jobs_submitted");
  m_cancelled_ = registry.GetCounter("sim.jobs_cancelled");
  m_completed_ = registry.GetCounter("sim.jobs_completed");
  registry.GetGauge("sim.active_jobs");
}

SimServer::JobId SimServer::Submit(double work, size_t lane) {
  assert(work >= 0);
  JobId id = next_id_++;
  if (work <= 0) {
    completed_[id] = now_;
    m_completed_->Increment();
  } else {
    active_[id] = Job{work, lane % lanes_};
  }
  m_submitted_->Increment();
  return id;
}

void SimServer::Cancel(JobId id) {
  if (active_.erase(id) > 0) m_cancelled_->Increment();
}

double SimServer::CompletionTime(JobId id) const {
  auto it = completed_.find(id);
  assert(it != completed_.end() && "CompletionTime of incomplete job");
  return it->second;
}

size_t SimServer::LaneCount(size_t lane) const {
  size_t count = 0;
  for (const auto& [id, job] : active_) {
    if (job.lane == lane) count++;
  }
  return count;
}

double SimServer::NextCompletionTime() const {
  if (active_.empty()) return kNever;
  // Each lane is its own processor-sharing queue: a job with r seconds
  // left in a lane with k active jobs finishes in r·k wall seconds.
  std::vector<double> min_rem(lanes_, kNever);
  std::vector<size_t> count(lanes_, 0);
  for (const auto& [id, job] : active_) {
    count[job.lane]++;
    if (job.remaining < min_rem[job.lane]) min_rem[job.lane] = job.remaining;
  }
  double next = kNever;
  for (size_t lane = 0; lane < lanes_; lane++) {
    if (count[lane] == 0) continue;
    double done = now_ + min_rem[lane] * static_cast<double>(count[lane]);
    if (done < next) next = done;
  }
  return next;
}

void SimServer::AdvanceTo(double t) {
  assert(t >= now_ - 1e-9);
  // Phase 1: process every completion that happens at or before `t`,
  // including ties (several jobs reaching zero in the same instant) and
  // completions landing exactly at the current time.
  while (!active_.empty()) {
    double next_done = NextCompletionTime();
    if (next_done > t + 1e-12) break;
    double dt = std::max(0.0, next_done - now_);
    std::vector<size_t> count(lanes_, 0);
    for (const auto& [id, job] : active_) count[job.lane]++;
    for (size_t lane = 0; lane < lanes_; lane++) {
      if (count[lane] > 0) delivered_ += dt;
    }
    now_ = std::max(now_, next_done);
    std::vector<JobId> done;
    for (auto& [id, job] : active_) {
      job.remaining -= dt / static_cast<double>(count[job.lane]);
      if (job.remaining <= 1e-9) done.push_back(id);
    }
    assert(!done.empty());
    for (JobId id : done) {
      active_.erase(id);
      completed_[id] = now_;
      m_completed_->Increment();
    }
    // Sample between completion batches: the tick sees the registry as
    // of this batch's simulated instant, so the timeline resolves job
    // churn inside one AdvanceTo call.
    if (timeline_ != nullptr) {
      MetricsRegistry::Global()
          .GetGauge("sim.active_jobs")
          ->Set(static_cast<double>(active_.size()));
      timeline_->AdvanceTo(now_);
    }
  }
  // Phase 2: burn the remaining interval without completions.
  if (t > now_) {
    if (!active_.empty()) {
      double dt = t - now_;
      std::vector<size_t> count(lanes_, 0);
      for (const auto& [id, job] : active_) count[job.lane]++;
      for (size_t lane = 0; lane < lanes_; lane++) {
        if (count[lane] > 0) delivered_ += dt;
      }
      for (auto& [id, job] : active_) {
        job.remaining -= dt / static_cast<double>(count[job.lane]);
      }
    }
    now_ = t;
  }
  if (timeline_ != nullptr) {
    MetricsRegistry::Global()
        .GetGauge("sim.active_jobs")
        ->Set(static_cast<double>(active_.size()));
    timeline_->AdvanceTo(now_);
  }
}

double SimServer::RunUntilComplete(JobId id) {
  assert(IsActive(id) || IsComplete(id));
  while (IsActive(id)) {
    double next = NextCompletionTime();
    assert(next < kNever);
    AdvanceTo(next);
  }
  return CompletionTime(id);
}

}  // namespace sqp
