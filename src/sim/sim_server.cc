#include "sim/sim_server.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/metrics_registry.h"

namespace sqp {

SimServer::SimServer() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  m_submitted_ = registry.GetCounter("sim.jobs_submitted");
  m_cancelled_ = registry.GetCounter("sim.jobs_cancelled");
  m_completed_ = registry.GetCounter("sim.jobs_completed");
}

SimServer::JobId SimServer::Submit(double work) {
  assert(work >= 0);
  JobId id = next_id_++;
  if (work <= 0) {
    completed_[id] = now_;
    m_completed_->Increment();
  } else {
    active_[id] = work;
  }
  m_submitted_->Increment();
  return id;
}

void SimServer::Cancel(JobId id) {
  if (active_.erase(id) > 0) m_cancelled_->Increment();
}

double SimServer::CompletionTime(JobId id) const {
  auto it = completed_.find(id);
  assert(it != completed_.end() && "CompletionTime of incomplete job");
  return it->second;
}

double SimServer::NextCompletionTime() const {
  if (active_.empty()) return kNever;
  double min_rem = kNever;
  for (const auto& [id, rem] : active_) {
    if (rem < min_rem) min_rem = rem;
  }
  return now_ + min_rem * static_cast<double>(active_.size());
}

void SimServer::AdvanceTo(double t) {
  assert(t >= now_ - 1e-9);
  // Phase 1: process every completion that happens at or before `t`,
  // including ties (several jobs reaching zero in the same instant) and
  // completions landing exactly at the current time.
  while (!active_.empty()) {
    double next_done = NextCompletionTime();
    if (next_done > t + 1e-12) break;
    double dt = std::max(0.0, next_done - now_);
    double progress = dt / static_cast<double>(active_.size());
    delivered_ += dt;
    now_ = std::max(now_, next_done);
    std::vector<JobId> done;
    for (auto& [id, rem] : active_) {
      rem -= progress;
      if (rem <= 1e-9) done.push_back(id);
    }
    assert(!done.empty());
    for (JobId id : done) {
      active_.erase(id);
      completed_[id] = now_;
      m_completed_->Increment();
    }
  }
  // Phase 2: burn the remaining interval without completions.
  if (t > now_) {
    if (!active_.empty()) {
      double dt = t - now_;
      delivered_ += dt;
      double progress = dt / static_cast<double>(active_.size());
      for (auto& [id, rem] : active_) rem -= progress;
    }
    now_ = t;
  }
}

double SimServer::RunUntilComplete(JobId id) {
  assert(IsActive(id) || IsComplete(id));
  while (IsActive(id)) {
    double next = NextCompletionTime();
    assert(next < kNever);
    AdvanceTo(next);
  }
  return CompletionTime(id);
}

}  // namespace sqp
