// Discrete-event, processor-sharing server model.
//
// Replays need a notion of concurrent work: asynchronous speculative
// manipulations run while the user thinks, and in the multi-user
// experiment (paper §6.3) three users' queries and manipulations compete
// for the same server. We model the server as a processor-sharing queue:
// k active jobs each progress at rate 1/k. A job's `work` is the
// simulated seconds it would take alone (measured by executing it against
// the database); contention stretches its completion time.
//
// On a multi-node storage tier the server has one *lane* per node
// (DESIGN.md §14): jobs contend only within their lane, so work homed
// on different nodes proceeds in parallel instead of sharing one
// capacity pool. A single-lane server (the default) reproduces the
// classic shared-queue model bit for bit.
//
// Side effects of a job (tables created, buffer-pool state) are applied
// eagerly when the job is created; the simulator only schedules *when*
// the job counts as complete. Cancelled materializations must have their
// side effects rolled back by the caller (the speculation engine drops
// the half-built table).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>

namespace sqp {

class Counter;
class MetricsTimeline;

class SimServer {
 public:
  using JobId = uint64_t;
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  /// `lanes`: independent processor-sharing queues, one per storage
  /// node (1 = the classic single shared server).
  explicit SimServer(size_t lanes = 1);

  /// Submit a job needing `work` seconds at full capacity; starts now.
  /// `lane` picks the queue (the job's home node); out-of-range lanes
  /// wrap, so callers can pass a node id unchecked.
  JobId Submit(double work, size_t lane = 0);

  /// Remove an active job (no effect on completed/unknown ids).
  void Cancel(JobId id);

  bool IsActive(JobId id) const { return active_.count(id) > 0; }
  bool IsComplete(JobId id) const { return completed_.count(id) > 0; }

  /// Remaining work (full-capacity seconds) of an active job — the
  /// "remaining time to completion" feedback of paper §7. 0 when the
  /// job is complete or unknown.
  double RemainingWork(JobId id) const {
    auto it = active_.find(id);
    return it == active_.end() ? 0.0 : it->second.remaining;
  }

  /// Completion time of a completed job.
  double CompletionTime(JobId id) const;

  /// Advance simulated time to `t` (>= now), progressing active jobs
  /// under equal sharing and completing those that finish by `t`.
  void AdvanceTo(double t);

  /// Run until `id` completes and return the completion time. Other
  /// active jobs progress concurrently.
  double RunUntilComplete(JobId id);

  /// Earliest completion time among active jobs, or kNever.
  double NextCompletionTime() const;

  double now() const { return now_; }
  size_t active_jobs() const { return active_.size(); }
  size_t lanes() const { return lanes_; }

  /// Total simulated seconds of service delivered (for utilization;
  /// each busy lane delivers at unit rate, so with l busy lanes the
  /// tally grows at l× wall time).
  double delivered_work() const { return delivered_; }

  /// Attach a telemetry sampler (DESIGN.md §16): AdvanceTo drives it
  /// from the same clock the engine advances on — after every
  /// completion batch and at the target time — so ticks interleave
  /// with job completions deterministically. Null detaches.
  void set_timeline(MetricsTimeline* timeline) { timeline_ = timeline; }
  MetricsTimeline* timeline() const { return timeline_; }

 private:
  struct Job {
    double remaining = 0;  // full-capacity seconds left
    size_t lane = 0;
  };

  /// Active jobs in `lane` (its current processor-sharing degree).
  size_t LaneCount(size_t lane) const;

  size_t lanes_ = 1;
  double now_ = 0;
  JobId next_id_ = 1;
  std::map<JobId, Job> active_;
  std::map<JobId, double> completed_;  // id -> completion time
  double delivered_ = 0;
  MetricsTimeline* timeline_ = nullptr;
  // Registry handles (DESIGN.md §9), looked up once at construction.
  Counter* m_submitted_;
  Counter* m_cancelled_;
  Counter* m_completed_;
};

}  // namespace sqp
