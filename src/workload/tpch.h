// TPC-H subset schema (paper §4.2): six tables — part, supplier,
// partsupp, customer, orders, lineitem — mutually connected through
// foreign keys, populated with highly skewed data in the fields likely
// to appear in selections, and supported by indexes and histograms on
// all skewed and foreign-key fields.
//
// Scales: the paper used 100 MB / 500 MB / 1 GB. We use row-count scale
// factors whose *ratios* to the buffer pool match the paper's regime
// (see DESIGN.md §2); kSmall ≈ 3× the experiment buffer pool.
#pragma once

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "optimizer/query_graph.h"

namespace sqp {
namespace tpch {

enum class Scale { kSmall = 0, kMedium = 1, kLarge = 2 };

const char* ScaleName(Scale scale);

/// Paper-equivalent label for reports ("100MB", "500MB", "1GB").
const char* ScalePaperLabel(Scale scale);

struct TableSizes {
  uint64_t part;
  uint64_t supplier;
  uint64_t partsupp;
  uint64_t customer;
  uint64_t orders;
  uint64_t lineitem;

  uint64_t total() const {
    return part + supplier + partsupp + customer + orders + lineitem;
  }
};

TableSizes SizesForScale(Scale scale);

/// The six table names, in load order.
const std::vector<std::string>& TableNames();

Schema SchemaFor(const std::string& table);

/// Foreign-key join edges users may draw on. A template may carry two
/// edges (the composite lineitem–partsupp join).
struct JoinTemplate {
  std::vector<JoinPred> edges;
  std::string name;
};
const std::vector<JoinTemplate>& FkJoinTemplates();

/// Columns that user selections target, with their value domains.
struct SelectionColumn {
  std::string table;
  std::string column;
  TypeId type = TypeId::kInt64;
  // Numeric domain [lo, hi] (ints or doubles); for strings, the values.
  double lo = 0;
  double hi = 0;
  std::vector<std::string> string_values;
  /// Zipf rank count the data generator used for this column (0 =
  /// uniformly distributed). Lets the user model invert the CDF when
  /// drawing predicate constants with a target selectivity.
  uint64_t zipf_n = 0;
};
const std::vector<SelectionColumn>& SelectionColumns();

/// Approximate value v such that P(column <= v) ≈ p under the
/// generator's distribution (Zipf-over-slices with kSkewTheta, or
/// uniform when zipf_n == 0). Numeric columns only.
double ColumnQuantile(const SelectionColumn& column, double p);

/// The Zipf exponent the data generator uses (kept in one place so the
/// quantile inversion stays consistent with LoadOptions::skew_theta).
inline constexpr double kSkewTheta = 0.85;

/// (table, column) pairs that get indexes and histograms at load time —
/// "all skewed fields and foreign key fields" (§4.2).
const std::vector<std::pair<std::string, std::string>>& IndexedColumns();

/// The key/foreign-key subset of IndexedColumns() (always prepared).
const std::vector<std::pair<std::string, std::string>>& KeyColumns();

}  // namespace tpch
}  // namespace sqp
