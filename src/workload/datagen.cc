#include "workload/datagen.h"

#include <cmath>

namespace sqp {
namespace tpch {

namespace {

/// Skewed draw from a numeric domain: Zipf over a discretized range so a
/// few values dominate — the "certain trends and patterns" of §4.1.
double SkewedNumeric(Rng& rng, ZipfGenerator& zipf, double lo, double hi) {
  uint64_t bucket = zipf.Next(rng);
  double width = (hi - lo) / static_cast<double>(zipf.n());
  return lo + (static_cast<double>(bucket) + rng.NextDouble()) * width;
}

int64_t SkewedInt(Rng& rng, ZipfGenerator& zipf, int64_t lo, int64_t hi) {
  // Map zipf rank r onto an equal slice of the domain (rank 0 -> the
  // low end), uniform within the slice, so low values are popular and
  // the whole domain is covered.
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  uint64_t bucket = zipf.Next(rng);
  uint64_t slice = std::max<uint64_t>(1, span / zipf.n());
  uint64_t base = bucket * span / zipf.n();
  int64_t v = lo + static_cast<int64_t>(base + rng.NextRange(slice));
  return std::min(v, hi);
}

}  // namespace

Status LoadTpch(Database* db, const LoadOptions& options) {
  TableSizes sizes = SizesForScale(options.scale);
  Rng rng(options.seed);
  ZipfGenerator zipf50(50, options.skew_theta);
  ZipfGenerator zipf100(100, options.skew_theta);

  for (const auto& table : TableNames()) {
    SQP_RETURN_IF_ERROR(db->CreateTable(table, SchemaFor(table)));
  }

  const char* mfgrs[] = {"MFGR#1", "MFGR#2", "MFGR#3", "MFGR#4", "MFGR#5"};
  const char* segments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                            "HOUSEHOLD", "MACHINERY"};
  ZipfGenerator zipf5(5, options.skew_theta);

  // part
  {
    std::vector<Tuple> rows;
    rows.reserve(sizes.part);
    for (uint64_t i = 1; i <= sizes.part; i++) {
      rows.push_back(Tuple{
          Value(static_cast<int64_t>(i)),
          Value(SkewedInt(rng, zipf50, 1, 50)),
          Value(SkewedNumeric(rng, zipf100, 900, 2100)),
          Value(std::string(mfgrs[zipf5.Next(rng)])),
      });
    }
    SQP_RETURN_IF_ERROR(db->BulkLoad("part", rows));
  }

  // supplier
  {
    std::vector<Tuple> rows;
    rows.reserve(sizes.supplier);
    for (uint64_t i = 1; i <= sizes.supplier; i++) {
      rows.push_back(Tuple{
          Value(static_cast<int64_t>(i)),
          Value(rng.NextInt(0, 24)),
          Value(SkewedNumeric(rng, zipf100, -1000, 10000)),
      });
    }
    SQP_RETURN_IF_ERROR(db->BulkLoad("supplier", rows));
  }

  // partsupp: 4 suppliers per part.
  {
    std::vector<Tuple> rows;
    rows.reserve(sizes.partsupp);
    for (uint64_t p = 1; p <= sizes.part; p++) {
      for (int k = 0; k < 4; k++) {
        uint64_t supp =
            1 + (p + static_cast<uint64_t>(k) * (sizes.supplier / 4 + 1)) %
                    sizes.supplier;
        rows.push_back(Tuple{
            Value(static_cast<int64_t>(p)),
            Value(static_cast<int64_t>(supp)),
            Value(SkewedInt(rng, zipf100, 1, 10000)),
            Value(SkewedNumeric(rng, zipf100, 1, 1000)),
        });
      }
    }
    SQP_RETURN_IF_ERROR(db->BulkLoad("partsupp", rows));
  }

  // customer
  {
    std::vector<Tuple> rows;
    rows.reserve(sizes.customer);
    for (uint64_t i = 1; i <= sizes.customer; i++) {
      rows.push_back(Tuple{
          Value(static_cast<int64_t>(i)),
          Value(rng.NextInt(0, 24)),
          Value(SkewedNumeric(rng, zipf100, -1000, 10000)),
          Value(std::string(segments[zipf5.Next(rng)])),
      });
    }
    SQP_RETURN_IF_ERROR(db->BulkLoad("customer", rows));
  }

  // orders: 10 per customer, skewed dates and totals.
  ZipfGenerator zipf_date(256, options.skew_theta);
  {
    std::vector<Tuple> rows;
    rows.reserve(sizes.orders);
    uint64_t key = 1;
    for (uint64_t c = 1; c <= sizes.customer; c++) {
      for (int k = 0; k < 10; k++) {
        int64_t date =
            static_cast<int64_t>(zipf_date.Next(rng)) * 10 +
            rng.NextInt(0, 9);  // 0..2559, clustered toward low ranks
        rows.push_back(Tuple{
            Value(static_cast<int64_t>(key++)),
            Value(static_cast<int64_t>(c)),
            Value(SkewedNumeric(rng, zipf100, 1000, 500000)),
            Value(std::min<int64_t>(date, 2555)),
        });
      }
    }
    SQP_RETURN_IF_ERROR(db->BulkLoad("orders", rows));
  }

  // lineitem: 4 per order.
  {
    std::vector<Tuple> rows;
    rows.reserve(sizes.lineitem);
    for (uint64_t o = 1; o <= sizes.orders; o++) {
      for (int k = 0; k < 4; k++) {
        int64_t partkey = SkewedInt(rng, zipf100, 1, 100);
        // Mix skewed popular parts with uniform tail.
        if (rng.NextBool(0.5)) {
          partkey = rng.NextInt(1, static_cast<int64_t>(sizes.part));
        }
        // Suppliers of this part in partsupp share its residue classes.
        uint64_t which = rng.NextRange(4);
        int64_t suppkey = static_cast<int64_t>(
            1 + (static_cast<uint64_t>(partkey) +
                 which * (sizes.supplier / 4 + 1)) %
                    sizes.supplier);
        rows.push_back(Tuple{
            Value(static_cast<int64_t>(o)),
            Value(partkey),
            Value(suppkey),
            Value(SkewedInt(rng, zipf50, 1, 50)),
            Value(SkewedNumeric(rng, zipf100, 900, 105000)),
            Value(rng.NextInt(0, 10) / 100.0),
        });
      }
    }
    SQP_RETURN_IF_ERROR(db->BulkLoad("lineitem", rows));
  }

  const auto& prepared =
      options.prepare_skewed_fields ? IndexedColumns() : KeyColumns();
  if (options.build_indexes) {
    for (const auto& [table, column] : prepared) {
      SQP_RETURN_IF_ERROR(db->CreateIndex(table, column));
    }
  }
  if (options.build_histograms) {
    for (const auto& [table, column] : prepared) {
      SQP_RETURN_IF_ERROR(db->CreateHistogram(table, column));
    }
  }
  return Status::OK();
}

uint64_t DatasetPages(const Database& db) {
  uint64_t pages = 0;
  for (const auto& table : TableNames()) {
    const TableInfo* info = db.catalog().GetTable(table);
    if (info != nullptr) pages += info->stats.page_count();
  }
  return pages;
}

}  // namespace tpch
}  // namespace sqp
