#include "workload/tpch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sqp {
namespace tpch {

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmall:
      return "small";
    case Scale::kMedium:
      return "medium";
    case Scale::kLarge:
      return "large";
  }
  return "?";
}

const char* ScalePaperLabel(Scale scale) {
  switch (scale) {
    case Scale::kSmall:
      return "100MB";
    case Scale::kMedium:
      return "500MB";
    case Scale::kLarge:
      return "1GB";
  }
  return "?";
}

TableSizes SizesForScale(Scale scale) {
  // Base unit chosen so the small dataset is ~3x the 32MB-equivalent
  // buffer pool (DESIGN.md §2); medium/large follow the paper's 5x/10x.
  uint64_t f = scale == Scale::kSmall ? 1 : (scale == Scale::kMedium ? 5 : 10);
  TableSizes sizes;
  sizes.part = 2000 * f;
  sizes.supplier = 100 * f;
  sizes.partsupp = sizes.part * 4;
  sizes.customer = 1500 * f;
  sizes.orders = sizes.customer * 10;
  sizes.lineitem = sizes.orders * 4;
  return sizes;
}

const std::vector<std::string>& TableNames() {
  static const std::vector<std::string> names = {
      "part", "supplier", "partsupp", "customer", "orders", "lineitem"};
  return names;
}

Schema SchemaFor(const std::string& table) {
  using T = TypeId;
  if (table == "part") {
    return Schema({{"p_partkey", T::kInt64},
                   {"p_size", T::kInt64},
                   {"p_retailprice", T::kDouble},
                   {"p_mfgr", T::kString}});
  }
  if (table == "supplier") {
    return Schema({{"s_suppkey", T::kInt64},
                   {"s_nationkey", T::kInt64},
                   {"s_acctbal", T::kDouble}});
  }
  if (table == "partsupp") {
    return Schema({{"ps_partkey", T::kInt64},
                   {"ps_suppkey", T::kInt64},
                   {"ps_availqty", T::kInt64},
                   {"ps_supplycost", T::kDouble}});
  }
  if (table == "customer") {
    return Schema({{"c_custkey", T::kInt64},
                   {"c_nationkey", T::kInt64},
                   {"c_acctbal", T::kDouble},
                   {"c_mktsegment", T::kString}});
  }
  if (table == "orders") {
    return Schema({{"o_orderkey", T::kInt64},
                   {"o_custkey", T::kInt64},
                   {"o_totalprice", T::kDouble},
                   {"o_orderdate", T::kInt64}});
  }
  if (table == "lineitem") {
    return Schema({{"l_orderkey", T::kInt64},
                   {"l_partkey", T::kInt64},
                   {"l_suppkey", T::kInt64},
                   {"l_quantity", T::kInt64},
                   {"l_extendedprice", T::kDouble},
                   {"l_discount", T::kDouble}});
  }
  assert(false && "unknown tpch table");
  return Schema();
}

namespace {
JoinPred MakeJoin(const std::string& lt, const std::string& lc,
                  const std::string& rt, const std::string& rc) {
  JoinPred j;
  j.left_table = lt;
  j.left_column = lc;
  j.right_table = rt;
  j.right_column = rc;
  j.Canonicalize();
  return j;
}
}  // namespace

const std::vector<JoinTemplate>& FkJoinTemplates() {
  static const std::vector<JoinTemplate> templates = {
      {{MakeJoin("customer", "c_custkey", "orders", "o_custkey")},
       "customer-orders"},
      {{MakeJoin("orders", "o_orderkey", "lineitem", "l_orderkey")},
       "orders-lineitem"},
      {{MakeJoin("part", "p_partkey", "lineitem", "l_partkey")},
       "part-lineitem"},
      {{MakeJoin("supplier", "s_suppkey", "lineitem", "l_suppkey")},
       "supplier-lineitem"},
      {{MakeJoin("part", "p_partkey", "partsupp", "ps_partkey")},
       "part-partsupp"},
      {{MakeJoin("supplier", "s_suppkey", "partsupp", "ps_suppkey")},
       "supplier-partsupp"},
      {{MakeJoin("lineitem", "l_partkey", "partsupp", "ps_partkey"),
        MakeJoin("lineitem", "l_suppkey", "partsupp", "ps_suppkey")},
       "lineitem-partsupp"},
  };
  return templates;
}

const std::vector<SelectionColumn>& SelectionColumns() {
  static const std::vector<SelectionColumn> cols = {
      {"part", "p_size", TypeId::kInt64, 1, 50, {}, 50},
      {"part", "p_retailprice", TypeId::kDouble, 900, 2100, {}, 100},
      {"part", "p_mfgr", TypeId::kString, 0, 0,
       {"MFGR#1", "MFGR#2", "MFGR#3", "MFGR#4", "MFGR#5"}, 5},
      {"supplier", "s_acctbal", TypeId::kDouble, -1000, 10000, {}, 100},
      {"partsupp", "ps_availqty", TypeId::kInt64, 1, 10000, {}, 100},
      {"partsupp", "ps_supplycost", TypeId::kDouble, 1, 1000, {}, 100},
      {"customer", "c_acctbal", TypeId::kDouble, -1000, 10000, {}, 100},
      {"customer", "c_mktsegment", TypeId::kString, 0, 0,
       {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}, 5},
      {"orders", "o_totalprice", TypeId::kDouble, 1000, 500000, {}, 100},
      {"orders", "o_orderdate", TypeId::kInt64, 0, 2555, {}, 256},
      {"lineitem", "l_quantity", TypeId::kInt64, 1, 50, {}, 50},
      {"lineitem", "l_extendedprice", TypeId::kDouble, 900, 105000, {}, 100},
      {"lineitem", "l_discount", TypeId::kDouble, 0.0, 0.10, {}, 0},
  };
  return cols;
}

double ColumnQuantile(const SelectionColumn& column, double p) {
  p = std::min(1.0, std::max(0.0, p));
  if (column.zipf_n == 0) {
    return column.lo + p * (column.hi - column.lo);
  }
  // Cumulative Zipf mass over ranks until >= p; the rank's slice upper
  // edge is the quantile value.
  double zeta = 0;
  std::vector<double> mass(column.zipf_n);
  for (uint64_t r = 0; r < column.zipf_n; r++) {
    mass[r] = 1.0 / std::pow(static_cast<double>(r + 1), kSkewTheta);
    zeta += mass[r];
  }
  double cum = 0;
  for (uint64_t r = 0; r < column.zipf_n; r++) {
    cum += mass[r] / zeta;
    if (cum >= p) {
      double frac = static_cast<double>(r + 1) / column.zipf_n;
      return column.lo + frac * (column.hi - column.lo);
    }
  }
  return column.hi;
}

const std::vector<std::pair<std::string, std::string>>& KeyColumns() {
  static const std::vector<std::pair<std::string, std::string>> cols = {
      {"part", "p_partkey"},
      {"supplier", "s_suppkey"},
      {"partsupp", "ps_partkey"},
      {"partsupp", "ps_suppkey"},
      {"customer", "c_custkey"},
      {"orders", "o_orderkey"},
      {"orders", "o_custkey"},
      {"lineitem", "l_orderkey"},
      {"lineitem", "l_partkey"},
      {"lineitem", "l_suppkey"},
  };
  return cols;
}

const std::vector<std::pair<std::string, std::string>>& IndexedColumns() {
  static const std::vector<std::pair<std::string, std::string>> cols = [] {
    std::vector<std::pair<std::string, std::string>> all = KeyColumns();
    // Skewed selection fields.
    all.emplace_back("part", "p_size");
    all.emplace_back("orders", "o_orderdate");
    all.emplace_back("orders", "o_totalprice");
    all.emplace_back("lineitem", "l_quantity");
    all.emplace_back("customer", "c_acctbal");
    all.emplace_back("supplier", "s_acctbal");
    all.emplace_back("partsupp", "ps_availqty");
    return all;
  }();
  return cols;
}

}  // namespace tpch
}  // namespace sqp
