// Skewed TPC-H subset data generator and loader.
#pragma once

#include "common/rng.h"
#include "db/database.h"
#include "workload/tpch.h"

namespace sqp {
namespace tpch {

struct LoadOptions {
  Scale scale = Scale::kSmall;
  uint64_t seed = 42;
  /// Zipf exponent for the skewed fields ("high skew", §4.2).
  double skew_theta = 0.85;
  /// Build indexes+histograms on IndexedColumns() ("fully prepared").
  bool build_indexes = true;
  bool build_histograms = true;
  /// When false, only KeyColumns() are prepared and skewed selection
  /// fields are left bare — the setting under which histogram/index
  /// creation manipulations have room to act (ablation E8).
  bool prepare_skewed_fields = true;
};

/// Create, populate, index and analyze the six tables in `db`.
/// The simulated cost of loading is excluded from experiment timings by
/// resetting db.meter() bookkeeping via ColdStart() in the harness.
Status LoadTpch(Database* db, const LoadOptions& options);

/// Total heap pages across the six base tables (for pool sizing).
uint64_t DatasetPages(const Database& db);

}  // namespace tpch
}  // namespace sqp
