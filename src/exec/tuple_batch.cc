#include "exec/tuple_batch.h"

#include "common/metrics_registry.h"

namespace sqp {
namespace exec_internal {

namespace {
// Handles resolved once; the hot path is one relaxed atomic add each.
struct BatchMetrics {
  Counter* batches;
  Counter* rows;
  Counter* pages_pinned;
  Gauge* avg_fill;

  BatchMetrics()
      : batches(MetricsRegistry::Global().GetCounter("exec.batch.batches")),
        rows(MetricsRegistry::Global().GetCounter("exec.batch.rows")),
        pages_pinned(
            MetricsRegistry::Global().GetCounter("exec.batch.pages_pinned")),
        avg_fill(MetricsRegistry::Global().GetGauge("exec.batch.avg_fill")) {}
};

BatchMetrics& Metrics() {
  static BatchMetrics metrics;
  return metrics;
}
}  // namespace

bool FinishBatch(const TupleBatch& out) {
  if (out.empty()) return false;
  BatchMetrics& m = Metrics();
  m.batches->Increment();
  m.rows->Increment(out.size());
  // Running average rows-per-batch. ResetAll() zeroes the counters, so
  // the gauge self-heals to the post-reset average on the next batch.
  uint64_t batches = m.batches->value();
  if (batches > 0) {
    m.avg_fill->Set(static_cast<double>(m.rows->value()) /
                    static_cast<double>(batches));
  }
  return true;
}

void NotePagePinned() { Metrics().pages_pinned->Increment(); }

}  // namespace exec_internal
}  // namespace sqp
