// Materialization: drain an executor into a new stored table.
//
// This is the physical action behind the paper's query-materialization /
// query-rewriting manipulations and behind CREATE TABLE AS. The new
// table's pages are flushed at the end, charging the write I/O that makes
// large materializations expensive (and hence risky to speculate on).
#pragma once

#include <string>

#include "catalog/catalog.h"
#include "common/cost_meter.h"
#include "exec/executors.h"

namespace sqp {

/// Create `table_name` with the executor's output schema and fill it.
/// Computes stats inline and flushes the result to "disk".
/// `home_node` (multi-node tiers) pins the new table's pages to one
/// storage node — the speculation engine's placement choice
/// (DESIGN.md §14); kAnyNode keeps the store's node-sticky default.
Result<TableInfo*> MaterializeInto(
    Catalog* catalog, BufferPool* pool, CostMeter* meter, Executor* source,
    const std::string& table_name, bool is_materialized = true,
    uint32_t home_node = PageAllocOptions::kAnyNode);

}  // namespace sqp
