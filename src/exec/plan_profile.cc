#include "exec/plan_profile.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "common/metrics_registry.h"
#include "common/tracing.h"

namespace sqp {

double OperatorProfile::QError() const {
  double act = std::max(1.0, static_cast<double>(act_rows));
  double est = est_rows < 0 ? act : std::max(1.0, est_rows);
  return std::max(est / act, act / est);
}

double OperatorProfile::AvgFill() const {
  return batches > 0
             ? static_cast<double>(act_rows) / static_cast<double>(batches)
             : 0.0;
}

OperatorProfile* PlanProfile::PushRoot(std::string op, std::string detail,
                                       double est_rows) {
  auto node = std::make_unique<OperatorProfile>();
  node->op = std::move(op);
  node->detail = std::move(detail);
  node->est_rows = est_rows;
  if (root != nullptr) node->children.push_back(std::move(root));
  root = std::move(node);
  return root.get();
}

namespace {

void FormatNode(const OperatorProfile& node, int indent, bool include_wall,
                std::ostringstream& os) {
  char buf[256];
  os << std::string(static_cast<size_t>(indent) * 2, ' ') << node.op << "("
     << node.detail << ")";
  if (node.est_rows >= 0) {
    std::snprintf(buf, sizeof(buf), " est=%.0f", node.est_rows);
  } else {
    std::snprintf(buf, sizeof(buf), " est=?");
  }
  os << buf;
  std::snprintf(buf, sizeof(buf),
                " act=%llu q=%.2f batches=%llu fill=%.1f pages=%llu"
                " tuples=%llu blocks=%llu sim=%.4fs",
                static_cast<unsigned long long>(node.act_rows), node.QError(),
                static_cast<unsigned long long>(node.batches), node.AvgFill(),
                static_cast<unsigned long long>(node.pages_pinned),
                static_cast<unsigned long long>(node.tuples_charged),
                static_cast<unsigned long long>(node.blocks_charged),
                node.sim_seconds);
  os << buf;
  if (node.cross_shard_pages > 0) {
    std::snprintf(buf, sizeof(buf), " xshard=%llu",
                  static_cast<unsigned long long>(node.cross_shard_pages));
    os << buf;
  }
  if (include_wall) {
    std::snprintf(buf, sizeof(buf), " wall=%.6fs", node.wall_seconds);
    os << buf;
  }
  os << "\n";
  for (const auto& child : node.children) {
    FormatNode(*child, indent + 1, include_wall, os);
  }
}

void JsonNode(const OperatorProfile& node, bool include_wall,
              std::ostringstream& os) {
  char buf[256];
  os << "{\"op\":\"" << JsonEscape(node.op) << "\",\"detail\":\""
     << JsonEscape(node.detail) << "\"";
  if (node.est_rows >= 0) {
    std::snprintf(buf, sizeof(buf), ",\"est_rows\":%.0f", node.est_rows);
    os << buf;
  }
  std::snprintf(buf, sizeof(buf),
                ",\"act_rows\":%llu,\"q_error\":%.2f,\"batches\":%llu,"
                "\"avg_fill\":%.1f,\"pages_pinned\":%llu,"
                "\"tuples_charged\":%llu,\"blocks_charged\":%llu,"
                "\"sim_seconds\":%.6f",
                static_cast<unsigned long long>(node.act_rows), node.QError(),
                static_cast<unsigned long long>(node.batches), node.AvgFill(),
                static_cast<unsigned long long>(node.pages_pinned),
                static_cast<unsigned long long>(node.tuples_charged),
                static_cast<unsigned long long>(node.blocks_charged),
                node.sim_seconds);
  os << buf;
  if (node.cross_shard_pages > 0) {
    std::snprintf(buf, sizeof(buf), ",\"cross_shard_pages\":%llu",
                  static_cast<unsigned long long>(node.cross_shard_pages));
    os << buf;
  }
  if (include_wall) {
    std::snprintf(buf, sizeof(buf), ",\"wall_seconds\":%.6f",
                  node.wall_seconds);
    os << buf;
  }
  if (!node.children.empty()) {
    os << ",\"children\":[";
    for (size_t i = 0; i < node.children.size(); i++) {
      if (i > 0) os << ",";
      JsonNode(*node.children[i], include_wall, os);
    }
    os << "]";
  }
  os << "}";
}

}  // namespace

std::string PlanProfile::FormatText(bool include_wall) const {
  std::ostringstream os;
  if (root != nullptr) FormatNode(*root, 0, include_wall, os);
  if (attribution.present) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "attribution: session=%s sim=%.6fs blocks=%llu tuples=%llu\n",
                  attribution.session.empty() ? "(system)"
                                              : attribution.session.c_str(),
                  attribution.seconds,
                  static_cast<unsigned long long>(attribution.blocks),
                  static_cast<unsigned long long>(attribution.tuples));
    os << buf;
  }
  return os.str();
}

std::string PlanProfile::FormatJson(bool include_wall) const {
  std::ostringstream os;
  if (root == nullptr) return "{}";
  JsonNode(*root, include_wall, os);
  std::string out = os.str();
  if (attribution.present && !out.empty() && out.back() == '}') {
    // Splice the attribution block into the root object, keeping the
    // output a single JSON object for existing consumers.
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  ",\"attribution\":{\"session\":\"%s\",\"sim_seconds\":%.6f,"
                  "\"blocks\":%llu,\"tuples\":%llu}",
                  JsonEscape(attribution.session).c_str(), attribution.seconds,
                  static_cast<unsigned long long>(attribution.blocks),
                  static_cast<unsigned long long>(attribution.tuples));
    out.insert(out.size() - 1, buf);
  }
  return out;
}

namespace {

/// Decorator accumulating one operator's actuals. Charge figures come
/// from CostScope deltas around each call (inclusive of children, which
/// run inside the parent's call); page pins diff the global
/// `exec.batch.pages_pinned` counter the same way.
class ProfiledExecutor : public Executor {
 public:
  ProfiledExecutor(std::unique_ptr<Executor> inner, const CostMeter* meter,
                   OperatorProfile* node)
      : inner_(std::move(inner)),
        meter_(meter),
        node_(node),
        pages_(MetricsRegistry::Global().GetCounter(
            "exec.batch.pages_pinned")),
        xshard_(MetricsRegistry::Global().GetCounter(
            "storage.node.cross_shard_pages")) {}

  Status Init() override {
    Capture capture(this);
    return inner_->Init();
  }

  Result<std::optional<Tuple>> Next() override {
    Capture capture(this);
    auto row = inner_->Next();
    if (row.ok() && row->has_value()) node_->act_rows++;
    return row;
  }

  Result<bool> NextBatch(TupleBatch* out) override {
    Capture capture(this);
    auto more = inner_->NextBatch(out);
    if (more.ok() && !out->empty()) {
      node_->act_rows += out->size();
      node_->batches++;
    }
    return more;
  }

  const Schema& output_schema() const override {
    return inner_->output_schema();
  }

 private:
  struct Capture {
    explicit Capture(ProfiledExecutor* p)
        : p_(p),
          scope_(*p->meter_),
          pages0_(p->pages_->value()),
          xshard0_(p->xshard_->value()),
          wall0_(std::chrono::steady_clock::now()) {}
    ~Capture() {
      OperatorProfile* node = p_->node_;
      node->sim_seconds += scope_.ElapsedSeconds();
      node->tuples_charged += scope_.ElapsedTuples();
      node->blocks_charged += scope_.ElapsedBlocks();
      node->pages_pinned += p_->pages_->value() - pages0_;
      node->cross_shard_pages += p_->xshard_->value() - xshard0_;
      node->wall_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall0_)
              .count();
    }
    ProfiledExecutor* p_;
    CostScope scope_;
    uint64_t pages0_;
    uint64_t xshard0_;
    std::chrono::steady_clock::time_point wall0_;
  };

  std::unique_ptr<Executor> inner_;
  const CostMeter* meter_;
  OperatorProfile* node_;
  Counter* pages_;
  Counter* xshard_;
};

}  // namespace

std::unique_ptr<Executor> MakeProfiled(std::unique_ptr<Executor> inner,
                                       const CostMeter* meter,
                                       OperatorProfile* node) {
  return std::make_unique<ProfiledExecutor>(std::move(inner), meter, node);
}

}  // namespace sqp
