#include "exec/executors.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <iterator>
#include <utility>

#include "common/metrics_registry.h"
#include "common/task_scheduler.h"

namespace sqp {

namespace {

/// Pages of worker lookahead a parallel scan/probe keeps in flight
/// ahead of the foreground's emission cursor. Deep enough to keep a
/// handful of workers fed, shallow enough that the snapshots (one page
/// plus its decoded survivors each) stay cache-friendly.
constexpr size_t kParallelLookaheadPages = 32;

/// Register both parallel morsel families — a single parallel database
/// must surface the full catalog for the docs drift check — and return
/// the {morsels, fallbacks} pair matching this plan's priority class.
std::pair<Counter*, Counter*> ParallelCounters(bool background) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* exec_morsels = registry.GetCounter("exec.parallel.morsels");
  Counter* exec_fallbacks = registry.GetCounter("exec.parallel.fallbacks");
  Counter* spec_morsels = registry.GetCounter("spec.parallel.morsels");
  Counter* spec_fallbacks = registry.GetCounter("spec.parallel.fallbacks");
  return background ? std::make_pair(spec_morsels, spec_fallbacks)
                    : std::make_pair(exec_morsels, exec_fallbacks);
}

// Decode only column `col` from a serialized record (storage/tuple.cc
// layout: arity byte, then per column a type tag plus an 8-byte numeric
// or a u32-length string). Fixed-width columns are skipped with pointer
// arithmetic, so evaluating a predicate needs no full-row decode.
Value DecodeColumn(const uint8_t* rec, size_t col) {
  size_t off = 1;  // arity byte
  for (size_t i = 0; i < col; i++) {
    TypeId type = static_cast<TypeId>(rec[off++]);
    if (type == TypeId::kString) {
      uint32_t slen;
      std::memcpy(&slen, rec + off, sizeof(slen));
      off += sizeof(slen) + slen;
    } else {
      off += 8;
    }
  }
  TypeId type = static_cast<TypeId>(rec[off++]);
  switch (type) {
    case TypeId::kInt64: {
      int64_t v;
      std::memcpy(&v, rec + off, sizeof(v));
      return Value(v);
    }
    case TypeId::kDouble: {
      double v;
      std::memcpy(&v, rec + off, sizeof(v));
      return Value(v);
    }
    case TypeId::kString:
    default: {
      uint32_t slen;
      std::memcpy(&slen, rec + off, sizeof(slen));
      return Value(std::string(
          reinterpret_cast<const char*>(rec + off + sizeof(slen)), slen));
    }
  }
}

// EvalConjunction against the serialized record instead of a decoded
// tuple. DecodeColumn yields exactly the Value DeserializeTuple would,
// and the comparison is the same Value::Compare, so the verdict is
// bit-identical to the tuple path's.
bool EvalConjunctionOnRecord(const std::vector<BoundSelection>& preds,
                             const uint8_t* rec) {
  for (const BoundSelection& p : preds) {
    Value v = DecodeColumn(rec, p.column_index);
    if (!EvalCompare(v.CompareInline(p.constant), p.op)) return false;
    // Fused BETWEEN upper bound: the column is already decoded, so the
    // second comparison costs one compare, not a second record walk.
    if (p.has_upper && !EvalCompare(v.CompareInline(p.upper), p.upper_op)) {
      return false;
    }
  }
  return true;
}

}  // namespace

// ----------------------------------------------------- Executor (adapter)

// Default batch shim: loop Next(). Kept as the fallback for executors
// with no native batch loop (every shipped executor now overrides
// NextBatch; LIMIT's override still pulls its child tuple-at-a-time,
// which is what guarantees the child is charged for exactly `limit`
// rows, same as the tuple engine).
Result<bool> Executor::NextBatch(TupleBatch* out) {
  out->Clear();
  while (out->size() < out->target_rows()) {
    auto row = Next();
    if (!row.ok()) return row.status();
    if (!row->has_value()) break;
    out->PushRow(std::move(**row));
  }
  return exec_internal::FinishBatch(*out);
}

// ---------------------------------------------------------------- SeqScan

SeqScanExecutor::SeqScanExecutor(const TableInfo* table, BufferPool* pool,
                                 CostMeter* meter,
                                 std::vector<BoundSelection> predicates)
    : table_(table),
      pool_(pool),
      meter_(meter),
      predicates_(std::move(predicates)) {}

SeqScanExecutor::~SeqScanExecutor() { AwaitWindow(); }

void SeqScanExecutor::EnableParallel(const ExecParallel& parallel) {
  scheduler_ = parallel.scheduler;
  background_ = parallel.background;
  if (scheduler_ == nullptr) return;
  auto counters = ParallelCounters(background_);
  m_morsels_ = counters.first;
  m_fallbacks_ = counters.second;
}

Status SeqScanExecutor::Init() {
  AwaitWindow();
  window_.clear();
  dispatch_index_ = 0;
  page_index_ = 0;
  slot_ = 0;
  guard_.Release();
  page_loaded_ = false;
  return Status::OK();
}

void SeqScanExecutor::AwaitTask(PageTask* task) {
  if (task->done.load(std::memory_order_acquire)) return;
  scheduler_->WaitFor(
      [task] { return task->done.load(std::memory_order_acquire); });
}

void SeqScanExecutor::AwaitWindow() {
  for (auto& task : window_) AwaitTask(task.get());
}

void SeqScanExecutor::DispatchWindow() {
  const std::vector<page_id_t>& pages = table_->heap->pages();
  if (dispatch_index_ < page_index_) dispatch_index_ = page_index_;
  const size_t limit = page_index_ + kParallelLookaheadPages;
  while (dispatch_index_ < pages.size() && dispatch_index_ < limit) {
    auto task = std::make_unique<PageTask>();
    Status peeked = pool_->PeekPage(pages[dispatch_index_], &task->snapshot);
    m_morsels_->Increment();
    if (!peeked.ok()) {
      // Torn page, dead copy, crashed disk: the page goes through the
      // fully sequential path at emission, where the accountable fetch
      // reports (and charges) the failure exactly as ever.
      task->fallback = true;
      task->done.store(true, std::memory_order_release);
    } else {
      PageTask* t = task.get();
      scheduler_->Submit(
          [this, t] {
            const uint16_t nslots = t->snapshot.slot_count();
            t->nslots = nslots;
            t->rows.reserve(nslots);
            for (uint16_t s = 0; s < nslots; s++) {
              uint16_t len = 0;
              const uint8_t* rec = t->snapshot.Record(s, &len);
              if (!predicates_.empty() &&
                  !EvalConjunctionOnRecord(predicates_, rec)) {
                continue;
              }
              t->rows.emplace_back();
              DeserializeTupleInto(rec, len, &t->rows.back());
            }
            t->done.store(true, std::memory_order_release);
          },
          background_ ? TaskScheduler::Priority::kBackground
                      : TaskScheduler::Priority::kForeground);
    }
    window_.push_back(std::move(task));
    dispatch_index_++;
  }
}

Result<bool> SeqScanExecutor::NextBatchParallel(TupleBatch* out) {
  out->Clear();
  const std::vector<page_id_t>& pages = table_->heap->pages();
  while (out->size() < out->target_rows() && page_index_ < pages.size()) {
    DispatchWindow();
    // The accountable fetch, replayed in sequential page order: pool
    // hit/miss state, I/O charges, fault firing, and replica routing
    // are identical to the single-threaded scan's (the window holds
    // only charge-free snapshots).
    const page_id_t page_id = pages[page_index_];
    auto page = pool_->FetchPage(page_id);
    if (!page.ok()) return page.status();
    PageGuard guard(pool_, page_id, *page);
    exec_internal::NotePagePinned();
    std::unique_ptr<PageTask> task = std::move(window_.front());
    window_.pop_front();
    const uint16_t nslots = (*page)->slot_count();
    meter_->ChargeTuples(nslots);
    AwaitTask(task.get());
    if (!task->fallback && task->nslots == nslots) {
      for (Tuple& row : task->rows) out->PushRow(std::move(row));
    } else {
      // Process the fetched page inline — the same late-materializing
      // loop as the sequential batch path.
      m_fallbacks_->Increment();
      for (uint16_t s = 0; s < nslots; s++) {
        uint16_t len = 0;
        const uint8_t* rec = (*page)->Record(s, &len);
        if (!predicates_.empty() &&
            !EvalConjunctionOnRecord(predicates_, rec)) {
          continue;
        }
        DeserializeTupleInto(rec, len, &out->AppendSlot());
      }
    }
    page_index_++;
  }
  return exec_internal::FinishBatch(*out);
}

Result<bool> SeqScanExecutor::LoadCurrentPage() {
  if (page_index_ >= table_->heap->pages().size()) return false;
  if (!page_loaded_) {
    page_id_t page_id = table_->heap->pages()[page_index_];
    auto page = pool_->FetchPage(page_id);
    if (!page.ok()) return page.status();
    guard_ = PageGuard(pool_, page_id, *page);
    page_loaded_ = true;
    slot_ = 0;
    exec_internal::NotePagePinned();
  }
  return true;
}

Result<std::optional<Tuple>> SeqScanExecutor::Next() {
  for (;;) {
    auto loaded = LoadCurrentPage();
    if (!loaded.ok()) return loaded.status();
    if (!*loaded) return std::optional<Tuple>();
    const Page* page = guard_.get();
    while (slot_ < page->slot_count()) {
      uint16_t len = 0;
      const uint8_t* rec = page->Record(slot_, &len);
      slot_++;
      meter_->ChargeTuples();
      Tuple row = DeserializeTuple(rec, len);
      if (EvalConjunction(predicates_, row)) {
        return std::optional<Tuple>(std::move(row));
      }
    }
    guard_.Release();
    page_loaded_ = false;
    page_index_++;
  }
}

Result<bool> SeqScanExecutor::NextBatch(TupleBatch* out) {
  if (scheduler_ != nullptr) return NextBatchParallel(out);
  out->Clear();
  while (out->size() < out->target_rows()) {
    auto loaded = LoadCurrentPage();
    if (!loaded.ok()) return loaded.status();
    if (!*loaded) break;
    const Page* page = guard_.get();
    uint16_t nslots = page->slot_count();
    if (slot_ < nslots) {
      // Every slot on the page flows through the scan: one bulk CPU
      // charge equals the tuple path's per-row charges.
      meter_->ChargeTuples(nslots - slot_);
      // Late materialization: evaluate the predicates against the
      // serialized record and decode only the survivors, into recycled
      // batch slots (allocation-free once the batch's pool is warm).
      for (; slot_ < nslots; slot_++) {
        uint16_t len = 0;
        const uint8_t* rec = page->Record(slot_, &len);
        if (!predicates_.empty() &&
            !EvalConjunctionOnRecord(predicates_, rec)) {
          continue;
        }
        DeserializeTupleInto(rec, len, &out->AppendSlot());
      }
    }
    guard_.Release();
    page_loaded_ = false;
    page_index_++;
  }
  return exec_internal::FinishBatch(*out);
}

// -------------------------------------------------------------- IndexScan

IndexScanExecutor::IndexScanExecutor(const TableInfo* table,
                                     const BPlusTree* index, KeyRange range,
                                     BufferPool* pool, CostMeter* meter,
                                     std::vector<BoundSelection> residual)
    : table_(table),
      index_(index),
      range_(std::move(range)),
      pool_(pool),
      meter_(meter),
      residual_(std::move(residual)) {}

Status IndexScanExecutor::Init() {
  IndexScanStats stats;
  rids_ = index_->RangeScan(range_, &stats);
  // The memory-resident tree stands in for an on-disk B+-tree: charge
  // one block per level descended plus one per leaf touched.
  meter_->ChargeBlockRead(stats.height + stats.leaves_touched);
  pos_ = 0;
  return Status::OK();
}

Result<std::optional<Tuple>> IndexScanExecutor::Next() {
  while (pos_ < rids_.size()) {
    auto row = table_->heap->Fetch(rids_[pos_++]);
    if (!row.ok()) return row.status();
    meter_->ChargeTuples();
    if (EvalConjunction(residual_, *row)) {
      return std::optional<Tuple>(std::move(*row));
    }
  }
  return std::optional<Tuple>();
}

Result<bool> IndexScanExecutor::NextBatch(TupleBatch* out) {
  out->Clear();
  // Heap fetches stay rid-by-rid (each may touch a different page, and
  // the fetch order is what chaos schedules key on), but the batch
  // amortizes the virtual dispatch above them.
  while (out->size() < out->target_rows() && pos_ < rids_.size()) {
    auto row = table_->heap->Fetch(rids_[pos_++]);
    if (!row.ok()) return row.status();
    meter_->ChargeTuples();
    if (EvalConjunction(residual_, *row)) {
      out->PushRow(std::move(*row));
    }
  }
  return exec_internal::FinishBatch(*out);
}

// ----------------------------------------------------------------- Filter

FilterExecutor::FilterExecutor(std::unique_ptr<Executor> child,
                               std::vector<BoundSelection> predicates,
                               CostMeter* meter)
    : child_(std::move(child)),
      predicates_(std::move(predicates)),
      meter_(meter) {}

Status FilterExecutor::Init() { return child_->Init(); }

Result<std::optional<Tuple>> FilterExecutor::Next() {
  for (;;) {
    auto row = child_->Next();
    if (!row.ok()) return row.status();
    if (!row->has_value()) return std::optional<Tuple>();
    meter_->ChargeTuples();
    if (EvalConjunction(predicates_, **row)) return std::move(*row);
  }
}

Result<bool> FilterExecutor::NextBatch(TupleBatch* out) {
  out->Clear();
  child_batch_.set_target_rows(out->target_rows());
  while (out->size() < out->target_rows()) {
    auto more = child_->NextBatch(&child_batch_);
    if (!more.ok()) return more.status();
    if (child_batch_.empty()) break;
    meter_->ChargeTuples(child_batch_.size());
    EvalConjunctionBatch(predicates_, child_batch_.begin(),
                         child_batch_.size(), &selection_);
    for (uint32_t idx : selection_) {
      out->PushRow(std::move(child_batch_[idx]));
    }
  }
  return exec_internal::FinishBatch(*out);
}

// ---------------------------------------------------------------- Project

ProjectExecutor::ProjectExecutor(std::unique_ptr<Executor> child,
                                 std::vector<size_t> column_indices,
                                 CostMeter* meter)
    : child_(std::move(child)),
      indices_(std::move(column_indices)),
      meter_(meter) {
  std::vector<Column> cols;
  cols.reserve(indices_.size());
  for (size_t idx : indices_) {
    cols.push_back(child_->output_schema().column(idx));
  }
  schema_ = Schema(std::move(cols));
}

Status ProjectExecutor::Init() { return child_->Init(); }

Result<std::optional<Tuple>> ProjectExecutor::Next() {
  auto row = child_->Next();
  if (!row.ok()) return row.status();
  if (!row->has_value()) return std::optional<Tuple>();
  meter_->ChargeTuples();
  Tuple out;
  out.reserve(indices_.size());
  for (size_t idx : indices_) out.push_back(std::move((**row)[idx]));
  return std::optional<Tuple>(std::move(out));
}

Result<bool> ProjectExecutor::NextBatch(TupleBatch* out) {
  out->Clear();
  child_batch_.set_target_rows(out->target_rows());
  while (out->size() < out->target_rows()) {
    auto more = child_->NextBatch(&child_batch_);
    if (!more.ok()) return more.status();
    if (child_batch_.empty()) break;
    meter_->ChargeTuples(child_batch_.size());
    for (Tuple& row : child_batch_) {
      Tuple& projected = out->AppendSlot();
      projected.clear();  // recycled slots may hold stale values
      projected.reserve(indices_.size());
      for (size_t idx : indices_) projected.push_back(std::move(row[idx]));
    }
  }
  return exec_internal::FinishBatch(*out);
}

// --------------------------------------------------------------- HashJoin

HashJoinExecutor::HashJoinExecutor(std::unique_ptr<Executor> build,
                                   std::unique_ptr<Executor> probe,
                                   size_t build_key, size_t probe_key,
                                   CostMeter* meter, size_t build_rows_hint)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_key_(build_key),
      probe_key_(probe_key),
      meter_(meter),
      build_rows_hint_(build_rows_hint) {
  schema_ = build_->output_schema().Concat(probe_->output_schema());
}

HashJoinExecutor::~HashJoinExecutor() { AwaitFusedWindow(); }

void HashJoinExecutor::EnableParallel(const ExecParallel& parallel) {
  scheduler_ = parallel.scheduler;
  background_ = parallel.background;
  if (scheduler_ == nullptr) return;
  auto counters = ParallelCounters(background_);
  m_morsels_ = counters.first;
  m_fallbacks_ = counters.second;
}

Status HashJoinExecutor::Init() {
  AwaitFusedWindow();
  fused_window_.clear();
  group_.clear();
  fused_scan_ = nullptr;
  fused_dispatch_ = 0;
  fused_page_ = 0;
  group_task_ = 0;
  group_row_ = 0;
  group_out_ = 0;
  SQP_RETURN_IF_ERROR(build_->Init());
  SQP_RETURN_IF_ERROR(probe_->Init());
  size_t build_bytes = 0;
  if (build_rows_hint_ > 0) {
    build_rows_.reserve(build_rows_hint_);
  }
  TupleBatch batch;
  for (;;) {
    auto more = build_->NextBatch(&batch);
    if (!more.ok()) return more.status();
    if (batch.empty()) break;
    meter_->ChargeTuples(batch.size());
    for (Tuple& row : batch) {
      build_bytes += SerializedTupleSize(row);
      build_rows_.push_back(std::move(row));
    }
  }
  // Build the flat table in one pass now that the row count is known:
  // power-of-two buckets at ~2x occupancy headroom. Inserting in
  // reverse makes each chain run in insertion order, so matches emit
  // in the same order the per-bucket vectors used to.
  if (!build_rows_.empty()) {
    size_t buckets = 1;
    while (buckets < build_rows_.size() * 2) buckets <<= 1;
    bucket_mask_ = buckets - 1;
    heads_.assign(buckets, -1);
    next_.resize(build_rows_.size());
    const size_t n = build_rows_.size();
    std::vector<uint64_t> hashes(n);
    constexpr size_t kHashChunk = 8192;
    if (scheduler_ != nullptr && n >= 2 * kHashChunk) {
      // Partitioned build (DESIGN.md §15): workers hash disjoint row
      // ranges in parallel; the chain links below are applied
      // sequentially in the same reverse order as ever, so insertion
      // order — and with it match emission order — is unchanged.
      const size_t chunks = (n + kHashChunk - 1) / kHashChunk;
      std::atomic<size_t> hashed{0};
      for (size_t c = 0; c < chunks; c++) {
        const size_t begin = c * kHashChunk;
        const size_t end = std::min(n, begin + kHashChunk);
        scheduler_->Submit(
            [this, &hashes, &hashed, begin, end] {
              for (size_t i = begin; i < end; i++) {
                hashes[i] = build_rows_[i][build_key_].HashInline();
              }
              hashed.fetch_add(1, std::memory_order_release);
            },
            background_ ? TaskScheduler::Priority::kBackground
                        : TaskScheduler::Priority::kForeground);
      }
      scheduler_->WaitFor([&hashed, chunks] {
        return hashed.load(std::memory_order_acquire) == chunks;
      });
    } else {
      for (size_t i = 0; i < n; i++) {
        hashes[i] = build_rows_[i][build_key_].HashInline();
      }
    }
    for (size_t i = n; i-- > 0;) {
      size_t b = hashes[i] & bucket_mask_;
      next_[i] = heads_[b];
      heads_[b] = static_cast<int32_t>(i);
    }
  }
  // Grace spill: build side over budget means both inputs take an extra
  // partition-write + re-read pass. The build side is charged here; the
  // probe side is charged page by page as it streams (in Next).
  spilled_ = build_bytes >
             meter_->config().hash_join_memory_pages * kPageSize;
  if (spilled_) {
    uint64_t build_pages =
        static_cast<uint64_t>(build_bytes / kPageSize) + 1;
    meter_->ChargeBlockWrite(build_pages);
    meter_->ChargeBlockRead(build_pages);
  }
  // Fused parallel probe (DESIGN.md §15): only over a bare SeqScan
  // child (a profiled wrapper fails the cast, keeping EXPLAIN ANALYZE
  // actuals byte-identical) and only in-memory (the spilled path's
  // per-row byte-stream charges depend on probe row order at charge
  // time). The hash table is frozen from here on, so workers can probe
  // it lock-free.
  if (scheduler_ != nullptr && !spilled_) {
    fused_scan_ = dynamic_cast<SeqScanExecutor*>(probe_.get());
  }
  if (fused_scan_ != nullptr) DispatchFused();
  return Status::OK();
}

void HashJoinExecutor::ProbePageInto(const Page& page,
                                     ProbeTask* task) const {
  const std::vector<BoundSelection>& preds = fused_scan_->predicates();
  const uint16_t nslots = page.slot_count();
  task->nslots = nslots;
  task->match_counts.clear();
  task->out_rows.clear();
  Tuple probe;
  for (uint16_t s = 0; s < nslots; s++) {
    uint16_t len = 0;
    const uint8_t* rec = page.Record(s, &len);
    if (!preds.empty() && !EvalConjunctionOnRecord(preds, rec)) continue;
    probe.clear();
    DeserializeTupleInto(rec, len, &probe);
    uint32_t matches = 0;
    const Value& key = probe[probe_key_];
    for (int32_t idx = BucketHead(key); idx >= 0; idx = next_[idx]) {
      const Tuple& build_row = build_rows_[idx];
      if (build_row[build_key_].CompareInline(key) != 0) {
        continue;  // bucket shared by a different key
      }
      task->out_rows.push_back(ConcatRows(build_row, probe));
      matches++;
    }
    task->match_counts.push_back(matches);
  }
}

void HashJoinExecutor::AwaitProbeTask(ProbeTask* task) {
  if (task->done.load(std::memory_order_acquire)) return;
  scheduler_->WaitFor(
      [task] { return task->done.load(std::memory_order_acquire); });
}

void HashJoinExecutor::AwaitFusedWindow() {
  for (auto& task : fused_window_) AwaitProbeTask(task.get());
}

void HashJoinExecutor::DispatchFused() {
  const std::vector<page_id_t>& pages = fused_scan_->table()->heap->pages();
  if (fused_dispatch_ < fused_page_) fused_dispatch_ = fused_page_;
  const size_t limit = fused_page_ + kParallelLookaheadPages;
  while (fused_dispatch_ < pages.size() && fused_dispatch_ < limit) {
    auto task = std::make_unique<ProbeTask>();
    Status peeked =
        fused_scan_->pool()->PeekPage(pages[fused_dispatch_], &task->snapshot);
    m_morsels_->Increment();
    if (!peeked.ok()) {
      task->fallback = true;
      task->done.store(true, std::memory_order_release);
    } else {
      ProbeTask* t = task.get();
      scheduler_->Submit(
          [this, t] {
            ProbePageInto(t->snapshot, t);
            t->done.store(true, std::memory_order_release);
          },
          background_ ? TaskScheduler::Priority::kBackground
                      : TaskScheduler::Priority::kForeground);
    }
    fused_window_.push_back(std::move(task));
    fused_dispatch_++;
  }
}

Result<bool> HashJoinExecutor::NextBatchFused(TupleBatch* out) {
  out->Clear();
  const std::vector<page_id_t>& pages = fused_scan_->table()->heap->pages();
  BufferPool* pool = fused_scan_->pool();
  while (out->size() < out->target_rows()) {
    if (group_task_ >= group_.size()) {
      // Form the next probe batch exactly as the sequential scan
      // would: whole pages, fetched and charged in page order, until
      // the surviving-row count reaches the batch target or the table
      // is exhausted.
      group_.clear();
      group_task_ = 0;
      group_row_ = 0;
      group_out_ = 0;
      size_t survivors = 0;
      const size_t scan_target = out->target_rows();
      while (survivors < scan_target && fused_page_ < pages.size()) {
        DispatchFused();
        const page_id_t page_id = pages[fused_page_];
        auto page = pool->FetchPage(page_id);
        if (!page.ok()) return page.status();
        PageGuard guard(pool, page_id, *page);
        exec_internal::NotePagePinned();
        std::unique_ptr<ProbeTask> task = std::move(fused_window_.front());
        fused_window_.pop_front();
        const uint16_t nslots = (*page)->slot_count();
        meter_->ChargeTuples(nslots);  // the scan's bulk per-page charge
        AwaitProbeTask(task.get());
        if (task->fallback || task->nslots != nslots) {
          m_fallbacks_->Increment();
          ProbePageInto(**page, task.get());
        }
        survivors += task->match_counts.size();
        group_.push_back(std::move(task));
        fused_page_++;
      }
      if (survivors == 0) break;  // probe side exhausted: end of join
      // The join's bulk charge for the pulled probe batch — the
      // sequential ChargeTuples(probe_batch_.size()).
      meter_->ChargeTuples(survivors);
    }
    // Emit, probe row by probe row: a row's matches flush in full
    // (batches overshoot their soft target), the cursors carrying a
    // partially-emitted group across NextBatch calls exactly like the
    // sequential probe_pos_ cursor.
    while (group_task_ < group_.size() &&
           out->size() < out->target_rows()) {
      ProbeTask& task = *group_[group_task_];
      while (group_row_ < task.match_counts.size() &&
             out->size() < out->target_rows()) {
        const uint32_t matches = task.match_counts[group_row_++];
        meter_->ChargeTuples(matches);
        for (uint32_t m = 0; m < matches; m++) {
          out->PushRow(std::move(task.out_rows[group_out_++]));
        }
      }
      if (group_row_ >= task.match_counts.size()) {
        group_task_++;
        group_row_ = 0;
        group_out_ = 0;
      }
    }
  }
  return exec_internal::FinishBatch(*out);
}

void HashJoinExecutor::ChargeProbeRow(const Tuple& row) {
  meter_->ChargeTuples();
  if (spilled_) {
    probe_spill_bytes_ += SerializedTupleSize(row);
    while (probe_spill_bytes_ >= kPageSize) {
      meter_->ChargeBlockWrite();
      meter_->ChargeBlockRead();
      probe_spill_bytes_ -= kPageSize;
    }
  }
}

Tuple HashJoinExecutor::ConcatRows(const Tuple& build_row,
                                   const Tuple& probe_row) {
  Tuple out;
  out.reserve(build_row.size() + probe_row.size());
  out.insert(out.end(), build_row.begin(), build_row.end());
  out.insert(out.end(), probe_row.begin(), probe_row.end());
  return out;
}

Result<std::optional<Tuple>> HashJoinExecutor::Next() {
  for (;;) {
    // Emit pending matches for the current probe tuple.
    if (probe_tuple_.has_value()) {
      while (match_cursor_ >= 0) {
        const Tuple& build_row = build_rows_[match_cursor_];
        match_cursor_ = next_[match_cursor_];
        if (build_row[build_key_].Compare((*probe_tuple_)[probe_key_]) != 0) {
          continue;  // bucket shared by a different key
        }
        meter_->ChargeTuples();
        return std::optional<Tuple>(ConcatRows(build_row, *probe_tuple_));
      }
    }
    auto row = probe_->Next();
    if (!row.ok()) return row.status();
    if (!row->has_value()) return std::optional<Tuple>();
    ChargeProbeRow(**row);
    probe_tuple_ = std::move(*row);
    match_cursor_ = BucketHead((*probe_tuple_)[probe_key_]);
  }
}

Result<bool> HashJoinExecutor::NextBatch(TupleBatch* out) {
  if (fused_scan_ != nullptr) return NextBatchFused(out);
  out->Clear();
  while (out->size() < out->target_rows()) {
    if (probe_pos_ >= probe_batch_.size()) {
      probe_batch_.set_target_rows(out->target_rows());
      auto more = probe_->NextBatch(&probe_batch_);
      if (!more.ok()) return more.status();
      if (probe_batch_.empty()) break;
      probe_pos_ = 0;
      if (!spilled_) {
        // One bulk CPU charge for the pulled rows: the tuple path
        // charges the same rows one by one before the next fault
        // opportunity (a page fetch), so totals agree at every
        // abort point too.
        meter_->ChargeTuples(probe_batch_.size());
      }
    }
    // A probe row's matches are flushed in full (batches may overshoot
    // their soft target), so no partial-match cursor is needed here.
    const Tuple& probe = probe_batch_[probe_pos_++];
    if (spilled_) ChargeProbeRow(probe);  // per-row spill-byte stream
    for (int32_t idx = BucketHead(probe[probe_key_]); idx >= 0;
         idx = next_[idx]) {
      const Tuple& build_row = build_rows_[idx];
      if (build_row[build_key_].CompareInline(probe[probe_key_]) != 0) {
        continue;  // bucket shared by a different key
      }
      meter_->ChargeTuples();
      // Concat into a recycled slot with inlined per-value copies —
      // the per-output-row malloc and the variant copy visitation are
      // the two dominant costs of the tuple path's ConcatRows. A
      // recycled slot of the right width is overwritten in place so
      // its element storage is reused too.
      exec_internal::ConcatInto(out->AppendSlot(), build_row, probe);
    }
  }
  return exec_internal::FinishBatch(*out);
}

// --------------------------------------------------------- NestedLoopJoin

NestedLoopJoinExecutor::NestedLoopJoinExecutor(
    std::unique_ptr<Executor> outer, std::unique_ptr<Executor> inner,
    std::vector<JoinCondition> conditions, CostMeter* meter)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      conditions_(std::move(conditions)),
      meter_(meter) {
  schema_ = outer_->output_schema().Concat(inner_->output_schema());
}

Status NestedLoopJoinExecutor::Init() {
  SQP_RETURN_IF_ERROR(outer_->Init());
  SQP_RETURN_IF_ERROR(inner_->Init());
  TupleBatch batch;
  for (;;) {
    auto more = inner_->NextBatch(&batch);
    if (!more.ok()) return more.status();
    if (batch.empty()) break;
    meter_->ChargeTuples(batch.size());
    inner_rows_.insert(inner_rows_.end(),
                       std::make_move_iterator(batch.begin()),
                       std::make_move_iterator(batch.end()));
  }
  return Status::OK();
}

bool NestedLoopJoinExecutor::MatchesConditions(const Tuple& outer_row,
                                               const Tuple& inner_row) const {
  for (const auto& c : conditions_) {
    int cmp = outer_row[c.left_index].Compare(
        inner_row[c.right_index - outer_row.size()]);
    if (!EvalCompare(cmp, c.op)) return false;
  }
  return true;
}

Result<std::optional<Tuple>> NestedLoopJoinExecutor::Next() {
  for (;;) {
    if (!outer_tuple_.has_value()) {
      auto row = outer_->Next();
      if (!row.ok()) return row.status();
      if (!row->has_value()) return std::optional<Tuple>();
      meter_->ChargeTuples();
      outer_tuple_ = std::move(*row);
      inner_pos_ = 0;
    }
    while (inner_pos_ < inner_rows_.size()) {
      const Tuple& inner_row = inner_rows_[inner_pos_++];
      meter_->ChargeTuples();
      if (MatchesConditions(*outer_tuple_, inner_row)) {
        Tuple out = *outer_tuple_;
        out.insert(out.end(), inner_row.begin(), inner_row.end());
        return std::optional<Tuple>(std::move(out));
      }
    }
    outer_tuple_.reset();
  }
}

Result<bool> NestedLoopJoinExecutor::NextBatch(TupleBatch* out) {
  out->Clear();
  while (out->size() < out->target_rows()) {
    if (outer_pos_ >= outer_batch_.size()) {
      outer_batch_.set_target_rows(out->target_rows());
      auto more = outer_->NextBatch(&outer_batch_);
      if (!more.ok()) return more.status();
      if (outer_batch_.empty()) break;
      outer_pos_ = 0;
    }
    // Each outer row runs the full inner loop before the next one, so
    // the examined-tuple charge total matches the tuple path.
    const Tuple& outer_row = outer_batch_[outer_pos_++];
    meter_->ChargeTuples();
    meter_->ChargeTuples(inner_rows_.size());
    for (const Tuple& inner_row : inner_rows_) {
      if (MatchesConditions(outer_row, inner_row)) {
        exec_internal::ConcatInto(out->AppendSlot(), outer_row, inner_row);
      }
    }
  }
  return exec_internal::FinishBatch(*out);
}

// ----------------------------------------------------------- ColumnFilter

ColumnFilterExecutor::ColumnFilterExecutor(std::unique_ptr<Executor> child,
                                           std::vector<Condition> conditions,
                                           CostMeter* meter)
    : child_(std::move(child)),
      conditions_(std::move(conditions)),
      meter_(meter) {}

Status ColumnFilterExecutor::Init() { return child_->Init(); }

bool ColumnFilterExecutor::Passes(const Tuple& row) const {
  for (const auto& c : conditions_) {
    int cmp = row[c.left_index].Compare(row[c.right_index]);
    if (!EvalCompare(cmp, c.op)) return false;
  }
  return true;
}

Result<std::optional<Tuple>> ColumnFilterExecutor::Next() {
  for (;;) {
    auto row = child_->Next();
    if (!row.ok()) return row.status();
    if (!row->has_value()) return std::optional<Tuple>();
    meter_->ChargeTuples();
    if (Passes(**row)) return std::move(*row);
  }
}

Result<bool> ColumnFilterExecutor::NextBatch(TupleBatch* out) {
  out->Clear();
  child_batch_.set_target_rows(out->target_rows());
  while (out->size() < out->target_rows()) {
    auto more = child_->NextBatch(&child_batch_);
    if (!more.ok()) return more.status();
    if (child_batch_.empty()) break;
    meter_->ChargeTuples(child_batch_.size());
    for (Tuple& row : child_batch_) {
      if (Passes(row)) out->PushRow(std::move(row));
    }
  }
  return exec_internal::FinishBatch(*out);
}

// ------------------------------------------------------------------ Drain

Result<std::vector<Tuple>> DrainExecutor(Executor* exec, size_t batch_size) {
  SQP_RETURN_IF_ERROR(exec->Init());
  std::vector<Tuple> out;
  TupleBatch batch(batch_size);
  for (;;) {
    auto more = exec->NextBatch(&batch);
    if (!more.ok()) return more.status();
    if (batch.empty()) return out;
    // insert() grows geometrically, so the drain stays amortized O(n)
    // without knowing the result size up front.
    out.insert(out.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
}

}  // namespace sqp
