#include "exec/executors.h"

#include <cassert>

namespace sqp {

// ---------------------------------------------------------------- SeqScan

SeqScanExecutor::SeqScanExecutor(const TableInfo* table, BufferPool* pool,
                                 CostMeter* meter,
                                 std::vector<BoundSelection> predicates)
    : table_(table),
      pool_(pool),
      meter_(meter),
      predicates_(std::move(predicates)) {}

Status SeqScanExecutor::Init() {
  iter_.emplace(table_->heap->Scan());
  return Status::OK();
}

Result<std::optional<Tuple>> SeqScanExecutor::Next() {
  for (;;) {
    auto row = iter_->Next();
    if (!row.ok()) return row.status();
    if (!row->has_value()) return std::optional<Tuple>();
    meter_->ChargeTuples();
    if (EvalConjunction(predicates_, **row)) return std::move(*row);
  }
}

// -------------------------------------------------------------- IndexScan

IndexScanExecutor::IndexScanExecutor(const TableInfo* table,
                                     const BPlusTree* index, KeyRange range,
                                     BufferPool* pool, CostMeter* meter,
                                     std::vector<BoundSelection> residual)
    : table_(table),
      index_(index),
      range_(std::move(range)),
      pool_(pool),
      meter_(meter),
      residual_(std::move(residual)) {}

Status IndexScanExecutor::Init() {
  IndexScanStats stats;
  rids_ = index_->RangeScan(range_, &stats);
  // The memory-resident tree stands in for an on-disk B+-tree: charge
  // one block per level descended plus one per leaf touched.
  meter_->ChargeBlockRead(stats.height + stats.leaves_touched);
  pos_ = 0;
  return Status::OK();
}

Result<std::optional<Tuple>> IndexScanExecutor::Next() {
  while (pos_ < rids_.size()) {
    auto row = table_->heap->Fetch(rids_[pos_++]);
    if (!row.ok()) return row.status();
    meter_->ChargeTuples();
    if (EvalConjunction(residual_, *row)) {
      return std::optional<Tuple>(std::move(*row));
    }
  }
  return std::optional<Tuple>();
}

// ----------------------------------------------------------------- Filter

FilterExecutor::FilterExecutor(std::unique_ptr<Executor> child,
                               std::vector<BoundSelection> predicates,
                               CostMeter* meter)
    : child_(std::move(child)),
      predicates_(std::move(predicates)),
      meter_(meter) {}

Status FilterExecutor::Init() { return child_->Init(); }

Result<std::optional<Tuple>> FilterExecutor::Next() {
  for (;;) {
    auto row = child_->Next();
    if (!row.ok()) return row.status();
    if (!row->has_value()) return std::optional<Tuple>();
    meter_->ChargeTuples();
    if (EvalConjunction(predicates_, **row)) return std::move(*row);
  }
}

// ---------------------------------------------------------------- Project

ProjectExecutor::ProjectExecutor(std::unique_ptr<Executor> child,
                                 std::vector<size_t> column_indices,
                                 CostMeter* meter)
    : child_(std::move(child)),
      indices_(std::move(column_indices)),
      meter_(meter) {
  std::vector<Column> cols;
  cols.reserve(indices_.size());
  for (size_t idx : indices_) {
    cols.push_back(child_->output_schema().column(idx));
  }
  schema_ = Schema(std::move(cols));
}

Status ProjectExecutor::Init() { return child_->Init(); }

Result<std::optional<Tuple>> ProjectExecutor::Next() {
  auto row = child_->Next();
  if (!row.ok()) return row.status();
  if (!row->has_value()) return std::optional<Tuple>();
  meter_->ChargeTuples();
  Tuple out;
  out.reserve(indices_.size());
  for (size_t idx : indices_) out.push_back(std::move((**row)[idx]));
  return std::optional<Tuple>(std::move(out));
}

// --------------------------------------------------------------- HashJoin

HashJoinExecutor::HashJoinExecutor(std::unique_ptr<Executor> build,
                                   std::unique_ptr<Executor> probe,
                                   size_t build_key, size_t probe_key,
                                   CostMeter* meter)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_key_(build_key),
      probe_key_(probe_key),
      meter_(meter) {
  schema_ = build_->output_schema().Concat(probe_->output_schema());
}

Status HashJoinExecutor::Init() {
  SQP_RETURN_IF_ERROR(build_->Init());
  SQP_RETURN_IF_ERROR(probe_->Init());
  size_t build_bytes = 0;
  for (;;) {
    auto row = build_->Next();
    if (!row.ok()) return row.status();
    if (!row->has_value()) break;
    meter_->ChargeTuples();
    build_bytes += SerializedTupleSize(**row);
    size_t h = (**row)[build_key_].Hash();
    table_[h].push_back(std::move(**row));
  }
  // Grace spill: build side over budget means both inputs take an extra
  // partition-write + re-read pass. The build side is charged here; the
  // probe side is charged page by page as it streams (in Next).
  spilled_ = build_bytes >
             meter_->config().hash_join_memory_pages * kPageSize;
  if (spilled_) {
    uint64_t build_pages =
        static_cast<uint64_t>(build_bytes / kPageSize) + 1;
    meter_->ChargeBlockWrite(build_pages);
    meter_->ChargeBlockRead(build_pages);
  }
  return Status::OK();
}

Result<std::optional<Tuple>> HashJoinExecutor::Next() {
  for (;;) {
    // Emit pending matches for the current probe tuple.
    if (probe_tuple_.has_value() && matches_ != nullptr) {
      while (match_pos_ < matches_->size()) {
        const Tuple& build_row = (*matches_)[match_pos_++];
        if (build_row[build_key_].Compare((*probe_tuple_)[probe_key_]) != 0) {
          continue;  // hash collision
        }
        meter_->ChargeTuples();
        Tuple out = build_row;
        out.insert(out.end(), probe_tuple_->begin(), probe_tuple_->end());
        return std::optional<Tuple>(std::move(out));
      }
    }
    auto row = probe_->Next();
    if (!row.ok()) return row.status();
    if (!row->has_value()) return std::optional<Tuple>();
    meter_->ChargeTuples();
    if (spilled_) {
      probe_spill_bytes_ += SerializedTupleSize(**row);
      while (probe_spill_bytes_ >= kPageSize) {
        meter_->ChargeBlockWrite();
        meter_->ChargeBlockRead();
        probe_spill_bytes_ -= kPageSize;
      }
    }
    probe_tuple_ = std::move(*row);
    auto it = table_.find((*probe_tuple_)[probe_key_].Hash());
    matches_ = it == table_.end() ? nullptr : &it->second;
    match_pos_ = 0;
  }
}

// --------------------------------------------------------- NestedLoopJoin

NestedLoopJoinExecutor::NestedLoopJoinExecutor(
    std::unique_ptr<Executor> outer, std::unique_ptr<Executor> inner,
    std::vector<JoinCondition> conditions, CostMeter* meter)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      conditions_(std::move(conditions)),
      meter_(meter) {
  schema_ = outer_->output_schema().Concat(inner_->output_schema());
}

Status NestedLoopJoinExecutor::Init() {
  SQP_RETURN_IF_ERROR(outer_->Init());
  SQP_RETURN_IF_ERROR(inner_->Init());
  for (;;) {
    auto row = inner_->Next();
    if (!row.ok()) return row.status();
    if (!row->has_value()) break;
    meter_->ChargeTuples();
    inner_rows_.push_back(std::move(**row));
  }
  return Status::OK();
}

Result<std::optional<Tuple>> NestedLoopJoinExecutor::Next() {
  for (;;) {
    if (!outer_tuple_.has_value()) {
      auto row = outer_->Next();
      if (!row.ok()) return row.status();
      if (!row->has_value()) return std::optional<Tuple>();
      meter_->ChargeTuples();
      outer_tuple_ = std::move(*row);
      inner_pos_ = 0;
    }
    while (inner_pos_ < inner_rows_.size()) {
      const Tuple& inner_row = inner_rows_[inner_pos_++];
      meter_->ChargeTuples();
      bool match = true;
      for (const auto& c : conditions_) {
        int cmp = (*outer_tuple_)[c.left_index].Compare(
            inner_row[c.right_index - outer_tuple_->size()]);
        if (!EvalCompare(cmp, c.op)) {
          match = false;
          break;
        }
      }
      if (match) {
        Tuple out = *outer_tuple_;
        out.insert(out.end(), inner_row.begin(), inner_row.end());
        return std::optional<Tuple>(std::move(out));
      }
    }
    outer_tuple_.reset();
  }
}

// ----------------------------------------------------------- ColumnFilter

ColumnFilterExecutor::ColumnFilterExecutor(std::unique_ptr<Executor> child,
                                           std::vector<Condition> conditions,
                                           CostMeter* meter)
    : child_(std::move(child)),
      conditions_(std::move(conditions)),
      meter_(meter) {}

Status ColumnFilterExecutor::Init() { return child_->Init(); }

Result<std::optional<Tuple>> ColumnFilterExecutor::Next() {
  for (;;) {
    auto row = child_->Next();
    if (!row.ok()) return row.status();
    if (!row->has_value()) return std::optional<Tuple>();
    meter_->ChargeTuples();
    bool pass = true;
    for (const auto& c : conditions_) {
      int cmp = (**row)[c.left_index].Compare((**row)[c.right_index]);
      if (!EvalCompare(cmp, c.op)) {
        pass = false;
        break;
      }
    }
    if (pass) return std::move(*row);
  }
}

// ------------------------------------------------------------------ Drain

Result<std::vector<Tuple>> DrainExecutor(Executor* exec) {
  SQP_RETURN_IF_ERROR(exec->Init());
  std::vector<Tuple> out;
  for (;;) {
    auto row = exec->Next();
    if (!row.ok()) return row.status();
    if (!row->has_value()) return out;
    out.push_back(std::move(**row));
  }
}

}  // namespace sqp
