// Sorting and sort-merge join.
//
// SortExecutor implements an external-sort cost model: inputs larger
// than the configured sort memory charge the extra write+read passes a
// disk-based merge sort would perform. SortMergeJoinExecutor merges two
// sorted inputs with full duplicate-group handling — the engine's
// alternative to the (Grace) hash join.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "exec/executors.h"

namespace sqp {

struct SortKey {
  size_t column_index = 0;
  bool descending = false;
};

class SortExecutor : public Executor {
 public:
  SortExecutor(std::unique_ptr<Executor> child, std::vector<SortKey> keys,
               CostMeter* meter);

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  Result<bool> NextBatch(TupleBatch* out) override;
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

  /// Did the sort exceed its memory budget (external merge passes)?
  bool spilled() const { return spilled_; }

 private:
  std::unique_ptr<Executor> child_;
  std::vector<SortKey> keys_;
  CostMeter* meter_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
  bool spilled_ = false;
};

/// Merge join of two inputs sorted ascending on their join keys.
/// Handles duplicate key groups on both sides (cross product within a
/// group). Output schema = left ++ right.
class SortMergeJoinExecutor : public Executor {
 public:
  /// `left` and `right` must already be sorted on the key columns
  /// (typically wrapped in SortExecutors by the caller).
  SortMergeJoinExecutor(std::unique_ptr<Executor> left,
                        std::unique_ptr<Executor> right, size_t left_key,
                        size_t right_key, CostMeter* meter);

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  const Schema& output_schema() const override { return schema_; }

 private:
  /// Refill the right-side group buffer with all rows equal to
  /// `right_ahead_`'s key.
  Status FillRightGroup();

  std::unique_ptr<Executor> left_;
  std::unique_ptr<Executor> right_;
  size_t left_key_;
  size_t right_key_;
  CostMeter* meter_;
  Schema schema_;

  std::optional<Tuple> left_row_;
  std::optional<Tuple> right_ahead_;  // next unconsumed right row
  std::vector<Tuple> right_group_;    // rows sharing the current key
  size_t group_pos_ = 0;
  bool right_group_valid_ = false;
};

}  // namespace sqp
