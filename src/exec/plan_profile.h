// EXPLAIN ANALYZE operator profiling (DESIGN.md §11).
//
// A PlanProfile mirrors the executor tree built for one query: one
// OperatorProfile node per operator, holding the planner's estimated
// cardinality next to the actuals observed while the query ran —
// output rows, batches produced, average batch fill, buffer-pool pages
// pinned, the simulated CostMeter charge, and real wall time. Charge
// and time figures are *inclusive of children* (like est_cost), so a
// node's numbers answer "what did this subtree cost".
//
// Collection is a decorator: MakeProfiled wraps any Executor and
// snapshots the shared CostMeter / pages-pinned counter / wall clock
// around every Init/Next/NextBatch call. Profiling never charges the
// meter, so simulated results and the DESIGN.md §10 charge-parity
// invariant are untouched; it is enabled only when a caller asks for it
// (ExecuteOptions::explain_analyze).
//
// Q-error (the classic cardinality-estimation accuracy metric):
//   q = max(est/act, act/est), with est and act clamped to >= 1 row,
// so q = 1 is a perfect estimate and q is symmetric in over/under
// estimation.
//
// Rendering is deterministic: two identical runs produce byte-identical
// FormatText/FormatJson output. Real wall time is recorded but excluded
// from rendering unless `include_wall` is set, precisely to keep the
// default output replay-stable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/cost_meter.h"
#include "exec/executors.h"

namespace sqp {

struct OperatorProfile {
  std::string op;      // "SeqScan", "HashJoin", "Limit", ...
  std::string detail;  // table / predicates / join keys
  /// Planner's output-cardinality estimate; < 0 = no estimate exists
  /// for this operator (rendered as the child's estimate by callers
  /// that have one, or as est=? otherwise).
  double est_rows = -1;

  // --- actuals (filled in while the query runs) --------------------
  uint64_t act_rows = 0;   // rows this operator produced
  uint64_t batches = 0;    // non-empty batches produced
  uint64_t pages_pinned = 0;   // subtree page pins (batch scans)
  uint64_t tuples_charged = 0; // subtree CostMeter tuple charges
  uint64_t blocks_charged = 0; // subtree CostMeter block charges
  /// Subtree pages charged as simulated cross-shard transfer (the
  /// planner's shuffle charge, DESIGN.md §14). 0 for shard-local and
  /// single-node operators; the [cross-shard] tag in `detail` says
  /// which joins could charge.
  uint64_t cross_shard_pages = 0;
  double sim_seconds = 0;      // subtree simulated charge
  double wall_seconds = 0;     // subtree real time (non-deterministic)

  std::vector<std::unique_ptr<OperatorProfile>> children;

  /// max(est/act, act/est) with both clamped to >= 1; returns the
  /// clamped estimate itself when no estimate exists (est_rows < 0 is
  /// treated as est = act, i.e. q = 1 — callers normally assign every
  /// node an estimate).
  double QError() const;
  /// act_rows / batches (0 when no batch was produced).
  double AvgFill() const;
};

/// Profile of one executed query: the operator tree plus renderers.
struct PlanProfile {
  std::unique_ptr<OperatorProfile> root;

  /// Resource attribution of the whole execution (DESIGN.md §16):
  /// which session the query charged and its inclusive meter delta.
  /// Filled by Database::Execute* when an Attribution is active;
  /// rendered as an "attribution" block in FormatJson and a trailing
  /// line in FormatText when `present`.
  struct AttributionInfo {
    bool present = false;
    std::string session;  // "" renders as "(system)"
    double seconds = 0;   // inclusive simulated seconds
    uint64_t blocks = 0;  // inclusive block reads + writes
    uint64_t tuples = 0;  // inclusive tuple charges
  };
  AttributionInfo attribution;

  /// Re-root the tree under a new operator (used when decorations —
  /// Aggregate/Sort/Limit/Project — are stacked on top of an already
  /// profiled subtree). Returns the new root node.
  OperatorProfile* PushRoot(std::string op, std::string detail,
                            double est_rows);

  /// Indented text tree, one operator per line:
  ///   op(detail) est=N act=N q=N batches=N fill=N pages=N
  ///   tuples=N blocks=N sim=Ns [wall=Ns]
  std::string FormatText(bool include_wall = false) const;

  /// Compact single-line JSON tree with the same fields.
  std::string FormatJson(bool include_wall = false) const;
};

/// Wrap `inner` so every call accumulates into `node` (which must
/// outlive the returned executor). `meter` is the query's CostMeter.
std::unique_ptr<Executor> MakeProfiled(std::unique_ptr<Executor> inner,
                                       const CostMeter* meter,
                                       OperatorProfile* node);

}  // namespace sqp
