#include "exec/sort.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>

namespace sqp {

// ------------------------------------------------------------------ Sort

SortExecutor::SortExecutor(std::unique_ptr<Executor> child,
                           std::vector<SortKey> keys, CostMeter* meter)
    : child_(std::move(child)), keys_(std::move(keys)), meter_(meter) {}

Status SortExecutor::Init() {
  SQP_RETURN_IF_ERROR(child_->Init());
  size_t bytes = 0;
  TupleBatch batch;
  for (;;) {
    auto more = child_->NextBatch(&batch);
    if (!more.ok()) return more.status();
    if (batch.empty()) break;
    meter_->ChargeTuples(batch.size());
    for (Tuple& row : batch) {
      bytes += SerializedTupleSize(row);
      rows_.push_back(std::move(row));
    }
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Tuple& a, const Tuple& b) {
                     for (const SortKey& key : keys_) {
                       int c = a[key.column_index].Compare(
                           b[key.column_index]);
                       if (c != 0) return key.descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  // Sort CPU: ~n log2 n comparisons.
  if (rows_.size() > 1) {
    meter_->ChargeTuples(static_cast<uint64_t>(
        static_cast<double>(rows_.size()) *
        std::log2(static_cast<double>(rows_.size()))));
  }
  // External sort: every memory-sized run is written out and merged
  // back in — one extra write+read pass over the data per merge level.
  size_t budget_bytes =
      meter_->config().hash_join_memory_pages * kPageSize;
  if (bytes > budget_bytes && budget_bytes > 0) {
    spilled_ = true;
    uint64_t pages = static_cast<uint64_t>(bytes / kPageSize) + 1;
    double runs = std::ceil(static_cast<double>(bytes) / budget_bytes);
    // Merge fan-in ~ budget pages; one pass suffices until runs exceed
    // it (never at our scales), so charge a single spill pass scaled by
    // the (tiny) chance of more.
    uint64_t passes = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(std::log(runs) /
                         std::log(std::max(2.0, static_cast<double>(
                                                    budget_bytes /
                                                    kPageSize))))));
    meter_->ChargeBlockWrite(pages * passes);
    meter_->ChargeBlockRead(pages * passes);
  }
  pos_ = 0;
  return Status::OK();
}

Result<std::optional<Tuple>> SortExecutor::Next() {
  if (pos_ >= rows_.size()) return std::optional<Tuple>();
  meter_->ChargeTuples();
  // The sorted buffer is consumed exactly once: move, don't copy.
  return std::optional<Tuple>(std::move(rows_[pos_++]));
}

Result<bool> SortExecutor::NextBatch(TupleBatch* out) {
  out->Clear();
  size_t n = std::min(out->target_rows(), rows_.size() - pos_);
  if (n > 0) {
    meter_->ChargeTuples(n);
    for (size_t i = 0; i < n; i++) {
      out->PushRow(std::move(rows_[pos_ + i]));
    }
    pos_ += n;
  }
  return exec_internal::FinishBatch(*out);
}

// -------------------------------------------------------- SortMergeJoin

SortMergeJoinExecutor::SortMergeJoinExecutor(std::unique_ptr<Executor> left,
                                             std::unique_ptr<Executor> right,
                                             size_t left_key,
                                             size_t right_key,
                                             CostMeter* meter)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(left_key),
      right_key_(right_key),
      meter_(meter) {
  schema_ = left_->output_schema().Concat(right_->output_schema());
}

Status SortMergeJoinExecutor::Init() {
  SQP_RETURN_IF_ERROR(left_->Init());
  SQP_RETURN_IF_ERROR(right_->Init());
  auto l = left_->Next();
  if (!l.ok()) return l.status();
  if (l->has_value()) left_row_ = std::move(**l);
  auto r = right_->Next();
  if (!r.ok()) return r.status();
  if (r->has_value()) right_ahead_ = std::move(**r);
  return Status::OK();
}

Status SortMergeJoinExecutor::FillRightGroup() {
  right_group_.clear();
  group_pos_ = 0;
  right_group_valid_ = true;
  if (!right_ahead_.has_value()) return Status::OK();
  Value key = (*right_ahead_)[right_key_];
  right_group_.push_back(std::move(*right_ahead_));
  right_ahead_.reset();
  for (;;) {
    auto r = right_->Next();
    if (!r.ok()) return r.status();
    if (!r->has_value()) return Status::OK();
    meter_->ChargeTuples();
    if ((**r)[right_key_].Compare(key) == 0) {
      right_group_.push_back(std::move(**r));
    } else {
      right_ahead_ = std::move(**r);
      return Status::OK();
    }
  }
}

Result<std::optional<Tuple>> SortMergeJoinExecutor::Next() {
  for (;;) {
    if (!left_row_.has_value()) return std::optional<Tuple>();

    // Make sure a right group is buffered.
    if (!right_group_valid_ || right_group_.empty()) {
      if (!right_ahead_.has_value()) return std::optional<Tuple>();
      SQP_RETURN_IF_ERROR(FillRightGroup());
      if (right_group_.empty()) return std::optional<Tuple>();
    }

    int cmp = (*left_row_)[left_key_].Compare(right_group_[0][right_key_]);
    if (cmp == 0) {
      if (group_pos_ < right_group_.size()) {
        meter_->ChargeTuples();
        Tuple out = *left_row_;
        const Tuple& r = right_group_[group_pos_++];
        out.insert(out.end(), r.begin(), r.end());
        return std::optional<Tuple>(std::move(out));
      }
      // Group exhausted for this left row: advance left; equal-keyed
      // left rows replay the same group.
      Value prev_key = (*left_row_)[left_key_];
      auto l = left_->Next();
      if (!l.ok()) return l.status();
      if (!l->has_value()) {
        left_row_.reset();
        return std::optional<Tuple>();
      }
      meter_->ChargeTuples();
      left_row_ = std::move(**l);
      group_pos_ = 0;
      if ((*left_row_)[left_key_].Compare(prev_key) != 0) {
        right_group_valid_ = false;
      }
    } else if (cmp < 0) {
      auto l = left_->Next();
      if (!l.ok()) return l.status();
      if (!l->has_value()) {
        left_row_.reset();
        return std::optional<Tuple>();
      }
      meter_->ChargeTuples();
      left_row_ = std::move(**l);
      group_pos_ = 0;
    } else {
      // Left is past this group: discard it and buffer the next.
      right_group_valid_ = false;
      if (!right_ahead_.has_value()) return std::optional<Tuple>();
    }
  }
}

}  // namespace sqp
