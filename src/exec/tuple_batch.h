// Batches of tuples flowing between executors (DESIGN.md §10).
//
// The execution engine is batch-at-a-time: Executor::NextBatch fills a
// TupleBatch with ~1k rows per virtual call instead of paying a virtual
// dispatch, a Result<optional<Tuple>> round trip, and per-tuple branch
// overhead for every row. Batching changes only real wall-clock cost —
// simulated CostMeter charges are per tuple / per page and independent
// of how rows are grouped in flight.
#pragma once

#include <cstddef>
#include <vector>

#include "storage/tuple.h"

namespace sqp {

/// Default row target of one batch. Large enough to amortize the
/// per-batch virtual call to noise, small enough that a batch of wide
/// rows stays cache-resident.
inline constexpr size_t kDefaultExecBatchSize = 1024;

/// A resizable batch of rows produced by Executor::NextBatch.
/// `target_rows` is a *soft* capacity: producers aim for it but may
/// overshoot by bounded amounts (a page-at-a-time scan always finishes
/// the page it pinned), and a batch is smaller than the target only at
/// end of stream.
class TupleBatch {
 public:
  explicit TupleBatch(size_t target_rows = kDefaultExecBatchSize)
      : target_rows_(target_rows == 0 ? 1 : target_rows) {
    rows_.reserve(target_rows_);
  }

  size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }
  const Tuple& operator[](size_t i) const { return rows_[i]; }
  Tuple& operator[](size_t i) { return rows_[i]; }

  /// Iteration covers the live rows only.
  Tuple* begin() { return rows_.data(); }
  Tuple* end() { return rows_.data() + live_; }
  const Tuple* begin() const { return rows_.data(); }
  const Tuple* end() const { return rows_.data() + live_; }

  size_t target_rows() const { return target_rows_; }
  void set_target_rows(size_t target) {
    target_rows_ = target == 0 ? 1 : target;
  }

  /// Append a row slot and return it for the producer to fill. The
  /// slot may still HOLD a recycled row's stale values — the caller
  /// must overwrite every element (in place, via Value::AssignFrom /
  /// Set, which reuse element storage) or clear() it first. In steady
  /// state a producer that fills batches through AppendSlot allocates
  /// only for rows the consumer actually keeps (moves out of the
  /// batch) — rows that are merely read, or filtered out upstream,
  /// cycle their storage forever.
  Tuple& AppendSlot() {
    if (live_ == rows_.size()) rows_.emplace_back();
    return rows_[live_++];
  }

  /// Append an already-built row. Producers whose rows originate
  /// elsewhere (the Next() adapter, operators moving child rows
  /// through) use this; hot kernels prefer AppendSlot + in-place fill.
  void PushRow(Tuple&& row) { AppendSlot() = std::move(row); }

  /// Empty the batch. O(1): rows beyond the live count stay behind as
  /// carcasses whose heap storage the next fill round reuses in place.
  void Clear() { live_ = 0; }

 private:
  size_t target_rows_;
  size_t live_ = 0;
  // rows_[0..live_) are the batch's rows; rows_[live_..) are recycled
  // carcasses retained for storage reuse (bounded by the largest batch
  // this instance ever held).
  std::vector<Tuple> rows_;
};

namespace exec_internal {

/// Append a copy of `v` to `dst` through an inlined type switch. The
/// generic variant copy constructor goes through non-inlined
/// visitation (~20ns per value); this compiles down to a predictable
/// branch plus a store for numerics. Batch kernels that concatenate
/// rows (joins) use it in their inner loops.
inline void AppendValueCopy(Tuple& dst, const Value& v) {
  switch (v.type()) {
    case TypeId::kInt64:
      dst.emplace_back(v.AsInt64());
      break;
    case TypeId::kDouble:
      dst.emplace_back(v.AsDouble());
      break;
    case TypeId::kString:
      dst.emplace_back(v.AsString());
      break;
  }
}

/// Overwrite `dst` with `left ++ right` (join output kernel). A dst of
/// the right width — a recycled AppendSlot from the same join — is
/// assigned element-wise in place, reusing element storage; otherwise
/// it is rebuilt with one reserve.
inline void ConcatInto(Tuple& dst, const Tuple& left, const Tuple& right) {
  const size_t total = left.size() + right.size();
  if (dst.size() == total) {
    size_t i = 0;
    for (const Value& v : left) dst[i++].AssignFrom(v);
    for (const Value& v : right) dst[i++].AssignFrom(v);
  } else {
    dst.clear();
    dst.reserve(total);
    for (const Value& v : left) AppendValueCopy(dst, v);
    for (const Value& v : right) AppendValueCopy(dst, v);
  }
}

/// Record one produced batch in the `exec.batch.*` registry metrics
/// (batches produced, rows, running average fill vs. target) and return
/// the standard NextBatch result: false exactly at end of stream (empty
/// batch). Every native NextBatch implementation ends with
/// `return FinishBatch(*out);`.
bool FinishBatch(const TupleBatch& out);

/// Count one page pinned by a page-at-a-time scan
/// (`exec.batch.pages_pinned`).
void NotePagePinned();

}  // namespace exec_internal

}  // namespace sqp
