// Hash aggregation: GROUP BY + COUNT/SUM/AVG/MIN/MAX.
//
// The paper's framework targets conjunctive (SPJ) queries and notes the
// formulation "would remain valid for general queries as well, e.g.,
// queries with aggregates" (§2). This operator provides that extension:
// aggregation sits on top of the (speculatively rewritten) SPJ core, so
// speculation benefits aggregate queries unchanged.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/agg_func.h"
#include "exec/executors.h"

namespace sqp {

struct AggSpec {
  AggFunc func = AggFunc::kCount;
  /// Input column; ignored for COUNT(*) (use kStar).
  size_t column_index = 0;
  static constexpr size_t kStar = static_cast<size_t>(-1);
  /// Output column name ("count(*)", "sum(l_quantity)", ...).
  std::string output_name;
};

class HashAggregateExecutor : public Executor {
 public:
  /// Groups by `group_by` columns (possibly empty: one global group)
  /// and computes `aggregates` per group. Output schema: the group-by
  /// columns followed by one column per aggregate.
  HashAggregateExecutor(std::unique_ptr<Executor> child,
                        std::vector<size_t> group_by,
                        std::vector<AggSpec> aggregates, CostMeter* meter);

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  Result<bool> NextBatch(TupleBatch* out) override;
  const Schema& output_schema() const override { return schema_; }

 private:
  struct AggState {
    double sum = 0;
    uint64_t count = 0;
    std::optional<Value> min;
    std::optional<Value> max;
  };
  struct Group {
    Tuple keys;
    std::vector<AggState> states;
  };

  Value Finalize(const AggSpec& spec, const AggState& state) const;
  void Accumulate(const Tuple& t);
  std::optional<Tuple> EmitNext();

  std::unique_ptr<Executor> child_;
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggregates_;
  CostMeter* meter_;
  Schema schema_;

  std::map<std::string, Group> groups_;  // key string -> group
  std::map<std::string, Group>::const_iterator out_it_;
  bool emitted_global_empty_ = false;
};

/// LIMIT n on top of any child.
///
/// NextBatch is native (fills the output batch directly and reports
/// `exec.batch.*` metrics via FinishBatch) but pulls its *child* at
/// tuple grain: LIMIT must stop pulling — and charging — the child
/// after exactly `limit` rows, and a batch-grain child pull would
/// over-produce (page-at-a-time scans finish the page they pinned),
/// changing simulated CostMeter totals relative to the tuple engine.
/// Tuple-grain child pulls are the charge-parity-preserving strategy
/// (DESIGN.md §10); exec_batch_test's differential harness enforces it.
class LimitExecutor : public Executor {
 public:
  LimitExecutor(std::unique_ptr<Executor> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Init() override { return child_->Init(); }
  Result<std::optional<Tuple>> Next() override {
    if (produced_ >= limit_) return std::optional<Tuple>();
    auto row = child_->Next();
    if (!row.ok()) return row.status();
    if (row->has_value()) produced_++;
    return row;
  }
  Result<bool> NextBatch(TupleBatch* out) override {
    out->Clear();
    while (out->size() < out->target_rows() && produced_ < limit_) {
      auto row = child_->Next();
      if (!row.ok()) return row.status();
      if (!row->has_value()) break;
      produced_++;
      out->PushRow(std::move(**row));
    }
    return exec_internal::FinishBatch(*out);
  }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

 private:
  std::unique_ptr<Executor> child_;
  uint64_t limit_;
  uint64_t produced_ = 0;
};

}  // namespace sqp
