#include "exec/materializer.h"

#include "common/fault_injector.h"

namespace sqp {

Result<TableInfo*> MaterializeInto(Catalog* catalog, BufferPool* pool,
                                   CostMeter* meter, Executor* source,
                                   const std::string& table_name,
                                   bool is_materialized, uint32_t home_node) {
  (void)meter;  // write I/O charges through the buffer pool flush below
  auto table = catalog->CreateTable(table_name, source->output_schema(),
                                    is_materialized);
  if (!table.ok()) return table.status();
  TableInfo* info = *table;
  if (home_node != PageAllocOptions::kAnyNode &&
      info->heap->placement().shards <= 1) {
    // Pin the (unsharded, node-sticky) result to the cost model's
    // chosen home before the first append claims a page.
    HeapPlacement placement = info->heap->placement();
    placement.home_node = home_node;
    info->heap->SetPlacement(placement);
  }

  Status init = source->Init();
  if (!init.ok()) {
    (void)catalog->DropTable(table_name);
    return init;
  }

  TableStats stats;
  stats.Begin(info->schema);
  // Batch pull, but strictly row-at-a-time appends: the per-row
  // "materialize.append" fault check must fire in the same hit-count
  // order as the tuple engine so chaos schedules stay bit-identical.
  TupleBatch batch;
  for (;;) {
    auto more = source->NextBatch(&batch);
    if (!more.ok()) {
      (void)catalog->DropTable(table_name);
      return more.status();
    }
    if (batch.empty()) break;
    for (const Tuple& row : batch) {
      if (FaultInjector::Global().armed()) {
        Status injected = FaultInjector::Global().Check("materialize.append");
        if (!injected.ok()) {
          (void)catalog->DropTable(table_name);
          return injected;
        }
      }
      stats.Observe(row);
      auto rid = info->heap->Append(row);
      if (!rid.ok()) {
        (void)catalog->DropTable(table_name);
        return rid.status();
      }
    }
  }
  stats.Finish(info->heap->page_count());
  info->stats = std::move(stats);

  // Persist the result: every page of the new table goes to disk. A
  // flush failure abandons the half-built table (pages released).
  for (page_id_t page_id : info->heap->pages()) {
    Status flushed = pool->FlushPage(page_id);
    if (!flushed.ok()) {
      (void)catalog->DropTable(table_name);
      return flushed;
    }
  }
  return info;
}

}  // namespace sqp
