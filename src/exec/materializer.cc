#include "exec/materializer.h"

namespace sqp {

Result<TableInfo*> MaterializeInto(Catalog* catalog, BufferPool* pool,
                                   CostMeter* meter, Executor* source,
                                   const std::string& table_name,
                                   bool is_materialized) {
  (void)meter;  // write I/O charges through the buffer pool flush below
  auto table = catalog->CreateTable(table_name, source->output_schema(),
                                    is_materialized);
  if (!table.ok()) return table.status();
  TableInfo* info = *table;

  Status init = source->Init();
  if (!init.ok()) {
    (void)catalog->DropTable(table_name);
    return init;
  }

  TableStats stats;
  stats.Begin(info->schema);
  for (;;) {
    auto row = source->Next();
    if (!row.ok()) {
      (void)catalog->DropTable(table_name);
      return row.status();
    }
    if (!row->has_value()) break;
    stats.Observe(**row);
    auto rid = info->heap->Append(**row);
    if (!rid.ok()) {
      (void)catalog->DropTable(table_name);
      return rid.status();
    }
  }
  stats.Finish(info->heap->page_count());
  info->stats = std::move(stats);

  // Persist the result: every page of the new table goes to disk.
  for (page_id_t page_id : info->heap->pages()) {
    pool->FlushPage(page_id);
  }
  return info;
}

}  // namespace sqp
