#include "exec/expression.h"

namespace sqp {

bool EvalConjunction(const std::vector<BoundSelection>& preds,
                     const Tuple& tuple) {
  for (const auto& p : preds) {
    if (!p.Eval(tuple)) return false;
  }
  return true;
}

void EvalConjunctionBatch(const std::vector<BoundSelection>& preds,
                          const Tuple* rows, size_t count,
                          std::vector<uint32_t>* selection) {
  selection->clear();
  if (count == 0) return;
  if (preds.empty()) {
    selection->reserve(count);
    for (size_t i = 0; i < count; i++) {
      selection->push_back(static_cast<uint32_t>(i));
    }
    return;
  }
  // First predicate seeds the selection...
  {
    const BoundSelection& p = preds[0];
    selection->reserve(count);
    for (size_t i = 0; i < count; i++) {
      if (p.Eval(rows[i])) selection->push_back(static_cast<uint32_t>(i));
    }
  }
  // ...each later predicate compacts the survivors in place.
  for (size_t k = 1; k < preds.size() && !selection->empty(); k++) {
    const BoundSelection& p = preds[k];
    size_t kept = 0;
    for (uint32_t idx : *selection) {
      if (p.Eval(rows[idx])) (*selection)[kept++] = idx;
    }
    selection->resize(kept);
  }
}

Result<BoundSelection> BindSelection(const SelectionPred& pred,
                                     const Schema& schema) {
  auto idx = schema.ColumnIndex(pred.column);
  if (!idx.has_value()) {
    return Status::NotFound("column " + pred.column + " not in schema " +
                            schema.ToString());
  }
  return BoundSelection{*idx, pred.op, pred.constant};
}

Result<std::vector<BoundSelection>> BindSelections(
    const std::vector<SelectionPred>& preds, const Schema& schema) {
  std::vector<BoundSelection> out;
  out.reserve(preds.size());
  for (const auto& p : preds) {
    auto bound = BindSelection(p, schema);
    if (!bound.ok()) return bound.status();
    out.push_back(*bound);
  }
  return out;
}

}  // namespace sqp
