#include "exec/expression.h"

namespace sqp {

bool EvalConjunction(const std::vector<BoundSelection>& preds,
                     const Tuple& tuple) {
  for (const auto& p : preds) {
    if (!p.Eval(tuple)) return false;
  }
  return true;
}

Result<BoundSelection> BindSelection(const SelectionPred& pred,
                                     const Schema& schema) {
  auto idx = schema.ColumnIndex(pred.column);
  if (!idx.has_value()) {
    return Status::NotFound("column " + pred.column + " not in schema " +
                            schema.ToString());
  }
  return BoundSelection{*idx, pred.op, pred.constant};
}

Result<std::vector<BoundSelection>> BindSelections(
    const std::vector<SelectionPred>& preds, const Schema& schema) {
  std::vector<BoundSelection> out;
  out.reserve(preds.size());
  for (const auto& p : preds) {
    auto bound = BindSelection(p, schema);
    if (!bound.ok()) return bound.status();
    out.push_back(*bound);
  }
  return out;
}

}  // namespace sqp
