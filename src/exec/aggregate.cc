#include "exec/aggregate.h"

#include <cassert>

namespace sqp {

HashAggregateExecutor::HashAggregateExecutor(std::unique_ptr<Executor> child,
                                             std::vector<size_t> group_by,
                                             std::vector<AggSpec> aggregates,
                                             CostMeter* meter)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggregates_(std::move(aggregates)),
      meter_(meter) {
  std::vector<Column> cols;
  const Schema& in = child_->output_schema();
  for (size_t idx : group_by_) cols.push_back(in.column(idx));
  for (const AggSpec& spec : aggregates_) {
    TypeId type = TypeId::kDouble;
    if (spec.func == AggFunc::kCount) {
      type = TypeId::kInt64;
    } else if (spec.column_index != AggSpec::kStar &&
               (spec.func == AggFunc::kMin || spec.func == AggFunc::kMax)) {
      type = in.column(spec.column_index).type;
    }
    cols.push_back(Column{spec.output_name, type});
  }
  schema_ = Schema(std::move(cols));
}

Status HashAggregateExecutor::Init() {
  SQP_RETURN_IF_ERROR(child_->Init());
  TupleBatch batch;
  for (;;) {
    auto more = child_->NextBatch(&batch);
    if (!more.ok()) return more.status();
    if (batch.empty()) break;
    meter_->ChargeTuples(batch.size());
    for (const Tuple& t : batch) Accumulate(t);
  }
  out_it_ = groups_.begin();
  return Status::OK();
}

void HashAggregateExecutor::Accumulate(const Tuple& t) {
  std::string key;
  for (size_t idx : group_by_) {
    key += t[idx].ToString();
    key += "|";
  }
  Group& group = groups_[key];
  if (group.states.empty()) {
    group.states.resize(aggregates_.size());
    for (size_t idx : group_by_) group.keys.push_back(t[idx]);
  }
  for (size_t a = 0; a < aggregates_.size(); a++) {
    const AggSpec& spec = aggregates_[a];
    AggState& state = group.states[a];
    state.count++;
    if (spec.column_index == AggSpec::kStar) continue;
    const Value& v = t[spec.column_index];
    if (v.is_numeric()) state.sum += v.NumericValue();
    if (!state.min.has_value() || v < *state.min) state.min = v;
    if (!state.max.has_value() || v > *state.max) state.max = v;
  }
}

Value HashAggregateExecutor::Finalize(const AggSpec& spec,
                                      const AggState& state) const {
  switch (spec.func) {
    case AggFunc::kCount:
      return Value(static_cast<int64_t>(state.count));
    case AggFunc::kSum:
      return Value(state.sum);
    case AggFunc::kAvg:
      return Value(state.count > 0 ? state.sum / state.count : 0.0);
    case AggFunc::kMin:
      return state.min.value_or(Value(0.0));
    case AggFunc::kMax:
      return state.max.value_or(Value(0.0));
  }
  return Value(0.0);
}

std::optional<Tuple> HashAggregateExecutor::EmitNext() {
  if (groups_.empty() && group_by_.empty() && !emitted_global_empty_) {
    // Global aggregate over an empty input: one row of zero counts.
    emitted_global_empty_ = true;
    Tuple out;
    AggState empty;
    for (const AggSpec& spec : aggregates_) {
      out.push_back(Finalize(spec, empty));
    }
    return out;
  }
  if (out_it_ == groups_.end()) return std::nullopt;
  meter_->ChargeTuples();
  const Group& group = out_it_->second;
  ++out_it_;
  Tuple out;
  out.reserve(group.keys.size() + aggregates_.size());
  out.insert(out.end(), group.keys.begin(), group.keys.end());
  for (size_t a = 0; a < aggregates_.size(); a++) {
    out.push_back(Finalize(aggregates_[a], group.states[a]));
  }
  return out;
}

Result<std::optional<Tuple>> HashAggregateExecutor::Next() {
  return std::optional<Tuple>(EmitNext());
}

Result<bool> HashAggregateExecutor::NextBatch(TupleBatch* out) {
  out->Clear();
  while (out->size() < out->target_rows()) {
    auto row = EmitNext();
    if (!row.has_value()) break;
    out->PushRow(std::move(*row));
  }
  return exec_internal::FinishBatch(*out);
}

}  // namespace sqp
