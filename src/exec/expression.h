// Bound predicate expressions evaluated against tuples.
//
// The engine's queries are conjunctive, so an expression is simply a
// conjunction of bound comparisons (column index vs constant). Join
// conditions are bound column-column equalities.
#pragma once

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/compare_op.h"
#include "common/status.h"
#include "optimizer/query_graph.h"
#include "storage/tuple.h"

namespace sqp {

/// `tuple[column_index] op constant`.
struct BoundSelection {
  size_t column_index = 0;
  CompareOp op = CompareOp::kEq;
  Value constant;

  bool Eval(const Tuple& tuple) const {
    return EvalCompare(tuple[column_index].Compare(constant), op);
  }
};

/// Conjunction; empty list is TRUE.
bool EvalConjunction(const std::vector<BoundSelection>& preds,
                     const Tuple& tuple);

/// Batch conjunction over `rows[0..count)`: writes the indices of rows
/// passing every predicate into *selection (cleared first), preserving
/// row order. One tight non-virtual loop per predicate — the first
/// seeds the selection vector, later ones compact it in place — so the
/// per-row cost is a comparison, not an iterator round trip.
void EvalConjunctionBatch(const std::vector<BoundSelection>& preds,
                          const Tuple* rows, size_t count,
                          std::vector<uint32_t>* selection);

/// Bind `pred` against `schema` (resolving its column name to an index).
Result<BoundSelection> BindSelection(const SelectionPred& pred,
                                     const Schema& schema);

/// Bind a list of predicates against one schema.
Result<std::vector<BoundSelection>> BindSelections(
    const std::vector<SelectionPred>& preds, const Schema& schema);

}  // namespace sqp
