// Bound predicate expressions evaluated against tuples.
//
// The engine's queries are conjunctive, so an expression is simply a
// conjunction of bound comparisons (column index vs constant). Join
// conditions are bound column-column equalities.
#pragma once

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/compare_op.h"
#include "common/status.h"
#include "optimizer/query_graph.h"
#include "storage/tuple.h"

namespace sqp {

/// `tuple[column_index] op constant`, optionally fused with a second
/// bound on the same column (`constant <op> col <upper_op> upper`, a
/// BETWEEN). The planner condenses a `>`/`>=` + `<`/`<=` pair on one
/// column into a single fused term so the column is accessed (and, on
/// the late-materializing scan path, decoded from the serialized
/// record) once for both comparisons.
struct BoundSelection {
  size_t column_index = 0;
  CompareOp op = CompareOp::kEq;
  Value constant;
  bool has_upper = false;
  CompareOp upper_op = CompareOp::kLt;
  Value upper;

  bool Eval(const Tuple& tuple) const {
    const Value& v = tuple[column_index];
    if (!EvalCompare(v.Compare(constant), op)) return false;
    return !has_upper || EvalCompare(v.Compare(upper), upper_op);
  }
};

/// Conjunction; empty list is TRUE.
bool EvalConjunction(const std::vector<BoundSelection>& preds,
                     const Tuple& tuple);

/// Batch conjunction over `rows[0..count)`: writes the indices of rows
/// passing every predicate into *selection (cleared first), preserving
/// row order. One tight non-virtual loop per predicate — the first
/// seeds the selection vector, later ones compact it in place — so the
/// per-row cost is a comparison, not an iterator round trip.
void EvalConjunctionBatch(const std::vector<BoundSelection>& preds,
                          const Tuple* rows, size_t count,
                          std::vector<uint32_t>* selection);

/// Bind `pred` against `schema` (resolving its column name to an index).
Result<BoundSelection> BindSelection(const SelectionPred& pred,
                                     const Schema& schema);

/// Bind a list of predicates against one schema.
Result<std::vector<BoundSelection>> BindSelections(
    const std::vector<SelectionPred>& preds, const Schema& schema);

}  // namespace sqp
