// Batch-at-a-time executors (with a Volcano-compatible tuple shim).
//
// Every executor charges CPU work per tuple it processes through the
// shared CostMeter; page traffic charges I/O inside the buffer pool.
// Together these produce the simulated execution times the experiments
// bucket queries by.
//
// Execution model (DESIGN.md §10): the primary interface is
// NextBatch(), which moves ~kDefaultExecBatchSize rows per virtual
// call; Next() remains for tuple-driven consumers (LIMIT's child pulls,
// legacy tests). Simulated charges are identical on both paths — only
// real wall-clock differs. An executor instance must be driven through
// ONE of the two interfaces; interleaving Next() and NextBatch() calls
// on the same instance is unsupported (the scan cursors are shared, so
// rows would not repeat, but charge-order guarantees are only stated
// per interface).
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "catalog/catalog.h"
#include "common/cost_meter.h"
#include "common/status.h"
#include "exec/expression.h"
#include "exec/tuple_batch.h"
#include "index/bplus_tree.h"

namespace sqp {

class Counter;
class TaskScheduler;

/// Parallel-execution context threaded from DatabaseOptions into the
/// executors that have a parallel batch path (DESIGN.md §15). A null
/// scheduler (exec_threads = 1) leaves every executor on its original
/// single-threaded code path, bit-identical to the pre-parallel engine.
/// `background` routes this plan's worker tasks to the scheduler's
/// background queues — speculative materializations soak up idle
/// workers without delaying interactive query morsels.
struct ExecParallel {
  TaskScheduler* scheduler = nullptr;
  bool background = false;
};

class Executor {
 public:
  virtual ~Executor() = default;

  /// Prepare for iteration. Must be called exactly once before
  /// Next()/NextBatch().
  virtual Status Init() = 0;

  /// Produce the next tuple, or nullopt at end of stream.
  virtual Result<std::optional<Tuple>> Next() = 0;

  /// Fill `out` (cleared first) with up to ~out->target_rows() tuples;
  /// page-at-a-time producers may overshoot by up to one page. Returns
  /// false exactly at end of stream (empty batch). The base
  /// implementation adapts Next() so every executor is batch-drivable;
  /// hot operators override it with a native batch loop.
  virtual Result<bool> NextBatch(TupleBatch* out);

  virtual const Schema& output_schema() const = 0;
};

/// Full scan of a heap file, with optional pushed-down predicates.
///
/// Page-at-a-time: one buffer-pool pin per page serves every tuple on
/// it (both interfaces share the page cursor below). NextBatch
/// late-materializes: it evaluates the pushed-down predicates directly
/// against each slot's serialized bytes (skipping columns is a few
/// adds) and fully decodes only surviving rows, into recycled batch
/// slots.
class SeqScanExecutor : public Executor {
 public:
  SeqScanExecutor(const TableInfo* table, BufferPool* pool, CostMeter* meter,
                  std::vector<BoundSelection> predicates = {});
  ~SeqScanExecutor() override;

  /// Run NextBatch with page-morsel worker lookahead (DESIGN.md §15):
  /// workers evaluate predicates and decode survivors on side-effect-free
  /// page snapshots while the foreground thread replays the accountable
  /// page fetches — and every charge — in sequential order. Rows, their
  /// order, and all CostMeter totals are bit-identical to the
  /// single-threaded scan at any worker count.
  void EnableParallel(const ExecParallel& parallel);

  // Fused-probe accessors (HashJoinExecutor drives the scan's pages
  // itself when it fuses a parallel probe over a bare SeqScan child).
  const TableInfo* table() const { return table_; }
  BufferPool* pool() const { return pool_; }
  const std::vector<BoundSelection>& predicates() const {
    return predicates_;
  }

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  Result<bool> NextBatch(TupleBatch* out) override;
  const Schema& output_schema() const override { return table_->schema; }

 private:
  /// One page of worker lookahead: the foreground snapshots the page
  /// bytes (PeekPage — no charge, no fault points), a worker evaluates
  /// the pushed-down predicates against the serialized records and
  /// decodes the survivors, and the foreground consumes the rows when
  /// it replays the page's accountable fetch.
  struct PageTask {
    Page snapshot;
    uint16_t nslots = 0;
    std::vector<Tuple> rows;  // surviving decoded rows, slot order
    bool fallback = false;    // peek failed: process the page inline
    std::atomic<bool> done{false};
  };

  /// Pin the page under the cursor if not already pinned. Returns false
  /// (without error) when the scan is past the last page.
  Result<bool> LoadCurrentPage();

  Result<bool> NextBatchParallel(TupleBatch* out);
  /// Keep the lookahead window primed: peek + submit pages up to the
  /// window bound ahead of the emission cursor.
  void DispatchWindow();
  /// Execute queued tasks on this thread until `task` completes.
  void AwaitTask(PageTask* task);
  /// Drain every in-flight window task (Init / destruction).
  void AwaitWindow();

  const TableInfo* table_;
  BufferPool* pool_;
  CostMeter* meter_;
  std::vector<BoundSelection> predicates_;

  // Shared page cursor: pin once per page, walk its slots, release.
  size_t page_index_ = 0;
  uint16_t slot_ = 0;
  PageGuard guard_;
  bool page_loaded_ = false;

  // Parallel lookahead state (unused until EnableParallel).
  TaskScheduler* scheduler_ = nullptr;
  bool background_ = false;
  std::deque<std::unique_ptr<PageTask>> window_;
  size_t dispatch_index_ = 0;
  Counter* m_morsels_ = nullptr;
  Counter* m_fallbacks_ = nullptr;
};

/// Index range scan + heap fetches, with residual predicates.
/// Charges the B+-tree's height + leaf touches as simulated I/O (the
/// tree is memory-resident; see index/bplus_tree.h).
class IndexScanExecutor : public Executor {
 public:
  IndexScanExecutor(const TableInfo* table, const BPlusTree* index,
                    KeyRange range, BufferPool* pool, CostMeter* meter,
                    std::vector<BoundSelection> residual = {});

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  Result<bool> NextBatch(TupleBatch* out) override;
  const Schema& output_schema() const override { return table_->schema; }

 private:
  const TableInfo* table_;
  const BPlusTree* index_;
  KeyRange range_;
  BufferPool* pool_;
  CostMeter* meter_;
  std::vector<BoundSelection> residual_;
  std::vector<Rid> rids_;
  size_t pos_ = 0;
};

/// Filter on top of any child.
class FilterExecutor : public Executor {
 public:
  FilterExecutor(std::unique_ptr<Executor> child,
                 std::vector<BoundSelection> predicates, CostMeter* meter);

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  Result<bool> NextBatch(TupleBatch* out) override;
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

 private:
  std::unique_ptr<Executor> child_;
  std::vector<BoundSelection> predicates_;
  CostMeter* meter_;
  TupleBatch child_batch_;
  std::vector<uint32_t> selection_;
};

/// Column projection.
class ProjectExecutor : public Executor {
 public:
  ProjectExecutor(std::unique_ptr<Executor> child,
                  std::vector<size_t> column_indices, CostMeter* meter);

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  Result<bool> NextBatch(TupleBatch* out) override;
  const Schema& output_schema() const override { return schema_; }

 private:
  std::unique_ptr<Executor> child_;
  std::vector<size_t> indices_;
  CostMeter* meter_;
  Schema schema_;
  TupleBatch child_batch_;
};

/// Hash equijoin; builds on the left child, probes with the right.
/// Output schema = left ++ right.
///
/// The build side is one contiguous row vector (reserved up front from
/// the planner's cardinality estimate) indexed by a flat chained hash
/// table: `heads_[bucket]` holds the first row ordinal and `next_`
/// links rows of the same bucket in insertion order. A probe is one
/// array load plus a chain walk over rows it must compare anyway —
/// no node allocations or per-bucket vectors.
///
/// Memory-bounded (Grace) behaviour: when the build side outgrows the
/// configured hash_join_memory_pages, the join charges one extra
/// write+read pass over both inputs (the partitioning spill), as a
/// 2003-era system with a small hash area would.
class HashJoinExecutor : public Executor {
 public:
  /// `build_rows_hint` pre-reserves the build vector (0 = no hint);
  /// the planner passes its build-side cardinality estimate.
  HashJoinExecutor(std::unique_ptr<Executor> build,
                   std::unique_ptr<Executor> probe, size_t build_key,
                   size_t probe_key, CostMeter* meter,
                   size_t build_rows_hint = 0);
  ~HashJoinExecutor() override;

  /// Parallelize this join (DESIGN.md §15): the build side's hash
  /// computation is partitioned over workers (chain links are still
  /// applied sequentially, so insertion order — and output order — is
  /// unchanged), and when the probe child is a bare SeqScan the probe
  /// is fused: workers filter, decode, and pre-join whole probe pages
  /// against the frozen hash table while the foreground replays the
  /// accountable page fetches and charges in sequential order. A
  /// profiled (EXPLAIN ANALYZE) or spilled join keeps the sequential
  /// probe path automatically.
  void EnableParallel(const ExecParallel& parallel);

  bool spilled() const { return spilled_; }

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  Result<bool> NextBatch(TupleBatch* out) override;
  const Schema& output_schema() const override { return schema_; }

 private:
  /// One probe page of fused lookahead: per surviving probe row, its
  /// match count and the fully concatenated output rows, precomputed
  /// against the frozen build table.
  struct ProbeTask {
    Page snapshot;
    uint16_t nslots = 0;
    std::vector<uint32_t> match_counts;  // per surviving probe row
    std::vector<Tuple> out_rows;         // all matches, emission order
    bool fallback = false;               // peek failed: probe inline
    std::atomic<bool> done{false};
  };

  /// Charge one probe-side row (CPU + streaming spill I/O when the
  /// build side spilled) — identical on both interfaces.
  void ChargeProbeRow(const Tuple& row);
  /// Concatenate build ++ probe into one pre-sized output row.
  static Tuple ConcatRows(const Tuple& build_row, const Tuple& probe_row);

  std::unique_ptr<Executor> build_;
  std::unique_ptr<Executor> probe_;
  size_t build_key_;
  size_t probe_key_;
  CostMeter* meter_;
  size_t build_rows_hint_;
  Schema schema_;

  /// First build-row ordinal of the probe key's bucket, or -1.
  int32_t BucketHead(const Value& key) const {
    return heads_.empty()
               ? -1
               : heads_[key.HashInline() & bucket_mask_];
  }

  std::vector<Tuple> build_rows_;
  // Flat chained hash table over build_rows_ (see class comment).
  std::vector<int32_t> heads_;
  std::vector<int32_t> next_;
  size_t bucket_mask_ = 0;
  std::optional<Tuple> probe_tuple_;
  int32_t match_cursor_ = -1;
  bool spilled_ = false;
  size_t probe_spill_bytes_ = 0;

  // NextBatch probe cursor.
  TupleBatch probe_batch_;
  size_t probe_pos_ = 0;

  /// Filter + decode + probe one page's records into `task` (worker
  /// body and foreground fallback; touches only frozen post-build
  /// state).
  void ProbePageInto(const Page& page, ProbeTask* task) const;
  Result<bool> NextBatchFused(TupleBatch* out);
  void DispatchFused();
  void AwaitProbeTask(ProbeTask* task);
  void AwaitFusedWindow();

  // Parallel state (unused until EnableParallel).
  TaskScheduler* scheduler_ = nullptr;
  bool background_ = false;
  /// Probe-side scan the fused path drives directly (null when fusion
  /// does not apply: no scheduler, spilled build, wrapped probe child).
  SeqScanExecutor* fused_scan_ = nullptr;
  std::deque<std::unique_ptr<ProbeTask>> fused_window_;
  size_t fused_dispatch_ = 0;  // next probe page to peek + submit
  size_t fused_page_ = 0;      // next probe page to fetch (group build)
  // Current emission group: the pages forming one sequential probe
  // batch, with cursors carrying partial emission across NextBatch
  // calls exactly like the sequential probe_pos_ cursor.
  std::vector<std::unique_ptr<ProbeTask>> group_;
  size_t group_task_ = 0;
  size_t group_row_ = 0;
  size_t group_out_ = 0;
  Counter* m_morsels_ = nullptr;
  Counter* m_fallbacks_ = nullptr;
};

/// Nested-loop join for arbitrary (or absent) join predicates; the inner
/// child is materialized in memory once. Used for cross products and
/// non-equijoin conditions.
class NestedLoopJoinExecutor : public Executor {
 public:
  /// `condition` may be empty (cross product). Column indices refer to
  /// the concatenated output schema.
  struct JoinCondition {
    size_t left_index;
    size_t right_index;
    CompareOp op = CompareOp::kEq;
  };

  NestedLoopJoinExecutor(std::unique_ptr<Executor> outer,
                         std::unique_ptr<Executor> inner,
                         std::vector<JoinCondition> conditions,
                         CostMeter* meter);

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  Result<bool> NextBatch(TupleBatch* out) override;
  const Schema& output_schema() const override { return schema_; }

 private:
  bool MatchesConditions(const Tuple& outer_row,
                         const Tuple& inner_row) const;

  std::unique_ptr<Executor> outer_;
  std::unique_ptr<Executor> inner_;
  std::vector<JoinCondition> conditions_;
  CostMeter* meter_;
  Schema schema_;

  std::vector<Tuple> inner_rows_;
  std::optional<Tuple> outer_tuple_;
  size_t inner_pos_ = 0;

  // NextBatch outer cursor.
  TupleBatch outer_batch_;
  size_t outer_pos_ = 0;
};

/// Filter on column-column conditions within one tuple (used for the
/// residual edges of multi-edge join connections, e.g. the composite
/// lineitem–partsupp join).
class ColumnFilterExecutor : public Executor {
 public:
  struct Condition {
    size_t left_index;
    size_t right_index;
    CompareOp op = CompareOp::kEq;
  };

  ColumnFilterExecutor(std::unique_ptr<Executor> child,
                       std::vector<Condition> conditions, CostMeter* meter);

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  Result<bool> NextBatch(TupleBatch* out) override;
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

 private:
  bool Passes(const Tuple& row) const;

  std::unique_ptr<Executor> child_;
  std::vector<Condition> conditions_;
  CostMeter* meter_;
  TupleBatch child_batch_;
};

/// Drain an executor into a vector (test/example convenience), batch at
/// a time.
Result<std::vector<Tuple>> DrainExecutor(
    Executor* exec, size_t batch_size = kDefaultExecBatchSize);

}  // namespace sqp
