// Volcano-style executors.
//
// Every executor charges CPU work per tuple it processes through the
// shared CostMeter; page traffic charges I/O inside the buffer pool.
// Together these produce the simulated execution times the experiments
// bucket queries by.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/cost_meter.h"
#include "common/status.h"
#include "exec/expression.h"
#include "index/bplus_tree.h"

namespace sqp {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Prepare for iteration. Must be called exactly once before Next().
  virtual Status Init() = 0;

  /// Produce the next tuple, or nullopt at end of stream.
  virtual Result<std::optional<Tuple>> Next() = 0;

  virtual const Schema& output_schema() const = 0;
};

/// Full scan of a heap file, with optional pushed-down predicates.
class SeqScanExecutor : public Executor {
 public:
  SeqScanExecutor(const TableInfo* table, BufferPool* pool, CostMeter* meter,
                  std::vector<BoundSelection> predicates = {});

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  const Schema& output_schema() const override { return table_->schema; }

 private:
  const TableInfo* table_;
  BufferPool* pool_;
  CostMeter* meter_;
  std::vector<BoundSelection> predicates_;
  std::optional<HeapFile::Iterator> iter_;
};

/// Index range scan + heap fetches, with residual predicates.
/// Charges the B+-tree's height + leaf touches as simulated I/O (the
/// tree is memory-resident; see index/bplus_tree.h).
class IndexScanExecutor : public Executor {
 public:
  IndexScanExecutor(const TableInfo* table, const BPlusTree* index,
                    KeyRange range, BufferPool* pool, CostMeter* meter,
                    std::vector<BoundSelection> residual = {});

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  const Schema& output_schema() const override { return table_->schema; }

 private:
  const TableInfo* table_;
  const BPlusTree* index_;
  KeyRange range_;
  BufferPool* pool_;
  CostMeter* meter_;
  std::vector<BoundSelection> residual_;
  std::vector<Rid> rids_;
  size_t pos_ = 0;
};

/// Filter on top of any child.
class FilterExecutor : public Executor {
 public:
  FilterExecutor(std::unique_ptr<Executor> child,
                 std::vector<BoundSelection> predicates, CostMeter* meter);

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

 private:
  std::unique_ptr<Executor> child_;
  std::vector<BoundSelection> predicates_;
  CostMeter* meter_;
};

/// Column projection.
class ProjectExecutor : public Executor {
 public:
  ProjectExecutor(std::unique_ptr<Executor> child,
                  std::vector<size_t> column_indices, CostMeter* meter);

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  const Schema& output_schema() const override { return schema_; }

 private:
  std::unique_ptr<Executor> child_;
  std::vector<size_t> indices_;
  CostMeter* meter_;
  Schema schema_;
};

/// Hash equijoin; builds on the left child, probes with the right.
/// Output schema = left ++ right.
///
/// Memory-bounded (Grace) behaviour: when the build side outgrows the
/// configured hash_join_memory_pages, the join charges one extra
/// write+read pass over both inputs (the partitioning spill), as a
/// 2003-era system with a small hash area would.
class HashJoinExecutor : public Executor {
 public:
  HashJoinExecutor(std::unique_ptr<Executor> build,
                   std::unique_ptr<Executor> probe, size_t build_key,
                   size_t probe_key, CostMeter* meter);

  bool spilled() const { return spilled_; }

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  const Schema& output_schema() const override { return schema_; }

 private:
  std::unique_ptr<Executor> build_;
  std::unique_ptr<Executor> probe_;
  size_t build_key_;
  size_t probe_key_;
  CostMeter* meter_;
  Schema schema_;

  std::unordered_map<size_t, std::vector<Tuple>> table_;  // hash -> rows
  std::optional<Tuple> probe_tuple_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_pos_ = 0;
  bool spilled_ = false;
  size_t probe_spill_bytes_ = 0;
};

/// Nested-loop join for arbitrary (or absent) join predicates; the inner
/// child is materialized in memory once. Used for cross products and
/// non-equijoin conditions.
class NestedLoopJoinExecutor : public Executor {
 public:
  /// `condition` may be empty (cross product). Column indices refer to
  /// the concatenated output schema.
  struct JoinCondition {
    size_t left_index;
    size_t right_index;
    CompareOp op = CompareOp::kEq;
  };

  NestedLoopJoinExecutor(std::unique_ptr<Executor> outer,
                         std::unique_ptr<Executor> inner,
                         std::vector<JoinCondition> conditions,
                         CostMeter* meter);

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  const Schema& output_schema() const override { return schema_; }

 private:
  std::unique_ptr<Executor> outer_;
  std::unique_ptr<Executor> inner_;
  std::vector<JoinCondition> conditions_;
  CostMeter* meter_;
  Schema schema_;

  std::vector<Tuple> inner_rows_;
  std::optional<Tuple> outer_tuple_;
  size_t inner_pos_ = 0;
};

/// Filter on column-column conditions within one tuple (used for the
/// residual edges of multi-edge join connections, e.g. the composite
/// lineitem–partsupp join).
class ColumnFilterExecutor : public Executor {
 public:
  struct Condition {
    size_t left_index;
    size_t right_index;
    CompareOp op = CompareOp::kEq;
  };

  ColumnFilterExecutor(std::unique_ptr<Executor> child,
                       std::vector<Condition> conditions, CostMeter* meter);

  Status Init() override;
  Result<std::optional<Tuple>> Next() override;
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

 private:
  std::unique_ptr<Executor> child_;
  std::vector<Condition> conditions_;
  CostMeter* meter_;
};

/// Drain an executor into a vector (test/example convenience).
Result<std::vector<Tuple>> DrainExecutor(Executor* exec);

}  // namespace sqp
