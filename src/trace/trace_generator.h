// Trace generation: the stand-in for the paper's 15 recorded human
// subjects (see DESIGN.md §2 for the substitution rationale).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"
#include "trace/user_model.h"

namespace sqp {

struct TraceGeneratorOptions {
  UserModelParams params;
  size_t num_users = 15;
  uint64_t seed = 1234;
};

/// One trace per simulated user; deterministic in the options' seed.
std::vector<Trace> GenerateTraces(const TraceGeneratorOptions& options);

Trace GenerateTrace(const UserModelParams& params, uint64_t user_id,
                    uint64_t seed);

/// File I/O, for replaying saved sessions on demand (paper §4.1).
Status SaveTraces(const std::vector<Trace>& traces,
                  const std::string& directory);
Result<std::vector<Trace>> LoadTraces(const std::string& directory);

}  // namespace sqp
