#include "trace/user_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "workload/tpch.h"

namespace sqp {

namespace {

/// Active join templates of a partial query (templates whose every edge
/// is present).
std::vector<const tpch::JoinTemplate*> ActiveTemplates(
    const QueryGraph& graph) {
  std::vector<const tpch::JoinTemplate*> out;
  for (const auto& tmpl : tpch::FkJoinTemplates()) {
    bool all = true;
    for (const auto& edge : tmpl.edges) {
      if (!graph.HasJoin(edge.Key())) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(&tmpl);
  }
  return out;
}

/// Would this template create a "sibling-many" diamond — lineitem and
/// partsupp both fanning out of the same one-side (part or supplier)
/// without the composite (partkey, suppkey) equijoin tying them 1:1?
/// Such a join multiplies |lineitem| by ~|partsupp per key| and is the
/// kind of runaway cross-section a TPC-H-literate explorer avoids (they
/// join lineitem to partsupp on the composite key instead).
bool CreatesFanOutDiamond(const tpch::JoinTemplate& tmpl,
                          const QueryGraph& graph) {
  bool touches_partsupp = false, touches_lineitem = false;
  for (const auto& edge : tmpl.edges) {
    touches_partsupp |= edge.Touches("partsupp");
    touches_lineitem |= edge.Touches("lineitem");
  }
  if (touches_partsupp && touches_lineitem) return false;  // composite
  // Only the template that *introduces* the sibling many-relation forms
  // the diamond; attaching part/supplier to an already composite-joined
  // lineitem–partsupp pair is 1:1 and fine.
  if (touches_partsupp && !graph.HasRelation("partsupp") &&
      graph.HasRelation("lineitem")) {
    return true;
  }
  if (touches_lineitem && !graph.HasRelation("lineitem") &&
      graph.HasRelation("partsupp")) {
    return true;
  }
  return false;
}

/// Templates that would connect exactly one new relation to the graph.
std::vector<const tpch::JoinTemplate*> ExtensionTemplates(
    const QueryGraph& graph) {
  std::vector<const tpch::JoinTemplate*> out;
  for (const auto& tmpl : tpch::FkJoinTemplates()) {
    if (CreatesFanOutDiamond(tmpl, graph)) continue;
    std::set<std::string> touched;
    for (const auto& edge : tmpl.edges) {
      touched.insert(edge.left_table);
      touched.insert(edge.right_table);
    }
    size_t inside = 0;
    for (const auto& rel : touched) {
      if (graph.HasRelation(rel)) inside++;
    }
    bool already_active = true;
    for (const auto& edge : tmpl.edges) {
      if (!graph.HasJoin(edge.Key())) already_active = false;
    }
    if (already_active) continue;
    // Empty graph: any template starts it. Otherwise require exactly one
    // endpoint inside (keeps the join graph a tree — no cycles).
    if (graph.relations().empty() ? true : inside == 1) {
      out.push_back(&tmpl);
    }
  }
  return out;
}

/// Leaf templates: active templates whose removal keeps the remaining
/// active templates connected. For a tree, these touch a degree-1
/// relation.
std::vector<const tpch::JoinTemplate*> LeafTemplates(
    const QueryGraph& graph) {
  auto active = ActiveTemplates(graph);
  std::vector<const tpch::JoinTemplate*> out;
  for (const auto* tmpl : active) {
    // Relations touched by this template only.
    std::set<std::string> touched;
    for (const auto& edge : tmpl->edges) {
      touched.insert(edge.left_table);
      touched.insert(edge.right_table);
    }
    size_t exclusive = 0;
    for (const auto& rel : touched) {
      bool in_other = false;
      for (const auto* other : active) {
        if (other == tmpl) continue;
        for (const auto& edge : other->edges) {
          if (edge.Touches(rel)) {
            in_other = true;
            break;
          }
        }
        if (in_other) break;
      }
      if (!in_other) exclusive++;
    }
    if (exclusive >= 1) out.push_back(tmpl);
  }
  return out;
}

TraceEvent MakeJoinEvent(TraceEventType type, const JoinPred& join) {
  TraceEvent e;
  e.type = type;
  e.join = join;
  return e;
}

TraceEvent MakeSelEvent(TraceEventType type, const SelectionPred& sel) {
  TraceEvent e;
  e.type = type;
  e.selection = sel;
  return e;
}

}  // namespace

UserModel::UserModel(const UserModelParams& params, uint64_t seed)
    : params_(params), rng_(seed) {}

size_t UserModel::DrawTargetRelations() {
  double total = 0;
  for (double w : params_.relation_weights) total += w;
  double u = rng_.NextDouble() * total;
  for (size_t i = 0; i < 5; i++) {
    u -= params_.relation_weights[i];
    if (u <= 0) return i + 1;
  }
  return 4;
}

bool UserModel::DrawSelection(const QueryGraph& partial, SelectionPred* out) {
  const auto& columns = tpch::SelectionColumns();
  std::vector<const tpch::SelectionColumn*> candidates;
  for (const auto& col : columns) {
    if (!partial.HasRelation(col.table)) continue;
    // One predicate per column at a time.
    bool taken = false;
    for (const auto& sel : partial.SelectionsOn(col.table)) {
      if (sel.column == col.column) {
        taken = true;
        break;
      }
    }
    if (!taken) candidates.push_back(&col);
  }
  if (candidates.empty()) return false;
  const auto* col = candidates[rng_.NextRange(candidates.size())];
  out->table = col->table;
  out->column = col->column;
  if (col->type == TypeId::kString) {
    out->op = CompareOp::kEq;
    out->constant =
        Value(col->string_values[rng_.NextRange(col->string_values.size())]);
    return true;
  }
  // Numeric: the user homes in on an "interesting region" — draw a
  // target selectivity (log-uniform between ~2% and ~50%) and invert
  // the generator's CDF to find the matching cut point (§4.1: the data
  // was skewed so users would discover meaningful answers).
  double target = 0.02 * std::exp(rng_.NextDouble() * std::log(0.5 / 0.02));
  double roll = rng_.NextDouble();
  double cut;
  if (roll < 0.5) {
    out->op = rng_.NextBool(0.5) ? CompareOp::kLt : CompareOp::kLe;
    cut = tpch::ColumnQuantile(*col, target);
  } else {
    out->op = rng_.NextBool(0.5) ? CompareOp::kGt : CompareOp::kGe;
    cut = tpch::ColumnQuantile(*col, 1.0 - target);
  }
  if (col->type == TypeId::kInt64) {
    out->constant = Value(static_cast<int64_t>(std::llround(cut)));
  } else {
    out->constant = Value(cut);
  }
  return true;
}

void UserModel::EvolveStructure(QueryGraph* partial,
                                std::vector<TraceEvent>* edits) {
  size_t target = DrawTargetRelations();

  // Possibly restructure: drop one leaf join template.
  if (rng_.NextBool(params_.p_drop_leaf_join)) {
    auto leaves = LeafTemplates(*partial);
    if (!leaves.empty()) {
      const auto* victim = leaves[rng_.NextRange(leaves.size())];
      // Identify relations that will become orphaned, and shed their
      // selections first (the interface clears a removed relation).
      std::set<std::string> touched;
      for (const auto& edge : victim->edges) {
        touched.insert(edge.left_table);
        touched.insert(edge.right_table);
      }
      QueryGraph after = *partial;
      for (const auto& edge : victim->edges) after.RemoveJoin(edge.Key());
      for (const auto& rel : touched) {
        if (after.JoinsOn(rel).empty() && after.relations().size() > 1) {
          for (const auto& sel : partial->SelectionsOn(rel)) {
            TraceEvent e =
                MakeSelEvent(TraceEventType::kRemoveSelection, sel);
            Trace::Apply(e, partial);
            edits->push_back(std::move(e));
          }
        }
      }
      for (const auto& edge : victim->edges) {
        TraceEvent e = MakeJoinEvent(TraceEventType::kRemoveJoin, edge);
        Trace::Apply(e, partial);
        edits->push_back(std::move(e));
      }
    }
  }

  // Grow toward the target relation count.
  size_t guard = 0;
  while (partial->relations().size() < target && guard++ < 8) {
    auto extensions = ExtensionTemplates(*partial);
    if (extensions.empty()) break;
    const auto* tmpl = extensions[rng_.NextRange(extensions.size())];
    for (const auto& edge : tmpl->edges) {
      TraceEvent e = MakeJoinEvent(TraceEventType::kAddJoin, edge);
      Trace::Apply(e, partial);
      edits->push_back(std::move(e));
    }
  }
}

void UserModel::EvolveSelections(QueryGraph* partial,
                                 std::vector<TraceEvent>* edits) {
  // Retire selections per the survival probability.
  std::vector<SelectionPred> current = partial->selections();
  for (const auto& sel : current) {
    if (!rng_.NextBool(params_.p_keep_selection)) {
      TraceEvent e = MakeSelEvent(TraceEventType::kRemoveSelection, sel);
      Trace::Apply(e, partial);
      edits->push_back(std::move(e));
    }
  }
  // Top up to the target count.
  size_t target = rng_.NextBool(params_.p_two_selections) ? 2 : 1;
  size_t guard = 0;
  while (partial->selections().size() < target && guard++ < 6) {
    SelectionPred sel;
    if (!DrawSelection(*partial, &sel)) break;
    TraceEvent e = MakeSelEvent(TraceEventType::kAddSelection, sel);
    Trace::Apply(e, partial);
    edits->push_back(std::move(e));
  }
}

void UserModel::MaybeChurn(const QueryGraph& partial,
                           std::vector<TraceEvent>* edits) {
  if (!rng_.NextBool(params_.p_churn)) return;
  SelectionPred sel;
  if (!DrawSelection(partial, &sel)) return;
  // The transient pair brackets the tail of the existing edits.
  TraceEvent add = MakeSelEvent(TraceEventType::kAddSelection, sel);
  TraceEvent del = MakeSelEvent(TraceEventType::kRemoveSelection, sel);
  size_t insert_at = edits->empty() ? 0 : rng_.NextRange(edits->size() + 1);
  edits->insert(edits->begin() + insert_at, add);
  edits->push_back(del);
}

Trace UserModel::GenerateSession(uint64_t user_id) {
  Trace trace;
  trace.user_id = user_id;
  double clock = 0;  // think-time axis

  QueryGraph partial;
  for (size_t task = 0; task < params_.tasks_per_session; task++) {
    double q = params_.queries_per_task_mean +
               params_.queries_per_task_stddev * rng_.NextGaussian();
    size_t queries = static_cast<size_t>(std::max(2.0, std::round(q)));

    for (size_t i = 0; i < queries; i++) {
      std::vector<TraceEvent> edits;
      if (i == 0 && task > 0) {
        // New abstract question: the user clears the canvas.
        for (const auto& sel : partial.selections()) {
          edits.push_back(MakeSelEvent(TraceEventType::kRemoveSelection, sel));
        }
        for (const auto& join : partial.joins()) {
          edits.push_back(MakeJoinEvent(TraceEventType::kRemoveJoin, join));
        }
        for (auto& e : edits) Trace::Apply(e, &partial);
      }
      EvolveStructure(&partial, &edits);
      EvolveSelections(&partial, &edits);
      // Guarantee a non-empty query.
      if (partial.num_atomic_parts() == 0) {
        SelectionPred sel;
        QueryGraph seed_graph;
        seed_graph.AddRelation("orders");
        if (DrawSelection(seed_graph, &sel)) {
          TraceEvent e = MakeSelEvent(TraceEventType::kAddSelection, sel);
          Trace::Apply(e, &partial);
          edits.push_back(std::move(e));
        }
      }
      // If evolution produced no edits, the user still interacts before
      // re-running: try out a predicate and retract it (the final query
      // is a re-run of the previous one — real explorers do this after
      // studying the results, and it exercises inter-query locality).
      if (edits.empty()) {
        SelectionPred transient;
        if (DrawSelection(partial, &transient)) {
          TraceEvent add =
              MakeSelEvent(TraceEventType::kAddSelection, transient);
          TraceEvent del =
              MakeSelEvent(TraceEventType::kRemoveSelection, transient);
          edits.push_back(std::move(add));
          edits.push_back(std::move(del));
        }
      }
      MaybeChurn(partial, &edits);

      // Formulation duration = first edit -> GO (the §5 statistic).
      // The first edit lands at `clock`; the remaining edits and the GO
      // divide the duration by exponential weights.
      double duration = rng_.NextLogNormal(params_.think_mu,
                                           params_.think_sigma);
      duration = std::clamp(duration, params_.think_min_seconds,
                            params_.think_max_seconds);
      size_t gaps = edits.size();  // gaps after the first edit, incl. GO
      std::vector<double> weights(std::max<size_t>(1, gaps));
      double total = 0;
      for (double& w : weights) {
        w = rng_.NextExponential(1.0);
        total += w;
      }
      double t = clock;
      double acc = 0;
      for (size_t g = 0; g < edits.size(); g++) {
        if (g > 0) {
          acc += weights[g - 1];
          t = clock + duration * acc / total;
        }
        edits[g].timestamp = t;
        trace.events.push_back(edits[g]);
      }
      TraceEvent go;
      go.type = TraceEventType::kGo;
      go.timestamp = clock + duration;
      trace.events.push_back(go);
      clock += duration;
      // Examine the results before starting the next formulation.
      clock += std::clamp(
          rng_.NextLogNormal(params_.examine_mu, params_.examine_sigma), 0.5,
          300.0);
    }
  }
  return trace;
}

}  // namespace sqp
