// Stochastic user-behaviour model, calibrated to the paper's §5 profile.
//
// The paper collected traces from 15 human subjects answering 5 abstract
// questions each. It reports the aggregate behaviour: ~42 queries per
// trace; 1–2 selection predicates and ~4 referenced relations per query;
// a selection predicate survives ~3 consecutive queries and a join ~10;
// query-formulation durations of min 1 s / avg 28 s / max 680 s with
// 25/50/75-percentiles of 4/11/29 s. This model reproduces those
// marginals (verified by tests/trace_stats_test) while exercising every
// interaction the speculation engine cares about: incremental edits,
// transient parts that get removed before GO (cancellation), and
// inter-query part retention (materialization reuse).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "trace/trace.h"

namespace sqp {

struct UserModelParams {
  /// Abstract questions per session (paper: 5).
  size_t tasks_per_session = 5;
  /// Queries issued while exploring one question; ~42 total per session.
  double queries_per_task_mean = 8.4;
  double queries_per_task_stddev = 2.5;

  /// Log-normal body of the per-query formulation duration. Median
  /// e^mu = 11 s, mean e^(mu+sigma^2/2) = 28 s, matching §5.
  double think_mu = 2.398;
  double think_sigma = 1.367;
  double think_min_seconds = 1.0;
  double think_max_seconds = 680.0;

  /// Result-examination pause between a query's results arriving and
  /// the first edit of the next formulation ("look at earlier results
  /// and think of what the current query should be", §1). Not part of
  /// the §5 formulation-duration statistic, but real think time during
  /// which the canvas still shows the previous query — speculation can
  /// prepare for the next one. Log-normal, median ~6 s.
  double examine_mu = 1.79;
  double examine_sigma = 1.0;

  /// Probability a selection predicate survives into the next query.
  /// Nominal geometric lifetime 1/(1-p) ≈ 4, which nets out to the §5
  /// mean of ~3 once structural drops and task resets also retire
  /// predicates (verified by tests/trace_stats_test).
  double p_keep_selection = 0.78;
  /// Probability the user restructures (drops a leaf join) per query;
  /// with ~2 leaf joins on a 4-relation tree this yields the ~10-query
  /// join lifetime of §5.
  double p_drop_leaf_join = 0.13;

  /// Probability of a transient edit: a part added mid-formulation and
  /// removed again before GO (drives manipulation cancellation).
  double p_churn = 0.15;

  /// Target relation count distribution: weights for 1..5 relations.
  /// Mean ≈ 4 (§5: "referenced 4 relations in the FROM clause"), with
  /// enough small queries to spread execution times (the paper's
  /// distribution is "skewed towards short queries", §6).
  double relation_weights[5] = {0.05, 0.12, 0.22, 0.36, 0.25};

  /// Selections per query: 1 or 2 (§5: "1-2 selection predicates").
  double p_two_selections = 0.45;
};

/// Generates the event stream of one user session.
class UserModel {
 public:
  UserModel(const UserModelParams& params, uint64_t seed);

  /// Generate a full session trace for `user_id`.
  Trace GenerateSession(uint64_t user_id);

 private:
  struct PendingEdit {
    TraceEvent event;  // timestamp filled in later
  };

  /// Draw the target relation count for the next query.
  size_t DrawTargetRelations();

  /// Emit the structural edits taking `partial` toward a new query
  /// shape; appends events (without timestamps) to `edits`.
  void EvolveStructure(QueryGraph* partial, std::vector<TraceEvent>* edits);

  /// Retire / refresh selections; appends events.
  void EvolveSelections(QueryGraph* partial, std::vector<TraceEvent>* edits);

  /// Optionally add a transient add+remove pair.
  void MaybeChurn(const QueryGraph& partial, std::vector<TraceEvent>* edits);

  /// Draw a selection predicate on a relation of `partial`.
  bool DrawSelection(const QueryGraph& partial, SelectionPred* out);

  UserModelParams params_;
  Rng rng_;
};

}  // namespace sqp
