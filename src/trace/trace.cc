#include "trace/trace.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

namespace sqp {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kAddSelection:
      return "SEL_ADD";
    case TraceEventType::kRemoveSelection:
      return "SEL_DEL";
    case TraceEventType::kAddJoin:
      return "JOIN_ADD";
    case TraceEventType::kRemoveJoin:
      return "JOIN_DEL";
    case TraceEventType::kGo:
      return "GO";
  }
  return "?";
}

size_t Trace::QueryCount() const {
  size_t n = 0;
  for (const auto& e : events) {
    if (e.type == TraceEventType::kGo) n++;
  }
  return n;
}

void Trace::Apply(const TraceEvent& event, QueryGraph* partial) {
  switch (event.type) {
    case TraceEventType::kAddSelection:
      partial->AddSelection(event.selection);
      break;
    case TraceEventType::kRemoveSelection: {
      partial->RemoveSelection(event.selection.Key());
      // Drop the relation vertex when nothing references it any more.
      const std::string& table = event.selection.table;
      if (partial->SelectionsOn(table).empty() &&
          partial->JoinsOn(table).empty()) {
        partial->RemoveRelation(table);
      }
      break;
    }
    case TraceEventType::kAddJoin:
      partial->AddJoin(event.join);
      break;
    case TraceEventType::kRemoveJoin: {
      partial->RemoveJoin(event.join.Key());
      for (const std::string* table :
           {&event.join.left_table, &event.join.right_table}) {
        if (partial->HasRelation(*table) &&
            partial->SelectionsOn(*table).empty() &&
            partial->JoinsOn(*table).empty()) {
          partial->RemoveRelation(*table);
        }
      }
      break;
    }
    case TraceEventType::kGo:
      break;
  }
}

std::vector<QueryGraph> Trace::FinalQueries() const {
  std::vector<QueryGraph> out;
  QueryGraph partial;
  for (const auto& e : events) {
    if (e.type == TraceEventType::kGo) {
      out.push_back(partial);
    } else {
      Apply(e, &partial);
    }
  }
  return out;
}

std::vector<double> Trace::FormulationDurations() const {
  std::vector<double> out;
  double formulation_start = -1;
  for (const auto& e : events) {
    if (e.type == TraceEventType::kGo) {
      if (formulation_start >= 0) {
        out.push_back(e.timestamp - formulation_start);
      }
      formulation_start = -1;
    } else if (formulation_start < 0) {
      formulation_start = e.timestamp;
    }
  }
  return out;
}

namespace {

std::string SerializeValue(const Value& v) {
  switch (v.type()) {
    case TypeId::kInt64:
      return "i:" + std::to_string(v.AsInt64());
    case TypeId::kDouble: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "d:%.17g", v.AsDouble());
      return buf;
    }
    case TypeId::kString:
      return "s:" + v.AsString();
  }
  return "?";
}

Result<Value> DeserializeValue(const std::string& text) {
  if (text.size() < 2 || text[1] != ':') {
    return Status::InvalidArgument("bad value literal: " + text);
  }
  std::string body = text.substr(2);
  switch (text[0]) {
    case 'i':
      return Value(static_cast<int64_t>(std::stoll(body)));
    case 'd':
      return Value(std::stod(body));
    case 's':
      return Value(body);
    default:
      return Status::InvalidArgument("bad value tag: " + text);
  }
}

Result<CompareOp> ParseOp(const std::string& text) {
  if (text == "=") return CompareOp::kEq;
  if (text == "<>") return CompareOp::kNe;
  if (text == "<") return CompareOp::kLt;
  if (text == "<=") return CompareOp::kLe;
  if (text == ">") return CompareOp::kGt;
  if (text == ">=") return CompareOp::kGe;
  return Status::InvalidArgument("bad op: " + text);
}

}  // namespace

std::string Trace::Serialize() const {
  std::ostringstream os;
  os << "# sqp-trace user=" << user_id << " seed=" << seed << "\n";
  for (const auto& e : events) {
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%.3f", e.timestamp);
    switch (e.type) {
      case TraceEventType::kAddSelection:
      case TraceEventType::kRemoveSelection:
        os << TraceEventTypeName(e.type) << "\t" << ts << "\t"
           << e.selection.table << "\t" << e.selection.column << "\t"
           << CompareOpName(e.selection.op) << "\t"
           << SerializeValue(e.selection.constant) << "\n";
        break;
      case TraceEventType::kAddJoin:
      case TraceEventType::kRemoveJoin:
        os << TraceEventTypeName(e.type) << "\t" << ts << "\t"
           << e.join.left_table << "\t" << e.join.left_column << "\t"
           << e.join.right_table << "\t" << e.join.right_column << "\n";
        break;
      case TraceEventType::kGo:
        os << "GO\t" << ts << "\n";
        break;
    }
  }
  return os.str();
}

Result<Trace> Trace::Deserialize(const std::string& text) {
  Trace trace;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Header: "# sqp-trace user=N seed=M"
      auto upos = line.find("user=");
      auto spos = line.find("seed=");
      if (upos != std::string::npos) {
        trace.user_id = std::stoull(line.substr(upos + 5));
      }
      if (spos != std::string::npos) {
        trace.seed = std::stoull(line.substr(spos + 5));
      }
      continue;
    }
    std::vector<std::string> fields;
    std::istringstream ls(line);
    std::string field;
    while (std::getline(ls, field, '\t')) fields.push_back(field);
    if (fields.empty()) continue;
    TraceEvent event;
    const std::string& kind = fields[0];
    if (fields.size() < 2) {
      return Status::InvalidArgument("truncated trace line: " + line);
    }
    event.timestamp = std::stod(fields[1]);
    if (kind == "GO") {
      event.type = TraceEventType::kGo;
    } else if (kind == "SEL_ADD" || kind == "SEL_DEL") {
      if (fields.size() != 6) {
        return Status::InvalidArgument("bad selection line: " + line);
      }
      event.type = kind == "SEL_ADD" ? TraceEventType::kAddSelection
                                     : TraceEventType::kRemoveSelection;
      event.selection.table = fields[2];
      event.selection.column = fields[3];
      auto op = ParseOp(fields[4]);
      if (!op.ok()) return op.status();
      event.selection.op = *op;
      auto value = DeserializeValue(fields[5]);
      if (!value.ok()) return value.status();
      event.selection.constant = *value;
    } else if (kind == "JOIN_ADD" || kind == "JOIN_DEL") {
      if (fields.size() != 6) {
        return Status::InvalidArgument("bad join line: " + line);
      }
      event.type = kind == "JOIN_ADD" ? TraceEventType::kAddJoin
                                      : TraceEventType::kRemoveJoin;
      event.join.left_table = fields[2];
      event.join.left_column = fields[3];
      event.join.right_table = fields[4];
      event.join.right_column = fields[5];
      event.join.Canonicalize();
    } else {
      return Status::InvalidArgument("unknown trace event: " + kind);
    }
    trace.events.push_back(std::move(event));
  }
  return trace;
}

TraceStats ComputeTraceStats(const std::vector<Trace>& traces) {
  TraceStats stats;
  if (traces.empty()) return stats;

  double total_queries = 0, total_sel = 0, total_rel = 0;
  std::vector<double> durations;
  double sel_lifetimes = 0, join_lifetimes = 0;
  size_t sel_intros = 0, join_intros = 0;

  for (const auto& trace : traces) {
    auto finals = trace.FinalQueries();
    total_queries += static_cast<double>(finals.size());
    for (const auto& q : finals) {
      total_sel += static_cast<double>(q.selections().size());
      total_rel += static_cast<double>(q.relations().size());
    }
    // Lifetimes: for each edge, count maximal runs of consecutive final
    // queries containing it.
    std::map<std::string, bool> prev_present;
    std::map<std::string, size_t> run_length;
    auto flush_run = [&](const std::string& key, bool is_join) {
      size_t len = run_length[key];
      if (len == 0) return;
      if (is_join) {
        join_lifetimes += static_cast<double>(len);
        join_intros++;
      } else {
        sel_lifetimes += static_cast<double>(len);
        sel_intros++;
      }
      run_length[key] = 0;
    };
    std::map<std::string, bool> is_join_key;
    for (const auto& q : finals) {
      std::map<std::string, bool> present;
      for (const auto& s : q.selections()) {
        present[s.Key()] = true;
        is_join_key[s.Key()] = false;
      }
      for (const auto& j : q.joins()) {
        present[j.Key()] = true;
        is_join_key[j.Key()] = true;
      }
      // Keys that disappeared end their run.
      for (auto& [key, was] : prev_present) {
        if (was && present.find(key) == present.end()) {
          flush_run(key, is_join_key[key]);
        }
      }
      for (auto& [key, now] : present) {
        if (now) run_length[key]++;
      }
      prev_present.clear();
      for (auto& [key, now] : present) prev_present[key] = now;
    }
    for (auto& [key, was] : prev_present) {
      if (was) flush_run(key, is_join_key[key]);
    }

    auto d = trace.FormulationDurations();
    durations.insert(durations.end(), d.begin(), d.end());
  }

  stats.avg_queries_per_trace = total_queries / traces.size();
  if (total_queries > 0) {
    stats.avg_selections_per_query = total_sel / total_queries;
    stats.avg_relations_per_query = total_rel / total_queries;
  }
  if (sel_intros > 0) stats.avg_selection_lifetime = sel_lifetimes / sel_intros;
  if (join_intros > 0) stats.avg_join_lifetime = join_lifetimes / join_intros;

  if (!durations.empty()) {
    std::sort(durations.begin(), durations.end());
    auto pct = [&](double p) {
      size_t idx = static_cast<size_t>(p * (durations.size() - 1));
      return durations[idx];
    };
    stats.min_duration = durations.front();
    stats.max_duration = durations.back();
    double sum = 0;
    for (double d : durations) sum += d;
    stats.avg_duration = sum / durations.size();
    stats.p25_duration = pct(0.25);
    stats.p50_duration = pct(0.50);
    stats.p75_duration = pct(0.75);
  }
  return stats;
}

}  // namespace sqp
