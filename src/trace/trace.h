// User-interaction traces.
//
// A trace is the record of one user's exploratory session on the visual
// interface (the paper's SQUID): a timed sequence of atomic edits to the
// partial query — insert/remove selection or join edges — punctuated by
// "GO" events that submit the current partial query as a final query.
//
// Timestamps are *think-time offsets*: seconds of user activity since
// session start, excluding time spent waiting for query results. The
// replayer re-inserts execution delays, so the same trace replays under
// normal and speculative processing with identical user behaviour
// (paper §4.1's replay methodology).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "optimizer/query_graph.h"

namespace sqp {

enum class TraceEventType {
  kAddSelection,
  kRemoveSelection,
  kAddJoin,
  kRemoveJoin,
  kGo,
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  double timestamp = 0;  // think-time seconds since session start
  TraceEventType type = TraceEventType::kGo;
  SelectionPred selection;  // kAddSelection / kRemoveSelection
  JoinPred join;            // kAddJoin / kRemoveJoin
};

struct Trace {
  uint64_t user_id = 0;
  uint64_t seed = 0;
  std::vector<TraceEvent> events;

  size_t QueryCount() const;

  /// Apply `event` to a partial query graph (the replayer's core step).
  static void Apply(const TraceEvent& event, QueryGraph* partial);

  /// Reconstruct the sequence of final queries (the graph at each GO).
  std::vector<QueryGraph> FinalQueries() const;

  /// Per-query formulation durations: think time from the first edit
  /// after the previous GO (or session start) to the GO (paper §5).
  std::vector<double> FormulationDurations() const;

  /// Text (de)serialization, one event per line.
  std::string Serialize() const;
  static Result<Trace> Deserialize(const std::string& text);
};

/// Aggregate behaviour statistics over a set of traces (paper §5).
struct TraceStats {
  double avg_queries_per_trace = 0;
  double avg_selections_per_query = 0;
  double avg_relations_per_query = 0;
  /// Mean number of consecutive final queries a selection / join edge
  /// survives once introduced.
  double avg_selection_lifetime = 0;
  double avg_join_lifetime = 0;
  // Formulation-duration distribution (seconds).
  double min_duration = 0;
  double avg_duration = 0;
  double max_duration = 0;
  double p25_duration = 0;
  double p50_duration = 0;
  double p75_duration = 0;
};

TraceStats ComputeTraceStats(const std::vector<Trace>& traces);

}  // namespace sqp
