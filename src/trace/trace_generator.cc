#include "trace/trace_generator.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sqp {

std::vector<Trace> GenerateTraces(const TraceGeneratorOptions& options) {
  std::vector<Trace> traces;
  traces.reserve(options.num_users);
  Rng seeder(options.seed);
  for (size_t u = 0; u < options.num_users; u++) {
    uint64_t user_seed = seeder.NextUint64();
    Trace trace = GenerateTrace(options.params, u, user_seed);
    traces.push_back(std::move(trace));
  }
  return traces;
}

Trace GenerateTrace(const UserModelParams& params, uint64_t user_id,
                    uint64_t seed) {
  UserModel model(params, seed);
  Trace trace = model.GenerateSession(user_id);
  trace.seed = seed;
  return trace;
}

Status SaveTraces(const std::vector<Trace>& traces,
                  const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create directory " + directory + ": " +
                            ec.message());
  }
  for (const auto& trace : traces) {
    std::string path =
        directory + "/user_" + std::to_string(trace.user_id) + ".trace";
    std::ofstream out(path);
    if (!out) return Status::Internal("cannot write " + path);
    out << trace.Serialize();
  }
  return Status::OK();
}

Result<std::vector<Trace>> LoadTraces(const std::string& directory) {
  std::vector<Trace> traces;
  std::error_code ec;
  std::filesystem::directory_iterator dir(directory, ec);
  if (ec) {
    return Status::NotFound("cannot read directory " + directory + ": " +
                            ec.message());
  }
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : dir) {
    if (entry.path().extension() == ".trace") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) return Status::Internal("cannot read " + path.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto trace = Trace::Deserialize(buffer.str());
    if (!trace.ok()) return trace.status();
    traces.push_back(std::move(*trace));
  }
  return traces;
}

}  // namespace sqp
