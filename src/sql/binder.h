// Binder: resolve a parsed AST against a catalog into a QueryGraph.
//
// Column resolution uses the workload's globally-unique column names:
// an unqualified column is looked up across the statement's FROM tables;
// ambiguity (possible with materialized join views) is an error unless
// qualified.
#pragma once

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/query_graph.h"
#include "sql/parser.h"

namespace sqp {

/// Bind `ast` against `catalog`; every FROM table must exist, every
/// column must resolve to exactly one FROM table. Considers the SPJ
/// core only (select list, FROM, WHERE); aggregate/group/order/limit
/// decorations are bound by BindFullSelect.
Result<QueryGraph> BindSelect(const AstSelect& ast, const Catalog& catalog);

/// Parse + bind the SPJ core in one step.
Result<QueryGraph> ParseAndBind(const std::string& sql,
                                const Catalog& catalog);

// ------------------------------------------------- full-query binding

struct BoundAggregate {
  AggFunc func = AggFunc::kCount;
  bool star = false;
  std::string column;       // input column (when !star)
  std::string output_name;  // e.g. "count(*)", "sum(l_quantity)"
};

struct BoundOrderBy {
  std::string column;  // resolved against the final output schema
  bool descending = false;
};

/// A bound query: the SPJ core (the object speculation reasons about)
/// plus the decorations executed on top of its result.
struct BoundQuery {
  QueryGraph graph;
  std::vector<BoundAggregate> aggregates;
  std::vector<std::string> group_by;
  std::vector<BoundOrderBy> order_by;
  std::optional<uint64_t> limit;

  bool has_decorations() const {
    return !aggregates.empty() || !group_by.empty() || !order_by.empty() ||
           limit.has_value();
  }
};

/// Bind the whole statement, validating SQL's aggregate rules (plain
/// select-list columns must appear in GROUP BY when aggregating).
Result<BoundQuery> BindFullSelect(const AstSelect& ast,
                                  const Catalog& catalog);

Result<BoundQuery> ParseAndBindFull(const std::string& sql,
                                    const Catalog& catalog);

}  // namespace sqp
