// SQL tokenizer for the conjunctive-query dialect.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace sqp {

enum class TokenType {
  kIdent,
  kNumber,   // integer or decimal literal
  kString,   // 'quoted'
  kComma,
  kDot,
  kStar,
  kEq,       // =
  kNe,       // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kLParen,
  kRParen,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // raw text (identifier, number, or string body)
  size_t position = 0;

  /// Case-insensitive keyword check for identifiers.
  bool IsKeyword(const char* keyword) const;
};

/// Tokenize `sql`; fails on unterminated strings or stray characters.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace sqp
