#include "sql/parser.h"

#include "sql/lexer.h"

namespace sqp {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AstSelect> Parse() {
    AstSelect select;
    SQP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (Peek().type == TokenType::kStar) {
      Advance();
      select.select_star = true;
    } else {
      for (;;) {
        SQP_RETURN_IF_ERROR(ParseSelectItem(&select));
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
    }
    SQP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    for (;;) {
      if (Peek().type != TokenType::kIdent) {
        return Error("expected table name");
      }
      select.tables.push_back(Peek().text);
      Advance();
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      for (;;) {
        auto cond = ParseCondition();
        if (!cond.ok()) return cond.status();
        select.conditions.push_back(*cond);
        if (!Peek().IsKeyword("AND")) break;
        Advance();
      }
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      SQP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        auto col = ParseColumnRef();
        if (!col.ok()) return col.status();
        select.group_by.push_back(*col);
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      SQP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        AstOrderBy order;
        auto col = ParseColumnRef();
        if (!col.ok()) return col.status();
        order.column = *col;
        if (Peek().IsKeyword("DESC")) {
          order.descending = true;
          Advance();
        } else if (Peek().IsKeyword("ASC")) {
          Advance();
        }
        select.order_by.push_back(std::move(order));
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
    }
    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      if (Peek().type != TokenType::kNumber ||
          Peek().text.find('.') != std::string::npos ||
          Peek().text.front() == '-') {
        return Error("expected non-negative integer after LIMIT");
      }
      select.limit = std::stoull(Peek().text);
      Advance();
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return select;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { pos_++; }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at position " +
                                   std::to_string(Peek().position));
  }

  Status ExpectKeyword(const char* keyword) {
    if (!Peek().IsKeyword(keyword)) {
      return Error(std::string("expected ") + keyword);
    }
    Advance();
    return Status::OK();
  }

  Status ParseSelectItem(AstSelect* select) {
    // Aggregate: FUNC '(' (* | colref) ')'.
    static const std::pair<const char*, AggFunc> kFuncs[] = {
        {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum},
        {"AVG", AggFunc::kAvg},     {"MIN", AggFunc::kMin},
        {"MAX", AggFunc::kMax},
    };
    for (const auto& [name, func] : kFuncs) {
      if (Peek().IsKeyword(name) && tokens_[pos_ + 1].type ==
                                        TokenType::kLParen) {
        Advance();  // function name
        Advance();  // '('
        AstAggregate agg;
        agg.func = func;
        if (Peek().type == TokenType::kStar) {
          if (func != AggFunc::kCount) {
            return Error("only COUNT accepts *");
          }
          agg.star = true;
          Advance();
        } else {
          auto col = ParseColumnRef();
          if (!col.ok()) return col.status();
          agg.column = *col;
        }
        if (Peek().type != TokenType::kRParen) {
          return Error("expected ')'");
        }
        Advance();
        select->aggregates.push_back(std::move(agg));
        return Status::OK();
      }
    }
    auto col = ParseColumnRef();
    if (!col.ok()) return col.status();
    select->projections.push_back(*col);
    return Status::OK();
  }

  Result<AstColumnRef> ParseColumnRef() {
    if (Peek().type != TokenType::kIdent) {
      return Error("expected column reference");
    }
    AstColumnRef ref;
    ref.column = Peek().text;
    Advance();
    if (Peek().type == TokenType::kDot) {
      Advance();
      if (Peek().type != TokenType::kIdent) {
        return Error("expected column after '.'");
      }
      ref.table = ref.column;
      ref.column = Peek().text;
      Advance();
    }
    return ref;
  }

  Result<AstCondition> ParseCondition() {
    AstCondition cond;
    auto left = ParseColumnRef();
    if (!left.ok()) return left.status();
    cond.left = *left;
    switch (Peek().type) {
      case TokenType::kEq:
        cond.op = CompareOp::kEq;
        break;
      case TokenType::kNe:
        cond.op = CompareOp::kNe;
        break;
      case TokenType::kLt:
        cond.op = CompareOp::kLt;
        break;
      case TokenType::kLe:
        cond.op = CompareOp::kLe;
        break;
      case TokenType::kGt:
        cond.op = CompareOp::kGt;
        break;
      case TokenType::kGe:
        cond.op = CompareOp::kGe;
        break;
      default:
        return Error("expected comparison operator");
    }
    Advance();
    const Token& rhs = Peek();
    if (rhs.type == TokenType::kIdent) {
      auto right = ParseColumnRef();
      if (!right.ok()) return right.status();
      if (cond.op != CompareOp::kEq) {
        return Error("column-column conditions must be equijoins");
      }
      cond.is_join = true;
      cond.right_column = *right;
    } else if (rhs.type == TokenType::kNumber) {
      if (rhs.text.find('.') != std::string::npos) {
        cond.literal = Value(std::stod(rhs.text));
      } else {
        cond.literal = Value(static_cast<int64_t>(std::stoll(rhs.text)));
      }
      Advance();
    } else if (rhs.type == TokenType::kString) {
      cond.literal = Value(rhs.text);
      Advance();
    } else {
      return Error("expected literal or column on right-hand side");
    }
    return cond;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<AstSelect> ParseSelect(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

}  // namespace sqp
