#include "sql/lexer.h"

#include <cctype>

namespace sqp {

bool Token::IsKeyword(const char* keyword) const {
  if (type != TokenType::kIdent) return false;
  size_t i = 0;
  for (; keyword[i] != '\0' && i < text.size(); i++) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return keyword[i] == '\0' && i == text.size();
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        i++;
      }
      tok.type = TokenType::kIdent;
      tok.text = sql.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '-') i++;
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (sql[i] == '.' && !seen_dot))) {
        if (sql[i] == '.') seen_dot = true;
        i++;
      }
      tok.type = TokenType::kNumber;
      tok.text = sql.substr(start, i - start);
    } else if (c == '\'') {
      size_t start = ++i;
      while (i < n && sql[i] != '\'') i++;
      if (i >= n) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(start - 1));
      }
      tok.type = TokenType::kString;
      tok.text = sql.substr(start, i - start);
      i++;  // closing quote
    } else {
      switch (c) {
        case ',':
          tok.type = TokenType::kComma;
          i++;
          break;
        case '.':
          tok.type = TokenType::kDot;
          i++;
          break;
        case '*':
          tok.type = TokenType::kStar;
          i++;
          break;
        case '(':
          tok.type = TokenType::kLParen;
          i++;
          break;
        case ')':
          tok.type = TokenType::kRParen;
          i++;
          break;
        case '=':
          tok.type = TokenType::kEq;
          i++;
          break;
        case '!':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.type = TokenType::kNe;
            i += 2;
          } else {
            return Status::InvalidArgument("stray '!' at " +
                                           std::to_string(i));
          }
          break;
        case '<':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.type = TokenType::kLe;
            i += 2;
          } else if (i + 1 < n && sql[i + 1] == '>') {
            tok.type = TokenType::kNe;
            i += 2;
          } else {
            tok.type = TokenType::kLt;
            i++;
          }
          break;
        case '>':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.type = TokenType::kGe;
            i += 2;
          } else {
            tok.type = TokenType::kGt;
            i++;
          }
          break;
        default:
          return Status::InvalidArgument(std::string("unexpected char '") +
                                         c + "' at " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sqp
