#include "sql/binder.h"

namespace sqp {

namespace {

/// Resolve a column reference to the FROM table that owns it.
Result<std::string> ResolveTable(const AstColumnRef& ref,
                                 const std::vector<std::string>& tables,
                                 const Catalog& catalog) {
  if (!ref.table.empty()) {
    bool listed = false;
    for (const auto& t : tables) {
      if (t == ref.table) {
        listed = true;
        break;
      }
    }
    if (!listed) {
      return Status::InvalidArgument("table " + ref.table +
                                     " not in FROM clause");
    }
    const TableInfo* info = catalog.GetTable(ref.table);
    if (info == nullptr) return Status::NotFound("table " + ref.table);
    if (!info->schema.HasColumn(ref.column)) {
      return Status::NotFound("column " + ref.column + " in " + ref.table);
    }
    return ref.table;
  }
  std::string owner;
  for (const auto& t : tables) {
    const TableInfo* info = catalog.GetTable(t);
    if (info == nullptr) return Status::NotFound("table " + t);
    if (info->schema.HasColumn(ref.column)) {
      if (!owner.empty()) {
        return Status::InvalidArgument("ambiguous column " + ref.column);
      }
      owner = t;
    }
  }
  if (owner.empty()) return Status::NotFound("column " + ref.column);
  return owner;
}

}  // namespace

Result<QueryGraph> BindSelect(const AstSelect& ast, const Catalog& catalog) {
  QueryGraph graph;
  for (const auto& table : ast.tables) {
    if (catalog.GetTable(table) == nullptr) {
      return Status::NotFound("table " + table);
    }
    graph.AddRelation(table);
  }
  for (const auto& cond : ast.conditions) {
    auto left_table = ResolveTable(cond.left, ast.tables, catalog);
    if (!left_table.ok()) return left_table.status();
    if (cond.is_join) {
      auto right_table = ResolveTable(cond.right_column, ast.tables, catalog);
      if (!right_table.ok()) return right_table.status();
      if (*left_table == *right_table) {
        return Status::NotSupported("self-join conditions");
      }
      JoinPred join;
      join.left_table = *left_table;
      join.left_column = cond.left.column;
      join.right_table = *right_table;
      join.right_column = cond.right_column.column;
      graph.AddJoin(std::move(join));
    } else {
      SelectionPred sel;
      sel.table = *left_table;
      sel.column = cond.left.column;
      sel.op = cond.op;
      sel.constant = cond.literal;
      graph.AddSelection(std::move(sel));
    }
  }
  if (!ast.select_star) {
    std::vector<std::string> projections;
    for (const auto& ref : ast.projections) {
      auto table = ResolveTable(ref, ast.tables, catalog);
      if (!table.ok()) return table.status();
      projections.push_back(ref.column);
    }
    graph.SetProjections(std::move(projections));
  }
  return graph;
}

Result<QueryGraph> ParseAndBind(const std::string& sql,
                                const Catalog& catalog) {
  auto ast = ParseSelect(sql);
  if (!ast.ok()) return ast.status();
  return BindSelect(*ast, catalog);
}

Result<BoundQuery> BindFullSelect(const AstSelect& ast,
                                  const Catalog& catalog) {
  BoundQuery bound;
  auto graph = BindSelect(ast, catalog);
  if (!graph.ok()) return graph.status();
  bound.graph = std::move(*graph);

  for (const auto& col : ast.group_by) {
    auto table = ResolveTable(col, ast.tables, catalog);
    if (!table.ok()) return table.status();
    bound.group_by.push_back(col.column);
  }

  for (const auto& agg : ast.aggregates) {
    BoundAggregate b;
    b.func = agg.func;
    b.star = agg.star;
    if (!agg.star) {
      auto table = ResolveTable(agg.column, ast.tables, catalog);
      if (!table.ok()) return table.status();
      b.column = agg.column.column;
    }
    b.output_name = std::string(AggFuncName(agg.func)) + "(" +
                    (agg.star ? "*" : b.column) + ")";
    bound.aggregates.push_back(std::move(b));
  }

  if (!bound.aggregates.empty()) {
    // SQL rule: plain select-list columns must be grouping columns.
    for (const auto& proj : ast.projections) {
      bool grouped = false;
      for (const auto& g : bound.group_by) {
        if (g == proj.column) grouped = true;
      }
      if (!grouped) {
        return Status::InvalidArgument(
            "column " + proj.column +
            " must appear in GROUP BY when aggregating");
      }
    }
    // The SPJ core feeds the aggregate with all columns.
    bound.graph.SetProjections({});
  }

  for (const auto& order : ast.order_by) {
    // Names referencing base columns are validated now; aggregate
    // outputs are validated at execution time against the top schema.
    bound.order_by.push_back(BoundOrderBy{order.column.column,
                                          order.descending});
  }
  bound.limit = ast.limit;
  return bound;
}

Result<BoundQuery> ParseAndBindFull(const std::string& sql,
                                    const Catalog& catalog) {
  auto ast = ParseSelect(sql);
  if (!ast.ok()) return ast.status();
  return BindFullSelect(*ast, catalog);
}

}  // namespace sqp
