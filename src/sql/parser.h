// Recursive-descent parser for conjunctive SELECT statements:
//
//   SELECT (* | col [, col]...)
//   FROM table [, table]...
//   [WHERE cond [AND cond]...]
//   [GROUP BY col [, col]...]
//   [ORDER BY col [ASC|DESC] [, ...]]
//   [LIMIT n]
//
// where cond is `colref op literal` or `colref = colref` (a join), and
// select-list items may be plain columns, `*`, or aggregates
// (COUNT(*), COUNT/SUM/AVG/MIN/MAX(col)). The parser produces an
// unbound AST; the binder resolves it against a catalog: the SPJ core
// becomes a QueryGraph (the object speculation operates on) and the
// aggregate/order/limit decorations execute on top of it.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/agg_func.h"
#include "common/compare_op.h"
#include "common/status.h"
#include "common/value.h"

namespace sqp {

struct AstColumnRef {
  std::string table;  // may be empty (unqualified)
  std::string column;
};

/// `COUNT(*)`, `SUM(col)`, ... in the select list.
struct AstAggregate {
  AggFunc func = AggFunc::kCount;
  bool star = false;     // COUNT(*)
  AstColumnRef column;   // when !star
};

struct AstOrderBy {
  AstColumnRef column;   // may name an aggregate output, e.g. "count"
  bool descending = false;
};

struct AstCondition {
  AstColumnRef left;
  CompareOp op = CompareOp::kEq;
  // Right side: a literal or another column (join).
  bool is_join = false;
  AstColumnRef right_column;  // when is_join
  Value literal;              // when !is_join
};

struct AstSelect {
  bool select_star = false;
  std::vector<AstColumnRef> projections;  // plain select-list columns
  std::vector<AstAggregate> aggregates;   // aggregate select-list items
  std::vector<std::string> tables;
  std::vector<AstCondition> conditions;
  std::vector<AstColumnRef> group_by;
  std::vector<AstOrderBy> order_by;
  std::optional<uint64_t> limit;
};

/// Parse one SELECT statement.
Result<AstSelect> ParseSelect(const std::string& sql);

}  // namespace sqp
