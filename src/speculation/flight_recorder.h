// Speculation flight recorder (DESIGN.md §11).
//
// A ring-buffer audit log of every Speculator evaluation round: the
// candidate manipulation set, each candidate's Cost⊆ decomposition
// (f⊆ estimate, cost(q_m, m), cost(q_m, m∅), completion probability,
// expected uses — the terms of Theorem 3.1), the chosen minimizer, and
// the manipulation's eventual outcome (used-at-GO / cancelled-on-edit /
// garbage-collected / failed / ...). The engine stamps outcomes as its
// lifecycle hooks fire, so a dumped log answers "why did speculation do
// that" for any round still in the buffer.
//
// The recorder also closes the learning loop: at every GO the engine
// scores each considered candidate's predicted f⊆ against the ground
// truth (did the final query actually contain q_m?), folding the
// results into a Brier score and a 10-bucket reliability histogram
// (predicted-probability deciles vs. observed survival rates) surfaced
// via MetricsRegistry as `spec.learner.brier` / `spec.recorder.*` and
// dumped by `replay_trace --decisions`.
//
// Everything here is driven by simulated time and deterministic inputs,
// so two replays of the same trace produce byte-identical FormatLog
// output (the acceptance bar for ISSUE 5).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "speculation/cost_model.h"
#include "speculation/manipulation.h"
#include "speculation/speculator.h"

namespace sqp {

class Counter;
class Gauge;
class HistogramMetric;

/// Lifecycle state of one recorded round's chosen manipulation.
/// kPending and kCompleted are transient; everything else is terminal
/// (kUsedAtGo is sticky — later drops never overwrite it).
enum class DecisionOutcome {
  kNone,              // m∅ chosen: nothing issued (terminal)
  kPending,           // issued, still in flight
  kCompleted,         // finished; result owned, awaiting its fate
  kUsedAtGo,          // result rewrote / informed the final query
  kCancelledOnEdit,   // partial query stopped implying it
  kCancelledAtGo,     // still running at GO (conservative §3.1 cancel)
  kAbandoned,         // completion-time benefit re-check said no
  kGarbageCollected,  // owned result no longer implied by the partial
  kEvictedForBudget,  // LRU-evicted to respect max_speculative_pages
  kFailed,            // execution failed (I/O error / injected fault)
  kLostAtCrash,       // did not survive crash + RecoverAfterCrash
  kDroppedAtShutdown, // still owned at session end
};

const char* DecisionOutcomeName(DecisionOutcome outcome);
bool IsTerminalOutcome(DecisionOutcome outcome);

struct DecisionRecord;

/// Deterministic text rendering of one round: header line plus one
/// Cost⊆ decomposition line per candidate (chosen one starred).
std::string FormatDecisionRecord(const DecisionRecord& record);

/// One candidate's Cost⊆ decomposition as evaluated in one round.
struct CandidateLog {
  std::string key;       // Manipulation::Key()
  std::string describe;  // Manipulation::Describe()
  ManipulationEvaluation eval;
  bool chosen = false;
};

/// One Speculator evaluation round — or, when `event` is non-empty, an
/// out-of-band cluster event (node loss, membership change, repair)
/// interleaved into the ring so a dump shows speculation decisions in
/// their operational context.
struct DecisionRecord {
  uint64_t round = 0;  // 1-based id; monotonic across the session
  double sim_time = 0;
  std::string partial_sql;
  std::vector<CandidateLog> candidates;
  int chosen_index = -1;  // index into candidates; -1 = m∅
  DecisionOutcome outcome = DecisionOutcome::kNone;
  std::string event;  // non-empty: this is an event marker, not a round
};

/// Learner-calibration aggregate: predicted f⊆ vs. actual part
/// survival at GO.
struct CalibrationReport {
  size_t scored = 0;
  double brier_sum = 0;  // Σ (predicted − survived)²
  /// Reliability histogram: predictions bucketed by predicted
  /// probability decile ([0,0.1), ..., [0.9,1]), with the survivor
  /// count per bucket. Σ bucket_counts == scored.
  std::array<uint64_t, 10> bucket_counts{};
  std::array<uint64_t, 10> bucket_survived{};

  /// Mean squared error of the survival predictions, in [0, 1]
  /// (0 = perfect; 0.25 = uninformed coin flip). 0 when nothing scored.
  double brier() const {
    return scored > 0 ? brier_sum / static_cast<double>(scored) : 0.0;
  }
  std::string Format() const;
};

class FlightRecorder {
 public:
  /// `capacity`: rounds kept in the ring (oldest evicted first).
  explicit FlightRecorder(size_t capacity = 256);

  /// Log one Speculator round. Returns the round id for later
  /// SetOutcome calls (ids stay valid after ring eviction — outcome
  /// updates for evicted rounds are simply dropped).
  uint64_t RecordRound(double sim_time, const std::string& partial_sql,
                       const SpeculationDecision& decision);

  /// Log an out-of-band cluster event (node loss, join, decommission,
  /// repair) as an interleaved marker record. Returns its round id.
  uint64_t RecordEvent(double sim_time, const std::string& text);

  /// Stamp the chosen manipulation's current lifecycle state.
  /// kUsedAtGo is sticky; unknown (evicted) ids are ignored.
  void SetOutcome(uint64_t round, DecisionOutcome outcome);

  /// Fold one prediction into the calibration report: the learner said
  /// f⊆ = `predicted`, the final query at GO did (`survived`) or did
  /// not contain the candidate's part.
  void Score(double predicted, bool survived);

  const std::deque<DecisionRecord>& records() const { return records_; }
  const CalibrationReport& calibration() const { return calibration_; }
  uint64_t rounds_recorded() const { return next_round_ - 1; }

  /// Deterministic text dump: one block per buffered round with every
  /// candidate's Cost⊆ decomposition, the chosen minimizer and the
  /// outcome, followed by the calibration report.
  std::string FormatLog() const;

 private:
  size_t capacity_;
  uint64_t next_round_ = 1;
  std::deque<DecisionRecord> records_;
  CalibrationReport calibration_;

  // Registry handles (DESIGN.md §9), looked up once at construction.
  Counter* m_rounds_;
  Counter* m_issued_;
  Counter* m_events_;
  Counter* m_scored_;
  Gauge* m_brier_;
  HistogramMetric* m_calibration_;
};

}  // namespace sqp
