#include "speculation/learner.h"

#include <algorithm>
#include <cmath>

#include "common/metrics_registry.h"

namespace sqp {

namespace {
/// Standard normal upper tail Φc(z) = P(Z > z).
double NormalUpperTail(double z) {
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}
}  // namespace

// --------------------------------------------------------- SurvivalLearner

void SurvivalLearner::ObserveFormulation(
    const std::map<std::string, ObservedPart>& seen_parts,
    const QueryGraph& final_query) {
  for (const auto& [key, part] : seen_parts) {
    bool survived = part.is_join ? final_query.HasJoin(part.join.Key())
                                 : final_query.HasSelection(
                                       part.selection.Key());
    (part.is_join ? join_prior_ : selection_prior_).Observe(survived);
    per_feature_[part.FeatureKey()].Observe(survived);
  }
  observations_++;
}

double SurvivalLearner::SurvivalProbability(const ObservedPart& part) const {
  const BetaCounter& prior = part.is_join ? join_prior_ : selection_prior_;
  auto it = per_feature_.find(part.FeatureKey());
  if (it == per_feature_.end()) return prior.Mean();
  // Shrink the per-feature estimate toward the population prior when the
  // feature has little evidence.
  double w = it->second.weight();
  double lambda = w / (w + 4.0);
  return lambda * it->second.Mean() + (1 - lambda) * prior.Mean();
}

double SurvivalLearner::ContainmentProbability(const QueryGraph& qm) const {
  double p = 1.0;
  for (const auto& sel : qm.selections()) {
    ObservedPart part;
    part.is_join = false;
    part.selection = sel;
    p *= SurvivalProbability(part);
  }
  for (const auto& join : qm.joins()) {
    ObservedPart part;
    part.is_join = true;
    part.join = join;
    p *= SurvivalProbability(part);
  }
  return p;
}

// -------------------------------------------------------- RetentionLearner

void RetentionLearner::ObserveTransition(const QueryGraph& prev_final,
                                         const QueryGraph& next_final) {
  for (const auto& sel : prev_final.selections()) {
    selection_retention_.Observe(next_final.HasSelection(sel.Key()));
  }
  for (const auto& join : prev_final.joins()) {
    join_retention_.Observe(next_final.HasJoin(join.Key()));
  }
}

double RetentionLearner::RetentionProbability(bool is_join) const {
  return (is_join ? join_retention_ : selection_retention_).Mean();
}

double RetentionLearner::ExpectedUses(const QueryGraph& qm,
                                      int horizon) const {
  // Per-step survival of the whole sub-query.
  double step = 1.0;
  for (size_t i = 0; i < qm.selections().size(); i++) {
    step *= RetentionProbability(false);
  }
  for (size_t i = 0; i < qm.joins().size(); i++) {
    step *= RetentionProbability(true);
  }
  double uses = 0, p = 1.0;
  for (int k = 0; k < horizon; k++) {
    uses += p;
    p *= step;
  }
  return uses;
}

// -------------------------------------------------------- ThinkTimeLearner

void ThinkTimeLearner::ObserveDuration(double seconds) {
  double x = std::log(std::max(0.5, seconds));
  // Welford-style decayed update.
  weight_ += 1.0;
  double delta = x - mu_;
  mu_ += delta / weight_;
  m2_ += delta * (x - mu_);
  if (weight_ > 256) {  // cap the memory so the model stays adaptive
    double scale = 256.0 / weight_;
    weight_ = 256;
    m2_ *= scale;
  }
}

double ThinkTimeLearner::sigma() const {
  return std::sqrt(std::max(0.04, m2_ / std::max(1.0, weight_)));
}

double ThinkTimeLearner::ProbCompleteInTime(double elapsed_seconds,
                                            double duration_seconds) const {
  double e = std::max(0.0, elapsed_seconds);
  double d = std::max(1e-6, duration_seconds);
  double s = sigma();
  double tail_total = NormalUpperTail((std::log(e + d) - mu_) / s);
  if (e <= 1e-9) return tail_total;
  double tail_elapsed = NormalUpperTail((std::log(e) - mu_) / s);
  if (tail_elapsed < 1e-12) return 0.0;
  return std::clamp(tail_total / tail_elapsed, 0.0, 1.0);
}

// ----------------------------------------------------------------- Learner

void Learner::ObserveGo(
    const std::map<std::string, ObservedPart>& seen_parts,
    const QueryGraph& final_query, const QueryGraph* previous_final_query,
    double formulation_duration) {
  survival_.ObserveFormulation(seen_parts, final_query);
  if (previous_final_query != nullptr) {
    retention_.ObserveTransition(*previous_final_query, final_query);
  }
  if (formulation_duration > 0) {
    think_time_.ObserveDuration(formulation_duration);
  }
  // Once per GO (not a hot path), so registry lookups are fine here.
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("learner.go_observations")->Increment();
  registry.GetCounter("learner.parts_observed")
      ->Increment(seen_parts.size());
  registry.GetGauge("learner.think_time_mu")->Set(think_time_.mu());
}

}  // namespace sqp
