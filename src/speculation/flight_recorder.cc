#include "speculation/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/metrics_registry.h"

namespace sqp {

const char* DecisionOutcomeName(DecisionOutcome outcome) {
  switch (outcome) {
    case DecisionOutcome::kNone: return "none";
    case DecisionOutcome::kPending: return "pending";
    case DecisionOutcome::kCompleted: return "completed";
    case DecisionOutcome::kUsedAtGo: return "used-at-go";
    case DecisionOutcome::kCancelledOnEdit: return "cancelled-on-edit";
    case DecisionOutcome::kCancelledAtGo: return "cancelled-at-go";
    case DecisionOutcome::kAbandoned: return "abandoned";
    case DecisionOutcome::kGarbageCollected: return "garbage-collected";
    case DecisionOutcome::kEvictedForBudget: return "evicted-for-budget";
    case DecisionOutcome::kFailed: return "failed";
    case DecisionOutcome::kLostAtCrash: return "lost-at-crash";
    case DecisionOutcome::kDroppedAtShutdown: return "dropped-at-shutdown";
  }
  return "unknown";
}

bool IsTerminalOutcome(DecisionOutcome outcome) {
  return outcome != DecisionOutcome::kPending &&
         outcome != DecisionOutcome::kCompleted;
}

std::string CalibrationReport::Format() const {
  std::ostringstream os;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "calibration: scored=%zu brier=%.4f\n",
                scored, brier());
  os << buf;
  for (size_t i = 0; i < bucket_counts.size(); i++) {
    if (bucket_counts[i] == 0) continue;
    double lo = static_cast<double>(i) / 10.0;
    double hi = lo + 0.1;
    double observed = static_cast<double>(bucket_survived[i]) /
                      static_cast<double>(bucket_counts[i]);
    std::snprintf(buf, sizeof(buf),
                  "  f_sub in [%.1f,%.1f): n=%llu survived=%llu "
                  "observed=%.2f\n",
                  lo, hi, static_cast<unsigned long long>(bucket_counts[i]),
                  static_cast<unsigned long long>(bucket_survived[i]),
                  observed);
    os << buf;
  }
  return os.str();
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  auto& reg = MetricsRegistry::Global();
  m_rounds_ = reg.GetCounter("spec.recorder.rounds");
  m_issued_ = reg.GetCounter("spec.recorder.records");
  m_events_ = reg.GetCounter("spec.recorder.events");
  m_scored_ = reg.GetCounter("spec.recorder.scored");
  m_brier_ = reg.GetGauge("spec.learner.brier");
  // One bucket per predicted-probability decile (overflow holds [0.9,1]).
  m_calibration_ = reg.GetHistogram(
      "spec.learner.calibration",
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
}

uint64_t FlightRecorder::RecordRound(double sim_time,
                                     const std::string& partial_sql,
                                     const SpeculationDecision& decision) {
  DecisionRecord record;
  record.round = next_round_++;
  record.sim_time = sim_time;
  record.partial_sql = partial_sql;
  const std::string chosen_key =
      decision.chosen.has_value() ? decision.chosen->Key() : std::string();
  record.candidates.reserve(decision.considered.size());
  for (const auto& [m, eval] : decision.considered) {
    CandidateLog log;
    log.key = m.Key();
    log.describe = m.Describe();
    log.eval = eval;
    log.chosen = !chosen_key.empty() && log.key == chosen_key;
    if (log.chosen) {
      record.chosen_index = static_cast<int>(record.candidates.size());
    }
    record.candidates.push_back(std::move(log));
  }
  record.outcome = record.chosen_index >= 0 ? DecisionOutcome::kPending
                                            : DecisionOutcome::kNone;
  m_rounds_->Increment();
  if (record.chosen_index >= 0) m_issued_->Increment();
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
  return next_round_ - 1;
}

uint64_t FlightRecorder::RecordEvent(double sim_time,
                                     const std::string& text) {
  DecisionRecord record;
  record.round = next_round_++;
  record.sim_time = sim_time;
  record.event = text;
  m_events_->Increment();
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
  return next_round_ - 1;
}

void FlightRecorder::SetOutcome(uint64_t round, DecisionOutcome outcome) {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->round != round) continue;
    if (it->outcome == DecisionOutcome::kUsedAtGo) return;  // sticky
    it->outcome = outcome;
    return;
  }
  // Evicted from the ring: the update is dropped by design.
}

void FlightRecorder::Score(double predicted, bool survived) {
  double p = std::clamp(predicted, 0.0, 1.0);
  double y = survived ? 1.0 : 0.0;
  calibration_.scored++;
  calibration_.brier_sum += (p - y) * (p - y);
  size_t bucket = std::min<size_t>(9, static_cast<size_t>(p * 10.0));
  calibration_.bucket_counts[bucket]++;
  if (survived) calibration_.bucket_survived[bucket]++;
  m_scored_->Increment();
  m_brier_->Set(calibration_.brier());
  m_calibration_->Observe(p);
}

std::string FormatDecisionRecord(const DecisionRecord& record) {
  std::ostringstream os;
  char buf[192];
  if (!record.event.empty()) {
    std::snprintf(buf, sizeof(buf), "round=%llu t=%.2f event=",
                  static_cast<unsigned long long>(record.round),
                  record.sim_time);
    os << buf << record.event << "\n";
    return os.str();
  }
  std::snprintf(buf, sizeof(buf), "round=%llu t=%.2f outcome=%s",
                static_cast<unsigned long long>(record.round),
                record.sim_time, DecisionOutcomeName(record.outcome));
  os << buf << " partial=\"" << record.partial_sql << "\"\n";
  if (record.candidates.empty()) {
    os << "  (no candidates)\n";
    return os.str();
  }
  for (const auto& cand : record.candidates) {
    os << (cand.chosen ? "  * " : "    ") << cand.describe;
    std::snprintf(buf, sizeof(buf),
                  " cost_sub=%.4f f_sub=%.3f p_done=%.3f uses=%.2f"
                  " cost_with=%.4f cost_without=%.4f dur=%.4f",
                  cand.eval.score, cand.eval.containment_probability,
                  cand.eval.completion_probability,
                  cand.eval.expected_uses, cand.eval.cost_with,
                  cand.eval.cost_without, cand.eval.estimated_duration);
    os << buf << "\n";
  }
  return os.str();
}

std::string FlightRecorder::FormatLog() const {
  std::ostringstream os;
  for (const auto& record : records_) os << FormatDecisionRecord(record);
  os << calibration_.Format();
  return os.str();
}

}  // namespace sqp
