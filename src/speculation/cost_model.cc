#include "speculation/cost_model.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "optimizer/placement.h"

namespace sqp {

namespace {
/// Width schema of a materialization result: all columns of the
/// participating relations (SELECT * semantics).
Schema ResultSchema(const Catalog& catalog, const QueryGraph& qm) {
  Schema schema;
  for (const auto& rel : qm.relations()) {
    const TableInfo* info = catalog.GetTable(rel);
    if (info != nullptr) schema = schema.Concat(info->schema);
  }
  return schema;
}
}  // namespace

ManipulationEvaluation SpeculationCostModel::EvaluateMaterialization(
    const Manipulation& m, double elapsed) const {
  ManipulationEvaluation eval;
  const QueryGraph& qm = m.target_query;

  auto plan = db_->planner().Plan(qm, &db_->views(), ViewMode::kCostBased);
  if (!plan.ok()) return eval;  // unplannable: score 0, never chosen

  const CardinalityEstimator& est = db_->planner().estimator();
  const CostConfig& rates = est.config();

  // cost(q_m, m∅): compute q_m from the database as it stands.
  eval.cost_without = plan->est_cost;

  // cost(q_m, m): scan the materialized result.
  Schema schema = ResultSchema(db_->catalog(), qm);
  double result_pages = est.PagesForRows(plan->est_rows, schema);
  eval.cost_with = result_pages * rates.io_seconds_per_block +
                   std::max(0.0, plan->est_rows) * rates.cpu_seconds_per_tuple;

  // Executing the manipulation costs the computation plus writing the
  // result out.
  eval.estimated_duration =
      eval.cost_without + result_pages * rates.io_seconds_per_block;

  eval.containment_probability =
      learner_->survival().ContainmentProbability(qm);
  eval.expected_uses =
      learner_->retention().ExpectedUses(qm, options_.lookahead);
  eval.completion_probability =
      options_.use_completion_probability
          ? learner_->think_time().ProbCompleteInTime(
                elapsed, eval.estimated_duration)
          : 1.0;

  eval.score = eval.containment_probability * eval.completion_probability *
               eval.expected_uses * (eval.cost_with - eval.cost_without);

  PlacePerNode(qm, result_pages, elapsed, &eval);
  return eval;
}

// Pick the result's home node on a multi-node store (DESIGN.md §14):
// price Cost⊆ per candidate home — building the matview at node h ships
// the source pages h does not already hold, which stretches the
// manipulation's duration and so dents its completion probability —
// and keep the placement that maximizes the benefit. Single-node
// stores skip this entirely (eval is left untouched).
void SpeculationCostModel::PlacePerNode(const QueryGraph& qm,
                                        double result_pages, double elapsed,
                                        ManipulationEvaluation* eval) const {
  const PlacementProvider* placement = db_->placement();
  if (placement == nullptr || placement->node_count() <= 1) return;
  const size_t nodes = placement->node_count();
  const CostConfig& rates = db_->planner().estimator().config();

  // Page-weighted source distribution of q_m's inputs over the nodes.
  std::vector<double> source_pages(nodes, 0.0);
  double total_pages = 0;
  for (const auto& rel : qm.relations()) {
    const TableInfo* info = db_->catalog().GetTable(rel);
    if (info == nullptr) continue;
    double pages = static_cast<double>(info->heap->page_count());
    total_pages += pages;
    TablePlacement tp = placement->TablePlacementOf(rel);
    if (tp.node_page_fraction.size() == nodes) {
      for (size_t k = 0; k < nodes; k++) {
        source_pages[k] += pages * tp.node_page_fraction[k];
      }
    } else {
      for (size_t k = 0; k < nodes; k++) {
        source_pages[k] += pages / static_cast<double>(nodes);
      }
    }
  }

  bool have_best = false;
  double best_score = 0, best_frac = -1;
  for (size_t h = 0; h < nodes; h++) {
    if (!placement->NodeAlive(h)) continue;
    double source_frac =
        total_pages > 0 ? source_pages[h] / total_pages
                        : 1.0 / static_cast<double>(nodes);
    double transfer_pages = result_pages * std::max(0.0, 1.0 - source_frac);
    double duration = eval->cost_without +
                      result_pages * rates.io_seconds_per_block +
                      transfer_pages * rates.io_seconds_per_block;
    double completion =
        options_.use_completion_probability
            ? learner_->think_time().ProbCompleteInTime(elapsed, duration)
            : 1.0;
    double score = eval->containment_probability * completion *
                   eval->expected_uses *
                   (eval->cost_with - eval->cost_without);
    // Lexicographic winner: best (most negative) score, then the node
    // already holding the most source pages, then the lowest id —
    // deterministic across replays by construction (ascending h with
    // strict comparisons).
    bool better = !have_best || score < best_score ||
                  (score == best_score && source_frac > best_frac);
    if (better) {
      have_best = true;
      best_score = score;
      best_frac = source_frac;
      eval->home_node = static_cast<uint32_t>(h);
      eval->placement_transfer_pages = transfer_pages;
      eval->estimated_duration = duration;
      eval->completion_probability = completion;
      eval->score = score;
    }
  }
}

ManipulationEvaluation SpeculationCostModel::EvaluateHistogram(
    const Manipulation& m, double elapsed) const {
  ManipulationEvaluation eval;
  const CardinalityEstimator& est = db_->planner().estimator();

  // Heuristic benefit: an accurate histogram improves the plans of
  // queries selecting on this column by a small fraction of the table's
  // scan cost. The build itself is one table scan.
  double scan = est.SeqScanCost(m.table);
  eval.cost_without = scan;
  eval.cost_with = scan * (1.0 - options_.histogram_benefit_fraction);
  eval.estimated_duration = scan;

  ObservedPart part;
  part.is_join = false;
  part.selection.table = m.table;
  part.selection.column = m.column;
  eval.containment_probability =
      learner_->survival().SurvivalProbability(part);
  QueryGraph pseudo;
  pseudo.AddSelection(part.selection);
  eval.expected_uses =
      learner_->retention().ExpectedUses(pseudo, options_.lookahead);
  eval.completion_probability =
      options_.use_completion_probability
          ? learner_->think_time().ProbCompleteInTime(
                elapsed, eval.estimated_duration)
          : 1.0;
  eval.score = eval.containment_probability * eval.completion_probability *
               eval.expected_uses * (eval.cost_with - eval.cost_without);
  return eval;
}

ManipulationEvaluation SpeculationCostModel::EvaluateIndex(
    const Manipulation& m, double elapsed) const {
  ManipulationEvaluation eval;
  const CardinalityEstimator& est = db_->planner().estimator();
  const CostConfig& rates = est.config();

  double rows = est.TableRows(m.table);
  double scan = est.SeqScanCost(m.table);
  // Benefit proxy: a typical selective predicate (10%) served by the
  // new index instead of a full scan.
  double index_cost = est.IndexScanCost(m.table, rows * 0.1);
  eval.cost_without = scan;
  eval.cost_with = std::min(scan, index_cost);
  // Build: scan the table plus insertion work.
  eval.estimated_duration = scan + rows * rates.cpu_seconds_per_tuple;

  ObservedPart part;
  part.is_join = false;
  part.selection.table = m.table;
  part.selection.column = m.column;
  eval.containment_probability =
      learner_->survival().SurvivalProbability(part);
  QueryGraph pseudo;
  pseudo.AddSelection(part.selection);
  eval.expected_uses =
      learner_->retention().ExpectedUses(pseudo, options_.lookahead);
  eval.completion_probability =
      options_.use_completion_probability
          ? learner_->think_time().ProbCompleteInTime(
                elapsed, eval.estimated_duration)
          : 1.0;
  eval.score = eval.containment_probability * eval.completion_probability *
               eval.expected_uses * (eval.cost_with - eval.cost_without);
  return eval;
}

ManipulationEvaluation SpeculationCostModel::Evaluate(
    const Manipulation& m, double elapsed_formulation_seconds) const {
  switch (m.type) {
    case ManipulationType::kNull:
      return ManipulationEvaluation{};  // Cost⊆(m∅) = 0
    case ManipulationType::kHistogramCreation:
      return EvaluateHistogram(m, elapsed_formulation_seconds);
    case ManipulationType::kIndexCreation:
      return EvaluateIndex(m, elapsed_formulation_seconds);
    case ManipulationType::kMaterializeQuery:
    case ManipulationType::kRewriteQuery:
      return EvaluateMaterialization(m, elapsed_formulation_seconds);
  }
  return ManipulationEvaluation{};
}

}  // namespace sqp
