#include "speculation/cost_model.h"

#include <algorithm>
#include <cassert>

namespace sqp {

namespace {
/// Width schema of a materialization result: all columns of the
/// participating relations (SELECT * semantics).
Schema ResultSchema(const Catalog& catalog, const QueryGraph& qm) {
  Schema schema;
  for (const auto& rel : qm.relations()) {
    const TableInfo* info = catalog.GetTable(rel);
    if (info != nullptr) schema = schema.Concat(info->schema);
  }
  return schema;
}
}  // namespace

ManipulationEvaluation SpeculationCostModel::EvaluateMaterialization(
    const Manipulation& m, double elapsed) const {
  ManipulationEvaluation eval;
  const QueryGraph& qm = m.target_query;

  auto plan = db_->planner().Plan(qm, &db_->views(), ViewMode::kCostBased);
  if (!plan.ok()) return eval;  // unplannable: score 0, never chosen

  const CardinalityEstimator& est = db_->planner().estimator();
  const CostConfig& rates = est.config();

  // cost(q_m, m∅): compute q_m from the database as it stands.
  eval.cost_without = plan->est_cost;

  // cost(q_m, m): scan the materialized result.
  Schema schema = ResultSchema(db_->catalog(), qm);
  double result_pages = est.PagesForRows(plan->est_rows, schema);
  eval.cost_with = result_pages * rates.io_seconds_per_block +
                   std::max(0.0, plan->est_rows) * rates.cpu_seconds_per_tuple;

  // Executing the manipulation costs the computation plus writing the
  // result out.
  eval.estimated_duration =
      eval.cost_without + result_pages * rates.io_seconds_per_block;

  eval.containment_probability =
      learner_->survival().ContainmentProbability(qm);
  eval.expected_uses =
      learner_->retention().ExpectedUses(qm, options_.lookahead);
  eval.completion_probability =
      options_.use_completion_probability
          ? learner_->think_time().ProbCompleteInTime(
                elapsed, eval.estimated_duration)
          : 1.0;

  eval.score = eval.containment_probability * eval.completion_probability *
               eval.expected_uses * (eval.cost_with - eval.cost_without);
  return eval;
}

ManipulationEvaluation SpeculationCostModel::EvaluateHistogram(
    const Manipulation& m, double elapsed) const {
  ManipulationEvaluation eval;
  const CardinalityEstimator& est = db_->planner().estimator();

  // Heuristic benefit: an accurate histogram improves the plans of
  // queries selecting on this column by a small fraction of the table's
  // scan cost. The build itself is one table scan.
  double scan = est.SeqScanCost(m.table);
  eval.cost_without = scan;
  eval.cost_with = scan * (1.0 - options_.histogram_benefit_fraction);
  eval.estimated_duration = scan;

  ObservedPart part;
  part.is_join = false;
  part.selection.table = m.table;
  part.selection.column = m.column;
  eval.containment_probability =
      learner_->survival().SurvivalProbability(part);
  QueryGraph pseudo;
  pseudo.AddSelection(part.selection);
  eval.expected_uses =
      learner_->retention().ExpectedUses(pseudo, options_.lookahead);
  eval.completion_probability =
      options_.use_completion_probability
          ? learner_->think_time().ProbCompleteInTime(
                elapsed, eval.estimated_duration)
          : 1.0;
  eval.score = eval.containment_probability * eval.completion_probability *
               eval.expected_uses * (eval.cost_with - eval.cost_without);
  return eval;
}

ManipulationEvaluation SpeculationCostModel::EvaluateIndex(
    const Manipulation& m, double elapsed) const {
  ManipulationEvaluation eval;
  const CardinalityEstimator& est = db_->planner().estimator();
  const CostConfig& rates = est.config();

  double rows = est.TableRows(m.table);
  double scan = est.SeqScanCost(m.table);
  // Benefit proxy: a typical selective predicate (10%) served by the
  // new index instead of a full scan.
  double index_cost = est.IndexScanCost(m.table, rows * 0.1);
  eval.cost_without = scan;
  eval.cost_with = std::min(scan, index_cost);
  // Build: scan the table plus insertion work.
  eval.estimated_duration = scan + rows * rates.cpu_seconds_per_tuple;

  ObservedPart part;
  part.is_join = false;
  part.selection.table = m.table;
  part.selection.column = m.column;
  eval.containment_probability =
      learner_->survival().SurvivalProbability(part);
  QueryGraph pseudo;
  pseudo.AddSelection(part.selection);
  eval.expected_uses =
      learner_->retention().ExpectedUses(pseudo, options_.lookahead);
  eval.completion_probability =
      options_.use_completion_probability
          ? learner_->think_time().ProbCompleteInTime(
                elapsed, eval.estimated_duration)
          : 1.0;
  eval.score = eval.containment_probability * eval.completion_probability *
               eval.expected_uses * (eval.cost_with - eval.cost_without);
  return eval;
}

ManipulationEvaluation SpeculationCostModel::Evaluate(
    const Manipulation& m, double elapsed_formulation_seconds) const {
  switch (m.type) {
    case ManipulationType::kNull:
      return ManipulationEvaluation{};  // Cost⊆(m∅) = 0
    case ManipulationType::kHistogramCreation:
      return EvaluateHistogram(m, elapsed_formulation_seconds);
    case ManipulationType::kIndexCreation:
      return EvaluateIndex(m, elapsed_formulation_seconds);
    case ManipulationType::kMaterializeQuery:
    case ManipulationType::kRewriteQuery:
      return EvaluateMaterialization(m, elapsed_formulation_seconds);
  }
  return ManipulationEvaluation{};
}

}  // namespace sqp
