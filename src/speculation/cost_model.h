// The speculation Cost Model (paper §3.3).
//
// The intractable objective Cost(m) = Σ_{q∈Q} f(q)·cost(q,m) reduces,
// under P1 (containment dependence) and P2 (linearity), to the local
//
//   Cost⊆(m) = f⊆(q_m) · (cost(q_m, m) − cost(q_m, m∅))      (Thm 3.1)
//
// where cost(q_m, m) is the cost of answering q_m from its materialized
// result and cost(q_m, m∅) the cost of computing it from the current
// database. Negative values favour the manipulation; m∅ scores 0.
//
// Two extensions from the paper are folded in multiplicatively:
//   * completion probability — a manipulation only helps if it finishes
//     before GO (the Speculator cancels it otherwise), so the benefit is
//     weighted by P(think time remaining > manipulation duration) from
//     the ThinkTimeLearner;
//   * multi-query lookahead — results persist across queries under the
//     garbage-collection heuristic, so the benefit is multiplied by the
//     expected number of future queries still containing q_m (§3.3's
//     sequence extension, via the RetentionLearner).
#pragma once

#include "db/database.h"
#include "speculation/learner.h"
#include "speculation/manipulation.h"

namespace sqp {

struct CostModelOptions {
  /// Horizon n of the multi-query extension; 1 = single-query Cost⊆.
  int lookahead = 4;
  /// Weight benefits by the probability the manipulation completes
  /// before GO.
  bool use_completion_probability = true;
  /// Estimated fraction of a selection query's cost saved by an accurate
  /// histogram (better plan choice). A blunt heuristic — the true effect
  /// routes through the optimizer — kept small, as the paper found these
  /// manipulations weakest.
  double histogram_benefit_fraction = 0.03;
};

/// A manipulation's evaluation, with the pieces that went into it.
struct ManipulationEvaluation {
  double score = 0;  // Cost⊆ (negative = beneficial)
  double containment_probability = 1;
  double completion_probability = 1;
  double expected_uses = 1;
  double cost_without = 0;  // cost(q_m, m∅)
  double cost_with = 0;     // cost(q_m, m)
  double estimated_duration = 0;  // manipulation execution estimate
  /// Chosen home node for the materialized result on a multi-node
  /// store (DESIGN.md §14): the alive node minimizing Cost⊆ with the
  /// placement transfer folded into the duration. kAnyNode on
  /// single-node stores (no placement term).
  uint32_t home_node = PageAllocOptions::kAnyNode;
  /// Estimated pages shipped from other nodes to build the result at
  /// `home_node` (0 when placement is inactive).
  double placement_transfer_pages = 0;
};

class SpeculationCostModel {
 public:
  SpeculationCostModel(const Database* db, const Learner* learner,
                       CostModelOptions options = {})
      : db_(db), learner_(learner), options_(options) {}

  /// Evaluate Cost⊆(m) in the current database state.
  /// `elapsed_formulation_seconds`: think time already spent on the
  /// current formulation (conditions the completion probability).
  ManipulationEvaluation Evaluate(const Manipulation& m,
                                  double elapsed_formulation_seconds) const;

  const CostModelOptions& options() const { return options_; }

 private:
  ManipulationEvaluation EvaluateMaterialization(
      const Manipulation& m, double elapsed_formulation_seconds) const;
  ManipulationEvaluation EvaluateHistogram(const Manipulation& m,
                                           double elapsed) const;
  ManipulationEvaluation EvaluateIndex(const Manipulation& m,
                                       double elapsed) const;
  /// Multi-node placement pass over a materialization's evaluation:
  /// re-prices score/duration/completion per candidate home node and
  /// records the winner in eval (no-op on single-node stores).
  void PlacePerNode(const QueryGraph& qm, double result_pages, double elapsed,
                    ManipulationEvaluation* eval) const;

  const Database* db_;
  const Learner* learner_;
  CostModelOptions options_;
};

}  // namespace sqp
