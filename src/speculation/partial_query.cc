#include "speculation/partial_query.h"

namespace sqp {

std::string ObservedPart::FeatureKey() const {
  if (is_join) return "join:" + join.Key();
  // Selections are learned per (table, column): the constant changes
  // between queries but the user's habit of filtering that column is
  // what survives.
  return "sel:" + selection.table + "." + selection.column;
}

void PartialQueryTracker::ApplyEvent(const TraceEvent& event) {
  Trace::Apply(event, &graph_);
  switch (event.type) {
    case TraceEventType::kAddSelection: {
      ObservedPart part;
      part.is_join = false;
      part.selection = event.selection;
      seen_[event.selection.Key()] = std::move(part);
      break;
    }
    case TraceEventType::kAddJoin: {
      ObservedPart part;
      part.is_join = true;
      part.join = event.join;
      seen_[event.join.Key()] = std::move(part);
      break;
    }
    default:
      break;
  }
}

void PartialQueryTracker::OnGo() {
  seen_.clear();
  // Parts remaining on the canvas participate in the next formulation.
  for (const auto& sel : graph_.selections()) {
    ObservedPart part;
    part.is_join = false;
    part.selection = sel;
    seen_[sel.Key()] = std::move(part);
  }
  for (const auto& join : graph_.joins()) {
    ObservedPart part;
    part.is_join = true;
    part.join = join;
    seen_[join.Key()] = std::move(part);
  }
  formulation_start_ = -1;
}

}  // namespace sqp
