#include "speculation/manipulation_space.h"

#include <map>
#include <set>

namespace sqp {

std::vector<Manipulation> EnumerateManipulations(
    const QueryGraph& partial, const ViewRegistry& views,
    const Catalog& catalog, const ManipulationSpaceOptions& options) {
  std::vector<Manipulation> out;
  std::set<std::string> seen;
  ManipulationType mat_type = options.force_rewrite
                                  ? ManipulationType::kRewriteQuery
                                  : ManipulationType::kMaterializeQuery;

  auto add = [&](Manipulation m) {
    std::string key = m.Key();
    if (seen.count(key) > 0) return;
    seen.insert(std::move(key));
    out.push_back(std::move(m));
  };

  // Selection-edge materializations.
  if (options.selection_materializations) {
    for (const auto& sel : partial.selections()) {
      QueryGraph qm;
      qm.AddSelection(sel);
      if (views.FindExact(qm) != nullptr) continue;  // already available
      Manipulation m;
      m.type = mat_type;
      m.target_query = std::move(qm);
      add(std::move(m));
    }
  }

  // Two-way join materializations: group join edges by relation pair so
  // the composite lineitem–partsupp pair becomes one manipulation.
  if (options.join_materializations) {
    std::map<std::pair<std::string, std::string>, std::vector<JoinPred>>
        pairs;
    for (const auto& join : partial.joins()) {
      JoinPred c = join;
      c.Canonicalize();
      pairs[{c.left_table, c.right_table}].push_back(c);
    }
    for (const auto& [pair_key, edges] : pairs) {
      QueryGraph qm;
      for (const auto& edge : edges) qm.AddJoin(edge);
      // "enhanced with all selection edges attached to the join edge".
      for (const auto& sel : partial.SelectionsOn(pair_key.first)) {
        qm.AddSelection(sel);
      }
      for (const auto& sel : partial.SelectionsOn(pair_key.second)) {
        qm.AddSelection(sel);
      }
      if (views.FindExact(qm) != nullptr) continue;
      Manipulation m;
      m.type = mat_type;
      m.target_query = std::move(qm);
      add(std::move(m));
    }
  }

  // Histogram / index creations on the partial query's selection columns.
  if (options.histogram_creations || options.index_creations) {
    for (const auto& sel : partial.selections()) {
      if (options.histogram_creations &&
          catalog.GetHistogram(sel.table, sel.column) == nullptr) {
        Manipulation m;
        m.type = ManipulationType::kHistogramCreation;
        m.table = sel.table;
        m.column = sel.column;
        add(std::move(m));
      }
      if (options.index_creations &&
          !catalog.HasIndex(sel.table, sel.column)) {
        Manipulation m;
        m.type = ManipulationType::kIndexCreation;
        m.table = sel.table;
        m.column = sel.column;
        add(std::move(m));
      }
    }
  }

  return out;
}

}  // namespace sqp
