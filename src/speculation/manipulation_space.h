// Manipulation-space enumeration (paper §3.5).
//
// The Speculator considers materializations of sub-graphs of the current
// partial query only — specifically:
//   * each individual selection edge (a single-relation selection query);
//   * each join edge enhanced with all selection edges attached to its
//     two relation vertices (a two-way join query).
// Arbitrary sub-queries are not enumerated (too many, rarely useful).
// Variants that reuse already-completed materializations (the paper's
// T1 ← σθ(T) example) arise automatically: the Database plans each
// materialization query cost-based over the current view registry.
//
// Policy switches select which operation types to enumerate — used by
// the ablation experiment (E8) and by the multi-user configuration,
// which restricts speculation to selection materializations (§6.3).
#pragma once

#include <vector>

#include "catalog/catalog.h"
#include "optimizer/view_matcher.h"
#include "speculation/manipulation.h"

namespace sqp {

struct ManipulationSpaceOptions {
  /// Materialize single selection edges.
  bool selection_materializations = true;
  /// Materialize two-way joins with attached selections.
  bool join_materializations = true;
  /// Enumerate histogram-creation manipulations on selection columns.
  bool histogram_creations = false;
  /// Enumerate index-creation manipulations on selection columns.
  bool index_creations = false;
  /// Emit kRewriteQuery (forced) instead of kMaterializeQuery.
  /// The paper's implementation uses rewriting throughout (§4.2).
  bool force_rewrite = true;
};

/// Enumerate candidate manipulations for `partial`. Materializations
/// whose exact result already exists in `views` are skipped; histogram /
/// index creations that already exist in `catalog` are skipped.
std::vector<Manipulation> EnumerateManipulations(
    const QueryGraph& partial, const ViewRegistry& views,
    const Catalog& catalog, const ManipulationSpaceOptions& options);

}  // namespace sqp
