// The Learner (paper §3.4): online user-profile models feeding the
// probability terms of the cost model.
//
// Three components, each approximating one probability:
//
//  * SurvivalLearner — f⊆ within a formulation: the probability that an
//    atomic part present in the partial query survives into the final
//    query. Beta-Bernoulli counts with exponential decay, keyed by part
//    feature ("sel:table.column" / "join:key") with per-kind priors, so
//    habits specific to a column or join are learned while rare parts
//    fall back to the population prior.
//
//  * RetentionLearner — cross-query retention: the per-kind geometric
//    probability that a part of one final query appears in the next
//    (§5 observes means of ~3 consecutive queries for selections, ~10
//    for joins). Feeds the multi-query (lookahead) benefit term.
//
//  * ThinkTimeLearner — a log-normal model of formulation duration,
//    updated at every GO, giving P(manipulation of duration d completes
//    before GO | formulation already lasted e seconds).
#pragma once

#include <map>
#include <string>

#include "optimizer/query_graph.h"
#include "speculation/partial_query.h"

namespace sqp {

/// Decayed Beta-Bernoulli estimator.
class BetaCounter {
 public:
  BetaCounter(double prior_success = 1, double prior_total = 2)
      : s_(prior_success), n_(prior_total) {}

  void Observe(bool success, double decay = 0.98) {
    s_ = s_ * decay + (success ? 1.0 : 0.0);
    n_ = n_ * decay + 1.0;
  }
  double Mean() const { return n_ > 0 ? s_ / n_ : 0.5; }
  double weight() const { return n_; }

 private:
  double s_;
  double n_;
};

class SurvivalLearner {
 public:
  /// Train on one completed formulation: every part observed during
  /// formulation either survived into `final_query` or did not.
  void ObserveFormulation(
      const std::map<std::string, ObservedPart>& seen_parts,
      const QueryGraph& final_query);

  /// P(part survives to the final query).
  double SurvivalProbability(const ObservedPart& part) const;

  /// f⊆(q_m): probability the whole sub-query survives (independence
  /// across its atomic parts).
  double ContainmentProbability(const QueryGraph& qm) const;

  size_t observed_formulations() const { return observations_; }

 private:
  // Population priors per kind; the paper's users keep most parts:
  // start moderately optimistic.
  BetaCounter selection_prior_{7, 10};  // ~0.7
  BetaCounter join_prior_{9, 10};       // ~0.9
  std::map<std::string, BetaCounter> per_feature_;
  size_t observations_ = 0;
};

class RetentionLearner {
 public:
  /// Train on a consecutive pair of final queries.
  void ObserveTransition(const QueryGraph& prev_final,
                         const QueryGraph& next_final);

  /// Per-kind probability a part carries into the next final query.
  double RetentionProbability(bool is_join) const;

  /// Expected number of future final queries (within `horizon`) that
  /// still contain q_m, including the imminent one:
  /// Σ_{k=0}^{horizon-1} Π_parts retention^k.
  double ExpectedUses(const QueryGraph& qm, int horizon) const;

 private:
  BetaCounter selection_retention_{2, 3};  // ~0.67 prior (lifetime 3)
  BetaCounter join_retention_{9, 10};      // ~0.9 prior (lifetime 10)
};

class ThinkTimeLearner {
 public:
  /// Record a completed formulation's duration (seconds).
  void ObserveDuration(double seconds);

  /// P(remaining formulation time > d | elapsed e so far), under the
  /// fitted log-normal: Φc((ln(e+d)−μ)/σ) / Φc((ln e−μ)/σ).
  double ProbCompleteInTime(double elapsed_seconds,
                            double duration_seconds) const;

  double mu() const { return mu_; }
  double sigma() const;

 private:
  // Online mean/variance of log-duration, seeded with the §5 profile.
  double mu_ = 2.4;
  double m2_ = 1.87 * 8;  // sigma^2 * weight
  double weight_ = 8;
};

/// Facade owning the three learners.
class Learner {
 public:
  SurvivalLearner& survival() { return survival_; }
  const SurvivalLearner& survival() const { return survival_; }
  RetentionLearner& retention() { return retention_; }
  const RetentionLearner& retention() const { return retention_; }
  ThinkTimeLearner& think_time() { return think_time_; }
  const ThinkTimeLearner& think_time() const { return think_time_; }

  /// Convenience: train every component at a GO boundary.
  void ObserveGo(const std::map<std::string, ObservedPart>& seen_parts,
                 const QueryGraph& final_query,
                 const QueryGraph* previous_final_query,
                 double formulation_duration);

 private:
  SurvivalLearner survival_;
  RetentionLearner retention_;
  ThinkTimeLearner think_time_;
};

}  // namespace sqp
