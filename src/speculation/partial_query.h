// Partial-query tracking.
//
// The speculation subsystem monitors the user's on-screen edits; this
// tracker maintains the current partial query graph plus the formulation
// bookkeeping the Learner trains on: which atomic parts appeared at any
// point during the current formulation (so that at GO we can observe,
// per part, whether it survived into the final query).
#pragma once

#include <map>
#include <string>

#include "optimizer/query_graph.h"
#include "trace/trace.h"

namespace sqp {

/// An atomic part observed during formulation.
struct ObservedPart {
  bool is_join = false;
  SelectionPred selection;
  JoinPred join;

  std::string FeatureKey() const;
};

class PartialQueryTracker {
 public:
  /// Apply a user edit; records added parts in the seen-set.
  void ApplyEvent(const TraceEvent& event);

  /// The current partial query.
  const QueryGraph& current() const { return graph_; }

  /// Parts seen (added) at any time during the current formulation.
  const std::map<std::string, ObservedPart>& seen_parts() const {
    return seen_;
  }

  /// Start a new formulation (called after GO): parts still on the
  /// canvas seed the next formulation's seen-set, since they are part of
  /// the next partial query from its first moment.
  void OnGo();

  /// Sim time of the first edit in the current formulation (<0: none).
  double formulation_start() const { return formulation_start_; }
  void NoteEventTime(double t) {
    if (formulation_start_ < 0) formulation_start_ = t;
  }

 private:
  QueryGraph graph_;
  std::map<std::string, ObservedPart> seen_;
  double formulation_start_ = -1;
};

}  // namespace sqp
