// Speculation engine: the session driver wiring Figure 3 together.
//
// Listens to user edits, maintains the partial query, asks the
// Speculator for the best manipulation, issues it asynchronously on the
// simulated server, and enforces the paper's three operating
// conventions (§3.1):
//   1. manipulations run asynchronously and are cancelled when the
//      partial query stops implying them — and, conservatively, at GO
//      (or, under the §7 wait policy, briefly waited for);
//   2. completed results persist while the current partial query implies
//      them (garbage-collection heuristic → inter-query reuse);
//   3. at most one manipulation is outstanding at any time
//      (max_outstanding relaxes this for the ablation).
//
// Execution model: the manipulation's side effects are applied eagerly
// (the result table is built and its simulated duration measured), but
// the result is only *registered* for rewriting when the simulated
// completion time arrives; a cancellation drops the half-built result.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/rng.h"
#include "common/tracing.h"
#include "db/database.h"
#include "sim/sim_server.h"
#include "speculation/flight_recorder.h"
#include "speculation/learner.h"
#include "speculation/speculator.h"
#include "trace/trace.h"

namespace sqp {

/// What to do with a still-running manipulation when GO arrives.
enum class GoPolicy {
  /// The paper's conservative convention (§3.1): cancel it.
  kCancelIncomplete,
  /// §7's extension: with remaining-time feedback from the server, delay
  /// the final query until the manipulation completes whenever the wait
  /// is smaller than the rewriting's estimated saving.
  kWaitIfWorthwhile,
};

struct SpeculationEngineOptions {
  SpeculatorOptions speculator;
  CostModelOptions cost_model;
  GoPolicy go_policy = GoPolicy::kCancelIncomplete;
  /// §7's load-aware issuing: only start a manipulation when the server
  /// is otherwise idle (useful in multi-user settings).
  bool only_issue_when_idle = false;
  /// The paper's third operating convention keeps at most ONE
  /// manipulation outstanding "so that the overall system load is kept
  /// low" (§3.1). Raising this pipelines manipulations — they then share
  /// server capacity and individually take longer (ablated by
  /// bench_ablation_manipulations).
  size_t max_outstanding = 1;
  /// How the final query uses speculative results: kForced = the paper's
  /// query rewriting (used in their evaluation, §4.2); kCostBased =
  /// query materialization.
  ViewMode final_query_view_mode = ViewMode::kForced;
  bool enabled = true;
  /// Also speculate when query results return (the canvas still shows
  /// the previous query, so the Speculator can prepare for the next one
  /// during the user's result-examination pause). The paper only issues
  /// on partial-query modifications; this extension exploits the same
  /// GC rule that keeps results alive between queries. Ablated by
  /// bench_ablation_manipulations.
  bool speculate_on_results = true;
  /// Name prefix for speculative tables (unique per engine).
  std::string table_prefix = "spec_mv_";

  // --- failure handling -------------------------------------------
  // Speculation is strictly best-effort: a failed manipulation never
  // fails the session. Transient failures (Status::IsRetryable()) are
  // retried with capped exponential backoff in simulated time; repeated
  // failures of any kind trip a circuit breaker that suspends
  // speculation for a cooldown window.
  /// Transient-failure retries before a manipulation counts as failed
  /// for the circuit breaker.
  size_t max_retries = 3;
  /// Initial backoff before a retry (simulated seconds); doubles per
  /// consecutive retry up to `retry_backoff_cap_seconds`.
  double retry_backoff_seconds = 0.5;
  double retry_backoff_cap_seconds = 8.0;
  /// Jitter applied to each backoff: the capped backoff is scaled by a
  /// factor uniform in [1, 1 + retry_jitter_fraction], drawn from the
  /// engine's own seeded stream so same-seed replays stay
  /// byte-identical. 0 disables jitter.
  double retry_jitter_fraction = 0.25;
  /// Seed for the engine's private random stream (backoff jitter).
  uint64_t rng_seed = 0x5eed;
  /// Consecutive (post-retry) failures that open the circuit breaker.
  size_t circuit_breaker_threshold = 5;
  /// How long speculation stays suspended once the breaker opens.
  double circuit_breaker_cooldown_seconds = 60.0;

  // --- storage budget ---------------------------------------------
  /// Cap on the total pages of completed speculative views this engine
  /// keeps (0 = unlimited). When a newly completed view pushes the
  /// total over the cap, the least-recently-useful views are evicted
  /// first, so speculation can never exhaust the store.
  size_t max_speculative_pages = 0;

  // --- observability ----------------------------------------------
  /// Optional span tracer (DESIGN.md §9). When set, the engine records
  /// a span per manipulation (issue → complete/cancel/abandon) and
  /// instants for failures, retries, circuit-breaker opens, and crash
  /// recovery. Null = no recording, no cost.
  Tracer* tracer = nullptr;
  /// Display lane for this engine's spans (one per user in multi-user
  /// replays).
  std::string trace_lane = "main";
  /// Speculator evaluation rounds kept in the flight recorder's ring
  /// buffer (DESIGN.md §11); oldest rounds are evicted first.
  size_t flight_recorder_capacity = 256;
};

struct EngineStats {
  size_t manipulations_issued = 0;
  size_t manipulations_completed = 0;
  size_t cancelled_by_edit = 0;
  size_t cancelled_at_go = 0;
  /// Materializations abandoned at completion because their *actual*
  /// result (true row/page counts, known once built) turned out more
  /// expensive to scan than recomputing the sub-query — the guard that
  /// keeps correlated-cardinality misestimates from forcing penalties.
  size_t abandoned_at_completion = 0;
  size_t views_garbage_collected = 0;
  /// GO events where the engine chose to wait for a near-complete
  /// manipulation instead of cancelling it (GoPolicy::kWaitIfWorthwhile).
  size_t waits_at_go = 0;
  /// Manipulations whose execution failed (I/O error, resource
  /// exhaustion, injected fault). Their side effects were rolled back;
  /// the session continued unaffected.
  size_t manipulations_failed = 0;
  /// Retry attempts scheduled for transient manipulation failures.
  size_t retries = 0;
  /// Times the circuit breaker opened and suspended speculation.
  size_t speculation_suspended_events = 0;
  /// Completed views evicted to respect max_speculative_pages.
  size_t views_evicted_for_budget = 0;
  /// Speculative views adopted back after a crash+Reopen (they were
  /// committed and survived recovery, so the engine keeps reusing them).
  size_t views_recovered = 0;
  /// Half-built or unregistered speculative tables dropped by
  /// RecoverAfterCrash (recovery kept the pages but no registration).
  size_t views_dropped_at_recovery = 0;
  /// Learner-calibration tallies (DESIGN.md §11): every candidate's
  /// predicted f⊆ is scored at GO against whether the final query
  /// actually contained its part. brier_sum / predictions_scored is the
  /// Brier score in [0, 1].
  size_t predictions_scored = 0;
  double brier_sum = 0;
  double total_wait_seconds = 0;
  /// Simulated seconds of manipulation work executed (incl. cancelled).
  double total_manipulation_work = 0;
  /// Simulated seconds of manipulation work that never paid off: the
  /// executed fraction of cancelled manipulations plus the full work of
  /// results abandoned at completion. The complement — the sum of
  /// `completed_durations` — is work fully hidden under think time
  /// (see ComputeOverlap in harness/metrics.h).
  double wasted_manipulation_work = 0;
  /// Durations of completed manipulations.
  std::vector<double> completed_durations;

  size_t cancelled() const { return cancelled_by_edit + cancelled_at_go; }
};

class SpeculationEngine {
 public:
  SpeculationEngine(Database* db, SimServer* server,
                    SpeculationEngineOptions options = {});

  /// Handle one user edit at simulated time `sim_time` (the caller must
  /// have advanced the server to `sim_time` already).
  Status OnUserEvent(const TraceEvent& event, double sim_time);

  /// Handle GO at `sim_time`: sync the outstanding manipulation, apply
  /// the GO policy (cancel it, or decide to wait for it), and train the
  /// learner on the completed formulation. The final query is the
  /// current partial query. Call *before* executing the final query.
  ///
  /// Returns the simulated time at which the final query should be
  /// submitted: `sim_time` normally; later under kWaitIfWorthwhile when
  /// waiting for the manipulation beats running without it (the caller
  /// must advance the server there and call OnQueryResult/Sync paths
  /// via ResolveWait before executing).
  Result<double> OnGo(double sim_time);

  /// Complete a decided wait: advances bookkeeping to `wait_until`
  /// (registering the finished manipulation). Call after advancing the
  /// server to the time OnGo returned.
  Status ResolveWait(double wait_until);

  /// Called when the final query's results return to the user. The
  /// canvas still shows that query, so the Speculator may start
  /// preparing for the next one during the user's result-examination
  /// pause (inter-query think time).
  Status OnQueryResult(double sim_time);

  /// Current partial query (equals the final query right after GO).
  const QueryGraph& partial() const { return tracker_.current(); }

  ViewMode final_view_mode() const {
    return options_.final_query_view_mode;
  }

  const EngineStats& stats() const { return stats_; }
  Learner& learner() { return learner_; }
  const Learner& learner() const { return learner_; }
  /// Decision audit log + learner calibration (DESIGN.md §11).
  const FlightRecorder& flight_recorder() const { return recorder_; }

  /// Interleave an out-of-band cluster event (node loss, membership
  /// change, repair) into the decision log, so a dump shows what the
  /// storage tier was doing between speculation rounds.
  void NoteEvent(double sim_time, const std::string& text) {
    recorder_.RecordEvent(sim_time, text);
  }

  /// Names of completed speculative views currently alive.
  std::vector<std::string> live_views() const;

  /// End-of-session cleanup: cancel any outstanding manipulation and
  /// drop every speculative view, histogram, and index this engine
  /// created, leaving the database as the replay found it.
  Status Shutdown();

  /// Re-align with the database after a crash + Database::Reopen().
  /// In-flight bookkeeping (outstanding manipulations, retry/breaker
  /// clocks) is discarded. Committed speculative views that survived
  /// recovery and are still registered are adopted back into ownership
  /// so GC and the storage budget keep governing them; speculative
  /// tables that survived with no registration are dropped; owned
  /// indexes/histograms are pruned to the ones recovery rebuilt.
  /// Best-effort, like everything else in the engine: never fails the
  /// session.
  Status RecoverAfterCrash(double sim_time);

  /// Pre-train the learner on historical traces (the paper's Learner
  /// "observes users over time").
  void PretrainLearner(const std::vector<Trace>& traces);

 private:
  struct Outstanding {
    Manipulation manipulation;
    SimServer::JobId job = 0;
    std::string table_name;  // materializations only
    double issue_time = 0;
    double work = 0;
    /// cost(q_m, m∅) as estimated at issue time, for the completion-time
    /// benefit re-check.
    double issue_cost_without = 0;
    /// Open tracing span (kInvalidSpan when no tracer is attached).
    Tracer::SpanId span = Tracer::kInvalidSpan;
    /// Flight-recorder round that issued this manipulation (0 = none).
    uint64_t record_id = 0;
  };

  /// Promote outstanding manipulations whose simulated completion time
  /// has arrived.
  void SyncOutstanding(double sim_time);

  /// Is this outstanding manipulation still implied by the partial
  /// query?
  bool StillRelevant(const Outstanding& out) const;

  /// Cancel one outstanding entry (rolls back side effects). `sim_time`
  /// stamps the cancellation on the span and bounds the wasted-work
  /// accounting.
  void CancelOne(Outstanding& out, bool at_go, double sim_time);

  /// Cancel every outstanding manipulation.
  void CancelOutstanding(bool at_go, double sim_time);

  /// Drop completed speculative views no longer implied by the partial;
  /// views that remain implied are touched (LRU bookkeeping for the
  /// storage budget).
  void GarbageCollect(double sim_time);

  /// Evict least-recently-useful completed views until the total pages
  /// they occupy fit within max_speculative_pages.
  void EnforceBudget();

  /// Record a failed manipulation: schedule a backed-off retry for
  /// transient failures, advance the circuit breaker otherwise. Never
  /// propagates the failure — speculation is best-effort.
  void HandleManipulationFailure(const Status& failure, double sim_time);

  /// Ask the Speculator and issue the chosen manipulation.
  Status MaybeIssue(double sim_time);

  Status ExecuteManipulation(const Manipulation& m,
                             const ManipulationEvaluation& eval,
                             double sim_time, uint64_t record_id);

  Database* db_;
  SimServer* server_;
  SpeculationEngineOptions options_;
  Learner learner_;
  SpeculationCostModel cost_model_;
  Speculator speculator_;
  PartialQueryTracker tracker_;
  /// In-flight manipulations (size bounded by max_outstanding; the
  /// paper's convention keeps it at one).
  std::vector<Outstanding> outstanding_;
  struct OwnedView {
    QueryGraph definition;
    /// Last simulated time the current partial query implied this view
    /// (refreshed on every event; the budget evicts the stalest first).
    double last_use = 0;
    /// Flight-recorder round that built this view (0 = none).
    uint64_t record_id = 0;
  };
  /// Completed speculative views: table name -> definition + LRU stamp.
  std::map<std::string, OwnedView> owned_views_;
  /// A completed speculative histogram or index on (table, column).
  struct OwnedStat {
    std::string table;
    std::string column;
    /// Flight-recorder round that built it (0 = none).
    uint64_t record_id = 0;
  };
  std::vector<OwnedStat> owned_histograms_;
  std::vector<OwnedStat> owned_indexes_;
  std::optional<QueryGraph> previous_final_;
  EngineStats stats_;
  FlightRecorder recorder_;
  /// f⊆ predictions awaiting ground truth: candidate key -> the
  /// candidate and its predicted containment probability (latest
  /// evaluation wins). Scored against the final query at GO.
  std::map<std::string, std::pair<Manipulation, double>>
      pending_predictions_;
  uint64_t next_table_id_ = 0;

  // Failure-handling state (simulated-time clocks).
  size_t retry_attempts_ = 0;        // consecutive transient failures
  size_t consecutive_failures_ = 0;  // toward the circuit breaker
  double retry_not_before_ = 0;      // backoff gate for the next issue
  double suspended_until_ = 0;       // circuit-breaker cooldown end
  /// Private seeded stream for backoff jitter; consumed only on retry,
  /// so fault-free replays never advance it.
  Rng rng_;

  // Observability (DESIGN.md §9). Handles into the global
  // MetricsRegistry shadowing the EngineStats counters above (EngineStats
  // stays the per-engine result struct; the registry aggregates across
  // engines); `last_sim_time_` stamps teardown spans (Shutdown has no
  // clock of its own).
  Counter* m_issued_;
  Counter* m_completed_;
  Counter* m_cancelled_edit_;
  Counter* m_cancelled_go_;
  Counter* m_abandoned_;
  Counter* m_failed_;
  Counter* m_retries_;
  Counter* m_suspended_;
  Counter* m_evicted_;
  Counter* m_gc_;
  HistogramMetric* m_durations_;
  /// Speculative-cache occupancy gauges (`spec.cache.views` /
  /// `spec.cache.pages`), refreshed at every owned_views_ mutation so
  /// the telemetry timeline can chart cache churn.
  Gauge* m_cache_views_;
  Gauge* m_cache_pages_;
  /// Recompute the cache gauges from owned_views_ + the catalog.
  void UpdateCacheGauges();
  double last_sim_time_ = 0;
};

}  // namespace sqp
