#include "speculation/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "common/fault_injector.h"
#include "common/logging.h"

namespace sqp {

SpeculationEngine::SpeculationEngine(Database* db, SimServer* server,
                                     SpeculationEngineOptions options)
    : db_(db),
      server_(server),
      options_(std::move(options)),
      cost_model_(db, &learner_, options_.cost_model),
      speculator_(db, &cost_model_, options_.speculator),
      recorder_(options_.flight_recorder_capacity),
      rng_(options_.rng_seed) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  m_issued_ = registry.GetCounter("engine.manipulations_issued");
  m_completed_ = registry.GetCounter("engine.manipulations_completed");
  m_cancelled_edit_ = registry.GetCounter("engine.cancelled_by_edit");
  m_cancelled_go_ = registry.GetCounter("engine.cancelled_at_go");
  m_abandoned_ = registry.GetCounter("engine.abandoned_at_completion");
  m_failed_ = registry.GetCounter("engine.manipulations_failed");
  m_retries_ = registry.GetCounter("engine.retries");
  m_suspended_ = registry.GetCounter("engine.speculation_suspended");
  m_evicted_ = registry.GetCounter("engine.views_evicted_for_budget");
  m_gc_ = registry.GetCounter("engine.views_garbage_collected");
  m_durations_ = registry.GetHistogram("engine.manipulation_seconds");
  m_cache_views_ = registry.GetGauge("spec.cache.views");
  m_cache_pages_ = registry.GetGauge("spec.cache.pages");
}

void SpeculationEngine::UpdateCacheGauges() {
  uint64_t pages = 0;
  for (const auto& [name, view] : owned_views_) {
    const TableInfo* info = db_->catalog().GetTable(name);
    if (info != nullptr) pages += info->heap->page_count();
  }
  m_cache_views_->Set(static_cast<double>(owned_views_.size()));
  m_cache_pages_->Set(static_cast<double>(pages));
}

void SpeculationEngine::SyncOutstanding(double sim_time) {
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (!server_->IsComplete(it->job) ||
        server_->CompletionTime(it->job) > sim_time + 1e-9) {
      ++it;
      continue;
    }
    const Manipulation& m = it->manipulation;
    bool abandoned = false;
    if (m.is_materialization()) {
      // Benefit re-check with ground truth: the result is built, so its
      // true scan cost is known. If scanning it would cost more than
      // recomputing the sub-query, abandon it rather than let forced
      // rewriting regress the final query.
      const TableInfo* info = db_->catalog().GetTable(it->table_name);
      const CostConfig& rates = db_->meter().config();
      double true_scan_cost =
          info == nullptr
              ? 0
              : info->stats.page_count() * rates.io_seconds_per_block +
                    info->stats.row_count() * rates.cpu_seconds_per_tuple;
      if (true_scan_cost >= it->issue_cost_without) {
        SQP_LOG_DEBUG << "spec: abandoned " << m.Describe()
                      << " (true scan cost " << true_scan_cost
                      << "s >= recompute " << it->issue_cost_without << "s)";
        (void)db_->DropTable(it->table_name);
        stats_.abandoned_at_completion++;
        stats_.wasted_manipulation_work += it->work;
        m_abandoned_->Increment();
        recorder_.SetOutcome(it->record_id, DecisionOutcome::kAbandoned);
        abandoned = true;
      } else {
        // The result becomes visible to the optimizer now. Registration
        // can fail when the manifest commit misses quorum (node
        // partition): the view is then unusable — drop it and count the
        // manipulation as abandoned, never half-registered.
        Status registered = db_->RegisterView(m.target_query, it->table_name);
        if (!registered.ok()) {
          SQP_LOG_DEBUG << "spec: registration failed for "
                        << it->table_name << " ("
                        << registered.ToString() << ")";
          (void)db_->DropTable(it->table_name);
          stats_.abandoned_at_completion++;
          stats_.wasted_manipulation_work += it->work;
          m_abandoned_->Increment();
          recorder_.SetOutcome(it->record_id, DecisionOutcome::kAbandoned);
          abandoned = true;
        } else {
          owned_views_[it->table_name] =
              OwnedView{m.target_query, sim_time, it->record_id};
        }
      }
    } else if (m.type == ManipulationType::kHistogramCreation) {
      owned_histograms_.push_back(
          OwnedStat{m.table, m.column, it->record_id});
    } else if (m.type == ManipulationType::kIndexCreation) {
      owned_indexes_.push_back(OwnedStat{m.table, m.column, it->record_id});
    }
    if (!abandoned) {
      recorder_.SetOutcome(it->record_id, DecisionOutcome::kCompleted);
      stats_.manipulations_completed++;
      stats_.completed_durations.push_back(it->work);
      m_completed_->Increment();
      m_durations_->Observe(it->work);
      // A completed manipulation proves the fault burst has passed.
      consecutive_failures_ = 0;
      SQP_LOG_DEBUG << "spec: completed " << m.Describe();
    }
    if (options_.tracer != nullptr) {
      options_.tracer->EndSpan(it->span, server_->CompletionTime(it->job),
                               abandoned ? "abandoned" : "completed");
    }
    it = outstanding_.erase(it);
  }
  EnforceBudget();
  UpdateCacheGauges();
}

bool SpeculationEngine::StillRelevant(const Outstanding& out) const {
  const Manipulation& m = out.manipulation;
  const QueryGraph& partial = tracker_.current();
  if (m.is_materialization()) {
    return partial.ContainsSubgraph(m.target_query);
  }
  // Histogram/index creations stay relevant while some selection on the
  // target column remains.
  for (const auto& sel : partial.SelectionsOn(m.table)) {
    if (sel.column == m.column) return true;
  }
  return false;
}

void SpeculationEngine::CancelOne(Outstanding& out, bool at_go,
                                  double sim_time) {
  const Manipulation& m = out.manipulation;
  // Work actually performed before the cancellation is wasted; the
  // unexecuted remainder never consumed server capacity.
  stats_.wasted_manipulation_work +=
      std::max(0.0, out.work - server_->RemainingWork(out.job));
  server_->Cancel(out.job);
  // Roll back the eagerly-applied side effects.
  switch (m.type) {
    case ManipulationType::kMaterializeQuery:
    case ManipulationType::kRewriteQuery:
      (void)db_->DropTable(out.table_name);
      break;
    case ManipulationType::kHistogramCreation:
      (void)db_->DropHistogram(m.table, m.column);
      break;
    case ManipulationType::kIndexCreation:
      (void)db_->DropIndex(m.table, m.column);
      break;
    case ManipulationType::kNull:
      break;
  }
  if (at_go) {
    stats_.cancelled_at_go++;
    m_cancelled_go_->Increment();
  } else {
    stats_.cancelled_by_edit++;
    m_cancelled_edit_->Increment();
  }
  recorder_.SetOutcome(out.record_id,
                       at_go ? DecisionOutcome::kCancelledAtGo
                             : DecisionOutcome::kCancelledOnEdit);
  if (options_.tracer != nullptr) {
    options_.tracer->EndSpan(out.span, sim_time,
                             at_go ? "cancelled@go" : "cancelled@edit");
  }
  SQP_LOG_DEBUG << "spec: cancelled " << m.Describe()
                << (at_go ? " (at GO)" : " (edit)");
}

void SpeculationEngine::CancelOutstanding(bool at_go, double sim_time) {
  for (auto& out : outstanding_) CancelOne(out, at_go, sim_time);
  outstanding_.clear();
}

void SpeculationEngine::GarbageCollect(double sim_time) {
  const QueryGraph& partial = tracker_.current();
  for (auto it = owned_views_.begin(); it != owned_views_.end();) {
    if (!partial.ContainsSubgraph(it->second.definition)) {
      SQP_LOG_DEBUG << "spec: GC " << it->first;
      (void)db_->DropTable(it->first);  // also unregisters the view
      recorder_.SetOutcome(it->second.record_id,
                           DecisionOutcome::kGarbageCollected);
      it = owned_views_.erase(it);
      stats_.views_garbage_collected++;
      m_gc_->Increment();
    } else {
      it->second.last_use = sim_time;  // still useful right now
      ++it;
    }
  }
  UpdateCacheGauges();
}

void SpeculationEngine::EnforceBudget() {
  if (options_.max_speculative_pages == 0) return;
  auto total_pages = [&] {
    uint64_t total = 0;
    for (const auto& [name, view] : owned_views_) {
      const TableInfo* info = db_->catalog().GetTable(name);
      if (info != nullptr) total += info->heap->page_count();
    }
    return total;
  };
  while (!owned_views_.empty() &&
         total_pages() > options_.max_speculative_pages) {
    // Evict the least-recently-useful view (ties broken by name order,
    // keeping the schedule deterministic).
    auto victim = owned_views_.begin();
    for (auto it = owned_views_.begin(); it != owned_views_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    SQP_LOG_DEBUG << "spec: budget eviction of " << victim->first
                  << " (last use " << victim->second.last_use << "s)";
    (void)db_->DropTable(victim->first);
    recorder_.SetOutcome(victim->second.record_id,
                         DecisionOutcome::kEvictedForBudget);
    owned_views_.erase(victim);
    stats_.views_evicted_for_budget++;
    m_evicted_->Increment();
  }
}

void SpeculationEngine::HandleManipulationFailure(const Status& failure,
                                                  double sim_time) {
  stats_.manipulations_failed++;
  m_failed_->Increment();
  if (options_.tracer != nullptr) {
    options_.tracer->Instant("manipulation failed", "manipulation",
                             sim_time, options_.trace_lane,
                             {{"error", failure.ToString()}});
  }
  SQP_LOG_DEBUG << "spec: manipulation failed (" << failure.ToString()
                << ")";
  if (failure.IsRetryable() && retry_attempts_ < options_.max_retries) {
    // Transient: back off in simulated time, doubling per consecutive
    // retry up to the cap, and let a later event try again.
    double backoff = std::min(
        options_.retry_backoff_cap_seconds,
        options_.retry_backoff_seconds *
            std::pow(2.0, static_cast<double>(retry_attempts_)));
    if (options_.retry_jitter_fraction > 0) {
      // Jitter desynchronizes retry bursts (many engines backing off in
      // lockstep after a shared fault). The seeded stream keeps
      // same-seed replays byte-identical.
      backoff *= 1.0 + options_.retry_jitter_fraction * rng_.NextDouble();
    }
    retry_attempts_++;
    stats_.retries++;
    m_retries_->Increment();
    retry_not_before_ = sim_time + backoff;
    if (options_.tracer != nullptr) {
      options_.tracer->Instant(
          "retry scheduled", "manipulation", sim_time, options_.trace_lane,
          {{"attempt", std::to_string(retry_attempts_)},
           {"backoff_s", std::to_string(backoff)}});
    }
    SQP_LOG_DEBUG << "spec: retry " << retry_attempts_ << " in " << backoff
                  << "s";
    return;
  }
  // Permanent failure, or retries exhausted: count it toward the
  // circuit breaker.
  retry_attempts_ = 0;
  consecutive_failures_++;
  if (consecutive_failures_ >= options_.circuit_breaker_threshold) {
    suspended_until_ =
        sim_time + options_.circuit_breaker_cooldown_seconds;
    stats_.speculation_suspended_events++;
    m_suspended_->Increment();
    consecutive_failures_ = 0;
    if (options_.tracer != nullptr) {
      options_.tracer->Instant(
          "circuit breaker open", "manipulation", sim_time,
          options_.trace_lane,
          {{"until_s", std::to_string(suspended_until_)}});
    }
    SQP_LOG_DEBUG << "spec: circuit breaker open until "
                  << suspended_until_ << "s";
  }
}

Status SpeculationEngine::ExecuteManipulation(
    const Manipulation& m, const ManipulationEvaluation& eval,
    double sim_time, uint64_t record_id) {
  Outstanding out;
  out.manipulation = m;
  out.issue_time = sim_time;
  out.issue_cost_without = eval.cost_without;
  out.record_id = record_id;

  // All eagerly-applied side effects happen inside a fault region:
  // injected faults target speculative work here, never final queries.
  ScopedFaultRegion fault_region;
  SQP_INJECT_FAULT("engine.manipulation");

  switch (m.type) {
    case ManipulationType::kMaterializeQuery:
    case ManipulationType::kRewriteQuery: {
      out.table_name =
          options_.table_prefix + std::to_string(next_table_id_++);
      // Land the result on the cost model's chosen home node (kAnyNode
      // on single-node stores — the legacy round-robin path). On a
      // multi-threaded database the materialization scan/join morsels
      // run at *background* priority on the shared worker pool, so
      // speculative work fills idle cycles without delaying foreground
      // queries (DESIGN.md §15).
      auto result = db_->Materialize(m.target_query, out.table_name,
                                     /*register_view=*/false, eval.home_node);
      if (!result.ok()) {
        // The materializer rolls its half-built table back itself, but a
        // failure between create and fill can leave the shell behind.
        (void)db_->DropTable(out.table_name);
        return result.status();
      }
      out.work = result->seconds;
      break;
    }
    case ManipulationType::kHistogramCreation: {
      CostScope scope(db_->meter());
      SQP_RETURN_IF_ERROR(db_->CreateHistogram(m.table, m.column));
      out.work = scope.ElapsedSeconds();
      break;
    }
    case ManipulationType::kIndexCreation: {
      CostScope scope(db_->meter());
      SQP_RETURN_IF_ERROR(db_->CreateIndex(m.table, m.column));
      out.work = scope.ElapsedSeconds();
      break;
    }
    case ManipulationType::kNull:
      return Status::OK();
  }

  // Queue the manipulation on its home node's lane (lane 0 — the only
  // lane — when placement is inactive).
  out.job = server_->Submit(
      out.work,
      eval.home_node == PageAllocOptions::kAnyNode ? 0 : eval.home_node);
  stats_.manipulations_issued++;
  stats_.total_manipulation_work += out.work;
  m_issued_->Increment();
  if (options_.tracer != nullptr) {
    out.span = options_.tracer->BeginSpan(m.Describe(), "manipulation",
                                          sim_time, options_.trace_lane);
    options_.tracer->SpanArg(out.span, "type",
                             ManipulationTypeName(m.type));
    options_.tracer->SpanArg(out.span, "work_s", std::to_string(out.work));
    if (!out.table_name.empty()) {
      options_.tracer->SpanArg(out.span, "table", out.table_name);
    }
  }
  SQP_LOG_DEBUG << "spec: issued " << m.Describe() << " (work " << out.work
                << "s)";
  outstanding_.push_back(std::move(out));
  return Status::OK();
}

Status SpeculationEngine::MaybeIssue(double sim_time) {
  if (!options_.enabled) return Status::OK();
  if (sim_time < suspended_until_) {
    return Status::OK();  // circuit breaker open: speculation suspended
  }
  if (sim_time < retry_not_before_) {
    return Status::OK();  // still backing off after a transient failure
  }
  double start = tracker_.formulation_start();
  double elapsed = start >= 0 ? sim_time - start : 0;
  while (outstanding_.size() < options_.max_outstanding) {
    if (options_.only_issue_when_idle && server_->active_jobs() > 0) {
      return Status::OK();  // §7: stay out of a busy server's way
    }
    std::set<std::string> in_flight;
    for (const auto& out : outstanding_) {
      in_flight.insert(out.manipulation.Key());
    }
    SpeculationDecision decision =
        speculator_.Decide(tracker_.current(), elapsed, &in_flight);
    // Audit the round (DESIGN.md §11) and queue every candidate's f⊆
    // prediction for scoring against the final query at GO.
    uint64_t round = recorder_.RecordRound(
        sim_time, tracker_.current().ToSql(), decision);
    for (const auto& [m, eval] : decision.considered) {
      pending_predictions_[m.Key()] = {m, eval.containment_probability};
    }
    if (!decision.chosen.has_value()) return Status::OK();
    Status executed = ExecuteManipulation(*decision.chosen,
                                          decision.evaluation, sim_time,
                                          round);
    if (!executed.ok()) {
      // Best-effort invariant: a failed manipulation costs us the
      // speculation opportunity, never the session. Side effects were
      // rolled back by ExecuteManipulation.
      recorder_.SetOutcome(round, DecisionOutcome::kFailed);
      HandleManipulationFailure(executed, sim_time);
      return Status::OK();
    }
    retry_attempts_ = 0;
    retry_not_before_ = 0;
  }
  return Status::OK();
}

Status SpeculationEngine::OnUserEvent(const TraceEvent& event,
                                      double sim_time) {
  last_sim_time_ = sim_time;
  SyncOutstanding(sim_time);
  tracker_.NoteEventTime(sim_time);
  tracker_.ApplyEvent(event);
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (!StillRelevant(*it)) {
      CancelOne(*it, /*at_go=*/false, sim_time);
      it = outstanding_.erase(it);
    } else {
      ++it;
    }
  }
  GarbageCollect(sim_time);
  return MaybeIssue(sim_time);
}

Result<double> SpeculationEngine::OnGo(double sim_time) {
  last_sim_time_ = sim_time;
  SyncOutstanding(sim_time);

  double submit_time = sim_time;
  if (options_.go_policy == GoPolicy::kWaitIfWorthwhile) {
    // §7 remaining-time feedback: among in-flight materializations
    // contained in the final query, find the one closest to completion
    // and check whether waiting for it beats running without it.
    // Estimate the final query's cost both ways (temporarily
    // registering the view).
    size_t best = outstanding_.size();
    double best_remaining = 0;
    for (size_t i = 0; i < outstanding_.size(); i++) {
      const Outstanding& out = outstanding_[i];
      if (!out.manipulation.is_materialization()) continue;
      if (!tracker_.current().ContainsSubgraph(
              out.manipulation.target_query)) {
        continue;
      }
      double remaining = server_->RemainingWork(out.job) *
                         static_cast<double>(server_->active_jobs());
      if (best == outstanding_.size() || remaining < best_remaining) {
        best = i;
        best_remaining = remaining;
      }
    }
    if (best < outstanding_.size()) {
      auto cost_without =
          db_->EstimateCost(tracker_.current(), ViewMode::kCostBased);
      // Probe registration for the cost estimate only: bypass
      // Database::RegisterView so the transient entry never reaches the
      // durable manifest.
      QueryGraph probe_def = outstanding_[best].manipulation.target_query;
      probe_def.SetProjections({});
      db_->views().Register(
          ViewDefinition{outstanding_[best].table_name, probe_def});
      auto cost_with =
          db_->EstimateCost(tracker_.current(), ViewMode::kForced);
      db_->views().Unregister(outstanding_[best].table_name);
      if (cost_without.ok() && cost_with.ok() &&
          best_remaining + *cost_with < *cost_without) {
        submit_time = sim_time + best_remaining;
        stats_.waits_at_go++;
        stats_.total_wait_seconds += best_remaining;
        SQP_LOG_DEBUG << "spec: waiting " << best_remaining
                      << "s at GO for "
                      << outstanding_[best].manipulation.Describe();
        // Cancel everything else; the waited-for manipulation stays.
        Outstanding waited = std::move(outstanding_[best]);
        for (size_t i = 0; i < outstanding_.size(); i++) {
          if (i != best) CancelOne(outstanding_[i], /*at_go=*/true, sim_time);
        }
        outstanding_.clear();
        outstanding_.push_back(std::move(waited));
      }
    }
  }
  if (submit_time <= sim_time) {
    // Conservative convention: whatever is still running is cancelled.
    CancelOutstanding(/*at_go=*/true, sim_time);
  }
  if (options_.tracer != nullptr) {
    options_.tracer->Instant(
        "GO", "go", sim_time, options_.trace_lane,
        {{"waited_s", std::to_string(std::max(0.0, submit_time - sim_time))}});
  }

  const QueryGraph& final_query = tracker_.current();
  // Flight-recorder bookkeeping (DESIGN.md §11): owned results the
  // final query can actually use were the speculation wins.
  for (const auto& [name, view] : owned_views_) {
    if (final_query.ContainsSubgraph(view.definition)) {
      recorder_.SetOutcome(view.record_id, DecisionOutcome::kUsedAtGo);
    }
  }
  auto stat_used = [&](const OwnedStat& stat) {
    for (const auto& sel : final_query.SelectionsOn(stat.table)) {
      if (sel.column == stat.column) return true;
    }
    return false;
  };
  for (const auto& stat : owned_histograms_) {
    if (stat_used(stat)) {
      recorder_.SetOutcome(stat.record_id, DecisionOutcome::kUsedAtGo);
    }
  }
  for (const auto& stat : owned_indexes_) {
    if (stat_used(stat)) {
      recorder_.SetOutcome(stat.record_id, DecisionOutcome::kUsedAtGo);
    }
  }
  // Close the learning loop: score every queued f⊆ prediction against
  // whether the final query actually contained the candidate's part.
  for (const auto& [key, pred] : pending_predictions_) {
    const Manipulation& m = pred.first;
    bool survived;
    if (m.is_materialization()) {
      survived = final_query.ContainsSubgraph(m.target_query);
    } else {
      survived = false;
      for (const auto& sel : final_query.SelectionsOn(m.table)) {
        if (sel.column == m.column) {
          survived = true;
          break;
        }
      }
    }
    double p = std::clamp(pred.second, 0.0, 1.0);
    double y = survived ? 1.0 : 0.0;
    stats_.predictions_scored++;
    stats_.brier_sum += (p - y) * (p - y);
    recorder_.Score(pred.second, survived);
  }
  pending_predictions_.clear();

  double start = tracker_.formulation_start();
  double duration = start >= 0 ? sim_time - start : 0;
  learner_.ObserveGo(tracker_.seen_parts(), final_query,
                     previous_final_.has_value() ? &*previous_final_
                                                 : nullptr,
                     duration);
  previous_final_ = final_query;
  tracker_.OnGo();
  return submit_time;
}

Status SpeculationEngine::ResolveWait(double wait_until) {
  last_sim_time_ = wait_until;
  SyncOutstanding(wait_until);
  // If the manipulation somehow still isn't done (the wait estimate was
  // optimistic under shifting load), fall back to the conservative rule.
  CancelOutstanding(/*at_go=*/true, wait_until);
  return Status::OK();
}

Status SpeculationEngine::Shutdown() {
  CancelOutstanding(/*at_go=*/true, last_sim_time_);
  // Best-effort teardown: one failed drop must not leave the rest of
  // the speculative state behind. Report the first failure at the end.
  Status first_error;
  for (const auto& [name, view] : owned_views_) {
    Status dropped = db_->DropTable(name);
    if (!dropped.ok() && first_error.ok()) first_error = dropped;
    recorder_.SetOutcome(view.record_id,
                         DecisionOutcome::kDroppedAtShutdown);
  }
  owned_views_.clear();
  for (const auto& stat : owned_histograms_) {
    (void)db_->DropHistogram(stat.table, stat.column);
    recorder_.SetOutcome(stat.record_id,
                         DecisionOutcome::kDroppedAtShutdown);
  }
  owned_histograms_.clear();
  for (const auto& stat : owned_indexes_) {
    (void)db_->DropIndex(stat.table, stat.column);
    recorder_.SetOutcome(stat.record_id,
                         DecisionOutcome::kDroppedAtShutdown);
  }
  owned_indexes_.clear();
  retry_attempts_ = 0;
  consecutive_failures_ = 0;
  retry_not_before_ = 0;
  suspended_until_ = 0;
  UpdateCacheGauges();
  return first_error;
}

Status SpeculationEngine::RecoverAfterCrash(double sim_time) {
  last_sim_time_ = sim_time;
  // In-flight manipulations died with the crash: their side effects
  // were uncommitted (half-built tables became orphan pages that
  // recovery GC reclaimed; histograms and indexes are volatile), so
  // there is nothing in the database to roll back — just drop the
  // simulated server jobs and the bookkeeping.
  for (auto& out : outstanding_) {
    server_->Cancel(out.job);
    recorder_.SetOutcome(out.record_id, DecisionOutcome::kLostAtCrash);
    if (options_.tracer != nullptr) {
      options_.tracer->EndSpan(out.span, sim_time, "lost@crash");
    }
  }
  outstanding_.clear();
  // Remember which flight-recorder round built each previously owned
  // view: survivors re-adopted below keep their round id; the rest are
  // stamped lost-at-crash.
  std::map<std::string, uint64_t> prior_view_rounds;
  for (const auto& [name, view] : owned_views_) {
    prior_view_rounds[name] = view.record_id;
  }
  owned_views_.clear();
  // Committed speculative indexes/histograms were rebuilt by recovery:
  // keep owning those (so Shutdown still drops them) and forget the
  // ones that did not survive.
  auto erase_missing = [&](auto& owned, auto exists) {
    for (size_t i = owned.size(); i-- > 0;) {
      if (!exists(owned[i].table, owned[i].column)) {
        recorder_.SetOutcome(owned[i].record_id,
                             DecisionOutcome::kLostAtCrash);
        owned.erase(owned.begin() + static_cast<ptrdiff_t>(i));
      }
    }
  };
  erase_missing(owned_histograms_,
                [&](const std::string& t, const std::string& c) {
                  return db_->catalog().GetHistogram(t, c) != nullptr;
                });
  erase_missing(owned_indexes_,
                [&](const std::string& t, const std::string& c) {
                  return db_->catalog().HasIndex(t, c);
                });
  retry_attempts_ = 0;
  consecutive_failures_ = 0;
  retry_not_before_ = 0;
  suspended_until_ = 0;

  uint64_t recovered_before = stats_.views_recovered;
  uint64_t dropped_before = stats_.views_dropped_at_recovery;
  // Walk the speculative tables that survived recovery. Registered ones
  // are adopted back into ownership so GC and the storage budget resume
  // governing them; a survivor with no registration is unreachable by
  // the rewriter, so drop it. Either way, bump the name counter past
  // every survivor so new materializations cannot collide.
  for (const auto& name : db_->catalog().MaterializedTableNames()) {
    if (name.rfind(options_.table_prefix, 0) != 0) continue;
    uint64_t suffix = 0;
    bool numeric = true;
    for (size_t i = options_.table_prefix.size(); i < name.size(); i++) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      suffix = suffix * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    if (numeric && suffix >= next_table_id_) next_table_id_ = suffix + 1;
    const ViewDefinition* def = db_->views().Get(name);
    if (def != nullptr) {
      uint64_t round = 0;
      auto prior = prior_view_rounds.find(name);
      if (prior != prior_view_rounds.end()) {
        round = prior->second;
        prior_view_rounds.erase(prior);
      }
      owned_views_[name] = OwnedView{def->definition, sim_time, round};
      stats_.views_recovered++;
    } else {
      (void)db_->DropTable(name);
      stats_.views_dropped_at_recovery++;
    }
  }
  // Whatever was owned before the crash and not re-adopted is gone.
  for (const auto& [name, round] : prior_view_rounds) {
    recorder_.SetOutcome(round, DecisionOutcome::kLostAtCrash);
  }
  uint64_t recovered = stats_.views_recovered - recovered_before;
  uint64_t dropped = stats_.views_dropped_at_recovery - dropped_before;
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("engine.views_recovered")->Increment(recovered);
  registry.GetCounter("engine.views_dropped_at_recovery")->Increment(dropped);
  if (options_.tracer != nullptr) {
    options_.tracer->Instant(
        "engine re-adoption", "recovery", sim_time, options_.trace_lane,
        {{"views_recovered", std::to_string(recovered)},
         {"views_dropped", std::to_string(dropped)}});
  }
  SQP_LOG_DEBUG << "spec: recovered after crash, adopted "
                << stats_.views_recovered << " views";
  UpdateCacheGauges();
  return Status::OK();
}

Status SpeculationEngine::OnQueryResult(double sim_time) {
  last_sim_time_ = sim_time;
  SyncOutstanding(sim_time);
  if (!options_.speculate_on_results) return Status::OK();
  return MaybeIssue(sim_time);
}

std::vector<std::string> SpeculationEngine::live_views() const {
  std::vector<std::string> out;
  out.reserve(owned_views_.size());
  for (const auto& [name, view] : owned_views_) out.push_back(name);
  return out;
}

void SpeculationEngine::PretrainLearner(const std::vector<Trace>& traces) {
  for (const Trace& trace : traces) {
    PartialQueryTracker tracker;
    std::optional<QueryGraph> prev;
    double formulation_start = -1;
    for (const auto& event : trace.events) {
      if (event.type == TraceEventType::kGo) {
        double duration =
            formulation_start >= 0 ? event.timestamp - formulation_start : 0;
        learner_.ObserveGo(tracker.seen_parts(), tracker.current(),
                           prev.has_value() ? &*prev : nullptr, duration);
        prev = tracker.current();
        tracker.OnGo();
        formulation_start = -1;
      } else {
        if (formulation_start < 0) formulation_start = event.timestamp;
        tracker.ApplyEvent(event);
      }
    }
  }
}

}  // namespace sqp
