// The Speculator (paper §3.5): enumerate the manipulation space and
// choose the manipulation minimizing Cost⊆.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "speculation/cost_model.h"
#include "speculation/manipulation_space.h"

namespace sqp {

class Counter;

struct SpeculatorOptions {
  ManipulationSpaceOptions space;
  /// A manipulation is issued only if its Cost⊆ beats m∅'s (0) by this
  /// margin (simulated seconds), filtering noise-level wins.
  double min_benefit_seconds = 0.05;
};

struct SpeculationDecision {
  /// The chosen manipulation; nullopt = m∅ (do nothing).
  std::optional<Manipulation> chosen;
  ManipulationEvaluation evaluation;
  /// Every candidate considered, for introspection/tests.
  std::vector<std::pair<Manipulation, ManipulationEvaluation>> considered;
};

class Speculator {
 public:
  Speculator(const Database* db, const SpeculationCostModel* cost_model,
             SpeculatorOptions options = {});

  /// Pick the best manipulation for the current partial query.
  /// `exclude_keys` (optional) removes candidates already in flight —
  /// used when more than one manipulation may be outstanding.
  SpeculationDecision Decide(
      const QueryGraph& partial, double elapsed_formulation_seconds,
      const std::set<std::string>* exclude_keys = nullptr) const;

  const SpeculatorOptions& options() const { return options_; }

 private:
  const Database* db_;
  const SpeculationCostModel* cost_model_;
  SpeculatorOptions options_;
  // Registry handles (DESIGN.md §9), looked up once at construction.
  Counter* m_decisions_;
  Counter* m_chosen_;
  Counter* m_candidates_;
};

}  // namespace sqp
