#include "speculation/speculator.h"

#include "common/metrics_registry.h"

namespace sqp {

Speculator::Speculator(const Database* db,
                       const SpeculationCostModel* cost_model,
                       SpeculatorOptions options)
    : db_(db), cost_model_(cost_model), options_(options) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  m_decisions_ = registry.GetCounter("speculator.decisions");
  m_chosen_ = registry.GetCounter("speculator.decisions_with_choice");
  m_candidates_ = registry.GetCounter("speculator.candidates_considered");
}

SpeculationDecision Speculator::Decide(
    const QueryGraph& partial, double elapsed_formulation_seconds,
    const std::set<std::string>* exclude_keys) const {
  SpeculationDecision decision;
  std::vector<Manipulation> candidates = EnumerateManipulations(
      partial, db_->views(), db_->catalog(), options_.space);

  double best = -options_.min_benefit_seconds;  // must beat m∅ by margin
  for (Manipulation& m : candidates) {
    if (exclude_keys != nullptr && exclude_keys->count(m.Key()) > 0) {
      continue;
    }
    ManipulationEvaluation eval =
        cost_model_->Evaluate(m, elapsed_formulation_seconds);
    if (eval.score < best) {
      best = eval.score;
      decision.chosen = m;
      decision.evaluation = eval;
    }
    decision.considered.emplace_back(std::move(m), eval);
  }
  m_decisions_->Increment();
  m_candidates_->Increment(decision.considered.size());
  if (decision.chosen.has_value()) m_chosen_->Increment();
  return decision;
}

}  // namespace sqp
