#include "speculation/speculator.h"

namespace sqp {

SpeculationDecision Speculator::Decide(
    const QueryGraph& partial, double elapsed_formulation_seconds,
    const std::set<std::string>* exclude_keys) const {
  SpeculationDecision decision;
  std::vector<Manipulation> candidates = EnumerateManipulations(
      partial, db_->views(), db_->catalog(), options_.space);

  double best = -options_.min_benefit_seconds;  // must beat m∅ by margin
  for (Manipulation& m : candidates) {
    if (exclude_keys != nullptr && exclude_keys->count(m.Key()) > 0) {
      continue;
    }
    ManipulationEvaluation eval =
        cost_model_->Evaluate(m, elapsed_formulation_seconds);
    if (eval.score < best) {
      best = eval.score;
      decision.chosen = m;
      decision.evaluation = eval;
    }
    decision.considered.emplace_back(std::move(m), eval);
  }
  return decision;
}

}  // namespace sqp
