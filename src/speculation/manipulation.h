// Speculative manipulations (paper §3.2).
//
// Five operation types are defined in the paper: data staging, histogram
// creation, index creation, query materialization, and query rewriting.
// Data staging requires pinning buffer-pool pages from outside the
// server, which the paper's middleware architecture cannot do — they
// exclude it, and so do we (documented for completeness). Materialization
// and rewriting differ only in whether the optimizer *may* or *must* use
// the result; the manipulation itself is the same stored table.
#pragma once

#include <string>

#include "optimizer/query_graph.h"

namespace sqp {

enum class ManipulationType {
  kNull,              // m∅: do nothing
  kHistogramCreation,
  kIndexCreation,
  kMaterializeQuery,  // optimizer may use the result
  kRewriteQuery,      // optimizer must use the result
};

const char* ManipulationTypeName(ManipulationType type);

struct Manipulation {
  ManipulationType type = ManipulationType::kNull;

  /// The materialized sub-query q_m (materialize / rewrite).
  QueryGraph target_query;

  /// Target column (histogram / index creation).
  std::string table;
  std::string column;

  static Manipulation Null() { return Manipulation{}; }

  bool is_materialization() const {
    return type == ManipulationType::kMaterializeQuery ||
           type == ManipulationType::kRewriteQuery;
  }

  /// Stable identity (for dedup within one enumeration round).
  std::string Key() const;
  std::string Describe() const;
};

}  // namespace sqp
