#include "speculation/manipulation.h"

namespace sqp {

const char* ManipulationTypeName(ManipulationType type) {
  switch (type) {
    case ManipulationType::kNull:
      return "null";
    case ManipulationType::kHistogramCreation:
      return "histogram";
    case ManipulationType::kIndexCreation:
      return "index";
    case ManipulationType::kMaterializeQuery:
      return "materialize";
    case ManipulationType::kRewriteQuery:
      return "rewrite";
  }
  return "?";
}

std::string Manipulation::Key() const {
  switch (type) {
    case ManipulationType::kNull:
      return "null";
    case ManipulationType::kHistogramCreation:
    case ManipulationType::kIndexCreation:
      return std::string(ManipulationTypeName(type)) + ":" + table + "." +
             column;
    case ManipulationType::kMaterializeQuery:
    case ManipulationType::kRewriteQuery:
      return std::string(ManipulationTypeName(type)) + ":" +
             target_query.CanonicalKey();
  }
  return "?";
}

std::string Manipulation::Describe() const {
  switch (type) {
    case ManipulationType::kNull:
      return "m0 (no action)";
    case ManipulationType::kHistogramCreation:
      return "CREATE HISTOGRAM ON " + table + "(" + column + ")";
    case ManipulationType::kIndexCreation:
      return "CREATE INDEX ON " + table + "(" + column + ")";
    case ManipulationType::kMaterializeQuery:
      return "MATERIALIZE " + target_query.ToSql();
    case ManipulationType::kRewriteQuery:
      return "MATERIALIZE+REWRITE " + target_query.ToSql();
  }
  return "?";
}

}  // namespace sqp
