#include "optimizer/view_matcher.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace sqp {

void ViewRegistry::Register(ViewDefinition view) {
  views_[view.table_name] = std::move(view);
}

void ViewRegistry::Unregister(const std::string& table_name) {
  views_.erase(table_name);
}

bool ViewRegistry::Contains(const std::string& table_name) const {
  return views_.count(table_name) > 0;
}

const ViewDefinition* ViewRegistry::Get(const std::string& table_name) const {
  auto it = views_.find(table_name);
  return it == views_.end() ? nullptr : &it->second;
}

const ViewDefinition* ViewRegistry::FindExact(const QueryGraph& graph) const {
  for (const auto& [name, view] : views_) {
    if (view.definition == graph) return &view;
  }
  return nullptr;
}

std::vector<const ViewDefinition*> ViewRegistry::All() const {
  std::vector<const ViewDefinition*> out;
  out.reserve(views_.size());
  for (const auto& [name, view] : views_) out.push_back(&view);
  return out;
}

bool ViewApplicable(const ViewDefinition& view, const QueryGraph& query) {
  const QueryGraph& def = view.definition;
  if (def.empty()) return false;
  if (!query.ContainsSubgraph(def)) return false;
  // The view must have absorbed every query join internal to its cover;
  // otherwise the view (a cross-section of those relations) would need a
  // col=col residual filter we do not re-apply.
  for (const auto& j : query.joins()) {
    if (def.HasRelation(j.left_table) && def.HasRelation(j.right_table) &&
        !def.HasJoin(j.Key())) {
      return false;
    }
  }
  return true;
}

RewrittenQuery RewriteWithViews(
    const QueryGraph& query,
    const std::vector<const ViewDefinition*>& use_views) {
  RewrittenQuery out;
  std::set<std::string> covered;
  for (const ViewDefinition* view : use_views) {
    assert(ViewApplicable(*view, query));
    RewriteUnit unit;
    unit.stored_table = view->table_name;
    unit.is_view = true;
    for (const auto& rel : view->definition.relations()) {
      assert(covered.count(rel) == 0 && "overlapping views");
      covered.insert(rel);
      unit.covered_relations.push_back(rel);
      // Residual selections: on this relation in the query but not
      // absorbed by the view.
      for (const auto& sel : query.SelectionsOn(rel)) {
        if (!view->definition.HasSelection(sel.Key())) {
          unit.selections.push_back(sel);
        }
      }
    }
    out.units.push_back(std::move(unit));
    out.view_tables_used.push_back(view->table_name);
  }
  // Uncovered base relations become single-relation units.
  for (const auto& rel : query.relations()) {
    if (covered.count(rel) > 0) continue;
    RewriteUnit unit;
    unit.stored_table = rel;
    unit.covered_relations.push_back(rel);
    unit.selections = query.SelectionsOn(rel);
    out.units.push_back(std::move(unit));
  }
  // Joins whose endpoints land in different units survive; joins
  // internal to a view were absorbed.
  auto unit_of = [&](const std::string& rel) -> size_t {
    for (size_t i = 0; i < out.units.size(); i++) {
      const auto& cov = out.units[i].covered_relations;
      if (std::find(cov.begin(), cov.end(), rel) != cov.end()) return i;
    }
    assert(false && "relation not covered by any unit");
    return 0;
  };
  for (const auto& j : query.joins()) {
    if (unit_of(j.left_table) != unit_of(j.right_table)) {
      out.joins.push_back(j);
    }
  }
  return out;
}

std::vector<const ViewDefinition*> ApplicableViews(const ViewRegistry& views,
                                                   const QueryGraph& query) {
  std::vector<const ViewDefinition*> out;
  for (const ViewDefinition* view : views.All()) {
    if (ViewApplicable(*view, query)) out.push_back(view);
  }
  std::sort(out.begin(), out.end(),
            [](const ViewDefinition* a, const ViewDefinition* b) {
              size_t cover_a = a->definition.relations().size();
              size_t cover_b = b->definition.relations().size();
              if (cover_a != cover_b) return cover_a > cover_b;
              if (a->definition.num_atomic_parts() !=
                  b->definition.num_atomic_parts()) {
                return a->definition.num_atomic_parts() >
                       b->definition.num_atomic_parts();
              }
              return a->table_name < b->table_name;
            });
  return out;
}

}  // namespace sqp
