// Query graphs for conjunctive (select-project-join) queries — paper §2.
//
// Vertices are relations; each equijoin maps to an edge between two
// relation vertices; each selection maps to an edge between a relation
// vertex and a constant vertex. The *atomic parts* of a query are exactly
// these edges; partial queries, containment (⊆), union and intersection
// are all defined over the edge sets, which is what the cost model's
// properties P1/P2 and Theorem 3.1 quantify over.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/compare_op.h"
#include "common/value.h"

namespace sqp {

/// Selection edge: `table.column op constant`.
struct SelectionPred {
  std::string table;
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value constant;

  /// Canonical identity string; two predicates are the same atomic part
  /// iff their keys match.
  std::string Key() const;
  std::string ToString() const;

  bool operator==(const SelectionPred& other) const {
    return Key() == other.Key();
  }
  bool operator<(const SelectionPred& other) const {
    return Key() < other.Key();
  }
};

/// Join edge: `left.lcol = right.rcol`, stored with left < right so the
/// same join always has the same key.
struct JoinPred {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;

  /// Reorder sides so left_table < right_table.
  void Canonicalize();

  std::string Key() const;
  std::string ToString() const;

  bool Touches(const std::string& table) const {
    return left_table == table || right_table == table;
  }
  /// The other side of the edge, given one endpoint.
  const std::string& Other(const std::string& table) const {
    return left_table == table ? right_table : left_table;
  }

  bool operator==(const JoinPred& other) const {
    return Key() == other.Key();
  }
  bool operator<(const JoinPred& other) const { return Key() < other.Key(); }
};

class QueryGraph {
 public:
  QueryGraph() = default;

  void AddRelation(const std::string& table);
  void AddSelection(SelectionPred pred);  // also adds its relation
  void AddJoin(JoinPred pred);            // also adds both relations

  bool RemoveSelection(const std::string& key);
  bool RemoveJoin(const std::string& key);
  /// Remove a relation vertex together with every incident edge.
  bool RemoveRelation(const std::string& table);

  const std::set<std::string>& relations() const { return relations_; }
  const std::vector<SelectionPred>& selections() const { return selections_; }
  const std::vector<JoinPred>& joins() const { return joins_; }

  const std::vector<std::string>& projections() const { return projections_; }
  void SetProjections(std::vector<std::string> cols) {
    projections_ = std::move(cols);
  }

  bool HasRelation(const std::string& table) const {
    return relations_.count(table) > 0;
  }
  bool HasSelection(const std::string& key) const;
  bool HasJoin(const std::string& key) const;

  /// Selections attached to one relation vertex.
  std::vector<SelectionPred> SelectionsOn(const std::string& table) const;
  /// Join edges incident to one relation vertex.
  std::vector<JoinPred> JoinsOn(const std::string& table) const;

  size_t num_atomic_parts() const {
    return selections_.size() + joins_.size();
  }
  bool empty() const { return relations_.empty(); }

  /// Sub-graph containment: every vertex and edge of `sub` appears here.
  /// This is the ⊆ of the paper's cost model (P1) and of view matching.
  bool ContainsSubgraph(const QueryGraph& sub) const;

  /// Edge-set union / intersection (projections dropped).
  QueryGraph Union(const QueryGraph& other) const;
  QueryGraph Intersect(const QueryGraph& other) const;

  /// Do the two graphs share no relations/edges? (P2's disjointness.)
  bool DisjointWith(const QueryGraph& other) const;

  /// True when the join edges connect all relations (single component).
  /// Disconnected graphs imply cross products.
  bool IsConnected() const;

  /// Stable identity over relations+edges (projections excluded), used
  /// for caching, learner keys, and equality.
  std::string CanonicalKey() const;

  bool operator==(const QueryGraph& other) const {
    return CanonicalKey() == other.CanonicalKey();
  }

  /// SQL-ish rendering for logs and examples.
  std::string ToSql() const;

 private:
  std::set<std::string> relations_;
  std::vector<SelectionPred> selections_;  // kept sorted by Key()
  std::vector<JoinPred> joins_;            // kept sorted by Key()
  std::vector<std::string> projections_;   // empty = SELECT *
};

}  // namespace sqp
