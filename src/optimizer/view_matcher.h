// Materialized-view registry and view matching / query rewriting.
//
// A materialized view is a stored table plus the query graph it
// materializes (always SELECT * over its sub-graph, as in the paper: the
// example young_employee keeps all attributes, and §6.2 materializes
// joins "keeping all their attributes"). Because column names are
// globally unique and views keep every column, replacing a set of base
// relations by a view is purely structural.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "optimizer/query_graph.h"

namespace sqp {

struct ViewDefinition {
  std::string table_name;  // the stored result table
  QueryGraph definition;   // the materialized sub-query
};

class ViewRegistry {
 public:
  void Register(ViewDefinition view);
  void Unregister(const std::string& table_name);
  bool Contains(const std::string& table_name) const;
  const ViewDefinition* Get(const std::string& table_name) const;

  /// A view whose definition graph equals `graph`, if registered.
  const ViewDefinition* FindExact(const QueryGraph& graph) const;

  std::vector<const ViewDefinition*> All() const;
  size_t size() const { return views_.size(); }

 private:
  std::map<std::string, ViewDefinition> views_;
};

/// One relation-or-view occurrence in a rewritten query.
struct RewriteUnit {
  /// Stored table to scan (a base relation or a view's result table).
  std::string stored_table;
  /// Base relations this unit covers (itself, for a base relation).
  std::vector<std::string> covered_relations;
  /// Selections to apply on this unit's scan (for a view: the query's
  /// selections on covered relations that the view did not absorb).
  std::vector<SelectionPred> selections;
  bool is_view = false;
};

/// A query after view substitution: scan units plus the join edges that
/// cross unit boundaries. Unit order is arbitrary; the planner orders.
struct RewrittenQuery {
  std::vector<RewriteUnit> units;
  std::vector<JoinPred> joins;
  std::vector<std::string> view_tables_used;
};

/// Can `view` replace its relations inside `query`?
/// Conditions: view.definition ⊆ query, and the view absorbed *every*
/// query join internal to the relations it covers.
bool ViewApplicable(const ViewDefinition& view, const QueryGraph& query);

/// Rewrite `query` over the given views. Each view in `use_views` must be
/// applicable and the set must cover pairwise-disjoint relations; base
/// relations not covered stay as their own units.
RewrittenQuery RewriteWithViews(
    const QueryGraph& query,
    const std::vector<const ViewDefinition*>& use_views);

/// All applicable views from the registry, largest cover first.
std::vector<const ViewDefinition*> ApplicableViews(const ViewRegistry& views,
                                                   const QueryGraph& query);

}  // namespace sqp
