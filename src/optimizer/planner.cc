#include "optimizer/planner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "common/metrics_registry.h"

namespace sqp {

namespace {

KeyRange RangeFromPred(const SelectionPred& pred) {
  switch (pred.op) {
    case CompareOp::kEq:
      return KeyRange::Exactly(pred.constant);
    case CompareOp::kLt:
      return KeyRange{std::nullopt, true, pred.constant, false};
    case CompareOp::kLe:
      return KeyRange{std::nullopt, true, pred.constant, true};
    case CompareOp::kGt:
      return KeyRange{pred.constant, false, std::nullopt, true};
    case CompareOp::kGe:
      return KeyRange{pred.constant, true, std::nullopt, true};
    case CompareOp::kNe:
      break;
  }
  assert(false && "kNe is not indexable");
  return KeyRange::All();
}

}  // namespace

// ---------------------------------------------------------------- Explain

std::string PlanNode::Explain(int indent) const {
  std::ostringstream os;
  std::string pad(indent * 2, ' ');
  os << pad;
  switch (kind) {
    case Kind::kSeqScan:
      os << "SeqScan(" << table;
      break;
    case Kind::kIndexScan:
      os << "IndexScan(" << table << " via " << index_column;
      break;
    case Kind::kHashJoin:
      os << "HashJoin(";
      break;
    case Kind::kNestedLoopJoin:
      os << "NestedLoopJoin(";
      break;
  }
  if (kind == Kind::kSeqScan || kind == Kind::kIndexScan) {
    for (const auto& p : predicates) os << ", " << p.ToString();
    for (const auto& [lo, hi] : fused_predicates) {
      os << ", between(" << lo.ToString() << ", " << hi.ToString() << ")";
    }
    if (index_pred.has_value()) os << ", [" << index_pred->ToString() << "]";
  } else {
    bool first = true;
    for (const auto& [l, r] : join_columns) {
      if (!first) os << " AND ";
      os << l << "=" << r;
      first = false;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), ") rows=%.0f cost=%.4fs", est_rows,
                est_cost);
  os << buf;
  // Placement annotations only ever appear on a multi-node tier, so
  // single-node EXPLAIN output is unchanged (DESIGN.md §14).
  if (shard_local) {
    os << " [shard-local]";
  } else if (cross_shard) {
    std::snprintf(buf, sizeof(buf), " [cross-shard xfer=%.0fpg]",
                  transfer_pages);
    os << buf;
  }
  os << "\n";
  if (left) os << left->Explain(indent + 1);
  if (right) os << right->Explain(indent + 1);
  return os.str();
}

std::string PhysicalPlan::Explain() const {
  std::ostringstream os;
  os << "Plan";
  if (!views_used.empty()) {
    os << " [views:";
    for (const auto& v : views_used) os << " " << v;
    os << "]";
  }
  os << "\n";
  if (root) os << root->Explain(1);
  return os.str();
}

// --------------------------------------------------------------- PlanScan

Result<std::unique_ptr<PlanNode>> Planner::PlanScan(
    const RewriteUnit& unit) const {
  const TableInfo* info = catalog_->GetTable(unit.stored_table);
  if (info == nullptr) {
    return Status::NotFound("table " + unit.stored_table);
  }
  double base_rows = estimator_.TableRows(unit.stored_table);
  double out_rows = base_rows;
  for (const auto& pred : unit.selections) {
    out_rows *= estimator_.SelectionSelectivity(unit.stored_table, pred);
  }

  auto node = std::make_unique<PlanNode>();
  node->table = unit.stored_table;
  node->schema = info->schema;
  node->est_rows = out_rows;

  // Default: sequential scan with all predicates pushed down.
  node->kind = PlanNode::Kind::kSeqScan;
  node->predicates = unit.selections;
  node->est_cost = estimator_.SeqScanCost(unit.stored_table);

  // Index-scan alternatives: one per indexed, indexable predicate.
  for (const auto& pred : unit.selections) {
    if (pred.op == CompareOp::kNe) continue;
    if (!catalog_->HasIndex(unit.stored_table, pred.column)) continue;
    double idx_rows =
        base_rows * estimator_.SelectionSelectivity(unit.stored_table, pred);
    double cost = estimator_.IndexScanCost(unit.stored_table, idx_rows);
    if (cost < node->est_cost) {
      node->kind = PlanNode::Kind::kIndexScan;
      node->index_column = pred.column;
      node->index_pred = pred;
      node->predicates.clear();
      for (const auto& other : unit.selections) {
        if (other.Key() != pred.Key()) node->predicates.push_back(other);
      }
      node->est_cost = cost;
    }
  }

  // Condense range pairs (`a > lo AND a < hi`) on one column into a
  // single fused BETWEEN term: the scan evaluates both bounds with one
  // predicate (one column decode on the late-materializing path).
  // Runs after access-path selection on the surviving seq-scan list,
  // so selectivity estimates and the scan-vs-index choice are
  // byte-identical to the unfused planner.
  if (node->kind == PlanNode::Kind::kSeqScan) {
    auto is_lower = [](CompareOp op) {
      return op == CompareOp::kGt || op == CompareOp::kGe;
    };
    auto is_upper = [](CompareOp op) {
      return op == CompareOp::kLt || op == CompareOp::kLe;
    };
    std::vector<SelectionPred> rest;
    rest.reserve(node->predicates.size());
    for (const SelectionPred& pred : node->predicates) {
      bool fused = false;
      if (is_lower(pred.op) || is_upper(pred.op)) {
        for (size_t i = 0; i < rest.size(); i++) {
          const SelectionPred& other = rest[i];
          if (other.column != pred.column) continue;
          if (is_lower(other.op) && is_upper(pred.op)) {
            node->fused_predicates.emplace_back(other, pred);
          } else if (is_upper(other.op) && is_lower(pred.op)) {
            node->fused_predicates.emplace_back(pred, other);
          } else {
            continue;
          }
          rest.erase(rest.begin() + i);
          fused = true;
          break;
        }
      }
      if (!fused) rest.push_back(pred);
    }
    node->predicates = std::move(rest);
  }
  return node;
}

// ----------------------------------------------------------- Join order DP

Result<PhysicalPlan> Planner::PlanRewritten(
    const RewrittenQuery& rewritten,
    const std::vector<std::string>& projections) const {
  const size_t n = rewritten.units.size();
  if (n == 0) return Status::InvalidArgument("empty query");
  if (n > 16) return Status::NotSupported("more than 16 scan units");

  // Per-unit scan plans.
  std::vector<std::unique_ptr<PlanNode>> scans;
  scans.reserve(n);
  for (const auto& unit : rewritten.units) {
    auto scan = PlanScan(unit);
    if (!scan.ok()) return scan.status();
    scans.push_back(std::move(*scan));
  }

  auto unit_of_relation = [&](const std::string& rel) -> int {
    for (size_t i = 0; i < n; i++) {
      const auto& cov = rewritten.units[i].covered_relations;
      if (std::find(cov.begin(), cov.end(), rel) != cov.end()) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  // Join edges between units.
  struct UnitEdge {
    size_t a, b;  // unit indices, a < b
    JoinPred pred;
  };
  std::vector<UnitEdge> edges;
  for (const auto& j : rewritten.joins) {
    int ua = unit_of_relation(j.left_table);
    int ub = unit_of_relation(j.right_table);
    if (ua < 0 || ub < 0 || ua == ub) continue;
    UnitEdge e;
    e.a = std::min(ua, ub);
    e.b = std::max(ua, ub);
    e.pred = j;
    edges.push_back(std::move(e));
  }

  const double cpu = config_.cpu_seconds_per_tuple;
  const double io = config_.io_seconds_per_block;
  const double kInf = std::numeric_limits<double>::infinity();

  // Tuple widths, for the Grace-hash-join spill estimate.
  std::vector<double> unit_width(n);
  for (size_t u = 0; u < n; u++) {
    unit_width[u] = static_cast<double>(scans[u]->schema.EstimatedTupleWidth());
  }
  auto subset_width = [&](uint32_t subset) {
    double w = 0;
    for (size_t u = 0; u < n; u++) {
      if ((subset >> u) & 1) w += unit_width[u];
    }
    return w;
  };
  auto pages_of = [&](double rows, double width) {
    return std::ceil(std::max(0.0, rows) * width /
                     static_cast<double>(kPageSize));
  };

  // ---- shard placement (DESIGN.md §14) -----------------------------
  // On a multi-node tier each scan unit carries the "relation.column"
  // key it is hash-partitioned on (base tables: their shard column;
  // matviews: nothing). A hash join whose connecting edge matches a
  // partition key on both sides is shard-local; otherwise at least one
  // side repartitions and the plan pays a simulated transfer charge.
  const bool placement = estimator_.placement_active();
  std::vector<std::set<std::string>> unit_partition(n);
  std::vector<double> unit_cross_fraction(n, 0.0);
  double default_cross = 0.0;
  if (placement) {
    default_cross = estimator_.CrossShardFractionDefault();
    for (size_t u = 0; u < n; u++) {
      const std::string& stored = rewritten.units[u].stored_table;
      TablePlacement p =
          estimator_.placement()->TablePlacementOf(stored);
      // All sharded tables on one tier share the global slot map (and
      // so the same slot count), which is what makes matching keys on
      // both sides sufficient for locality.
      if (p.sharded) unit_partition[u].insert(stored + "." + p.shard_column);
      unit_cross_fraction[u] = estimator_.CrossShardFraction(stored);
    }
  }

  struct DpState {
    double cost = std::numeric_limits<double>::infinity();
    double rows = 0;
    int added_unit = -1;
    uint32_t prev_subset = 0;
    bool cross = false;
    // Placement of the accumulated intermediate (multi-node tiers).
    bool shard_local = false;      // the step that built this subset
    double transfer_pages = 0;     // pages shipped by that step
    std::set<std::string> partition;  // co-partition keys it preserves
  };
  std::vector<DpState> dp(size_t{1} << n);

  for (size_t u = 0; u < n; u++) {
    DpState& s = dp[size_t{1} << u];
    s.cost = scans[u]->est_cost;
    s.rows = std::max(0.0, scans[u]->est_rows);
    s.added_unit = static_cast<int>(u);
    if (placement) s.partition = unit_partition[u];
  }

  // Edges connecting unit u to subset s.
  auto connecting = [&](uint32_t subset, size_t u) {
    std::vector<const UnitEdge*> out;
    for (const auto& e : edges) {
      if ((e.a == u && (subset >> e.b) & 1) ||
          (e.b == u && (subset >> e.a) & 1)) {
        out.push_back(&e);
      }
    }
    return out;
  };

  // Combined selectivity of a set of connecting edges: edges between
  // the same relation pair form a composite join (correlation-aware);
  // distinct pairs multiply.
  auto connection_selectivity =
      [&](const std::vector<const UnitEdge*>& conn) {
        std::map<std::string, std::vector<JoinPred>> by_pair;
        for (const auto* e : conn) {
          JoinPred c = e->pred;
          c.Canonicalize();
          by_pair[c.left_table + "|" + c.right_table].push_back(c);
        }
        double sel = 1.0;
        for (const auto& [pair, group] : by_pair) {
          sel *= estimator_.CompositeJoinSelectivity(group);
        }
        return sel;
      };

  for (int pass = 0; pass < 2; pass++) {
    bool allow_cross = pass == 1;
    if (allow_cross && dp.back().cost < kInf) break;  // connected plan found
    for (uint32_t subset = 1; subset < dp.size(); subset++) {
      if (dp[subset].cost >= kInf) continue;
      for (size_t u = 0; u < n; u++) {
        if ((subset >> u) & 1) continue;
        auto conn = connecting(subset, u);
        if (conn.empty() && !allow_cross) continue;
        uint32_t next = subset | (uint32_t{1} << u);
        double sel = connection_selectivity(conn);
        double out_rows = dp[subset].rows * dp[size_t{1} << u].rows * sel;
        double cost;
        bool local = false;
        double xfer_pages = 0;
        if (!conn.empty()) {
          // Hash join: build accumulated side, probe unit side.
          cost = dp[subset].cost + scans[u]->est_cost +
                 cpu * (dp[subset].rows + dp[size_t{1} << u].rows + out_rows);
          double build_pages = pages_of(dp[subset].rows,
                                        subset_width(subset));
          double probe_pages =
              pages_of(dp[size_t{1} << u].rows, unit_width[u]);
          // Grace spill when the build side exceeds the hash area.
          if (build_pages >
              static_cast<double>(config_.hash_join_memory_pages)) {
            cost += 2.0 * io * (build_pages + probe_pages);
          }
          if (placement) {
            // Shard-local iff some connecting edge matches a partition
            // key on both sides: every matching build row already
            // lives on the probe row's node.
            for (const auto* e : conn) {
              const JoinPred& j = e->pred;
              bool left_is_unit =
                  unit_of_relation(j.left_table) == static_cast<int>(u);
              std::string ukey = left_is_unit
                                     ? j.left_table + "." + j.left_column
                                     : j.right_table + "." + j.right_column;
              std::string skey = left_is_unit
                                     ? j.right_table + "." + j.right_column
                                     : j.left_table + "." + j.left_column;
              if (dp[subset].partition.count(skey) > 0 &&
                  unit_partition[u].count(ukey) > 0) {
                local = true;
                break;
              }
            }
            if (!local) {
              // Cross-shard: each side ships the fraction of its pages
              // not already on the node the tier-wide repartition
              // assigns them to. A single-table build side uses its
              // actual page distribution; a joined intermediate is
              // assumed spread like the slot map.
              double build_fraction =
                  (subset & (subset - 1)) == 0
                      ? unit_cross_fraction[static_cast<size_t>(
                            dp[subset].added_unit)]
                      : default_cross;
              xfer_pages = build_pages * build_fraction +
                           probe_pages * unit_cross_fraction[u];
              cost += estimator_.ShuffleTransferSeconds(xfer_pages);
            }
          }
        } else {
          // Cross product via nested loops.
          cost = dp[subset].cost + scans[u]->est_cost +
                 cpu * (dp[subset].rows * dp[size_t{1} << u].rows + out_rows);
        }
        if (cost < dp[next].cost) {
          DpState state;
          state.cost = cost;
          state.rows = out_rows;
          state.added_unit = static_cast<int>(u);
          state.prev_subset = subset;
          state.cross = conn.empty();
          if (placement && !conn.empty()) {
            state.shard_local = local;
            state.transfer_pages = xfer_pages;
            if (local) {
              // A local join preserves both sides' partitioning.
              state.partition = dp[subset].partition;
              state.partition.insert(unit_partition[u].begin(),
                                     unit_partition[u].end());
            } else {
              // The shuffle repartitions the output on the driving
              // hash edge (both of its endpoints).
              const JoinPred& j0 = conn.front()->pred;
              state.partition.insert(j0.left_table + "." + j0.left_column);
              state.partition.insert(j0.right_table + "." + j0.right_column);
            }
          }
          dp[next] = std::move(state);
        }
      }
    }
  }

  uint32_t full = static_cast<uint32_t>(dp.size() - 1);
  if (dp[full].cost >= kInf) {
    return Status::Internal("join ordering failed to cover all units");
  }

  // Reconstruct the unit order.
  std::vector<int> order;
  uint32_t cur = full;
  while (cur != 0) {
    order.push_back(dp[cur].added_unit);
    cur = dp[cur].prev_subset;
  }
  std::reverse(order.begin(), order.end());

  // Build the left-deep tree.
  std::set<std::string> covered;  // relations in the accumulated side
  auto covers = [&](const std::string& rel) {
    return covered.count(rel) > 0;
  };
  std::unique_ptr<PlanNode> root = std::move(scans[order[0]]);
  for (const auto& rel : rewritten.units[order[0]].covered_relations) {
    covered.insert(rel);
  }
  uint32_t subset = uint32_t{1} << order[0];
  for (size_t i = 1; i < order.size(); i++) {
    size_t u = order[i];
    auto conn = connecting(subset, u);
    auto join = std::make_unique<PlanNode>();
    join->schema = root->schema.Concat(scans[u]->schema);
    for (const auto* e : conn) {
      const JoinPred& j = e->pred;
      if (covers(j.left_table)) {
        join->join_columns.emplace_back(j.left_column, j.right_column);
      } else {
        join->join_columns.emplace_back(j.right_column, j.left_column);
      }
    }
    join->kind = conn.empty() ? PlanNode::Kind::kNestedLoopJoin
                              : PlanNode::Kind::kHashJoin;
    uint32_t next = subset | (uint32_t{1} << u);
    join->est_rows = dp[next].rows;
    join->est_cost = dp[next].cost;
    if (placement && join->kind == PlanNode::Kind::kHashJoin) {
      join->shard_local = dp[next].shard_local;
      join->cross_shard = !dp[next].shard_local;
      join->transfer_pages = dp[next].transfer_pages;
    }
    join->left = std::move(root);
    join->right = std::move(scans[u]);
    root = std::move(join);
    for (const auto& rel : rewritten.units[u].covered_relations) {
      covered.insert(rel);
    }
    subset = next;
  }

  PhysicalPlan plan;
  plan.est_cost = root->est_cost;
  plan.est_rows = root->est_rows;
  plan.root = std::move(root);
  plan.projections = projections;
  plan.views_used = rewritten.view_tables_used;
  return plan;
}

// ------------------------------------------------------------------- Plan

namespace {
/// Greedy disjoint cover over a preference-ordered candidate list.
std::vector<const ViewDefinition*> GreedyCover(
    const std::vector<const ViewDefinition*>& candidates) {
  std::vector<const ViewDefinition*> chosen;
  std::set<std::string> covered;
  for (const ViewDefinition* view : candidates) {
    bool overlaps = false;
    for (const auto& rel : view->definition.relations()) {
      if (covered.count(rel) > 0) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    chosen.push_back(view);
    for (const auto& rel : view->definition.relations()) covered.insert(rel);
  }
  return chosen;
}
}  // namespace

Result<PhysicalPlan> Planner::Plan(const QueryGraph& query,
                                   const ViewRegistry* views,
                                   ViewMode mode) const {
  // Baseline rewrite: every relation is its own unit.
  std::vector<const ViewDefinition*> no_views;
  RewrittenQuery baseline = RewriteWithViews(query, no_views);
  auto base_plan = PlanRewritten(baseline, query.projections());

  if (views == nullptr || mode == ViewMode::kNone || views->size() == 0) {
    return base_plan;
  }

  std::vector<const ViewDefinition*> applicable =
      ApplicableViews(*views, query);
  if (applicable.empty()) return base_plan;

  // Two candidate covers: widest coverage first (fewest joins left) and
  // cheapest-to-scan first (a tiny selective materialization can beat a
  // wide pre-joined view even though it covers fewer relations).
  std::vector<std::vector<const ViewDefinition*>> covers;
  covers.push_back(GreedyCover(applicable));
  std::vector<const ViewDefinition*> by_cost = applicable;
  std::stable_sort(by_cost.begin(), by_cost.end(),
                   [&](const ViewDefinition* a, const ViewDefinition* b) {
                     return estimator_.TablePages(a->table_name) <
                            estimator_.TablePages(b->table_name);
                   });
  covers.push_back(GreedyCover(by_cost));

  std::optional<PhysicalPlan> best_view_plan;
  for (const auto& cover : covers) {
    if (cover.empty()) continue;
    RewrittenQuery rewritten = RewriteWithViews(query, cover);
    auto plan = PlanRewritten(rewritten, query.projections());
    if (!plan.ok()) continue;
    if (!best_view_plan.has_value() ||
        plan->est_cost < best_view_plan->est_cost) {
      best_view_plan = std::move(*plan);
    }
  }
  if (!best_view_plan.has_value()) return base_plan;

  if (mode == ViewMode::kForced) {
    // Forced rewriting with a bounded blast radius: when even the
    // optimizer's own estimate says the rewritten plan is several times
    // worse than the base plan (e.g. a fused view blocks the only good
    // join order), fall back. Mild penalties — the paper's Figure 5 min
    // bars — still occur from estimation error within the factor.
    constexpr double kForcedFallbackFactor = 3.0;
    if (base_plan.ok() &&
        best_view_plan->est_cost >
            base_plan->est_cost * kForcedFallbackFactor) {
      return base_plan;
    }
    return std::move(*best_view_plan);
  }
  // Cost-based: pick the cheaper of base and the best view plan.
  if (!base_plan.ok()) return std::move(*best_view_plan);
  return best_view_plan->est_cost <= base_plan->est_cost
             ? std::move(*best_view_plan)
             : std::move(base_plan);
}

Result<double> Planner::EstimateCost(const QueryGraph& query,
                                     const ViewRegistry* views,
                                     ViewMode mode) const {
  auto plan = Plan(query, views, mode);
  if (!plan.ok()) return plan.status();
  return plan->est_cost;
}

// ------------------------------------------------------------------ Build

namespace {

/// Deterministic one-line description of a scan/join node for the plan
/// profile (same vocabulary as PlanNode::Explain, minus the estimates
/// which OperatorProfile carries separately).
std::string NodeDetail(const PlanNode* node) {
  std::ostringstream os;
  switch (node->kind) {
    case PlanNode::Kind::kSeqScan:
    case PlanNode::Kind::kIndexScan:
      os << node->table;
      if (node->kind == PlanNode::Kind::kIndexScan) {
        os << " via " << node->index_column;
      }
      for (const auto& p : node->predicates) os << ", " << p.ToString();
      for (const auto& [lo, hi] : node->fused_predicates) {
        os << ", between(" << lo.ToString() << ", " << hi.ToString() << ")";
      }
      if (node->index_pred.has_value()) {
        os << ", [" << node->index_pred->ToString() << "]";
      }
      break;
    case PlanNode::Kind::kHashJoin:
    case PlanNode::Kind::kNestedLoopJoin: {
      bool first = true;
      for (const auto& [l, r] : node->join_columns) {
        if (!first) os << " AND ";
        os << l << "=" << r;
        first = false;
      }
      if (node->shard_local) {
        os << " [shard-local]";
      } else if (node->cross_shard) {
        os << " [cross-shard]";
      }
      break;
    }
  }
  return os.str();
}

/// Charges a cross-shard hash join's estimated transfer once, at Init,
/// on the query's CostMeter. The charge is a planner estimate — a pure
/// function of catalog stats and the shard map, never of physical read
/// routing, replica failover, or batch size — so chaos/crash/node-loss
/// sweeps and the §10 batch charge-parity invariant stay bit-identical.
/// The page count is mirrored into `storage.node.cross_shard_pages`,
/// which EXPLAIN ANALYZE diffs per operator (DESIGN.md §14).
class ShuffleChargeExecutor : public Executor {
 public:
  ShuffleChargeExecutor(std::unique_ptr<Executor> inner, CostMeter* meter,
                        uint64_t pages)
      : inner_(std::move(inner)),
        meter_(meter),
        pages_(pages),
        counter_(MetricsRegistry::Global().GetCounter(
            "storage.node.cross_shard_pages")) {}

  Status Init() override {
    if (!charged_) {
      charged_ = true;
      meter_->ChargeBlockRead(pages_);
      counter_->Increment(pages_);
    }
    return inner_->Init();
  }

  Result<std::optional<Tuple>> Next() override { return inner_->Next(); }

  Result<bool> NextBatch(TupleBatch* out) override {
    return inner_->NextBatch(out);
  }

  const Schema& output_schema() const override {
    return inner_->output_schema();
  }

 private:
  std::unique_ptr<Executor> inner_;
  CostMeter* meter_;
  uint64_t pages_;
  Counter* counter_;
  bool charged_ = false;
};

/// When profiling, wrap `exec` in a MakeProfiled decorator under a new
/// OperatorProfile node placed into `*profile`. No-op without profile.
std::unique_ptr<Executor> MaybeProfile(
    std::unique_ptr<Executor> exec, std::string op, std::string detail,
    double est_rows, const CostMeter* meter,
    std::vector<std::unique_ptr<OperatorProfile>> children,
    std::unique_ptr<OperatorProfile>* profile) {
  if (profile == nullptr) return exec;
  auto node = std::make_unique<OperatorProfile>();
  node->op = std::move(op);
  node->detail = std::move(detail);
  node->est_rows = est_rows;
  node->children = std::move(children);
  exec = MakeProfiled(std::move(exec), meter, node.get());
  *profile = std::move(node);
  return exec;
}

}  // namespace

Result<std::unique_ptr<Executor>> Planner::BuildNode(
    const PlanNode* node, Catalog* catalog, BufferPool* pool, CostMeter* meter,
    std::unique_ptr<OperatorProfile>* profile,
    const ExecParallel& parallel) const {
  switch (node->kind) {
    case PlanNode::Kind::kSeqScan: {
      TableInfo* info = catalog->GetTable(node->table);
      if (info == nullptr) return Status::NotFound("table " + node->table);
      auto preds = BindSelections(node->predicates, info->schema);
      if (!preds.ok()) return preds.status();
      // Fused BETWEEN terms: bind both bounds into one BoundSelection
      // so each surviving row decodes the column once.
      for (const auto& [lo, hi] : node->fused_predicates) {
        auto lower = BindSelection(lo, info->schema);
        if (!lower.ok()) return lower.status();
        auto upper = BindSelection(hi, info->schema);
        if (!upper.ok()) return upper.status();
        BoundSelection fused = std::move(*lower);
        fused.has_upper = true;
        fused.upper_op = upper->op;
        fused.upper = std::move(upper->constant);
        preds->push_back(std::move(fused));
      }
      auto scan = std::make_unique<SeqScanExecutor>(info, pool, meter,
                                                    std::move(*preds));
      scan->EnableParallel(parallel);
      return MaybeProfile(std::move(scan), "SeqScan", NodeDetail(node),
                          node->est_rows, meter, {}, profile);
    }
    case PlanNode::Kind::kIndexScan: {
      TableInfo* info = catalog->GetTable(node->table);
      if (info == nullptr) return Status::NotFound("table " + node->table);
      BPlusTree* index = catalog->GetIndex(node->table, node->index_column);
      if (index == nullptr) {
        return Status::Internal("planned index missing: " + node->table +
                                "." + node->index_column);
      }
      auto preds = BindSelections(node->predicates, info->schema);
      if (!preds.ok()) return preds.status();
      assert(node->index_pred.has_value());
      std::unique_ptr<Executor> scan(new IndexScanExecutor(
          info, index, RangeFromPred(*node->index_pred), pool, meter,
          std::move(*preds)));
      return MaybeProfile(std::move(scan), "IndexScan", NodeDetail(node),
                          node->est_rows, meter, {}, profile);
    }
    case PlanNode::Kind::kHashJoin:
    case PlanNode::Kind::kNestedLoopJoin: {
      std::unique_ptr<OperatorProfile> lprof, rprof;
      auto left = BuildNode(node->left.get(), catalog, pool, meter,
                            profile != nullptr ? &lprof : nullptr, parallel);
      if (!left.ok()) return left.status();
      auto right = BuildNode(node->right.get(), catalog, pool, meter,
                             profile != nullptr ? &rprof : nullptr, parallel);
      if (!right.ok()) return right.status();
      const Schema& lschema = (*left)->output_schema();
      const Schema& rschema = (*right)->output_schema();

      std::vector<std::unique_ptr<OperatorProfile>> kids;
      if (profile != nullptr) {
        kids.push_back(std::move(lprof));
        kids.push_back(std::move(rprof));
      }
      if (node->kind == PlanNode::Kind::kNestedLoopJoin) {
        std::unique_ptr<Executor> nlj(new NestedLoopJoinExecutor(
            std::move(*left), std::move(*right), {}, meter));
        return MaybeProfile(std::move(nlj), "NestedLoopJoin",
                            NodeDetail(node), node->est_rows, meter,
                            std::move(kids), profile);
      }
      assert(!node->join_columns.empty());
      auto [lcol0, rcol0] = node->join_columns.front();
      auto lidx = lschema.ColumnIndex(lcol0);
      auto ridx = rschema.ColumnIndex(rcol0);
      if (!lidx.has_value() || !ridx.has_value()) {
        return Status::Internal("join column not found: " + lcol0 + "/" +
                                rcol0);
      }
      // The optimizer's build-side cardinality estimate pre-sizes the
      // join's hash table (a hint only — never affects results/costs).
      size_t build_rows_hint =
          node->left->est_rows > 0
              ? static_cast<size_t>(node->left->est_rows)
              : 0;
      auto hash_join = std::make_unique<HashJoinExecutor>(
          std::move(*left), std::move(*right), *lidx, *ridx, meter,
          build_rows_hint);
      hash_join->EnableParallel(parallel);
      std::unique_ptr<Executor> join = std::move(hash_join);
      // Cross-shard joins charge their estimated transfer at Init,
      // inside the profiling wrapper so EXPLAIN ANALYZE attributes the
      // pages to this operator (DESIGN.md §14).
      if (node->cross_shard && node->transfer_pages > 0) {
        join = std::make_unique<ShuffleChargeExecutor>(
            std::move(join), meter,
            static_cast<uint64_t>(std::ceil(node->transfer_pages)));
      }
      // The planner costs the whole multi-edge join as one unit, so the
      // HashJoin and its residual ColumnFilter both carry the composite
      // output estimate (there is no per-edge estimate to split out).
      std::string join_detail = lcol0 + "=" + rcol0;
      if (node->shard_local) {
        join_detail += " [shard-local]";
      } else if (node->cross_shard) {
        join_detail += " [cross-shard]";
      }
      join = MaybeProfile(std::move(join), "HashJoin", join_detail,
                          node->est_rows, meter, std::move(kids), profile);
      if (node->join_columns.size() > 1) {
        std::vector<ColumnFilterExecutor::Condition> conds;
        std::ostringstream residual;
        bool first = true;
        for (size_t i = 1; i < node->join_columns.size(); i++) {
          auto [lcol, rcol] = node->join_columns[i];
          auto li = lschema.ColumnIndex(lcol);
          auto ri = rschema.ColumnIndex(rcol);
          if (!li.has_value() || !ri.has_value()) {
            return Status::Internal("join column not found: " + lcol + "/" +
                                    rcol);
          }
          conds.push_back(ColumnFilterExecutor::Condition{
              *li, lschema.size() + *ri, CompareOp::kEq});
          if (!first) residual << " AND ";
          residual << lcol << "=" << rcol;
          first = false;
        }
        join = std::unique_ptr<Executor>(
            new ColumnFilterExecutor(std::move(join), std::move(conds), meter));
        if (profile != nullptr) {
          std::vector<std::unique_ptr<OperatorProfile>> jkids;
          jkids.push_back(std::move(*profile));
          join = MaybeProfile(std::move(join), "ColumnFilter", residual.str(),
                              node->est_rows, meter, std::move(jkids),
                              profile);
        }
      }
      return join;
    }
  }
  return Status::Internal("unknown plan node kind");
}

Result<std::unique_ptr<Executor>> Planner::Build(
    const PhysicalPlan& plan, Catalog* catalog, BufferPool* pool,
    CostMeter* meter, PlanProfile* profile,
    const ExecParallel& parallel) const {
  std::unique_ptr<OperatorProfile> prof;
  auto exec = BuildNode(plan.root.get(), catalog, pool, meter,
                        profile != nullptr ? &prof : nullptr, parallel);
  if (!exec.ok()) return exec.status();
  if (profile != nullptr) profile->root = std::move(prof);
  if (plan.projections.empty()) return exec;
  const Schema& schema = (*exec)->output_schema();
  std::vector<size_t> indices;
  indices.reserve(plan.projections.size());
  std::ostringstream cols;
  for (const auto& name : plan.projections) {
    auto idx = schema.ColumnIndex(name);
    if (!idx.has_value()) {
      return Status::NotFound("projection column " + name);
    }
    if (!indices.empty()) cols << ", ";
    cols << name;
    indices.push_back(*idx);
  }
  std::unique_ptr<Executor> project(
      new ProjectExecutor(std::move(*exec), std::move(indices), meter));
  if (profile != nullptr) {
    // Project preserves cardinality; it inherits the root estimate.
    OperatorProfile* node =
        profile->PushRoot("Project", cols.str(), plan.est_rows);
    project = MakeProfiled(std::move(project), meter, node);
  }
  return project;
}

}  // namespace sqp
