#include "optimizer/cost.h"

#include <algorithm>
#include <cmath>

#include "stats/selectivity.h"

namespace sqp {

double CardinalityEstimator::TableRows(const std::string& table) const {
  const TableInfo* info = catalog_->GetTable(table);
  return info == nullptr ? 0.0 : static_cast<double>(info->stats.row_count());
}

double CardinalityEstimator::TablePages(const std::string& table) const {
  const TableInfo* info = catalog_->GetTable(table);
  return info == nullptr ? 0.0
                         : static_cast<double>(info->stats.page_count());
}

double CardinalityEstimator::SelectionSelectivity(
    const std::string& table, const SelectionPred& pred) const {
  const TableInfo* info = catalog_->GetTable(table);
  if (info == nullptr) return 1.0;
  auto col_idx = info->schema.ColumnIndex(pred.column);
  if (!col_idx.has_value()) return 1.0;
  const Histogram* hist = catalog_->GetHistogram(table, pred.column);
  if (hist == nullptr && table != pred.table) {
    // `table` is a materialized view (no histograms of its own): the
    // predicate still names its base relation/column, whose histogram
    // approximates the value distribution inside the view under
    // independence. Far better than the uniform fallback on skewed
    // data — residual misestimates on views were the dominant source
    // of pathological forced-rewrite plans.
    hist = catalog_->GetHistogram(pred.table, pred.column);
  }
  return EstimateSelectionSelectivity(info->stats.column(*col_idx), hist,
                                      pred.op, pred.constant);
}

double CardinalityEstimator::JoinSelectivity(const JoinPred& join) const {
  size_t d_left = 1, d_right = 1;
  const TableInfo* left = catalog_->GetTable(join.left_table);
  if (left != nullptr) {
    auto idx = left->schema.ColumnIndex(join.left_column);
    if (idx.has_value()) d_left = left->stats.column(*idx).distinct_count;
  }
  const TableInfo* right = catalog_->GetTable(join.right_table);
  if (right != nullptr) {
    auto idx = right->schema.ColumnIndex(join.right_column);
    if (idx.has_value()) d_right = right->stats.column(*idx).distinct_count;
  }
  return EstimateJoinSelectivity(d_left, d_right);
}

double CardinalityEstimator::CompositeJoinSelectivity(
    const std::vector<JoinPred>& edges) const {
  if (edges.empty()) return 1.0;
  if (edges.size() == 1) return JoinSelectivity(edges.front());
  // All edges connect the same canonical pair; accumulate per-side
  // distinct products, capped by the side's row count.
  JoinPred first = edges.front();
  first.Canonicalize();
  double left_product = 1, right_product = 1;
  for (JoinPred edge : edges) {
    edge.Canonicalize();
    const TableInfo* left = catalog_->GetTable(edge.left_table);
    const TableInfo* right = catalog_->GetTable(edge.right_table);
    size_t d_left = 1, d_right = 1;
    if (left != nullptr) {
      auto idx = left->schema.ColumnIndex(edge.left_column);
      if (idx.has_value()) {
        d_left = std::max<size_t>(1, left->stats.column(*idx).distinct_count);
      }
    }
    if (right != nullptr) {
      auto idx = right->schema.ColumnIndex(edge.right_column);
      if (idx.has_value()) {
        d_right =
            std::max<size_t>(1, right->stats.column(*idx).distinct_count);
      }
    }
    left_product *= static_cast<double>(d_left);
    right_product *= static_cast<double>(d_right);
  }
  double left_cap =
      std::min(left_product, std::max(1.0, TableRows(first.left_table)));
  double right_cap =
      std::min(right_product, std::max(1.0, TableRows(first.right_table)));
  return 1.0 / std::max(1.0, std::min(left_cap, right_cap));
}

double CardinalityEstimator::ScanOutputRows(
    const std::string& table,
    const std::vector<SelectionPred>& preds) const {
  double rows = TableRows(table);
  for (const auto& pred : preds) {
    rows *= SelectionSelectivity(table, pred);
  }
  return rows;
}

double CardinalityEstimator::PagesForRows(double rows,
                                          const Schema& schema) const {
  double per_page = std::max(
      1.0, std::floor(static_cast<double>(kPageSize - 8) /
                      (schema.EstimatedTupleWidth() + 4)));
  return std::ceil(std::max(0.0, rows) / per_page);
}

double CardinalityEstimator::SeqScanCost(const std::string& table) const {
  return TablePages(table) * config_.io_seconds_per_block +
         TableRows(table) * config_.cpu_seconds_per_tuple;
}

double CardinalityEstimator::IndexScanCost(const std::string& table,
                                           double est_rows) const {
  // Descend (~3 levels) + leaves + one heap page per matching row capped
  // by the table's page count (unclustered index, random access).
  double leaves = std::ceil(est_rows / 32.0);
  double heap_pages = std::min(est_rows, TablePages(table));
  return (3.0 + leaves + heap_pages) * config_.io_seconds_per_block +
         est_rows * config_.cpu_seconds_per_tuple;
}

bool CardinalityEstimator::PartitionedOn(const std::string& table,
                                         const std::string& column) const {
  if (!placement_active()) return false;
  TablePlacement p = placement_->TablePlacementOf(table);
  return p.sharded && p.shard_column == column;
}

double CardinalityEstimator::CrossShardFraction(
    const std::string& table) const {
  if (!placement_active()) return 0.0;
  TablePlacement p = placement_->TablePlacementOf(table);
  std::vector<double> share = placement_->ShardSlotShare();
  if (p.node_page_fraction.size() != share.size()) {
    return CrossShardFractionDefault();
  }
  double colocated = 0.0;
  for (size_t k = 0; k < share.size(); k++) {
    colocated += p.node_page_fraction[k] * share[k];
  }
  return std::clamp(1.0 - colocated, 0.0, 1.0);
}

double CardinalityEstimator::CrossShardFractionDefault() const {
  if (!placement_active()) return 0.0;
  std::vector<double> share = placement_->ShardSlotShare();
  double colocated = 0.0;
  for (double s : share) colocated += s * s;
  return std::clamp(1.0 - colocated, 0.0, 1.0);
}

}  // namespace sqp
