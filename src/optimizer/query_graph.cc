#include "optimizer/query_graph.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace sqp {

std::string SelectionPred::Key() const {
  return table + "." + column + CompareOpName(op) + constant.ToString();
}

std::string SelectionPred::ToString() const {
  return column + " " + CompareOpName(op) + " " + constant.ToString();
}

void JoinPred::Canonicalize() {
  if (right_table < left_table) {
    std::swap(left_table, right_table);
    std::swap(left_column, right_column);
  }
}

std::string JoinPred::Key() const {
  JoinPred c = *this;
  c.Canonicalize();
  return c.left_table + "." + c.left_column + "=" + c.right_table + "." +
         c.right_column;
}

std::string JoinPred::ToString() const {
  return left_column + " = " + right_column;
}

void QueryGraph::AddRelation(const std::string& table) {
  relations_.insert(table);
}

void QueryGraph::AddSelection(SelectionPred pred) {
  if (HasSelection(pred.Key())) return;
  relations_.insert(pred.table);
  selections_.push_back(std::move(pred));
  std::sort(selections_.begin(), selections_.end());
}

void QueryGraph::AddJoin(JoinPred pred) {
  pred.Canonicalize();
  if (HasJoin(pred.Key())) return;
  relations_.insert(pred.left_table);
  relations_.insert(pred.right_table);
  joins_.push_back(std::move(pred));
  std::sort(joins_.begin(), joins_.end());
}

bool QueryGraph::RemoveSelection(const std::string& key) {
  for (auto it = selections_.begin(); it != selections_.end(); ++it) {
    if (it->Key() == key) {
      selections_.erase(it);
      return true;
    }
  }
  return false;
}

bool QueryGraph::RemoveJoin(const std::string& key) {
  for (auto it = joins_.begin(); it != joins_.end(); ++it) {
    if (it->Key() == key) {
      joins_.erase(it);
      return true;
    }
  }
  return false;
}

bool QueryGraph::RemoveRelation(const std::string& table) {
  if (relations_.erase(table) == 0) return false;
  selections_.erase(
      std::remove_if(selections_.begin(), selections_.end(),
                     [&](const SelectionPred& s) { return s.table == table; }),
      selections_.end());
  joins_.erase(
      std::remove_if(joins_.begin(), joins_.end(),
                     [&](const JoinPred& j) { return j.Touches(table); }),
      joins_.end());
  return true;
}

bool QueryGraph::HasSelection(const std::string& key) const {
  return std::any_of(selections_.begin(), selections_.end(),
                     [&](const SelectionPred& s) { return s.Key() == key; });
}

bool QueryGraph::HasJoin(const std::string& key) const {
  return std::any_of(joins_.begin(), joins_.end(),
                     [&](const JoinPred& j) { return j.Key() == key; });
}

std::vector<SelectionPred> QueryGraph::SelectionsOn(
    const std::string& table) const {
  std::vector<SelectionPred> out;
  for (const auto& s : selections_) {
    if (s.table == table) out.push_back(s);
  }
  return out;
}

std::vector<JoinPred> QueryGraph::JoinsOn(const std::string& table) const {
  std::vector<JoinPred> out;
  for (const auto& j : joins_) {
    if (j.Touches(table)) out.push_back(j);
  }
  return out;
}

bool QueryGraph::ContainsSubgraph(const QueryGraph& sub) const {
  for (const auto& r : sub.relations_) {
    if (!HasRelation(r)) return false;
  }
  for (const auto& s : sub.selections_) {
    if (!HasSelection(s.Key())) return false;
  }
  for (const auto& j : sub.joins_) {
    if (!HasJoin(j.Key())) return false;
  }
  return true;
}

QueryGraph QueryGraph::Union(const QueryGraph& other) const {
  QueryGraph out = *this;
  out.projections_.clear();
  for (const auto& r : other.relations_) out.AddRelation(r);
  for (const auto& s : other.selections_) out.AddSelection(s);
  for (const auto& j : other.joins_) out.AddJoin(j);
  return out;
}

QueryGraph QueryGraph::Intersect(const QueryGraph& other) const {
  QueryGraph out;
  for (const auto& r : relations_) {
    if (other.HasRelation(r)) out.AddRelation(r);
  }
  for (const auto& s : selections_) {
    if (other.HasSelection(s.Key())) out.AddSelection(s);
  }
  for (const auto& j : joins_) {
    if (other.HasJoin(j.Key())) out.AddJoin(j);
  }
  return out;
}

bool QueryGraph::DisjointWith(const QueryGraph& other) const {
  return Intersect(other).empty();
}

bool QueryGraph::IsConnected() const {
  if (relations_.size() <= 1) return true;
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& j : joins_) {
    adj[j.left_table].push_back(j.right_table);
    adj[j.right_table].push_back(j.left_table);
  }
  std::set<std::string> seen;
  std::vector<std::string> stack = {*relations_.begin()};
  while (!stack.empty()) {
    std::string cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    for (const auto& next : adj[cur]) {
      if (seen.count(next) == 0) stack.push_back(next);
    }
  }
  return seen.size() == relations_.size();
}

std::string QueryGraph::CanonicalKey() const {
  std::string key = "R[";
  for (const auto& r : relations_) {
    key += r;
    key += ",";
  }
  key += "]S[";
  for (const auto& s : selections_) {
    key += s.Key();
    key += ",";
  }
  key += "]J[";
  for (const auto& j : joins_) {
    key += j.Key();
    key += ",";
  }
  key += "]";
  return key;
}

std::string QueryGraph::ToSql() const {
  std::string sql = "SELECT ";
  if (projections_.empty()) {
    sql += "*";
  } else {
    for (size_t i = 0; i < projections_.size(); i++) {
      if (i > 0) sql += ", ";
      sql += projections_[i];
    }
  }
  sql += " FROM ";
  bool first = true;
  for (const auto& r : relations_) {
    if (!first) sql += ", ";
    sql += r;
    first = false;
  }
  if (!selections_.empty() || !joins_.empty()) {
    sql += " WHERE ";
    first = true;
    for (const auto& j : joins_) {
      if (!first) sql += " AND ";
      sql += j.left_table + "." + j.left_column + " = " + j.right_table +
             "." + j.right_column;
      first = false;
    }
    for (const auto& s : selections_) {
      if (!first) sql += " AND ";
      sql += s.table + "." + s.column + " " + CompareOpName(s.op) + " " +
             s.constant.ToString();
      first = false;
    }
  }
  return sql;
}

}  // namespace sqp
