// Cardinality and cost estimation.
//
// Estimates drive (a) the database optimizer's access-path and join-order
// choices and (b) the speculation subsystem's Cost⊆ evaluation. Costs are
// expressed in simulated seconds using the same CostConfig rates the
// executors charge, so estimated and measured costs are commensurable.
#pragma once

#include <string>

#include "catalog/catalog.h"
#include "common/cost_meter.h"
#include "optimizer/query_graph.h"

namespace sqp {

class CardinalityEstimator {
 public:
  CardinalityEstimator(const Catalog* catalog, CostConfig config)
      : catalog_(catalog), config_(config) {}

  /// Base-table row / page counts (0 for unknown tables).
  double TableRows(const std::string& table) const;
  double TablePages(const std::string& table) const;

  /// Selectivity of one selection predicate against its table, using a
  /// histogram when one exists and uniform assumptions otherwise.
  double SelectionSelectivity(const std::string& table,
                              const SelectionPred& pred) const;

  /// Selectivity of an equijoin edge, from column distinct counts.
  double JoinSelectivity(const JoinPred& join) const;

  /// Combined selectivity of several equijoin edges between the *same*
  /// relation pair (a composite join, e.g. lineitem–partsupp on
  /// (partkey, suppkey)). Multiplying the single-edge selectivities
  /// assumes independence and collapses catastrophically on correlated
  /// key columns; instead we bound each side's composite distinct count
  /// by min(rows, Π column distincts) and divide by the smaller side's
  /// bound (conservative: correlated columns share structure, so the
  /// tighter side approximates the true composite NDV).
  double CompositeJoinSelectivity(const std::vector<JoinPred>& edges) const;

  /// Rows surviving a scan of `table` under `preds` (independence).
  double ScanOutputRows(const std::string& table,
                        const std::vector<SelectionPred>& preds) const;

  /// Pages needed to store `rows` rows of `schema`.
  double PagesForRows(double rows, const Schema& schema) const;

  /// Simulated-seconds cost of a full sequential scan of `table`.
  double SeqScanCost(const std::string& table) const;

  /// Simulated-seconds cost of an index scan matching `est_rows` rows.
  double IndexScanCost(const std::string& table, double est_rows) const;

  const CostConfig& config() const { return config_; }
  const Catalog* catalog() const { return catalog_; }

 private:
  const Catalog* catalog_;
  CostConfig config_;
};

}  // namespace sqp
