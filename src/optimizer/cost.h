// Cardinality and cost estimation.
//
// Estimates drive (a) the database optimizer's access-path and join-order
// choices and (b) the speculation subsystem's Cost⊆ evaluation. Costs are
// expressed in simulated seconds using the same CostConfig rates the
// executors charge, so estimated and measured costs are commensurable.
#pragma once

#include <algorithm>
#include <string>

#include "catalog/catalog.h"
#include "common/cost_meter.h"
#include "optimizer/placement.h"
#include "optimizer/query_graph.h"

namespace sqp {

class CardinalityEstimator {
 public:
  /// `placement` (nullable, not owned) activates the shard-locality
  /// terms (DESIGN.md §14); without it — or with a single-node
  /// provider — every estimate is byte-identical to the classic
  /// shard-oblivious model.
  CardinalityEstimator(const Catalog* catalog, CostConfig config,
                       const PlacementProvider* placement = nullptr)
      : catalog_(catalog), config_(config), placement_(placement) {}

  /// Base-table row / page counts (0 for unknown tables).
  double TableRows(const std::string& table) const;
  double TablePages(const std::string& table) const;

  /// Selectivity of one selection predicate against its table, using a
  /// histogram when one exists and uniform assumptions otherwise.
  double SelectionSelectivity(const std::string& table,
                              const SelectionPred& pred) const;

  /// Selectivity of an equijoin edge, from column distinct counts.
  double JoinSelectivity(const JoinPred& join) const;

  /// Combined selectivity of several equijoin edges between the *same*
  /// relation pair (a composite join, e.g. lineitem–partsupp on
  /// (partkey, suppkey)). Multiplying the single-edge selectivities
  /// assumes independence and collapses catastrophically on correlated
  /// key columns; instead we bound each side's composite distinct count
  /// by min(rows, Π column distincts) and divide by the smaller side's
  /// bound (conservative: correlated columns share structure, so the
  /// tighter side approximates the true composite NDV).
  double CompositeJoinSelectivity(const std::vector<JoinPred>& edges) const;

  /// Rows surviving a scan of `table` under `preds` (independence).
  double ScanOutputRows(const std::string& table,
                        const std::vector<SelectionPred>& preds) const;

  /// Pages needed to store `rows` rows of `schema`.
  double PagesForRows(double rows, const Schema& schema) const;

  /// Simulated-seconds cost of a full sequential scan of `table`.
  double SeqScanCost(const std::string& table) const;

  /// Simulated-seconds cost of an index scan matching `est_rows` rows.
  double IndexScanCost(const std::string& table, double est_rows) const;

  // ------------------------------------- shard locality (DESIGN.md §14)
  /// True when placement-aware costing applies: a provider is attached
  /// and the tier has more than one node.
  bool placement_active() const {
    return placement_ != nullptr && placement_->node_count() > 1;
  }
  const PlacementProvider* placement() const { return placement_; }

  /// True when `table` is hash-partitioned on exactly `column` — a
  /// probe/build side that needs no shuffle when the other side hashes
  /// on the tier's same slot map.
  bool PartitionedOn(const std::string& table,
                     const std::string& column) const;

  /// Expected fraction of `table`'s pages that must cross nodes to
  /// reach the slot a tier-wide hash repartition sends them to:
  /// 1 − Σ_k f_k·s_k, with f_k the table's page fraction on node k and
  /// s_k node k's shard-slot share. (n−1)/n on a balanced tier.
  double CrossShardFraction(const std::string& table) const;

  /// Same, for an intermediate result spread like the slot map itself
  /// (the steady state after a repartitioning join): 1 − Σ_k s_k².
  double CrossShardFractionDefault() const;

  /// Simulated seconds to ship `pages` pages across the tier — each
  /// transferred page is charged one block I/O on the CostMeter, so
  /// the estimate and the executor's charge use the same rate.
  double ShuffleTransferSeconds(double pages) const {
    return std::max(0.0, pages) * config_.io_seconds_per_block;
  }

  const CostConfig& config() const { return config_; }
  const Catalog* catalog() const { return catalog_; }

 private:
  const Catalog* catalog_;
  CostConfig config_;
  const PlacementProvider* placement_;
};

}  // namespace sqp
