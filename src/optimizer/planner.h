// Cost-based physical planner.
//
// Planning pipeline:
//   1. View matching (optional / forced): substitute applicable
//      materialized views for the base relations they cover.
//   2. Access-path selection per scan unit: sequential scan vs B+-tree
//      index scan on the most selective indexed predicate.
//   3. Join ordering: dynamic programming over connected unit subsets
//      (left-deep, hash joins for equi edges), with a cross-product
//      fallback for disconnected graphs.
//
// ViewMode mirrors the paper's two manipulation flavours (§3.2):
//   kCostBased = "query materialization" (the optimizer may use a view),
//   kForced    = "query rewriting"       (a matching view must be used).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "exec/executors.h"
#include "exec/plan_profile.h"
#include "optimizer/cost.h"
#include "optimizer/query_graph.h"
#include "optimizer/view_matcher.h"

namespace sqp {

enum class ViewMode { kNone, kCostBased, kForced };

struct PlanNode {
  enum class Kind { kSeqScan, kIndexScan, kHashJoin, kNestedLoopJoin };
  Kind kind = Kind::kSeqScan;

  // --- scans ---
  std::string table;  // stored table (base relation or view table)
  std::vector<SelectionPred> predicates;  // residual, applied at the scan
  /// Range pairs (`a > lo AND a < hi`) condensed to single fused
  /// BETWEEN terms (kSeqScan only): {lower, upper} bounds on one
  /// column, evaluated with a single column decode. Split out of
  /// `predicates` after access-path selection, so selectivity
  /// estimates and the scan-vs-index choice are untouched.
  std::vector<std::pair<SelectionPred, SelectionPred>> fused_predicates;
  std::string index_column;               // kIndexScan
  std::optional<SelectionPred> index_pred;  // pred served by the index

  // --- joins ---
  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;
  /// Equijoin column-name pairs (left side name, right side name). The
  /// first pair drives the hash join; the rest become residual
  /// column-column filters. Empty => cross product (kNestedLoopJoin).
  std::vector<std::pair<std::string, std::string>> join_columns;

  // --- estimates ---
  double est_rows = 0;
  double est_cost = 0;  // simulated seconds, inclusive of children
  Schema schema;

  // --- shard placement (DESIGN.md §14; joins on a multi-node tier) ---
  /// Both sides hash-partitioned on the join key: no rows cross nodes.
  bool shard_local = false;
  /// At least one side must repartition; est_cost includes the
  /// transfer term and the built executor charges `transfer_pages`
  /// block reads (`storage.node.cross_shard_pages`).
  bool cross_shard = false;
  double transfer_pages = 0;  // estimated pages shipped across nodes

  std::string Explain(int indent = 0) const;
};

struct PhysicalPlan {
  std::unique_ptr<PlanNode> root;
  std::vector<std::string> projections;  // empty = all columns
  std::vector<std::string> views_used;
  double est_cost = 0;
  double est_rows = 0;

  std::string Explain() const;
};

class Planner {
 public:
  /// `placement` (nullable, not owned) activates shard-aware join
  /// costing (DESIGN.md §14). Null — or a single-node provider —
  /// reproduces the shard-oblivious planner bit for bit.
  Planner(const Catalog* catalog, CostConfig config,
          const PlacementProvider* placement = nullptr)
      : catalog_(catalog),
        estimator_(catalog, config, placement),
        config_(config) {}

  /// Plan `query`. `views` may be null (no rewriting). With kForced,
  /// every applicable view (greedy, largest first, disjoint) is used;
  /// with kCostBased the rewritten and unrewritten plans are costed and
  /// the cheaper wins.
  Result<PhysicalPlan> Plan(const QueryGraph& query,
                            const ViewRegistry* views = nullptr,
                            ViewMode mode = ViewMode::kNone) const;

  /// Estimated cost (simulated seconds) of the best plan; convenience
  /// for the speculation cost model.
  Result<double> EstimateCost(const QueryGraph& query,
                              const ViewRegistry* views = nullptr,
                              ViewMode mode = ViewMode::kNone) const;

  /// Turn a plan into an executor tree. With `profile` set, every
  /// operator is wrapped in an EXPLAIN ANALYZE decorator (DESIGN.md
  /// §11) and `profile->root` mirrors the executor tree; estimates come
  /// from the PlanNode tree (a multi-edge join's composite estimate is
  /// assigned to both the HashJoin and its residual ColumnFilter; the
  /// cardinality-preserving Project inherits the root estimate).
  /// `parallel` (optional) hands the built scan/join executors a task
  /// scheduler for morsel-parallel execution; the default (no
  /// scheduler) builds the plain sequential tree.
  Result<std::unique_ptr<Executor>> Build(const PhysicalPlan& plan,
                                          Catalog* catalog, BufferPool* pool,
                                          CostMeter* meter,
                                          PlanProfile* profile = nullptr,
                                          const ExecParallel& parallel = {}) const;

  const CardinalityEstimator& estimator() const { return estimator_; }

 private:
  Result<PhysicalPlan> PlanRewritten(const RewrittenQuery& rewritten,
                                     const std::vector<std::string>& projections) const;
  /// Best scan plan for one unit.
  Result<std::unique_ptr<PlanNode>> PlanScan(const RewriteUnit& unit) const;

  /// `profile` (nullable) receives this node's OperatorProfile subtree.
  Result<std::unique_ptr<Executor>> BuildNode(
      const PlanNode* node, Catalog* catalog, BufferPool* pool,
      CostMeter* meter, std::unique_ptr<OperatorProfile>* profile,
      const ExecParallel& parallel) const;

  const Catalog* catalog_;
  CardinalityEstimator estimator_;
  CostConfig config_;
};

}  // namespace sqp
