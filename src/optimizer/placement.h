// Data-placement introspection for shard-aware planning (DESIGN.md §14).
//
// The optimizer and the speculation cost model are deliberately kept
// ignorant of the storage router's concrete types: they see placement
// through this narrow read-only interface, which Database implements
// over its catalog + ShardedStorageRouter. On a single-node database
// the provider reports node_count() == 1 and every placement-aware
// code path collapses to the classic shard-oblivious formulas, so a
// `storage_nodes = 1` run stays bit-identical to the pre-placement
// planner.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sqp {

/// Where one stored table's rows live on the tier.
struct TablePlacement {
  /// Rows are hash-partitioned on `shard_column` (base tables on a
  /// multi-node tier). False for matviews (node-sticky single copy)
  /// and for anything on a single-node database.
  bool sharded = false;
  /// Partitioning column (the table's first schema column today).
  std::string shard_column;
  /// Hash-shard slot count the table was created with. Two tables are
  /// co-partitioned only when their slot counts match (same
  /// row-to-slot mapping) — the slot map itself is tier-global.
  size_t shard_slots = 0;
  /// Fraction of the table's primary pages homed on each node
  /// (node_count() entries summing to ~1; empty when unknown/empty
  /// table).
  std::vector<double> node_page_fraction;
};

/// Read-only placement oracle the planner / speculation cost model
/// consult. Implemented by Database over catalog + storage router.
class PlacementProvider {
 public:
  virtual ~PlacementProvider() = default;

  /// Storage nodes in the tier (1 = single-node: placement inactive).
  virtual size_t node_count() const = 0;

  /// True iff node `k` is in service (not killed/retired).
  virtual bool NodeAlive(size_t k) const = 0;

  /// Placement of a stored table (default-constructed for unknown
  /// tables).
  virtual TablePlacement TablePlacementOf(const std::string& table) const = 0;

  /// Fraction of hash-shard slots homed at each node — i.e. where a
  /// freshly shuffled row lands. node_count() entries summing to ~1.
  virtual std::vector<double> ShardSlotShare() const = 0;
};

}  // namespace sqp
