// LRU buffer pool with pin/unpin semantics.
//
// The pool size (e.g. 32 MB / 96 MB as in the paper's experiments) bounds
// how much of the dataset stays memory-resident; misses charge simulated
// I/O through the DiskManager. Replays start cold by calling Reset().
#pragma once

#include <list>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace sqp {

class Counter;

class BufferPool {
 public:
  /// `capacity_pages` frames of kPageSize each (32 MB -> 4096 frames).
  /// `disk` may be a single DiskManager or a ShardedStorageRouter; the
  /// pool is oblivious to where a page physically lives.
  BufferPool(PageStore* disk, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pin `page_id` into a frame (reading it from disk on a miss) and
  /// return the frame's Page. Fails only when every frame is pinned.
  Result<Page*> FetchPage(page_id_t page_id);

  /// Copy the page's current bytes into `out` with zero accounting
  /// side effects: a resident frame is copied without touching LRU
  /// order, pin counts, or hit/miss tallies; otherwise the store's
  /// PeekPage serves the snapshot (no charge, no fault points). The
  /// parallel executors peek pages for worker lookahead and replay the
  /// accountable FetchPage on the foreground thread (DESIGN.md §15).
  Status PeekPage(page_id_t page_id, Page* out);

  /// Allocate a brand new page, pinned and marked dirty. `options`
  /// pins the page's placement (shard node, replication) on a sharded
  /// store; the default lets the store choose.
  Result<std::pair<page_id_t, Page*>> NewPage(
      const PageAllocOptions& options = {});

  /// Drop a pin. `dirty` records that the caller modified the frame.
  void UnpinPage(page_id_t page_id, bool dirty);

  /// Flush one page / all dirty pages to disk. A write failure leaves
  /// the frame resident and dirty (no data loss; retry may succeed).
  /// FlushPage lands in the disk's volatile write cache; FlushAll is a
  /// barrier — it ends with a DiskManager::Sync(), making every flushed
  /// page durable.
  Status FlushPage(page_id_t page_id);
  Status FlushAll();

  /// Flush everything and empty every frame: the next replay starts with
  /// a cold cache, matching the paper's per-replay methodology (§4.2).
  /// Fails (with the pool only partially emptied) when a flush fails.
  Status Reset();

  /// Evict (without flushing loss — flushes first) any frames caching
  /// pages of a dropped table so DeallocatePage is safe.
  void EvictPage(page_id_t page_id);

  size_t capacity_pages() const { return capacity_; }
  size_t resident_pages() const { return table_.size(); }
  uint64_t hit_count() const { return hits_; }
  uint64_t miss_count() const { return misses_; }

 private:
  struct Frame {
    Page page;
    page_id_t page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    // Position in lru_ when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Find a frame for a new resident page: a free frame or an evicted
  /// LRU victim. Returns frame index or error when everything is pinned.
  Result<size_t> GetVictimFrame();

  PageStore* disk_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = least recently used
  std::unordered_map<page_id_t, size_t> table_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Registry handles (DESIGN.md §9), looked up once at construction.
  // Unlike hits_/misses_ these are cumulative: Reset() (cold start)
  // zeroes the per-replay tallies but not the registry counters.
  Counter* m_hits_;
  Counter* m_misses_;
  Counter* m_evictions_;
};

/// RAII pin guard.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, page_id_t page_id, Page* page)
      : pool_(pool), page_id_(page_id), page_(page) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    Release();
    pool_ = other.pool_;
    page_id_ = other.page_id_;
    page_ = other.page_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  Page* get() { return page_; }
  const Page* get() const { return page_; }
  page_id_t page_id() const { return page_id_; }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      pool_->UnpinPage(page_id_, dirty_);
    }
    pool_ = nullptr;
    page_ = nullptr;
  }

 private:
  BufferPool* pool_ = nullptr;
  page_id_t page_id_ = kInvalidPageId;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace sqp
