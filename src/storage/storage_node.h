// One simulated storage node of the sharded tier (DESIGN.md §12).
//
// A node owns a full DiskManager — durable image, checksum sidecar,
// volatile write cache, crash model — under its own fault-point
// namespace ("node<k>.disk.*") and metric namespace
// ("storage.node<k>.disk.*"), plus two node-level failure modes the
// single-disk model cannot express:
//
//   * Kill(): permanent loss of the machine *and its durable image*.
//     Every subsequent operation fails with kDataLoss; recovery must
//     fall back to replicas on surviving nodes.
//   * partition ("node<k>.partition" fault point): transient
//     unreachability. Operations fail with the retryable
//     kResourceExhausted while the point fires; nothing is lost.
#pragma once

#include <memory>
#include <string>

#include "common/cost_meter.h"
#include "common/status.h"
#include "storage/disk_manager.h"

namespace sqp {

class StorageNode {
 public:
  StorageNode(uint32_t id, CostMeter* meter);

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  uint32_t id() const { return id_; }
  DiskManager& disk() { return *disk_; }
  const DiskManager& disk() const { return *disk_; }

  /// Permanent node loss: the durable image dies with the machine.
  void Kill() { killed_ = true; }
  bool killed() const { return killed_; }

  /// Graceful exit: the node was drained and removed from membership.
  /// Unlike Kill() nothing is lost — the node simply holds no pages and
  /// takes no new placements.
  void Decommission() { retired_ = true; }
  bool retired() const { return retired_; }

  /// In service: neither killed nor decommissioned.
  bool alive() const { return !killed_ && !retired_; }

  /// kOk when the node is alive and currently reachable;
  /// kDataLoss when killed; kResourceExhausted (retryable) while the
  /// node's partition fault point fires.
  Status CheckReachable() const;

  const std::string& partition_point() const { return partition_point_; }
  /// Fault point gating rebalance/repair page copies staged onto this
  /// node ("node<k>.rebalance.copy").
  const std::string& rebalance_point() const { return rebalance_point_; }

 private:
  uint32_t id_;
  std::string partition_point_;
  std::string rebalance_point_;
  std::unique_ptr<DiskManager> disk_;
  bool killed_ = false;
  bool retired_ = false;
};

}  // namespace sqp
