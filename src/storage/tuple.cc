#include "storage/tuple.h"

#include <cassert>
#include <cstring>

namespace sqp {

namespace {
template <typename T>
void AppendRaw(std::vector<uint8_t>* out, const T& v) {
  size_t off = out->size();
  out->resize(off + sizeof(T));
  std::memcpy(out->data() + off, &v, sizeof(T));
}

template <typename T>
T ReadRaw(const uint8_t* data, size_t* off) {
  T v;
  std::memcpy(&v, data + *off, sizeof(T));
  *off += sizeof(T);
  return v;
}
}  // namespace

void SerializeTuple(const Tuple& tuple, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(tuple.size()));
  for (const Value& v : tuple) {
    out->push_back(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case TypeId::kInt64:
        AppendRaw(out, v.AsInt64());
        break;
      case TypeId::kDouble:
        AppendRaw(out, v.AsDouble());
        break;
      case TypeId::kString: {
        const std::string& s = v.AsString();
        AppendRaw(out, static_cast<uint32_t>(s.size()));
        out->insert(out->end(), s.begin(), s.end());
        break;
      }
    }
  }
}

Tuple DeserializeTuple(const uint8_t* data, size_t len) {
  Tuple tuple;
  DeserializeTupleInto(data, len, &tuple);
  return tuple;
}

void DeserializeTupleInto(const uint8_t* data, size_t len, Tuple* out) {
  size_t off = 0;
  assert(len >= 1);
  uint8_t n = data[off++];
  // When the target already has the right arity (a recycled slot from
  // the same scan), assign elements in place so even string columns
  // reuse their buffers; otherwise rebuild it.
  const bool in_place = out->size() == n;
  if (!in_place) {
    out->clear();
    out->reserve(n);
  }
  for (uint8_t i = 0; i < n; i++) {
    assert(off < len);
    TypeId type = static_cast<TypeId>(data[off++]);
    switch (type) {
      case TypeId::kInt64: {
        int64_t v = ReadRaw<int64_t>(data, &off);
        if (in_place) {
          (*out)[i].Set(v);
        } else {
          out->emplace_back(v);
        }
        break;
      }
      case TypeId::kDouble: {
        double v = ReadRaw<double>(data, &off);
        if (in_place) {
          (*out)[i].Set(v);
        } else {
          out->emplace_back(v);
        }
        break;
      }
      case TypeId::kString: {
        uint32_t slen = ReadRaw<uint32_t>(data, &off);
        assert(off + slen <= len);
        const char* s = reinterpret_cast<const char*>(data + off);
        if (in_place) {
          (*out)[i].SetString(s, slen);
        } else {
          out->emplace_back(std::string(s, slen));
        }
        off += slen;
        break;
      }
    }
  }
  assert(off <= len);
  (void)len;
}

size_t SerializedTupleSize(const Tuple& tuple) {
  size_t size = 1;
  for (const Value& v : tuple) {
    size += 1;
    switch (v.type()) {
      case TypeId::kInt64:
      case TypeId::kDouble:
        size += 8;
        break;
      case TypeId::kString:
        size += 4 + v.AsString().size();
        break;
    }
  }
  return size;
}

}  // namespace sqp
