#include "storage/heap_file.h"

#include <cassert>

namespace sqp {

namespace {
/// FNV-1a over a byte string: stable across builds and platforms.
uint64_t StableHash(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

void HeapFile::SetPlacement(HeapPlacement placement) {
  assert(pages_.empty() && "placement must be set before the first append");
  placement_ = placement;
  if (placement_.shards > 1) {
    open_pages_.assign(placement_.shards, kInvalidPageId);
  }
}

size_t HeapFile::ShardOf(const Tuple& tuple) const {
  if (tuple.empty()) return 0;
  return StableHash(tuple[0].ToString()) % placement_.shards;
}

Result<Rid> HeapFile::Append(const Tuple& tuple) {
  scratch_.clear();
  SerializeTuple(tuple, &scratch_);
  assert(scratch_.size() < kPageSize - 64 && "tuple larger than a page");

  if (placement_.shards > 1) {
    // Hash-sharded: each shard keeps its own open page, pinned to its
    // home node.
    size_t shard = ShardOf(tuple);
    page_id_t open = open_pages_[shard];
    if (open != kInvalidPageId) {
      auto page = pool_->FetchPage(open);
      if (!page.ok()) return page.status();
      int slot = (*page)->Insert(scratch_.data(),
                                 static_cast<uint16_t>(scratch_.size()));
      pool_->UnpinPage(open, slot >= 0);
      if (slot >= 0) {
        tuple_count_++;
        return Rid{open, static_cast<uint16_t>(slot)};
      }
    }
    PageAllocOptions options;
    // Address the store by shard slot, not node: the slot's home node
    // moves with membership changes (join rebalancing, decommission)
    // and the store resolves the current owner.
    options.shard_hint = static_cast<uint32_t>(shard);
    options.replicated = placement_.replicated;
    auto fresh = pool_->NewPage(options);
    if (!fresh.ok()) return fresh.status();
    auto [page_id, page] = *fresh;
    int slot =
        page->Insert(scratch_.data(), static_cast<uint16_t>(scratch_.size()));
    pool_->UnpinPage(page_id, true);
    if (slot < 0) {
      return Status::Internal("tuple does not fit in an empty page");
    }
    pages_.push_back(page_id);
    open_pages_[shard] = page_id;
    tuple_count_++;
    return Rid{page_id, static_cast<uint16_t>(slot)};
  }

  // Single shard: try the last page first; allocate a new one when it
  // is full.
  if (!pages_.empty()) {
    page_id_t last = pages_.back();
    auto page = pool_->FetchPage(last);
    if (!page.ok()) return page.status();
    int slot = (*page)->Insert(scratch_.data(),
                               static_cast<uint16_t>(scratch_.size()));
    pool_->UnpinPage(last, slot >= 0);
    if (slot >= 0) {
      tuple_count_++;
      return Rid{last, static_cast<uint16_t>(slot)};
    }
  }
  PageAllocOptions options;
  options.replicated = placement_.replicated;
  if (!pages_.empty()) {
    // Keep an unsharded heap whole on the node of its first page, so a
    // matview either fully survives a node loss or is fully gone.
    options.node_hint = PageNode(pages_.front());
  } else {
    // First page: honour an explicit home (kAnyNode = the default
    // round-robin, which is also the single-node path).
    options.node_hint = placement_.home_node;
  }
  auto fresh = pool_->NewPage(options);
  if (!fresh.ok()) return fresh.status();
  auto [page_id, page] = *fresh;
  int slot =
      page->Insert(scratch_.data(), static_cast<uint16_t>(scratch_.size()));
  pool_->UnpinPage(page_id, true);
  if (slot < 0) {
    return Status::Internal("tuple does not fit in an empty page");
  }
  pages_.push_back(page_id);
  tuple_count_++;
  return Rid{page_id, static_cast<uint16_t>(slot)};
}

Result<Tuple> HeapFile::Fetch(const Rid& rid) const {
  auto page = pool_->FetchPage(rid.page_id);
  if (!page.ok()) return page.status();
  uint16_t len = 0;
  const uint8_t* rec = (*page)->Record(rid.slot, &len);
  Tuple tuple = DeserializeTuple(rec, len);
  pool_->UnpinPage(rid.page_id, false);
  return tuple;
}

void HeapFile::Drop(PageStore* disk) {
  for (page_id_t page_id : pages_) {
    pool_->EvictPage(page_id);
    // Best-effort: a page already gone (double drop) is not an error
    // worth failing a drop over.
    (void)disk->DeallocatePage(page_id);
  }
  pages_.clear();
  if (!open_pages_.empty()) {
    open_pages_.assign(open_pages_.size(), kInvalidPageId);
  }
  tuple_count_ = 0;
}

void HeapFile::Restore(std::vector<page_id_t> pages, uint64_t tuple_count) {
  pages_ = std::move(pages);
  tuple_count_ = tuple_count;
  // Sharded heaps reopen every shard: page fill is not tracked per
  // shard across recovery, so post-restore appends start fresh pages.
  if (!open_pages_.empty()) {
    open_pages_.assign(open_pages_.size(), kInvalidPageId);
  }
}

Result<std::optional<Tuple>> HeapFile::Iterator::Next() {
  for (;;) {
    if (page_index_ >= file_->pages_.size()) return std::optional<Tuple>();
    if (!page_loaded_) {
      auto page = pool_->FetchPage(file_->pages_[page_index_]);
      if (!page.ok()) return page.status();
      guard_ = PageGuard(pool_, file_->pages_[page_index_], *page);
      page_loaded_ = true;
      slot_ = 0;
    }
    const Page* page = guard_.get();
    if (slot_ < page->slot_count()) {
      uint16_t len = 0;
      const uint8_t* rec = page->Record(slot_, &len);
      slot_++;
      return std::optional<Tuple>(DeserializeTuple(rec, len));
    }
    guard_.Release();
    page_loaded_ = false;
    page_index_++;
  }
}

Result<bool> HeapFile::Iterator::NextPage(std::vector<Tuple>* out) {
  if (page_index_ >= file_->pages_.size()) return false;
  if (!page_loaded_) {
    auto page = pool_->FetchPage(file_->pages_[page_index_]);
    if (!page.ok()) return page.status();
    guard_ = PageGuard(pool_, file_->pages_[page_index_], *page);
    page_loaded_ = true;
    slot_ = 0;
  }
  const Page* page = guard_.get();
  uint16_t nslots = page->slot_count();
  out->reserve(out->size() + (nslots - slot_));
  for (; slot_ < nslots; slot_++) {
    uint16_t len = 0;
    const uint8_t* rec = page->Record(slot_, &len);
    out->push_back(DeserializeTuple(rec, len));
  }
  guard_.Release();
  page_loaded_ = false;
  page_index_++;
  return true;
}

}  // namespace sqp
