#include "storage/heap_file.h"

#include <cassert>

namespace sqp {

Result<Rid> HeapFile::Append(const Tuple& tuple) {
  scratch_.clear();
  SerializeTuple(tuple, &scratch_);
  assert(scratch_.size() < kPageSize - 64 && "tuple larger than a page");

  // Try the last page first; allocate a new one when it is full.
  if (!pages_.empty()) {
    page_id_t last = pages_.back();
    auto page = pool_->FetchPage(last);
    if (!page.ok()) return page.status();
    int slot = (*page)->Insert(scratch_.data(),
                               static_cast<uint16_t>(scratch_.size()));
    pool_->UnpinPage(last, slot >= 0);
    if (slot >= 0) {
      tuple_count_++;
      return Rid{last, static_cast<uint16_t>(slot)};
    }
  }
  auto fresh = pool_->NewPage();
  if (!fresh.ok()) return fresh.status();
  auto [page_id, page] = *fresh;
  int slot =
      page->Insert(scratch_.data(), static_cast<uint16_t>(scratch_.size()));
  pool_->UnpinPage(page_id, true);
  if (slot < 0) {
    return Status::Internal("tuple does not fit in an empty page");
  }
  pages_.push_back(page_id);
  tuple_count_++;
  return Rid{page_id, static_cast<uint16_t>(slot)};
}

Result<Tuple> HeapFile::Fetch(const Rid& rid) const {
  auto page = pool_->FetchPage(rid.page_id);
  if (!page.ok()) return page.status();
  uint16_t len = 0;
  const uint8_t* rec = (*page)->Record(rid.slot, &len);
  Tuple tuple = DeserializeTuple(rec, len);
  pool_->UnpinPage(rid.page_id, false);
  return tuple;
}

void HeapFile::Drop(DiskManager* disk) {
  for (page_id_t page_id : pages_) {
    pool_->EvictPage(page_id);
    // Best-effort: a page already gone (double drop) is not an error
    // worth failing a drop over.
    (void)disk->DeallocatePage(page_id);
  }
  pages_.clear();
  tuple_count_ = 0;
}

void HeapFile::Restore(std::vector<page_id_t> pages, uint64_t tuple_count) {
  pages_ = std::move(pages);
  tuple_count_ = tuple_count;
}

Result<std::optional<Tuple>> HeapFile::Iterator::Next() {
  for (;;) {
    if (page_index_ >= file_->pages_.size()) return std::optional<Tuple>();
    if (!page_loaded_) {
      auto page = pool_->FetchPage(file_->pages_[page_index_]);
      if (!page.ok()) return page.status();
      guard_ = PageGuard(pool_, file_->pages_[page_index_], *page);
      page_loaded_ = true;
      slot_ = 0;
    }
    const Page* page = guard_.get();
    if (slot_ < page->slot_count()) {
      uint16_t len = 0;
      const uint8_t* rec = page->Record(slot_, &len);
      slot_++;
      return std::optional<Tuple>(DeserializeTuple(rec, len));
    }
    guard_.Release();
    page_loaded_ = false;
    page_index_++;
  }
}

Result<bool> HeapFile::Iterator::NextPage(std::vector<Tuple>* out) {
  if (page_index_ >= file_->pages_.size()) return false;
  if (!page_loaded_) {
    auto page = pool_->FetchPage(file_->pages_[page_index_]);
    if (!page.ok()) return page.status();
    guard_ = PageGuard(pool_, file_->pages_[page_index_], *page);
    page_loaded_ = true;
    slot_ = 0;
  }
  const Page* page = guard_.get();
  uint16_t nslots = page->slot_count();
  out->reserve(out->size() + (nslots - slot_));
  for (; slot_ < nslots; slot_++) {
    uint16_t len = 0;
    const uint8_t* rec = page->Record(slot_, &len);
    out->push_back(DeserializeTuple(rec, len));
  }
  guard_.Release();
  page_loaded_ = false;
  page_index_++;
  return true;
}

}  // namespace sqp
