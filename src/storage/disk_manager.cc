#include "storage/disk_manager.h"

#include <cassert>

#include "common/fault_injector.h"

namespace sqp {

Result<page_id_t> DiskManager::AllocatePage() {
  SQP_INJECT_FAULT("disk.allocate");
  store_.push_back(std::make_unique<Page>());
  live_.push_back(true);
  live_pages_++;
  return static_cast<page_id_t>(store_.size() - 1);
}

void DiskManager::DeallocatePage(page_id_t page_id) {
  assert(page_id < store_.size());
  if (live_[page_id]) {
    live_[page_id] = false;
    live_pages_--;
    store_[page_id].reset();  // release the memory immediately
  }
}

Status DiskManager::ReadPage(page_id_t page_id, Page* out) {
  assert(page_id < store_.size() && live_[page_id]);
  SQP_INJECT_FAULT("disk.read");
  std::memcpy(out->raw(), store_[page_id]->raw(), kPageSize);
  meter_->ChargeBlockRead();
  return Status::OK();
}

Status DiskManager::WritePage(page_id_t page_id, const Page& in) {
  assert(page_id < store_.size() && live_[page_id]);
  SQP_INJECT_FAULT("disk.write");
  std::memcpy(store_[page_id]->raw(), in.raw(), kPageSize);
  meter_->ChargeBlockWrite();
  return Status::OK();
}

}  // namespace sqp
