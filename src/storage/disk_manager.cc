#include "storage/disk_manager.h"

#include <cassert>

namespace sqp {

page_id_t DiskManager::AllocatePage() {
  store_.push_back(std::make_unique<Page>());
  live_.push_back(true);
  live_pages_++;
  return store_.size() - 1;
}

void DiskManager::DeallocatePage(page_id_t page_id) {
  assert(page_id < store_.size());
  if (live_[page_id]) {
    live_[page_id] = false;
    live_pages_--;
    store_[page_id].reset();  // release the memory immediately
  }
}

void DiskManager::ReadPage(page_id_t page_id, Page* out) {
  assert(page_id < store_.size() && live_[page_id]);
  std::memcpy(out->raw(), store_[page_id]->raw(), kPageSize);
  meter_->ChargeBlockRead();
}

void DiskManager::WritePage(page_id_t page_id, const Page& in) {
  assert(page_id < store_.size() && live_[page_id]);
  std::memcpy(store_[page_id]->raw(), in.raw(), kPageSize);
  meter_->ChargeBlockWrite();
}

}  // namespace sqp
