#include "storage/disk_manager.h"

#include <string>

#include "common/checksum.h"
#include "common/fault_injector.h"
#include "common/metrics_registry.h"

namespace sqp {

namespace {
Status CrashedError() {
  return Status::DataLoss("disk crashed; Reopen() required");
}
}  // namespace

DiskManager::DiskManager(CostMeter* meter, std::string fault_prefix,
                         std::string metric_prefix, uint32_t node)
    : meter_(meter), node_(node) {
  point_allocate_ = fault_prefix + ".allocate";
  point_read_ = fault_prefix + ".read";
  point_write_ = fault_prefix + ".write";
  point_crash_ = fault_prefix + ".crash";
  point_sync_delay_ = fault_prefix + ".sync_delay";
  FaultInjector& injector = FaultInjector::Global();
  injector.RegisterPoint(point_allocate_);
  injector.RegisterPoint(point_read_);
  injector.RegisterPoint(point_write_);
  injector.RegisterPoint(point_crash_);
  injector.RegisterPoint(point_sync_delay_);
  MetricsRegistry& registry = MetricsRegistry::Global();
  m_reads_ = registry.GetCounter(metric_prefix + ".reads");
  m_writes_ = registry.GetCounter(metric_prefix + ".writes");
  m_syncs_ = registry.GetCounter(metric_prefix + ".syncs");
  m_checksum_failures_ =
      registry.GetCounter(metric_prefix + ".checksum_failures");
  m_torn_pages_ = registry.GetCounter(metric_prefix + ".torn_pages");
  m_crashes_ = registry.GetCounter(metric_prefix + ".crashes");
}

Result<page_id_t> DiskManager::AllocatePage(const PageAllocOptions&) {
  if (crashed_) return CrashedError();
  SQP_INJECT_FAULT(point_allocate_);
  store_.push_back(std::make_unique<Page>());
  checksums_.push_back(Crc32(store_.back()->raw(), kPageSize));
  live_.push_back(true);
  live_pages_++;
  return MakePageId(node_, static_cast<page_id_t>(store_.size() - 1));
}

Status DiskManager::DeallocatePage(page_id_t page_id) {
  if (crashed_) return CrashedError();
  page_id_t local = PageLocal(page_id);
  if (!OwnsId(page_id) || local >= store_.size()) {
    return Status::InvalidArgument("deallocate of unallocated page " +
                                   std::to_string(page_id));
  }
  if (!live_[local]) {
    return Status::NotFound("deallocate of dead page " +
                            std::to_string(page_id));
  }
  live_[local] = false;
  live_pages_--;
  store_[local].reset();  // release the memory immediately
  unsynced_.erase(local);
  if (last_unsynced_write_ == local) {
    last_unsynced_write_ = kInvalidPageId;
  }
  return Status::OK();
}

Status DiskManager::ReadPage(page_id_t page_id, Page* out) {
  if (crashed_) return CrashedError();
  page_id_t local = PageLocal(page_id);
  if (!OwnsId(page_id) || local >= store_.size()) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(page_id));
  }
  if (!live_[local]) {
    return Status::NotFound("read of dead page " + std::to_string(page_id));
  }
  SQP_INJECT_FAULT(point_read_);
  meter_->ChargeBlockRead();
  m_reads_->Increment();
  auto cached = unsynced_.find(local);
  if (cached != unsynced_.end()) {
    // Unsynced writes are served from the cache (OS page cache
    // semantics); they have no durable checksum yet.
    std::memcpy(out->raw(), cached->second->raw(), kPageSize);
    return Status::OK();
  }
  const Page& durable = *store_[local];
  if (Crc32(durable.raw(), kPageSize) != checksums_[local]) {
    checksum_failures_++;
    m_checksum_failures_->Increment();
    return Status::DataLoss("torn page " + std::to_string(page_id) +
                            ": checksum mismatch");
  }
  std::memcpy(out->raw(), durable.raw(), kPageSize);
  return Status::OK();
}

Status DiskManager::PeekPage(page_id_t page_id, Page* out) {
  // Mirror of ReadPage minus every side effect: no fault injection, no
  // block-read charge, no metric bumps, no checksum-failure counting.
  // The accountable read of this page is replayed by the foreground
  // thread later; this path only feeds worker lookahead (DESIGN.md §15).
  if (crashed_) return CrashedError();
  page_id_t local = PageLocal(page_id);
  if (!OwnsId(page_id) || local >= store_.size()) {
    return Status::InvalidArgument("peek of unallocated page " +
                                   std::to_string(page_id));
  }
  if (!live_[local]) {
    return Status::NotFound("peek of dead page " + std::to_string(page_id));
  }
  auto cached = unsynced_.find(local);
  if (cached != unsynced_.end()) {
    std::memcpy(out->raw(), cached->second->raw(), kPageSize);
    return Status::OK();
  }
  const Page& durable = *store_[local];
  if (Crc32(durable.raw(), kPageSize) != checksums_[local]) {
    return Status::DataLoss("torn page " + std::to_string(page_id) +
                            ": checksum mismatch");
  }
  std::memcpy(out->raw(), durable.raw(), kPageSize);
  return Status::OK();
}

Status DiskManager::WritePage(page_id_t page_id, const Page& in) {
  if (crashed_) return CrashedError();
  page_id_t local = PageLocal(page_id);
  if (!OwnsId(page_id) || local >= store_.size()) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(page_id));
  }
  if (!live_[local]) {
    return Status::NotFound("write of dead page " + std::to_string(page_id));
  }
  SQP_INJECT_FAULT(point_write_);
  if (FaultInjector::Global().armed()) {
    Status crash = FaultInjector::Global().Check(point_crash_);
    if (!crash.ok()) {
      // The machine dies with this write in flight: it becomes the tear
      // candidate, everything unsynced is lost.
      auto torn = std::make_unique<Page>();
      std::memcpy(torn->raw(), in.raw(), kPageSize);
      unsynced_[local] = std::move(torn);
      last_unsynced_write_ = local;
      SimulateCrash();
      return crash;
    }
  }
  auto cached = unsynced_.find(local);
  if (cached == unsynced_.end()) {
    cached = unsynced_.emplace(local, std::make_unique<Page>()).first;
  }
  std::memcpy(cached->second->raw(), in.raw(), kPageSize);
  last_unsynced_write_ = local;
  meter_->ChargeBlockWrite();
  m_writes_->Increment();
  return Status::OK();
}

void DiskManager::MakeDurable(page_id_t local_id, const Page& in) {
  std::memcpy(store_[local_id]->raw(), in.raw(), kPageSize);
  checksums_[local_id] = Crc32(in.raw(), kPageSize);
}

Status DiskManager::Sync() {
  if (crashed_) return CrashedError();
  if (FaultInjector::Global().armed()) {
    // A delayed fsync (slow device, contended node): every cached page
    // is charged a second time, but the barrier still completes.
    Status delayed = FaultInjector::Global().Check(point_sync_delay_);
    if (!delayed.ok()) {
      for (size_t i = 0; i < unsynced_.size(); i++) {
        meter_->ChargeBlockWrite();
      }
    }
  }
  while (!unsynced_.empty()) {
    auto it = unsynced_.begin();
    if (FaultInjector::Global().armed()) {
      Status crash = FaultInjector::Global().Check(point_crash_);
      if (!crash.ok()) {
        // Crash mid-fsync: this page becomes the tear candidate; the
        // pages already iterated past are durable, the rest are lost.
        last_unsynced_write_ = it->first;
        SimulateCrash();
        return crash;
      }
    }
    MakeDurable(it->first, *it->second);
    unsynced_.erase(it);
  }
  last_unsynced_write_ = kInvalidPageId;
  sync_count_++;
  m_syncs_->Increment();
  return Status::OK();
}

void DiskManager::SimulateCrash() {
  // Tear the most recent in-flight write: half of it reaches the durable
  // image, the checksum does not. (A page allocated after the last sync
  // tears against its zeroed initial image — equally detectable.)
  auto torn = unsynced_.find(last_unsynced_write_);
  if (torn != unsynced_.end() && live_[torn->first]) {
    std::memcpy(store_[torn->first]->raw(), torn->second->raw(),
                kPageSize / 2);
    if (Crc32(store_[torn->first]->raw(), kPageSize) !=
        checksums_[torn->first]) {
      torn_pages_++;
      m_torn_pages_->Increment();
    }
  }
  unsynced_.clear();
  last_unsynced_write_ = kInvalidPageId;
  crashed_ = true;
  m_crashes_->Increment();
}

void DiskManager::Restart() {
  unsynced_.clear();
  last_unsynced_write_ = kInvalidPageId;
  crashed_ = false;
}

std::vector<page_id_t> DiskManager::LivePages() const {
  std::vector<page_id_t> out;
  out.reserve(live_pages_);
  for (page_id_t id = 0; id < live_.size(); id++) {
    if (live_[id]) out.push_back(MakePageId(node_, id));
  }
  return out;
}

}  // namespace sqp
