#include "storage/sharded_router.h"

#include <algorithm>
#include <cassert>

#include "common/fault_injector.h"
#include "common/metrics_registry.h"

namespace sqp {

ShardedStorageRouter::ShardedStorageRouter(CostMeter* meter, size_t nodes,
                                           size_t replication_factor,
                                           bool balance_reads)
    : meter_(meter),
      replication_factor_(std::min<size_t>(replication_factor, 2)),
      balance_reads_(balance_reads),
      single_(nodes <= 1) {
  assert(nodes >= 1 && nodes <= kMaxStorageNodes &&
         "storage node count out of range");
  if (single_) {
    single_disk_ = std::make_unique<DiskManager>(meter_);
  } else {
    nodes_.reserve(nodes);
    for (size_t k = 0; k < nodes; k++) {
      nodes_.push_back(
          std::make_unique<StorageNode>(static_cast<uint32_t>(k), meter_));
    }
    // Twice as many shard slots as initial nodes, so a joining node can
    // take over whole slots (floor(slots/nodes) stays >= 1 for modest
    // growth) without re-hashing any rows.
    shard_home_.resize(2 * nodes);
    for (size_t s = 0; s < shard_home_.size(); s++) {
      shard_home_[s] = s % nodes;
    }
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  m_replica_reads_ = registry.GetCounter("storage.node.replica_reads");
  m_degraded_writes_ = registry.GetCounter("storage.node.degraded_writes");
  m_kills_ = registry.GetCounter("storage.node.kills");
  m_replica_alloc_failures_ =
      registry.GetCounter("storage.node.replica_alloc_failures");
  m_reads_primary_ = registry.GetCounter("storage.node.reads_primary");
  m_reads_shadow_ = registry.GetCounter("storage.node.reads_shadow");
}

bool ShardedStorageRouter::NodeAlive(size_t k) const {
  if (single_) return true;
  return nodes_[k]->alive();
}

bool ShardedStorageRouter::NodeRetired(size_t k) const {
  if (single_) return false;
  return nodes_[k]->retired();
}

size_t ShardedStorageRouter::alive_nodes() const {
  if (single_) return 1;
  size_t alive = 0;
  for (const auto& node : nodes_) {
    if (node->alive()) alive++;
  }
  return alive;
}

size_t ShardedStorageRouter::killed_nodes() const {
  if (single_) return 0;
  size_t killed = 0;
  for (const auto& node : nodes_) {
    if (node->killed()) killed++;
  }
  return killed;
}

size_t ShardedStorageRouter::NextAlive(size_t start, size_t exclude) const {
  size_t n = nodes_.size();
  for (size_t i = 0; i < n; i++) {
    size_t k = (start + i) % n;
    if (k != exclude && nodes_[k]->alive()) return k;
  }
  return n;
}

size_t ShardedStorageRouter::AddNode() {
  assert(!single_ && "cannot add nodes to a single-disk store");
  assert(nodes_.size() < kMaxStorageNodes);
  size_t k = nodes_.size();
  nodes_.push_back(
      std::make_unique<StorageNode>(static_cast<uint32_t>(k), meter_));
  return k;
}

Status ShardedStorageRouter::RetireNode(size_t k) {
  if (single_ || k >= nodes_.size()) {
    return Status::InvalidArgument("no such storage node");
  }
  if (nodes_[k]->retired()) return Status::OK();
  if (nodes_[k]->killed()) {
    return Status::FailedPrecondition("cannot retire dead node " +
                                      std::to_string(k));
  }
  for (const auto& [global, meta] : meta_) {
    if (meta.primary_node == k || (meta.replicated && meta.replica_node == k)) {
      return Status::FailedPrecondition(
          "node " + std::to_string(k) + " still holds placements");
    }
  }
  for (size_t s = 0; s < shard_home_.size(); s++) {
    if (shard_home_[s] == k) {
      return Status::FailedPrecondition(
          "node " + std::to_string(k) + " still homes shard " +
          std::to_string(s));
    }
  }
  if (nodes_[k]->disk().live_pages() != 0) {
    return Status::FailedPrecondition(
        "node " + std::to_string(k) + " still holds physical pages");
  }
  nodes_[k]->Decommission();
  return Status::OK();
}

void ShardedStorageRouter::SetShardHome(size_t s, size_t node) {
  assert(s < shard_home_.size());
  assert(node < nodes_.size());
  shard_home_[s] = node;
}

std::vector<size_t> ShardedStorageRouter::ShardsHomedAt(size_t k) const {
  std::vector<size_t> out;
  for (size_t s = 0; s < shard_home_.size(); s++) {
    if (shard_home_[s] == k) out.push_back(s);
  }
  return out;
}

Result<page_id_t> ShardedStorageRouter::AllocatePage(
    const PageAllocOptions& options) {
  if (single_) return single_disk_->AllocatePage(options);

  size_t primary;
  if (options.shard_hint != PageAllocOptions::kNoShard &&
      options.shard_hint < shard_home_.size()) {
    // Sharded placement: the slot's current home node. The home is
    // re-pointed by rebalancing and repair, so losing a node stalls the
    // shard only until Repair() re-homes it.
    primary = shard_home_[options.shard_hint];
    if (!nodes_[primary]->alive()) {
      return Status::DataLoss("allocation on lost node " +
                              std::to_string(primary));
    }
  } else if (options.node_hint != PageAllocOptions::kAnyNode &&
             options.node_hint < nodes_.size()) {
    // Pinned placement (node-sticky matviews): losing that node means
    // this heap cannot grow until it is re-materialized elsewhere.
    primary = options.node_hint;
    if (!nodes_[primary]->alive()) {
      return Status::DataLoss("allocation on lost node " +
                              std::to_string(primary));
    }
  } else {
    primary = NextAlive(next_rr_, nodes_.size());
    if (primary >= nodes_.size()) {
      return Status::DataLoss("no storage node alive");
    }
    next_rr_ = (primary + 1) % nodes_.size();
  }
  SQP_RETURN_IF_ERROR(nodes_[primary]->CheckReachable());
  auto allocated = nodes_[primary]->disk().AllocatePage();
  if (!allocated.ok()) return allocated.status();
  page_id_t global = *allocated;

  PageMeta meta;
  meta.primary_node = static_cast<uint32_t>(primary);
  meta.primary_local = PageLocal(global);
  if (options.shard_hint != PageAllocOptions::kNoShard &&
      options.shard_hint < shard_home_.size()) {
    meta.shard = options.shard_hint;
  }
  if (options.replicated && replication_factor_ >= 2) {
    meta.wants_replica = true;
    size_t replica = NextAlive((primary + 1) % nodes_.size(), primary);
    if (replica < nodes_.size()) {
      auto shadow = nodes_[replica]->disk().AllocatePage();
      if (shadow.ok()) {
        meta.replicated = true;
        meta.replica_node = static_cast<uint32_t>(replica);
        meta.replica_local = PageLocal(*shadow);
      } else {
        // Degrade to a single copy rather than failing the allocation;
        // a later Repair() pass completes the replica.
        m_replica_alloc_failures_->Increment();
      }
    } else {
      m_replica_alloc_failures_->Increment();
    }
  }
  meta_[global] = meta;
  return global;
}

Status ShardedStorageRouter::DeallocatePage(page_id_t page_id) {
  if (single_) return single_disk_->DeallocatePage(page_id);
  auto it = meta_.find(page_id);
  if (it == meta_.end()) {
    return Status::NotFound("deallocate of unknown page " +
                            std::to_string(page_id));
  }
  const PageMeta meta = it->second;
  meta_.erase(it);
  Status primary_status = Status::OK();
  if (nodes_[meta.primary_node]->alive()) {
    primary_status =
        nodes_[meta.primary_node]->disk().DeallocatePage(PrimaryPhys(meta));
  }
  if (meta.replicated && nodes_[meta.replica_node]->alive()) {
    // The shadow dies with the logical page; its own status is
    // secondary (the copy on a crashed node is cleaned after Restart).
    (void)nodes_[meta.replica_node]->disk().DeallocatePage(ReplicaPhys(meta));
  }
  return primary_status;
}

Status ShardedStorageRouter::TryRead(size_t node, page_id_t phys, Page* out) {
  SQP_RETURN_IF_ERROR(nodes_[node]->CheckReachable());
  return nodes_[node]->disk().ReadPage(phys, out);
}

Status ShardedStorageRouter::ReadPage(page_id_t page_id, Page* out) {
  if (single_) return single_disk_->ReadPage(page_id, out);
  auto it = meta_.find(page_id);
  if (it == meta_.end()) {
    return Status::NotFound("read of unknown page " +
                            std::to_string(page_id));
  }
  const PageMeta& meta = it->second;
  // Deterministic read load-balancing: when both copies are healthy,
  // alternate between them so replicated read traffic splits evenly
  // and replays stay bit-identical (the cursor is session state, not
  // randomness).
  bool shadow_first = false;
  if (balance_reads_ && meta.replicated && nodes_[meta.primary_node]->alive() &&
      nodes_[meta.replica_node]->alive()) {
    shadow_first = (read_rr_++ % 2) == 1;
  }
  if (shadow_first) {
    Status shadow_status = TryRead(meta.replica_node, ReplicaPhys(meta), out);
    if (shadow_status.ok()) {
      reads_shadow_++;
      m_reads_shadow_->Increment();
      return shadow_status;
    }
    // The chosen copy faulted: fall back to the primary.
    Status primary_status = TryRead(meta.primary_node, PrimaryPhys(meta), out);
    if (primary_status.ok()) {
      reads_primary_++;
      m_reads_primary_->Increment();
    }
    return primary_status;
  }
  Status primary_status = TryRead(meta.primary_node, PrimaryPhys(meta), out);
  if (primary_status.ok()) {
    reads_primary_++;
    m_reads_primary_->Increment();
    return primary_status;
  }
  if (!meta.replicated) return primary_status;
  // Failover: serve the shadow copy (it received every write, so its
  // bytes — and checksum — match the primary's last synced state).
  Status shadow_status = TryRead(meta.replica_node, ReplicaPhys(meta), out);
  if (shadow_status.ok()) {
    replica_reads_++;
    m_replica_reads_->Increment();
    reads_shadow_++;
    m_reads_shadow_->Increment();
  }
  return shadow_status;
}

Status ShardedStorageRouter::PeekPage(page_id_t page_id, Page* out) {
  if (single_) return single_disk_->PeekPage(page_id, out);
  auto it = meta_.find(page_id);
  if (it == meta_.end()) {
    return Status::NotFound("peek of unknown page " +
                            std::to_string(page_id));
  }
  // Unlike ReadPage this never advances read_rr_, bumps a counter, or
  // walks a reachability fault point: any copy's bytes serve the
  // lookahead, and the replayed ReadPage decides — with full accounting
  // — which copy the query is deemed to have read.
  const PageMeta& meta = it->second;
  if (nodes_[meta.primary_node]->alive()) {
    Status primary =
        nodes_[meta.primary_node]->disk().PeekPage(PrimaryPhys(meta), out);
    if (primary.ok() || !meta.replicated ||
        !nodes_[meta.replica_node]->alive()) {
      return primary;
    }
  } else if (!meta.replicated || !nodes_[meta.replica_node]->alive()) {
    return Status::DataLoss("peek of page " + std::to_string(page_id) +
                            ": every copy lost");
  }
  return nodes_[meta.replica_node]->disk().PeekPage(ReplicaPhys(meta), out);
}

Status ShardedStorageRouter::WritePage(page_id_t page_id, const Page& in) {
  if (single_) return single_disk_->WritePage(page_id, in);
  auto it = meta_.find(page_id);
  if (it == meta_.end()) {
    return Status::NotFound("write of unknown page " +
                            std::to_string(page_id));
  }
  const PageMeta& meta = it->second;
  if (nodes_[meta.primary_node]->alive()) {
    // Transient primary failures (partition, injected I/O error) must
    // fail the write: letting the shadow advance while a *reachable
    // later* primary stays stale would serve old bytes on the next
    // read. Only a permanently lost primary degrades to shadow-only.
    SQP_RETURN_IF_ERROR(nodes_[meta.primary_node]->CheckReachable());
    SQP_RETURN_IF_ERROR(
        nodes_[meta.primary_node]->disk().WritePage(PrimaryPhys(meta), in));
    if (!meta.replicated || !nodes_[meta.replica_node]->alive()) {
      return Status::OK();
    }
    SQP_RETURN_IF_ERROR(nodes_[meta.replica_node]->CheckReachable());
    return nodes_[meta.replica_node]->disk().WritePage(ReplicaPhys(meta), in);
  }
  if (!meta.replicated || !nodes_[meta.replica_node]->alive()) {
    return Status::DataLoss("write of page " + std::to_string(page_id) +
                            ": every copy lost");
  }
  SQP_RETURN_IF_ERROR(nodes_[meta.replica_node]->CheckReachable());
  SQP_RETURN_IF_ERROR(
      nodes_[meta.replica_node]->disk().WritePage(ReplicaPhys(meta), in));
  // Primary lost, shadow took the write: degraded but not lost.
  degraded_writes_++;
  m_degraded_writes_->Increment();
  return Status::OK();
}

Status ShardedStorageRouter::Sync() {
  if (single_) return single_disk_->Sync();
  for (auto& node : nodes_) {
    if (!node->alive()) continue;
    SQP_RETURN_IF_ERROR(node->CheckReachable());
    SQP_RETURN_IF_ERROR(node->disk().Sync());
  }
  return Status::OK();
}

std::vector<page_id_t> ShardedStorageRouter::LivePages() const {
  if (single_) return single_disk_->LivePages();
  std::vector<page_id_t> out;
  out.reserve(meta_.size());
  for (const auto& [global, meta] : meta_) {
    if (PageAvailable(global)) out.push_back(global);
  }
  return out;
}

bool ShardedStorageRouter::PageAvailable(page_id_t page_id) const {
  if (single_) return true;
  auto it = meta_.find(page_id);
  if (it == meta_.end()) return false;
  const PageMeta& meta = it->second;
  if (nodes_[meta.primary_node]->alive()) return true;
  return meta.replicated && nodes_[meta.replica_node]->alive();
}

Result<ShardedStorageRouter::StagedCopy> ShardedStorageRouter::StageCopy(
    page_id_t global, size_t to_node, bool as_primary) {
  if (single_) {
    return Status::NotSupported("single-disk store has no copies to move");
  }
  auto it = meta_.find(global);
  if (it == meta_.end()) {
    return Status::NotFound("stage copy of unknown page " +
                            std::to_string(global));
  }
  if (to_node >= nodes_.size() || !nodes_[to_node]->alive()) {
    return Status::InvalidArgument("stage copy to unavailable node " +
                                   std::to_string(to_node));
  }
  SQP_RETURN_IF_ERROR(nodes_[to_node]->CheckReachable());
  FaultInjector& injector = FaultInjector::Global();
  if (injector.armed()) {
    SQP_RETURN_IF_ERROR(injector.Check(nodes_[to_node]->rebalance_point()));
  }
  Page page;
  page.Init();
  SQP_RETURN_IF_ERROR(ReadPage(global, &page));
  auto phys = nodes_[to_node]->disk().AllocatePage();
  if (!phys.ok()) return phys.status();
  Status written = nodes_[to_node]->disk().WritePage(*phys, page);
  if (!written.ok()) {
    (void)nodes_[to_node]->disk().DeallocatePage(*phys);
    return written;
  }
  StagedCopy copy;
  copy.global = global;
  copy.node = static_cast<uint32_t>(to_node);
  copy.local = PageLocal(*phys);
  copy.as_primary = as_primary;
  return copy;
}

Status ShardedStorageRouter::CommitCopy(const StagedCopy& copy) {
  auto it = meta_.find(copy.global);
  if (it == meta_.end()) {
    return Status::NotFound("commit copy of unknown page " +
                            std::to_string(copy.global));
  }
  PageMeta& meta = it->second;
  if (copy.as_primary) {
    if (nodes_[meta.primary_node]->alive() &&
        !(meta.primary_node == copy.node && meta.primary_local == copy.local)) {
      (void)nodes_[meta.primary_node]->disk().DeallocatePage(
          PrimaryPhys(meta));
    }
    meta.primary_node = copy.node;
    meta.primary_local = copy.local;
  } else {
    if (meta.replicated && nodes_[meta.replica_node]->alive() &&
        !(meta.replica_node == copy.node && meta.replica_local == copy.local)) {
      (void)nodes_[meta.replica_node]->disk().DeallocatePage(
          ReplicaPhys(meta));
    }
    meta.replicated = true;
    meta.wants_replica = true;
    meta.replica_node = copy.node;
    meta.replica_local = copy.local;
  }
  return Status::OK();
}

void ShardedStorageRouter::AbortCopy(const StagedCopy& copy) {
  if (copy.node >= nodes_.size() || !nodes_[copy.node]->alive()) return;
  (void)nodes_[copy.node]->disk().DeallocatePage(
      MakePageId(copy.node, copy.local));
}

std::vector<ShardedStorageRouter::RepairNeed>
ShardedStorageRouter::PagesNeedingRepair() const {
  std::vector<RepairNeed> out;
  if (single_) return out;
  for (const auto& [global, meta] : meta_) {
    const bool primary_up = nodes_[meta.primary_node]->alive();
    const bool shadow_up = meta.replicated && nodes_[meta.replica_node]->alive();
    if (!primary_up && shadow_up) {
      out.push_back(RepairNeed{global, /*primary_dead=*/true});
    } else if (primary_up && meta.wants_replica && !shadow_up) {
      out.push_back(RepairNeed{global, /*primary_dead=*/false});
    }
    // Both copies down: the page is lost, not repairable (Reopen
    // surfaces or drops it).
  }
  return out;
}

uint64_t ShardedStorageRouter::ShadowOnlyPages() const {
  if (single_) return 0;
  uint64_t count = 0;
  for (const auto& [global, meta] : meta_) {
    if (!nodes_[meta.primary_node]->alive() && meta.replicated &&
        nodes_[meta.replica_node]->alive()) {
      count++;
    }
  }
  return count;
}

std::vector<page_id_t> ShardedStorageRouter::PagesWithPrimaryOn(
    size_t k) const {
  std::vector<page_id_t> out;
  if (single_) return out;
  for (const auto& [global, meta] : meta_) {
    if (meta.primary_node == k) out.push_back(global);
  }
  return out;
}

std::vector<page_id_t> ShardedStorageRouter::PagesWithReplicaOn(
    size_t k) const {
  std::vector<page_id_t> out;
  if (single_) return out;
  for (const auto& [global, meta] : meta_) {
    if (meta.replicated && meta.replica_node == k) out.push_back(global);
  }
  return out;
}

std::vector<page_id_t> ShardedStorageRouter::PagesInShard(size_t s) const {
  std::vector<page_id_t> out;
  if (single_) return out;
  for (const auto& [global, meta] : meta_) {
    if (meta.shard == s) out.push_back(global);
  }
  return out;
}

uint32_t ShardedStorageRouter::PageShard(page_id_t global) const {
  auto it = meta_.find(global);
  return it == meta_.end() ? PageAllocOptions::kNoShard : it->second.shard;
}

uint32_t ShardedStorageRouter::PagePrimaryNode(page_id_t global) const {
  auto it = meta_.find(global);
  return it == meta_.end() ? PageAllocOptions::kAnyNode
                           : it->second.primary_node;
}

uint32_t ShardedStorageRouter::PageReplicaNode(page_id_t global) const {
  auto it = meta_.find(global);
  if (it == meta_.end() || !it->second.replicated) {
    return PageAllocOptions::kAnyNode;
  }
  return it->second.replica_node;
}

uint64_t ShardedStorageRouter::CollectPhysicalOrphans() {
  if (single_) return 0;
  uint64_t collected = 0;
  for (size_t k = 0; k < nodes_.size(); k++) {
    if (nodes_[k]->killed()) continue;
    std::vector<page_id_t> expected;
    for (const auto& [global, meta] : meta_) {
      if (meta.primary_node == k) expected.push_back(meta.primary_local);
      if (meta.replicated && meta.replica_node == k) {
        expected.push_back(meta.replica_local);
      }
    }
    std::sort(expected.begin(), expected.end());
    for (page_id_t phys : nodes_[k]->disk().LivePages()) {
      if (!std::binary_search(expected.begin(), expected.end(),
                              PageLocal(phys))) {
        (void)nodes_[k]->disk().DeallocatePage(phys);
        collected++;
      }
    }
  }
  return collected;
}

void ShardedStorageRouter::KillNode(size_t k) {
  if (single_) return;  // a single-node store has no node to lose
  if (!nodes_[k]->alive()) return;
  nodes_[k]->Kill();
  m_kills_->Increment();
}

void ShardedStorageRouter::SimulateCrash() {
  if (single_) {
    single_disk_->SimulateCrash();
    return;
  }
  for (auto& node : nodes_) {
    if (!node->killed()) node->disk().SimulateCrash();
  }
}

void ShardedStorageRouter::Restart() {
  if (single_) {
    single_disk_->Restart();
    return;
  }
  for (auto& node : nodes_) {
    if (!node->killed()) node->disk().Restart();
  }
}

bool ShardedStorageRouter::has_crashed() const {
  if (single_) return single_disk_->has_crashed();
  for (const auto& node : nodes_) {
    if (!node->killed() && node->disk().has_crashed()) return true;
  }
  return false;
}

uint64_t ShardedStorageRouter::live_pages() const {
  if (single_) return single_disk_->live_pages();
  uint64_t count = 0;
  for (const auto& [global, meta] : meta_) {
    if (PageAvailable(global)) count++;
  }
  return count;
}

uint64_t ShardedStorageRouter::allocated_pages() const {
  if (single_) return single_disk_->allocated_pages();
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->disk().allocated_pages();
  return total;
}

uint64_t ShardedStorageRouter::unsynced_pages() const {
  if (single_) return single_disk_->unsynced_pages();
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (!node->killed()) total += node->disk().unsynced_pages();
  }
  return total;
}

uint64_t ShardedStorageRouter::checksum_failures() const {
  if (single_) return single_disk_->checksum_failures();
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->disk().checksum_failures();
  return total;
}

uint64_t ShardedStorageRouter::torn_pages() const {
  if (single_) return single_disk_->torn_pages();
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->disk().torn_pages();
  return total;
}

uint64_t ShardedStorageRouter::sync_count() const {
  if (single_) return single_disk_->sync_count();
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->disk().sync_count();
  return total;
}

uint64_t ShardedStorageRouter::OrphanPhysicalPages() const {
  if (single_) return 0;
  uint64_t orphans = 0;
  for (size_t k = 0; k < nodes_.size(); k++) {
    if (nodes_[k]->killed()) continue;
    // Local ids this node should hold: primary placements pointing at
    // it plus shadows placed on it.
    std::vector<page_id_t> expected;
    for (const auto& [global, meta] : meta_) {
      if (meta.primary_node == k) expected.push_back(meta.primary_local);
      if (meta.replicated && meta.replica_node == k) {
        expected.push_back(meta.replica_local);
      }
    }
    std::sort(expected.begin(), expected.end());
    for (page_id_t global : nodes_[k]->disk().LivePages()) {
      if (!std::binary_search(expected.begin(), expected.end(),
                              PageLocal(global))) {
        orphans++;
      }
    }
  }
  return orphans;
}

}  // namespace sqp
