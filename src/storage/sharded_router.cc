#include "storage/sharded_router.h"

#include <algorithm>
#include <cassert>

#include "common/metrics_registry.h"

namespace sqp {

ShardedStorageRouter::ShardedStorageRouter(CostMeter* meter, size_t nodes,
                                           size_t replication_factor)
    : meter_(meter),
      replication_factor_(std::min<size_t>(replication_factor, 2)),
      single_(nodes <= 1) {
  assert(nodes >= 1 && nodes <= kMaxStorageNodes &&
         "storage node count out of range");
  if (single_) {
    single_disk_ = std::make_unique<DiskManager>(meter_);
  } else {
    nodes_.reserve(nodes);
    for (size_t k = 0; k < nodes; k++) {
      nodes_.push_back(
          std::make_unique<StorageNode>(static_cast<uint32_t>(k), meter_));
    }
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  m_replica_reads_ = registry.GetCounter("storage.node.replica_reads");
  m_degraded_writes_ = registry.GetCounter("storage.node.degraded_writes");
  m_kills_ = registry.GetCounter("storage.node.kills");
  m_replica_alloc_failures_ =
      registry.GetCounter("storage.node.replica_alloc_failures");
}

bool ShardedStorageRouter::NodeAlive(size_t k) const {
  if (single_) return true;
  return !nodes_[k]->killed();
}

size_t ShardedStorageRouter::alive_nodes() const {
  if (single_) return 1;
  size_t alive = 0;
  for (const auto& node : nodes_) {
    if (!node->killed()) alive++;
  }
  return alive;
}

size_t ShardedStorageRouter::NextAlive(size_t start, size_t exclude) const {
  size_t n = nodes_.size();
  for (size_t i = 0; i < n; i++) {
    size_t k = (start + i) % n;
    if (k != exclude && !nodes_[k]->killed()) return k;
  }
  return n;
}

Result<page_id_t> ShardedStorageRouter::AllocatePage(
    const PageAllocOptions& options) {
  if (single_) return single_disk_->AllocatePage(options);

  size_t primary;
  if (options.node_hint != PageAllocOptions::kAnyNode &&
      options.node_hint < nodes_.size()) {
    // Pinned placement (a shard's home node): losing that node means
    // this shard cannot grow until the table is re-sharded.
    primary = options.node_hint;
    if (nodes_[primary]->killed()) {
      return Status::DataLoss("allocation on lost node " +
                              std::to_string(primary));
    }
  } else {
    primary = NextAlive(next_rr_, nodes_.size());
    if (primary >= nodes_.size()) {
      return Status::DataLoss("no storage node alive");
    }
    next_rr_ = (primary + 1) % nodes_.size();
  }
  SQP_RETURN_IF_ERROR(nodes_[primary]->CheckReachable());
  auto allocated = nodes_[primary]->disk().AllocatePage();
  if (!allocated.ok()) return allocated.status();
  page_id_t global = *allocated;

  PageMeta meta;
  if (options.replicated && replication_factor_ >= 2) {
    size_t replica = NextAlive((primary + 1) % nodes_.size(), primary);
    if (replica < nodes_.size()) {
      auto shadow = nodes_[replica]->disk().AllocatePage();
      if (shadow.ok()) {
        meta.replicated = true;
        meta.replica_node = static_cast<uint32_t>(replica);
        meta.replica_local = PageLocal(*shadow);
      } else {
        // Degrade to a single copy rather than failing the allocation;
        // the page is no worse off than an unreplicated one.
        m_replica_alloc_failures_->Increment();
      }
    } else {
      m_replica_alloc_failures_->Increment();
    }
  }
  meta_[global] = meta;
  return global;
}

Status ShardedStorageRouter::DeallocatePage(page_id_t page_id) {
  if (single_) return single_disk_->DeallocatePage(page_id);
  auto it = meta_.find(page_id);
  if (it == meta_.end()) {
    return Status::NotFound("deallocate of unknown page " +
                            std::to_string(page_id));
  }
  const PageMeta meta = it->second;
  meta_.erase(it);
  Status primary_status = Status::OK();
  size_t primary = PageNode(page_id);
  if (!nodes_[primary]->killed()) {
    primary_status = nodes_[primary]->disk().DeallocatePage(page_id);
  }
  if (meta.replicated && !nodes_[meta.replica_node]->killed()) {
    // The shadow dies with the logical page; its own status is
    // secondary (the copy on a crashed node is cleaned after Restart).
    (void)nodes_[meta.replica_node]->disk().DeallocatePage(
        MakePageId(meta.replica_node, meta.replica_local));
  }
  return primary_status;
}

Status ShardedStorageRouter::ReadPage(page_id_t page_id, Page* out) {
  if (single_) return single_disk_->ReadPage(page_id, out);
  auto it = meta_.find(page_id);
  if (it == meta_.end()) {
    return Status::NotFound("read of unknown page " +
                            std::to_string(page_id));
  }
  size_t primary = PageNode(page_id);
  Status primary_status = nodes_[primary]->CheckReachable();
  if (primary_status.ok()) {
    primary_status = nodes_[primary]->disk().ReadPage(page_id, out);
    if (primary_status.ok()) return primary_status;
  }
  const PageMeta& meta = it->second;
  if (!meta.replicated) return primary_status;
  // Failover: serve the shadow copy (it received every write, so its
  // bytes — and checksum — match the primary's last synced state).
  SQP_RETURN_IF_ERROR(nodes_[meta.replica_node]->CheckReachable());
  Status replica_status = nodes_[meta.replica_node]->disk().ReadPage(
      MakePageId(meta.replica_node, meta.replica_local), out);
  if (replica_status.ok()) {
    replica_reads_++;
    m_replica_reads_->Increment();
  }
  return replica_status;
}

Status ShardedStorageRouter::WritePage(page_id_t page_id, const Page& in) {
  if (single_) return single_disk_->WritePage(page_id, in);
  auto it = meta_.find(page_id);
  if (it == meta_.end()) {
    return Status::NotFound("write of unknown page " +
                            std::to_string(page_id));
  }
  const PageMeta& meta = it->second;
  size_t primary = PageNode(page_id);
  if (!nodes_[primary]->killed()) {
    // Transient primary failures (partition, injected I/O error) must
    // fail the write: letting the shadow advance while a *reachable
    // later* primary stays stale would serve old bytes on the next
    // read. Only a permanently lost primary degrades to shadow-only.
    SQP_RETURN_IF_ERROR(nodes_[primary]->CheckReachable());
    SQP_RETURN_IF_ERROR(nodes_[primary]->disk().WritePage(page_id, in));
    if (!meta.replicated || nodes_[meta.replica_node]->killed()) {
      return Status::OK();
    }
    SQP_RETURN_IF_ERROR(nodes_[meta.replica_node]->CheckReachable());
    return nodes_[meta.replica_node]->disk().WritePage(
        MakePageId(meta.replica_node, meta.replica_local), in);
  }
  if (!meta.replicated || nodes_[meta.replica_node]->killed()) {
    return Status::DataLoss("write of page " + std::to_string(page_id) +
                            ": every copy lost");
  }
  SQP_RETURN_IF_ERROR(nodes_[meta.replica_node]->CheckReachable());
  SQP_RETURN_IF_ERROR(nodes_[meta.replica_node]->disk().WritePage(
      MakePageId(meta.replica_node, meta.replica_local), in));
  // Primary lost, shadow took the write: degraded but not lost.
  degraded_writes_++;
  m_degraded_writes_->Increment();
  return Status::OK();
}

Status ShardedStorageRouter::Sync() {
  if (single_) return single_disk_->Sync();
  for (auto& node : nodes_) {
    if (node->killed()) continue;
    SQP_RETURN_IF_ERROR(node->CheckReachable());
    SQP_RETURN_IF_ERROR(node->disk().Sync());
  }
  return Status::OK();
}

std::vector<page_id_t> ShardedStorageRouter::LivePages() const {
  if (single_) return single_disk_->LivePages();
  std::vector<page_id_t> out;
  out.reserve(meta_.size());
  for (const auto& [global, meta] : meta_) {
    if (PageAvailable(global)) out.push_back(global);
  }
  return out;
}

bool ShardedStorageRouter::PageAvailable(page_id_t page_id) const {
  if (single_) return true;
  auto it = meta_.find(page_id);
  if (it == meta_.end()) return false;
  if (!nodes_[PageNode(page_id)]->killed()) return true;
  return it->second.replicated && !nodes_[it->second.replica_node]->killed();
}

void ShardedStorageRouter::KillNode(size_t k) {
  if (single_) return;  // a single-node store has no node to lose
  if (nodes_[k]->killed()) return;
  nodes_[k]->Kill();
  m_kills_->Increment();
}

void ShardedStorageRouter::SimulateCrash() {
  if (single_) {
    single_disk_->SimulateCrash();
    return;
  }
  for (auto& node : nodes_) {
    if (!node->killed()) node->disk().SimulateCrash();
  }
}

void ShardedStorageRouter::Restart() {
  if (single_) {
    single_disk_->Restart();
    return;
  }
  for (auto& node : nodes_) {
    if (!node->killed()) node->disk().Restart();
  }
}

bool ShardedStorageRouter::has_crashed() const {
  if (single_) return single_disk_->has_crashed();
  for (const auto& node : nodes_) {
    if (!node->killed() && node->disk().has_crashed()) return true;
  }
  return false;
}

uint64_t ShardedStorageRouter::live_pages() const {
  if (single_) return single_disk_->live_pages();
  uint64_t count = 0;
  for (const auto& [global, meta] : meta_) {
    if (PageAvailable(global)) count++;
  }
  return count;
}

uint64_t ShardedStorageRouter::allocated_pages() const {
  if (single_) return single_disk_->allocated_pages();
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->disk().allocated_pages();
  return total;
}

uint64_t ShardedStorageRouter::unsynced_pages() const {
  if (single_) return single_disk_->unsynced_pages();
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (!node->killed()) total += node->disk().unsynced_pages();
  }
  return total;
}

uint64_t ShardedStorageRouter::checksum_failures() const {
  if (single_) return single_disk_->checksum_failures();
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->disk().checksum_failures();
  return total;
}

uint64_t ShardedStorageRouter::torn_pages() const {
  if (single_) return single_disk_->torn_pages();
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->disk().torn_pages();
  return total;
}

uint64_t ShardedStorageRouter::sync_count() const {
  if (single_) return single_disk_->sync_count();
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->disk().sync_count();
  return total;
}

uint64_t ShardedStorageRouter::OrphanPhysicalPages() const {
  if (single_) return 0;
  uint64_t orphans = 0;
  for (size_t k = 0; k < nodes_.size(); k++) {
    if (nodes_[k]->killed()) continue;
    // Local ids this node should hold: primaries tagged with its id
    // plus shadows placed on it.
    std::vector<page_id_t> expected;
    for (const auto& [global, meta] : meta_) {
      if (PageNode(global) == k) expected.push_back(PageLocal(global));
      if (meta.replicated && meta.replica_node == k) {
        expected.push_back(meta.replica_local);
      }
    }
    std::sort(expected.begin(), expected.end());
    for (page_id_t global : nodes_[k]->disk().LivePages()) {
      if (!std::binary_search(expected.begin(), expected.end(),
                              PageLocal(global))) {
        orphans++;
      }
    }
  }
  return orphans;
}

}  // namespace sqp
