// ShardedStorageRouter: N storage nodes behind one page-id namespace.
//
// The router is the PageStore a multi-node database programs against
// (DESIGN.md §12). Global page ids carry the primary copy's node in
// their top bits (page.h), so routing a read or write is a bit shift.
// Pages allocated with PageAllocOptions::replicated keep a second
// (shadow) copy on the next alive node; the shadow receives every write
// and serves reads when the primary's node is dead or unreachable, so
// base tables survive losing any single node. Replica placement is
// journaled durable metadata, like the per-disk page allocator: it
// survives crashes and node loss.
//
// With one node the router degrades to a thin pass-through around a
// single DiskManager with the legacy fault/metric namespaces
// ("disk.*" / "storage.disk.*") — bit-identical to the pre-sharding
// storage stack, which is what every single-node test and benchmark
// exercises.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cost_meter.h"
#include "common/status.h"
#include "storage/page_store.h"
#include "storage/storage_node.h"

namespace sqp {

class Counter;

class ShardedStorageRouter : public PageStore {
 public:
  /// `nodes` in-process storage nodes (1..kMaxStorageNodes).
  /// `replication_factor` 2 keeps one shadow copy of replicated pages;
  /// 1 disables replication. Factors above 2 are capped at 2.
  ShardedStorageRouter(CostMeter* meter, size_t nodes,
                       size_t replication_factor = 2);

  ShardedStorageRouter(const ShardedStorageRouter&) = delete;
  ShardedStorageRouter& operator=(const ShardedStorageRouter&) = delete;

  // ----------------------------------------------------- PageStore
  Result<page_id_t> AllocatePage(const PageAllocOptions& options = {}) override;
  Status DeallocatePage(page_id_t page_id) override;
  Status ReadPage(page_id_t page_id, Page* out) override;
  Status WritePage(page_id_t page_id, const Page& in) override;
  Status Sync() override;
  std::vector<page_id_t> LivePages() const override;
  size_t shard_count() const override { return node_count(); }

  // ---------------------------------------------- node-level faults
  /// Permanent loss of node k: its durable image dies with it. Reads of
  /// replicated pages fail over to their shadow copy; unreplicated
  /// pages on the node are gone (Database::Reopen drops the matviews
  /// that lived there).
  void KillNode(size_t k);
  bool NodeAlive(size_t k) const;
  size_t node_count() const { return single_ ? 1 : nodes_.size(); }
  size_t alive_nodes() const;

  /// Is this logical page readable from any surviving copy?
  bool PageAvailable(page_id_t page_id) const;

  /// Machine-wide power cut: every surviving node's disk crashes (each
  /// may tear one in-flight page).
  void SimulateCrash();
  /// Re-mount every surviving node after a crash.
  void Restart();
  /// True while any surviving node is crashed (Reopen() required).
  bool has_crashed() const;

  // ------------------------------------------------------- accounting
  /// Logical pages currently readable (replicas are shadows, not
  /// counted). On a healthy store this equals the catalog's page total;
  /// the chaos invariant "live_pages == catalog pages" checks it.
  uint64_t live_pages() const;
  uint64_t allocated_pages() const;
  uint64_t unsynced_pages() const;
  uint64_t checksum_failures() const;
  uint64_t torn_pages() const;
  uint64_t sync_count() const;

  /// Physical live pages on surviving nodes referenced by no logical
  /// page — must be zero after recovery (the per-node orphan audit).
  uint64_t OrphanPhysicalPages() const;

  /// Multi-node stores only (a single-node store has no StorageNode).
  const StorageNode& node(size_t k) const { return *nodes_[k]; }

  uint64_t replica_reads() const { return replica_reads_; }
  uint64_t degraded_writes() const { return degraded_writes_; }

 private:
  struct PageMeta {
    bool replicated = false;
    uint32_t replica_node = 0;
    page_id_t replica_local = kInvalidPageId;
  };

  /// Next alive node at-or-after `start` (wrapping), excluding
  /// `exclude`; node_count() when none qualifies.
  size_t NextAlive(size_t start, size_t exclude) const;

  CostMeter* meter_;
  size_t replication_factor_;
  /// Single-node pass-through (legacy namespaces); nodes_ is empty.
  bool single_;
  std::unique_ptr<DiskManager> single_disk_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  /// Durable placement journal: global id -> replica placement.
  /// Ordered so recovery iteration is deterministic.
  std::map<page_id_t, PageMeta> meta_;
  /// Round-robin cursor for unpinned (kAnyNode) allocations.
  size_t next_rr_ = 0;
  uint64_t replica_reads_ = 0;
  uint64_t degraded_writes_ = 0;
  Counter* m_replica_reads_;
  Counter* m_degraded_writes_;
  Counter* m_kills_;
  Counter* m_replica_alloc_failures_;
};

}  // namespace sqp
