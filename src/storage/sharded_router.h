// ShardedStorageRouter: N storage nodes behind one page-id namespace.
//
// The router is the PageStore a multi-node database programs against
// (DESIGN.md §12–13). Global page ids carry the node that *allocated*
// the primary copy in their top bits (page.h); the id is stable for the
// page's lifetime, but the physical location of either copy can move —
// the router keeps a placement record per logical page (primary
// node+local id, optional shadow node+local id, hash shard) and every
// read/write resolves through it. Placement is journaled durable
// metadata, like the per-disk page allocator: it survives crashes and
// node loss.
//
// Pages allocated with PageAllocOptions::replicated keep a second
// (shadow) copy on another alive node; the shadow receives every write
// and serves reads when the primary's node is dead or unreachable, so
// base tables survive losing any single node. With read load-balancing
// enabled (the default), reads of a fully healthy replicated page
// alternate deterministically between the two copies.
//
// Sharded heaps address pages by *shard slot* (2× the initial node
// count), and the router maps slots to home nodes. Membership changes
// (AddNode / RetireNode) move whole slots between nodes via the
// Stage/Commit/Abort copy primitives: a staged copy is invisible until
// committed, so a crash mid-move replays to the old owner and the
// staged bytes are collected as physical orphans.
//
// With one node the router degrades to a thin pass-through around a
// single DiskManager with the legacy fault/metric namespaces
// ("disk.*" / "storage.disk.*") — bit-identical to the pre-sharding
// storage stack, which is what every single-node test and benchmark
// exercises.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cost_meter.h"
#include "common/status.h"
#include "storage/page_store.h"
#include "storage/storage_node.h"

namespace sqp {

class Counter;

class ShardedStorageRouter : public PageStore {
 public:
  /// `nodes` in-process storage nodes (1..kMaxStorageNodes).
  /// `replication_factor` 2 keeps one shadow copy of replicated pages;
  /// 1 disables replication. Factors above 2 are capped at 2.
  /// `balance_reads` alternates reads of healthy replicated pages
  /// between the two copies (deterministic round-robin).
  ShardedStorageRouter(CostMeter* meter, size_t nodes,
                       size_t replication_factor = 2,
                       bool balance_reads = true);

  ShardedStorageRouter(const ShardedStorageRouter&) = delete;
  ShardedStorageRouter& operator=(const ShardedStorageRouter&) = delete;

  // ----------------------------------------------------- PageStore
  Result<page_id_t> AllocatePage(const PageAllocOptions& options = {}) override;
  Status DeallocatePage(page_id_t page_id) override;
  Status ReadPage(page_id_t page_id, Page* out) override;
  /// Side-effect-free page snapshot (DESIGN.md §15): no read-balancing
  /// cursor advance, no reads_primary/reads_shadow accounting, no
  /// reachability fault points — those all belong to the foreground
  /// ReadPage replay. Serves whichever copy is alive, primary first.
  Status PeekPage(page_id_t page_id, Page* out) override;
  Status WritePage(page_id_t page_id, const Page& in) override;
  Status Sync() override;
  std::vector<page_id_t> LivePages() const override;
  size_t shard_count() const override {
    return single_ ? 1 : shard_home_.size();
  }

  // ---------------------------------------------- node-level faults
  /// Permanent loss of node k: its durable image dies with it. Reads of
  /// replicated pages fail over to their shadow copy; unreplicated
  /// pages on the node are gone (Database::Reopen drops the matviews
  /// that lived there).
  void KillNode(size_t k);
  bool NodeAlive(size_t k) const;
  bool NodeRetired(size_t k) const;
  size_t node_count() const { return single_ ? 1 : nodes_.size(); }
  /// Nodes in service (neither killed nor retired).
  size_t alive_nodes() const;
  /// Nodes permanently lost (killed; retired nodes are not lost).
  size_t killed_nodes() const;

  // ------------------------------------------------------ membership
  /// Add a fresh, empty storage node; returns its id (== old
  /// node_count()). The caller owns the manifest-side membership
  /// change and any shard rebalancing.
  size_t AddNode();

  /// Retire a drained node: it must hold no page placements and no
  /// physical pages. kFailedPrecondition otherwise; idempotent on an
  /// already-retired node.
  Status RetireNode(size_t k);

  // -------------------------------------------------- shard-slot map
  /// Current home node of shard slot `s`.
  size_t shard_home(size_t s) const { return shard_home_[s]; }
  /// Point slot `s` at `node` (after its pages were copied+committed).
  void SetShardHome(size_t s, size_t node);
  /// Slots currently homed at node k, ascending.
  std::vector<size_t> ShardsHomedAt(size_t k) const;

  // --------------------------------- rebalance / repair primitives
  /// A page copy staged on a node but not yet part of the placement
  /// map. Invisible to reads until CommitCopy; a crash before the
  /// commit leaves it as a physical orphan for CollectPhysicalOrphans.
  struct StagedCopy {
    page_id_t global = kInvalidPageId;
    uint32_t node = 0;
    page_id_t local = kInvalidPageId;
    bool as_primary = false;
  };

  /// Read `global` from any live copy and write it to a fresh physical
  /// page on `to_node` (gated by "node<k>.rebalance.copy"); all I/O is
  /// charged on the meter. The placement map is untouched.
  Result<StagedCopy> StageCopy(page_id_t global, size_t to_node,
                               bool as_primary);

  /// Flip the placement map to the staged copy and free the physical
  /// page it replaces (when its node is still alive). Call only after
  /// Sync() made the staged bytes durable.
  Status CommitCopy(const StagedCopy& copy);

  /// Best-effort release of a staged physical page (failed move).
  void AbortCopy(const StagedCopy& copy);

  /// One page in need of re-protection.
  struct RepairNeed {
    page_id_t global = kInvalidPageId;
    /// True: the primary copy's node is dead — promote the shadow by
    /// staging a fresh primary. False: the shadow is missing or dead —
    /// stage a fresh shadow.
    bool primary_dead = false;
  };

  /// Pages whose redundancy is degraded but recoverable (one live
  /// copy remains), in deterministic (global-id) order. Pages with no
  /// live copy are excluded — they are lost, not repairable.
  std::vector<RepairNeed> PagesNeedingRepair() const;

  /// Replicated pages whose only live copy is the shadow (the primary
  /// node is dead). Zero after a completed repair pass.
  uint64_t ShadowOnlyPages() const;

  /// Logical pages whose primary placement sits on node k / whose
  /// shadow placement sits on node k, in global-id order.
  std::vector<page_id_t> PagesWithPrimaryOn(size_t k) const;
  std::vector<page_id_t> PagesWithReplicaOn(size_t k) const;
  /// Pages allocated under shard slot `s`, in global-id order.
  std::vector<page_id_t> PagesInShard(size_t s) const;
  /// Placement introspection (kNoShard / kAnyNode when absent).
  uint32_t PageShard(page_id_t global) const;
  uint32_t PagePrimaryNode(page_id_t global) const;
  uint32_t PageReplicaNode(page_id_t global) const;

  /// Free physical pages on alive nodes that no placement references —
  /// staged copies left by a crash mid-rebalance. Returns the count.
  uint64_t CollectPhysicalOrphans();

  /// Is this logical page readable from any surviving copy?
  bool PageAvailable(page_id_t page_id) const;

  /// Machine-wide power cut: every surviving node's disk crashes (each
  /// may tear one in-flight page).
  void SimulateCrash();
  /// Re-mount every surviving node after a crash.
  void Restart();
  /// True while any surviving node is crashed (Reopen() required).
  bool has_crashed() const;

  // ------------------------------------------------------- accounting
  /// Logical pages currently readable (replicas are shadows, not
  /// counted). On a healthy store this equals the catalog's page total;
  /// the chaos invariant "live_pages == catalog pages" checks it.
  uint64_t live_pages() const;
  uint64_t allocated_pages() const;
  uint64_t unsynced_pages() const;
  uint64_t checksum_failures() const;
  uint64_t torn_pages() const;
  uint64_t sync_count() const;

  /// Physical live pages on surviving nodes referenced by no logical
  /// page — must be zero after recovery (the per-node orphan audit).
  uint64_t OrphanPhysicalPages() const;

  /// Multi-node stores only (a single-node store has no StorageNode).
  const StorageNode& node(size_t k) const { return *nodes_[k]; }

  uint64_t replica_reads() const { return replica_reads_; }
  uint64_t degraded_writes() const { return degraded_writes_; }
  uint64_t reads_primary() const { return reads_primary_; }
  uint64_t reads_shadow() const { return reads_shadow_; }
  /// Deterministic replica-read round-robin cursor (advances once per
  /// balanced read of a healthy replicated page). The replayers use it
  /// to spread query jobs over the SimServer's per-node lanes
  /// (DESIGN.md §14).
  uint64_t read_cursor() const { return read_rr_; }

 private:
  struct PageMeta {
    /// Physical location of the primary copy. Starts as the node/local
    /// encoded in the global id; repair and rebalancing move it.
    uint32_t primary_node = 0;
    page_id_t primary_local = kInvalidPageId;
    bool replicated = false;
    /// Replication was requested: a missing/dead shadow is a repair
    /// candidate, not a plain single-copy page.
    bool wants_replica = false;
    uint32_t replica_node = 0;
    page_id_t replica_local = kInvalidPageId;
    /// Hash shard slot (kNoShard for unsharded pages).
    uint32_t shard = PageAllocOptions::kNoShard;
  };

  /// Next alive node at-or-after `start` (wrapping), excluding
  /// `exclude`; node_count() when none qualifies.
  size_t NextAlive(size_t start, size_t exclude) const;
  bool Alive(size_t k) const { return nodes_[k]->alive(); }
  page_id_t PrimaryPhys(const PageMeta& meta) const {
    return MakePageId(meta.primary_node, meta.primary_local);
  }
  page_id_t ReplicaPhys(const PageMeta& meta) const {
    return MakePageId(meta.replica_node, meta.replica_local);
  }
  /// CheckReachable + physical read on one node.
  Status TryRead(size_t node, page_id_t phys, Page* out);

  CostMeter* meter_;
  size_t replication_factor_;
  bool balance_reads_;
  /// Single-node pass-through (legacy namespaces); nodes_ is empty.
  bool single_;
  std::unique_ptr<DiskManager> single_disk_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  /// Durable placement journal: global id -> copy placements.
  /// Ordered so recovery iteration is deterministic.
  std::map<page_id_t, PageMeta> meta_;
  /// Shard slot -> home node (2× the initial node count; durable).
  std::vector<size_t> shard_home_;
  /// Round-robin cursor for unpinned (kAnyNode) allocations.
  size_t next_rr_ = 0;
  /// Round-robin cursor for balanced reads of healthy replicated pages.
  uint64_t read_rr_ = 0;
  uint64_t replica_reads_ = 0;
  uint64_t degraded_writes_ = 0;
  uint64_t reads_primary_ = 0;
  uint64_t reads_shadow_ = 0;
  Counter* m_replica_reads_;
  Counter* m_degraded_writes_;
  Counter* m_kills_;
  Counter* m_replica_alloc_failures_;
  Counter* m_reads_primary_;
  Counter* m_reads_shadow_;
};

}  // namespace sqp
