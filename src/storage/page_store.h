// PageStore: the page-granular storage interface the buffer pool,
// catalog, and heap files program against.
//
// Two implementations exist: DiskManager (one simulated disk — the
// original single-node store) and ShardedStorageRouter (N in-process
// storage nodes behind one page-id namespace, DESIGN.md §12). Page ids
// are global: the top bits carry the owning node (see page.h), so a
// single-node store's ids are numerically unchanged and every existing
// caller keeps working.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace sqp {

/// Placement request for a fresh page.
struct PageAllocOptions {
  static constexpr uint32_t kAnyNode = UINT32_MAX;
  static constexpr uint32_t kNoShard = UINT32_MAX;

  /// Preferred storage node for the primary copy. kAnyNode lets the
  /// store choose (single-node stores always use node 0; the router
  /// round-robins over alive nodes so unsharded tables stay whole on
  /// one node).
  uint32_t node_hint = kAnyNode;
  /// Hash shard this page belongs to. The store resolves the shard to
  /// its current home node (the shard→node map moves with membership
  /// changes), so sharded heaps keep appending correctly after a
  /// rebalance. Takes precedence over node_hint when set.
  uint32_t shard_hint = kNoShard;
  /// Keep a second copy on another node so the page survives losing
  /// either one. Ignored by single-node stores.
  bool replicated = false;
};

class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Allocate a fresh zeroed page; returns its global id.
  virtual Result<page_id_t> AllocatePage(
      const PageAllocOptions& options = {}) = 0;

  /// Free a page (and any replica). Ids are never reused.
  virtual Status DeallocatePage(page_id_t page_id) = 0;

  /// Copy page contents store -> out, verifying checksums. A store with
  /// replicas serves the read from a surviving copy when the primary's
  /// node is down.
  virtual Status ReadPage(page_id_t page_id, Page* out) = 0;

  /// Side-effect-free snapshot of a page's current bytes, for the
  /// parallel executors' lookahead (DESIGN.md §15): no CostMeter
  /// charge, no fault points, no metric counters, and no advancement of
  /// any read-balancing cursor — the accountable ReadPage for the same
  /// page is replayed later by the foreground thread in sequential
  /// order. Checksums are still verified (a failure returns an error
  /// silently, without counting it) so callers never process torn
  /// bytes; any failure simply routes the page through the sequential
  /// path. Stores without a cheap snapshot may keep this default.
  virtual Status PeekPage(page_id_t page_id, Page* out) {
    (void)page_id;
    (void)out;
    return Status::NotSupported("PeekPage");
  }

  /// Copy page contents in -> write cache(s); volatile until Sync().
  virtual Status WritePage(page_id_t page_id, const Page& in) = 0;

  /// fsync barrier: every cached write becomes durable.
  virtual Status Sync() = 0;

  /// Global ids of every live (logical) page — replicas are shadows of
  /// their primary and are not enumerated.
  virtual std::vector<page_id_t> LivePages() const = 0;

  /// Number of hash-shard slots a sharded table should spread over
  /// (more slots than nodes so a joining node can take whole slots;
  /// 1 for a single-disk store).
  virtual size_t shard_count() const { return 1; }
};

}  // namespace sqp
