#include "storage/storage_node.h"

#include "common/fault_injector.h"

namespace sqp {

StorageNode::StorageNode(uint32_t id, CostMeter* meter) : id_(id) {
  std::string tag = "node" + std::to_string(id);
  partition_point_ = tag + ".partition";
  rebalance_point_ = tag + ".rebalance.copy";
  FaultInjector::Global().RegisterPoint(partition_point_);
  FaultInjector::Global().RegisterPoint(rebalance_point_);
  disk_ = std::make_unique<DiskManager>(meter, tag + ".disk",
                                        "storage." + tag + ".disk", id);
}

Status StorageNode::CheckReachable() const {
  if (killed_) {
    return Status::DataLoss("node " + std::to_string(id_) + " lost");
  }
  if (FaultInjector::Global().armed()) {
    SQP_RETURN_IF_ERROR(FaultInjector::Global().Check(partition_point_));
  }
  return Status::OK();
}

}  // namespace sqp
