// Slotted page layout.
//
// Pages are the unit of I/O accounting. A page holds variable-length
// tuple records behind a slot directory:
//
//   [ kSlotCount | kFreeOffset | slot0 | slot1 | ... |  free  | ...data ]
//   header (4B)                 4B each --->            <--- records
#pragma once

#include <cstdint>
#include <cstring>

namespace sqp {

using page_id_t = uint64_t;
inline constexpr page_id_t kInvalidPageId = UINT64_MAX;

inline constexpr size_t kPageSize = 8192;

// (node, page) addressing for the sharded storage tier (DESIGN.md §12):
// the top 8 bits of a page id carry the storage node that owns the
// page's primary copy, the low 56 bits its node-local id. A single-node
// database stores everything on node 0, so its ids are numerically
// unchanged from the pre-sharding layout. Node 255 is reserved: it is
// the node field of kInvalidPageId.
inline constexpr int kPageNodeShift = 56;
inline constexpr uint32_t kMaxStorageNodes = 255;
inline constexpr page_id_t kPageLocalMask =
    (page_id_t{1} << kPageNodeShift) - 1;

inline constexpr page_id_t MakePageId(uint32_t node, page_id_t local) {
  return (static_cast<page_id_t>(node) << kPageNodeShift) |
         (local & kPageLocalMask);
}
inline constexpr uint32_t PageNode(page_id_t id) {
  return static_cast<uint32_t>(id >> kPageNodeShift);
}
inline constexpr page_id_t PageLocal(page_id_t id) {
  return id & kPageLocalMask;
}

/// Record id: (page, slot) address of a tuple in a heap file.
struct Rid {
  page_id_t page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid& other) const {
    return page_id == other.page_id && slot == other.slot;
  }
};

/// A fixed-size page with a slot directory for variable-length records.
/// Not thread-safe; protected by the buffer pool's latching discipline
/// (single-threaded simulation here).
class Page {
 public:
  Page() { Init(); }

  /// Reset to an empty page.
  void Init() {
    std::memset(data_, 0, kPageSize);
    set_slot_count(0);
    set_free_offset(kPageSize);
  }

  uint16_t slot_count() const { return Read16(0); }
  uint16_t free_offset() const { return Read16(2); }

  /// Bytes available for one more record (including its slot entry).
  size_t FreeSpace() const {
    size_t used_front = kHeaderSize + slot_count() * kSlotSize;
    if (free_offset() < used_front + kSlotSize) return 0;
    return free_offset() - used_front - kSlotSize;
  }

  /// Insert a record; returns slot index or -1 when it does not fit.
  int Insert(const uint8_t* record, uint16_t len) {
    if (FreeSpace() < len) return -1;
    uint16_t slot = slot_count();
    uint16_t off = free_offset() - len;
    std::memcpy(data_ + off, record, len);
    WriteSlot(slot, off, len);
    set_slot_count(slot + 1);
    set_free_offset(off);
    return slot;
  }

  /// Pointer+length of the record in `slot`. Slot must be < slot_count().
  const uint8_t* Record(uint16_t slot, uint16_t* len) const {
    uint16_t off = Read16(kHeaderSize + slot * kSlotSize);
    *len = Read16(kHeaderSize + slot * kSlotSize + 2);
    return data_ + off;
  }

  uint8_t* raw() { return data_; }
  const uint8_t* raw() const { return data_; }

 private:
  static constexpr size_t kHeaderSize = 4;
  static constexpr size_t kSlotSize = 4;

  uint16_t Read16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, data_ + off, 2);
    return v;
  }
  void Write16(size_t off, uint16_t v) { std::memcpy(data_ + off, &v, 2); }
  void set_slot_count(uint16_t v) { Write16(0, v); }
  void set_free_offset(uint16_t v) { Write16(2, v); }
  void WriteSlot(uint16_t slot, uint16_t off, uint16_t len) {
    Write16(kHeaderSize + slot * kSlotSize, off);
    Write16(kHeaderSize + slot * kSlotSize + 2, len);
  }

  uint8_t data_[kPageSize];
};

}  // namespace sqp
