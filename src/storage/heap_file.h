// Heap file: an unordered collection of tuples in slotted pages.
#pragma once

#include <optional>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/tuple.h"

namespace sqp {

/// Where a heap's pages live on a sharded store (DESIGN.md §12).
/// The default — one shard, unreplicated — reproduces the single-disk
/// layout bit for bit. Catalog::CreateTable sets base tables to
/// replicated + hash-sharded over every storage node; materialized
/// views stay single-shard and unreplicated (they are disposable, so a
/// node loss just drops them).
struct HeapPlacement {
  /// Keep a shadow copy of every page on another node.
  bool replicated = false;
  /// Hash-shard appends on the first column over this many shards;
  /// shard k's pages are pinned to storage node k.
  size_t shards = 1;
  /// Unsharded heaps only: pin the *first* page to this node (later
  /// pages already follow the first). kAnyNode = round-robin default.
  /// The speculation engine uses this to land a matview on the cost
  /// model's chosen home node (DESIGN.md §14).
  uint32_t home_node = PageAllocOptions::kAnyNode;
};

class HeapFile {
 public:
  explicit HeapFile(BufferPool* pool) : pool_(pool) {}

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Set before the first append (Catalog::CreateTable does).
  void SetPlacement(HeapPlacement placement);
  const HeapPlacement& placement() const { return placement_; }

  /// Append a tuple; returns its Rid.
  Result<Rid> Append(const Tuple& tuple);

  /// Fetch the tuple at `rid` (e.g. from an index lookup).
  Result<Tuple> Fetch(const Rid& rid) const;

  /// Release all pages back to the page store (table drop).
  void Drop(PageStore* disk);

  /// Re-attach a page list recorded in the catalog manifest (crash
  /// recovery): the pages already exist on disk with their contents.
  void Restore(std::vector<page_id_t> pages, uint64_t tuple_count);

  uint64_t tuple_count() const { return tuple_count_; }
  uint64_t page_count() const { return pages_.size(); }
  const std::vector<page_id_t>& pages() const { return pages_; }

  /// Forward scan over every tuple, page at a time through the pool.
  /// Pin discipline: a page is fetched once, held pinned (guard_) while
  /// its slots are walked, and released before the next page — never
  /// re-pinned per tuple.
  class Iterator {
   public:
    Iterator(const HeapFile* file, BufferPool* pool)
        : file_(file), pool_(pool) {}

    /// Next tuple, or nullopt at end. Errors surface as Status.
    Result<std::optional<Tuple>> Next();

    /// Bulk decode: append every remaining tuple of the current page to
    /// *out and advance past it. Returns false at end of file (nothing
    /// appended). Mixing with Next() is fine — NextPage picks up at the
    /// cursor's slot.
    Result<bool> NextPage(std::vector<Tuple>* out);

   private:
    const HeapFile* file_;
    BufferPool* pool_;
    size_t page_index_ = 0;
    uint16_t slot_ = 0;
    PageGuard guard_;
    bool page_loaded_ = false;
  };

  Iterator Scan() const { return Iterator(this, pool_); }

 private:
  /// Shard of a tuple: a stable hash of its first column (never
  /// std::hash, whose result may vary between standard libraries and
  /// would break cross-build replay determinism).
  size_t ShardOf(const Tuple& tuple) const;

  BufferPool* pool_;
  HeapPlacement placement_;
  std::vector<page_id_t> pages_;
  /// Per-shard page currently open for appends (kInvalidPageId when the
  /// shard has none); only used when placement_.shards > 1 — the
  /// single-shard path appends to pages_.back() as it always has.
  std::vector<page_id_t> open_pages_;
  uint64_t tuple_count_ = 0;
  // Serialization scratch reused across appends.
  std::vector<uint8_t> scratch_;
};

}  // namespace sqp
