// Simulated disk with a crash-durability model.
//
// Backing store is main memory; "I/O" charges simulated time through the
// shared CostMeter. This stands in for the paper's physical disk: the
// experiments depend only on relative I/O volumes (see DESIGN.md §2).
//
// Durability model (DESIGN.md §8): the disk holds a *durable image*
// (page bytes plus a sidecar CRC-32 per page) and a *volatile write
// cache*. WritePage lands in the cache; Sync() makes every cached write
// durable and recomputes its checksum. SimulateCrash() models a
// power-cut: all unsynced writes are discarded and at most one in-flight
// page is torn (half of the lost write reaches the durable image without
// a checksum update). ReadPage verifies the checksum of every durable
// read, so torn pages surface as kDataLoss — never as silently wrong
// bytes. Page allocation/deallocation is durable metadata (a journaled
// allocator), so the live-page map survives crashes and recovery can
// enumerate orphans.
//
// Every operation can fail: the fault points "<prefix>.allocate",
// "<prefix>.read", and "<prefix>.write" inject transient or permanent
// I/O errors, "<prefix>.crash" makes a write or sync die mid-operation,
// crashing the whole disk (the chaos harness then recovers through
// Database::Reopen), and "<prefix>.sync_delay" makes a Sync() slow
// (extra simulated charge) without failing it. The prefix is "disk" for
// a single-node database and "node<k>.disk" for storage node k of a
// sharded one, so per-node fault schedules can target one node. After a
// crash every operation returns kDataLoss until Restart() is called.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cost_meter.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace sqp {

class Counter;

class DiskManager : public PageStore {
 public:
  /// `fault_prefix` namespaces this disk's fault points,
  /// `metric_prefix` its registry counters. The defaults reproduce the
  /// single-node names ("disk.read", "storage.disk.reads", ...).
  /// `node` is baked into the top bits of every id this disk hands out
  /// (0 for a single-node store, see page.h).
  explicit DiskManager(CostMeter* meter, std::string fault_prefix = "disk",
                       std::string metric_prefix = "storage.disk",
                       uint32_t node = 0);

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocate a fresh zeroed page on disk; returns its id. Placement
  /// options are meaningless on a single disk and ignored.
  Result<page_id_t> AllocatePage(const PageAllocOptions& options = {}) override;

  /// Free a page (space returns to the allocator; id is never reused).
  Status DeallocatePage(page_id_t page_id) override;

  /// Copy page contents disk -> out, serving unsynced writes from the
  /// cache and verifying the checksum of durable reads. Charges one
  /// block read. A checksum mismatch (torn page) returns kDataLoss.
  Status ReadPage(page_id_t page_id, Page* out) override;

  /// Snapshot a page's current bytes with zero accounting side effects
  /// (no charge, no fault point, no counters): the parallel executors'
  /// lookahead read. Checksum is still verified; a mismatch fails
  /// silently (without counting) so the foreground's replayed ReadPage
  /// reports the loss exactly as the sequential engine would.
  Status PeekPage(page_id_t page_id, Page* out) override;

  /// Copy page contents in -> write cache (volatile until the next
  /// Sync). Charges one block write.
  Status WritePage(page_id_t page_id, const Page& in) override;

  /// Make every cached write durable (fsync barrier): contents reach the
  /// durable image and their checksums are recomputed atomically.
  Status Sync() override;

  /// Power-cut: discard all unsynced writes; the most recent in-flight
  /// write (if any) tears — half of it reaches the durable image with a
  /// stale checksum. Subsequent operations fail with kDataLoss until
  /// Restart().
  void SimulateCrash();

  /// Re-mount after a crash (or a clean close): drops whatever is still
  /// in the volatile cache and clears the crashed flag. The caller
  /// (Database::Reopen) then replays its manifest against the durable
  /// image.
  void Restart();

  bool has_crashed() const { return crashed_; }

  uint64_t allocated_pages() const { return store_.size(); }
  uint64_t live_pages() const { return live_pages_; }
  /// Writes sitting in the volatile cache (lost if we crash now).
  uint64_t unsynced_pages() const { return unsynced_.size(); }
  /// Checksum verification failures served as kDataLoss so far.
  uint64_t checksum_failures() const { return checksum_failures_; }
  /// Pages torn by crashes so far.
  uint64_t torn_pages() const { return torn_pages_; }
  uint64_t sync_count() const { return sync_count_; }

  /// Ids of every live page (recovery uses this to find orphans).
  std::vector<page_id_t> LivePages() const override;

 private:
  /// Strip this disk's node tag; reject ids belonging to another node.
  bool OwnsId(page_id_t page_id) const { return PageNode(page_id) == node_; }

  /// Move one cached write into the durable image with a fresh checksum.
  void MakeDurable(page_id_t local_id, const Page& in);

  CostMeter* meter_;
  uint32_t node_;
  std::vector<std::unique_ptr<Page>> store_;  // durable image, local ids
  std::vector<uint32_t> checksums_;           // sidecar, one per page
  std::vector<bool> live_;
  /// Volatile write cache: ordered so crash/sync order is deterministic.
  /// Keyed by local id.
  std::map<page_id_t, std::unique_ptr<Page>> unsynced_;
  /// Most recent unsynced write (local id) — the crash-tear candidate.
  page_id_t last_unsynced_write_ = kInvalidPageId;
  bool crashed_ = false;
  uint64_t live_pages_ = 0;
  uint64_t checksum_failures_ = 0;
  uint64_t torn_pages_ = 0;
  uint64_t sync_count_ = 0;
  // Fault-point names, built once from the prefix (hot-path checks must
  // not concatenate strings).
  std::string point_allocate_;
  std::string point_read_;
  std::string point_write_;
  std::string point_crash_;
  std::string point_sync_delay_;
  // Registry handles (DESIGN.md §9), looked up once at construction.
  Counter* m_reads_;
  Counter* m_writes_;
  Counter* m_syncs_;
  Counter* m_checksum_failures_;
  Counter* m_torn_pages_;
  Counter* m_crashes_;
};

}  // namespace sqp
