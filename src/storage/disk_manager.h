// Simulated disk.
//
// Backing store is main memory; "I/O" charges simulated time through the
// shared CostMeter. This stands in for the paper's physical disk: the
// experiments depend only on relative I/O volumes (see DESIGN.md §2).
//
// Every operation can fail: the fault points "disk.allocate",
// "disk.read", and "disk.write" let the chaos harness inject transient
// or permanent I/O errors, which propagate as Status through the buffer
// pool and up to whoever issued the operation.
#pragma once

#include <memory>
#include <vector>

#include "common/cost_meter.h"
#include "common/status.h"
#include "storage/page.h"

namespace sqp {

class DiskManager {
 public:
  explicit DiskManager(CostMeter* meter) : meter_(meter) {}

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocate a fresh zeroed page on disk; returns its id.
  Result<page_id_t> AllocatePage();

  /// Free a page (space returns to the allocator; id is never reused).
  void DeallocatePage(page_id_t page_id);

  /// Copy page contents disk -> out. Charges one block read.
  Status ReadPage(page_id_t page_id, Page* out);

  /// Copy page contents in -> disk. Charges one block write.
  Status WritePage(page_id_t page_id, const Page& in);

  uint64_t allocated_pages() const { return store_.size(); }
  uint64_t live_pages() const { return live_pages_; }

 private:
  CostMeter* meter_;
  std::vector<std::unique_ptr<Page>> store_;
  std::vector<bool> live_;
  uint64_t live_pages_ = 0;
};

}  // namespace sqp
