#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "common/metrics_registry.h"

namespace sqp {

BufferPool::BufferPool(PageStore* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  assert(capacity_pages > 0);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; i++) {
    free_frames_.push_back(capacity_ - 1 - i);  // hand out 0 first
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  m_hits_ = registry.GetCounter("bufferpool.hits");
  m_misses_ = registry.GetCounter("bufferpool.misses");
  m_evictions_ = registry.GetCounter("bufferpool.evictions");
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all frames pinned");
  }
  size_t idx = lru_.front();
  Frame& f = frames_[idx];
  assert(f.pin_count == 0);
  if (f.dirty) {
    // Flush before detaching: on a write failure the victim stays
    // resident, dirty, and in LRU order — nothing is lost.
    SQP_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.page));
    f.dirty = false;
  }
  lru_.pop_front();
  f.in_lru = false;
  table_.erase(f.page_id);
  m_evictions_->Increment();
  return idx;
}

Result<Page*> BufferPool::FetchPage(page_id_t page_id) {
  auto it = table_.find(page_id);
  if (it != table_.end()) {
    hits_++;
    m_hits_->Increment();
    Frame& f = frames_[it->second];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.pin_count++;
    return &f.page;
  }
  misses_++;
  m_misses_->Increment();
  auto victim = GetVictimFrame();
  if (!victim.ok()) return victim.status();
  size_t idx = *victim;
  Frame& f = frames_[idx];
  Status read = disk_->ReadPage(page_id, &f.page);
  if (!read.ok()) {
    // The victim was already detached; return it to the free list.
    f.page_id = kInvalidPageId;
    free_frames_.push_back(idx);
    return read;
  }
  f.page_id = page_id;
  f.pin_count = 1;
  f.dirty = false;
  table_[page_id] = idx;
  return &f.page;
}

Status BufferPool::PeekPage(page_id_t page_id, Page* out) {
  auto it = table_.find(page_id);
  if (it != table_.end()) {
    // Resident (possibly dirty) frame: its bytes are the page's current
    // contents. No hit tally, no LRU touch — the replayed FetchPage
    // does that bookkeeping.
    std::memcpy(out->raw(), frames_[it->second].page.raw(), kPageSize);
    return Status::OK();
  }
  return disk_->PeekPage(page_id, out);
}

Result<std::pair<page_id_t, Page*>> BufferPool::NewPage(
    const PageAllocOptions& options) {
  auto victim = GetVictimFrame();
  if (!victim.ok()) return victim.status();
  size_t idx = *victim;
  Frame& f = frames_[idx];
  auto allocated = disk_->AllocatePage(options);
  if (!allocated.ok()) {
    f.page_id = kInvalidPageId;
    free_frames_.push_back(idx);
    return allocated.status();
  }
  page_id_t page_id = *allocated;
  f.page.Init();
  f.page_id = page_id;
  f.pin_count = 1;
  f.dirty = true;
  table_[page_id] = idx;
  return std::make_pair(page_id, &f.page);
}

void BufferPool::UnpinPage(page_id_t page_id, bool dirty) {
  auto it = table_.find(page_id);
  assert(it != table_.end() && "unpin of non-resident page");
  Frame& f = frames_[it->second];
  assert(f.pin_count > 0 && "unpin without pin");
  f.dirty |= dirty;
  if (--f.pin_count == 0) {
    f.lru_pos = lru_.insert(lru_.end(), it->second);
    f.in_lru = true;
  }
}

Status BufferPool::FlushPage(page_id_t page_id) {
  auto it = table_.find(page_id);
  if (it == table_.end()) return Status::OK();
  Frame& f = frames_[it->second];
  if (f.dirty) {
    SQP_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.page));
    f.dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& [page_id, idx] : table_) {
    Frame& f = frames_[idx];
    if (f.dirty) {
      SQP_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.page));
      f.dirty = false;
    }
  }
  // Flush barrier: everything written above (and any earlier per-page
  // flushes) becomes durable, not merely cached.
  return disk_->Sync();
}

Status BufferPool::Reset() {
  SQP_RETURN_IF_ERROR(FlushAll());
  for (auto& [page_id, idx] : table_) {
    Frame& f = frames_[idx];
    assert(f.pin_count == 0 && "Reset with pinned pages");
    f.page_id = kInvalidPageId;
  }
  table_.clear();
  lru_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < capacity_; i++) {
    frames_[i].in_lru = false;
    free_frames_.push_back(capacity_ - 1 - i);
  }
  hits_ = 0;
  misses_ = 0;
  return Status::OK();
}

void BufferPool::EvictPage(page_id_t page_id) {
  auto it = table_.find(page_id);
  if (it == table_.end()) return;
  Frame& f = frames_[it->second];
  assert(f.pin_count == 0 && "evicting pinned page");
  // Dropped pages do not need their contents preserved; skip the flush.
  f.dirty = false;
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  free_frames_.push_back(it->second);
  f.page_id = kInvalidPageId;
  table_.erase(it);
}

}  // namespace sqp
