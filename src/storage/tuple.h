// Tuple = row of Values, with a compact on-page serialization.
#pragma once

#include <cstdint>
#include <vector>

#include "common/value.h"

namespace sqp {

using Tuple = std::vector<Value>;

/// Serialize `tuple` into `out` (appended). Format per value:
///   tag byte (TypeId) | payload (8B numeric, or u32 len + bytes).
void SerializeTuple(const Tuple& tuple, std::vector<uint8_t>* out);

/// Parse one tuple from `data[0..len)`. Asserts on malformed input
/// (pages are produced only by SerializeTuple).
Tuple DeserializeTuple(const uint8_t* data, size_t len);

/// Parse one tuple from `data[0..len)` into `*out` (cleared first).
/// Reuses out's existing heap capacity, so decoding into a recycled
/// TupleBatch slot is allocation-free for numeric rows.
void DeserializeTupleInto(const uint8_t* data, size_t len, Tuple* out);

/// Serialized size of a tuple, for page-fit checks.
size_t SerializedTupleSize(const Tuple& tuple);

}  // namespace sqp
