// Unified metrics registry (DESIGN.md §9).
//
// One process-wide (or locally instantiated) registry of named
// instruments — counters, gauges, and fixed-bucket histograms — that
// absorbs the scattered per-subsystem counters (EngineStats,
// RecoveryStats, buffer-pool/disk tallies) behind a single
// `MetricsRegistry::Snapshot()`. Subsystems look their instruments up
// once at construction and then touch only a pointer-stable handle, so
// the hot-path cost of a metric is one relaxed atomic add.
//
// Naming scheme: `<layer>.<subsystem>.<metric>`, lower_snake_case leaf,
// e.g. `storage.disk.reads`, `bufferpool.hits`,
// `engine.manipulations_issued`, `db.recovery.tables_recovered`,
// `sim.jobs_submitted`. Counters are cumulative and monotone; gauges
// are last-written values; histograms have a fixed bucket layout chosen
// at registration (upper bounds, with an implicit +inf overflow
// bucket), so snapshots from different runs diff bucket-by-bucket.
//
// The instruments use relaxed atomics: the simulator is
// single-threaded today, but the handles stay valid and race-free if a
// future PR moves manipulation execution onto real threads
// (lock-free-friendly by construction). Registration itself
// (GetCounter/GetGauge/GetHistogram) is not synchronized — do it at
// setup time, not on hot paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sqp {

/// Monotone cumulative count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (e.g. a level or a ratio).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// first N buckets; observations above the last bound land in the
/// implicit overflow bucket. The layout is fixed at registration so two
/// snapshots of the same metric always align bucket-for-bucket.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 buckets (last = overflow).
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const { return count() > 0 ? sum() / count() : 0.0; }

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One consistent read of every registered instrument.
struct MetricsSnapshot {
  struct HistogramEntry {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1 (overflow last)
    uint64_t count = 0;
    double sum = 0;

    /// Quantile estimate interpolated from the fixed buckets: walk to
    /// the bucket holding rank q·count, then interpolate linearly
    /// within its [lower, upper] bound range (first bucket's lower
    /// edge is 0). Observations in the open-ended overflow bucket are
    /// pinned to the last finite bound — the layout cannot resolve
    /// beyond it. Returns 0 for an empty histogram; `q` in [0, 1].
    double Quantile(double q) const;

    /// Same estimate as Quantile(), but the cumulative bucket prefix is
    /// built once and reused, so printers asking for p50/p90/p99 of the
    /// same entry pay one bucket walk instead of three. The cache keys
    /// on the entry's total count; a snapshot entry is immutable, so it
    /// never goes stale.
    double Percentile(double q) const;

   private:
    /// Lazy cumulative counts for Percentile() (cumulative_[i] = total
    /// observations in buckets [0, i]).
    mutable std::vector<uint64_t> cumulative_;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramEntry> histograms;

  /// Value of one counter (0 when absent) — convenience for tests and
  /// for diffing two snapshots.
  uint64_t counter(const std::string& name) const;

  /// Aligned text rendering, one instrument per line, sorted by name.
  std::string Format() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every built-in subsystem reports to.
  /// Tests that need isolation either ResetAll() around themselves or
  /// construct a private registry.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned handle is pointer-stable for the
  /// registry's lifetime; repeated calls with the same name return the
  /// same handle.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only when the histogram is first created; an
  /// existing histogram keeps its original layout.
  HistogramMetric* GetHistogram(const std::string& name,
                                std::vector<double> bounds = {});

  /// Default fixed layout for simulated-seconds durations.
  static const std::vector<double>& DefaultDurationBounds();

  MetricsSnapshot Snapshot() const;

  /// Zero every instrument; registrations (and handles) survive.
  void ResetAll();

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace sqp
