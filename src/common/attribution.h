// Per-session / per-operation resource attribution (DESIGN.md §16).
//
// The CostMeter answers "how much simulated work happened, in total";
// this layer answers "on whose behalf". A Database owns one
// Attribution tied to its meter. Replayers name the active session
// (SetSession) before handing the engine an event — sessions
// interleave in a multi-user replay, so the session is ambient state,
// not a stack frame — and the engine opens a strictly-nested
// AttributionScope around each unit of work it performs:
//
//   kQuery         a user's final-query execution
//   kManipulation  a speculative materialization (think-time work)
//   kMaintenance   recovery, repair, re-protection, rebalancing
//
// Accounting is *exclusive*: when a scope closes, it takes the meter
// delta since it opened (inclusive), subtracts the inclusive cost of
// scopes nested within it, and charges only the remainder to its
// (session, kind) row. Inclusive costs still surface per operation
// (EXPLAIN's attribution block, the attr.*.seconds histograms), but
// the *rows* never double count, so
//
//   sum(session rows) + unattributed() == meter totals, exactly
//
// — the invariant the fig7 table prints and tests assert. Work charged
// while no scope is open (catalog bootstrap, trace bookkeeping) is the
// unattributed remainder. Blocks/tuples are the primitive (integers,
// exact); seconds derive from them via the meter's CostConfig, so the
// identity holds in integer arithmetic, not floating-point luck.
//
// Aggregate metrics use *static* registry names (attr.query.blocks,
// attr.manipulation.seconds, ...) — per-session detail stays in this
// table, never as dynamic registry names, keeping the docs drift test
// (metrics_catalog_test) meaningful.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sqp {

class CostMeter;
class MetricsRegistry;

class Attribution {
 public:
  enum class Kind { kQuery, kManipulation, kMaintenance };
  static const char* KindName(Kind kind);

  /// Integer work tally; seconds derive via Seconds().
  struct Totals {
    uint64_t ops = 0;
    uint64_t blocks = 0;
    uint64_t tuples = 0;

    void Add(const Totals& other) {
      ops += other.ops;
      blocks += other.blocks;
      tuples += other.tuples;
    }
  };

  /// One session's exclusive-attributed work, split by kind.
  struct SessionRow {
    Totals query;
    Totals manipulation;
    Totals maintenance;

    Totals total() const {
      Totals t = query;
      t.Add(manipulation);
      t.Add(maintenance);
      return t;
    }
  };

  /// `registry` defaults to MetricsRegistry::Global() when null.
  explicit Attribution(const CostMeter* meter,
                       MetricsRegistry* registry = nullptr);

  /// Name the session subsequent scopes charge to. Empty = "system"
  /// work (engine-initiated speculation between events, maintenance).
  void SetSession(std::string label);
  const std::string& session() const { return session_; }

  /// Simulated seconds equivalent of `t` under the meter's cost rates.
  double Seconds(const Totals& t) const;

  /// Session rows, keyed by label (empty label renders as "(system)").
  const std::map<std::string, SessionRow>& sessions() const {
    return sessions_;
  }
  /// Sum of every session row (exclusive, so no double counting).
  Totals attributed() const { return attributed_; }
  /// Meter totals minus attributed() — work no scope claimed.
  Totals unattributed() const;

  /// Aligned per-session table (fig7 bench): one row per session plus
  /// "(unattributed)" and a "total" row equal to the meter totals.
  std::string FormatTable() const;

  size_t open_scopes() const { return stack_.size(); }

 private:
  friend class AttributionScope;

  size_t OpenFrame(Kind kind);
  /// Close the top frame (strict nesting). Returns inclusive totals
  /// via the scope; charges exclusive totals to the frame's row.
  void CloseFrame(size_t index, Totals* inclusive, Totals* exclusive);

  struct Frame {
    Kind kind;
    std::string session;  // session at open
    uint64_t blocks0 = 0;
    uint64_t tuples0 = 0;
    Totals children;  // inclusive totals of closed child scopes
  };

  const CostMeter* meter_;
  MetricsRegistry* registry_;
  std::string session_;
  std::vector<Frame> stack_;
  std::map<std::string, SessionRow> sessions_;
  Totals attributed_;
};

/// RAII attribution scope. Null-safe: a null Attribution* makes every
/// operation a no-op, mirroring the null-Tracer convention. Close()
/// (or destruction) pops the frame and fills inclusive()/exclusive().
class AttributionScope {
 public:
  AttributionScope(Attribution* attribution, Attribution::Kind kind);
  ~AttributionScope();

  AttributionScope(const AttributionScope&) = delete;
  AttributionScope& operator=(const AttributionScope&) = delete;

  /// Idempotent; called by the destructor if not already closed.
  void Close();

  bool closed() const { return closed_; }
  /// Valid after Close(): meter delta while the scope was open.
  const Attribution::Totals& inclusive() const { return inclusive_; }
  /// Valid after Close(): inclusive minus nested scopes' inclusive.
  const Attribution::Totals& exclusive() const { return exclusive_; }
  /// Session the scope charged (captured at open).
  const std::string& session() const { return session_; }

 private:
  Attribution* attribution_;
  size_t frame_ = 0;
  bool closed_;
  std::string session_;
  Attribution::Totals inclusive_;
  Attribution::Totals exclusive_;
};

}  // namespace sqp
