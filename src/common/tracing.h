// Structured span tracing on the simulated clock (DESIGN.md §9).
//
// The paper's whole argument is temporal — manipulations must land
// inside the user's think time to pay off (§3.1, §6) — so the harness
// records every timed step of a session as a *span* on the simulated
// clock and can export the result as Chrome `trace_event` JSON, which
// opens directly in chrome://tracing or https://ui.perfetto.dev. A
// compact text timeline serves tests and terminal inspection.
//
// Span taxonomy (category → spans/instants):
//   session       one span per replayed user session
//   edit          instant per partial-query modification event
//   manipulation  span issue → complete/cancel/abandon; instants for
//                 failures, scheduled retries, circuit-breaker opens
//   go            instant at each GO (plus wait-at-GO arguments)
//   query         span per final-query execution (submit → results)
//   recovery      instant for crash recovery / engine re-adoption
//
// Timestamps are simulated seconds (see DESIGN.md §6); the Chrome
// exporter maps them to microseconds, so 1 s of think time reads as
// 1 s in Perfetto. Lanes (e.g. "user3") become named threads, so a
// multi-user replay shows each user's session, queries, and
// manipulations stacked on its own track — overlap with think time is
// visible at a glance.
//
// The tracer is a passive recorder: a null Tracer* anywhere in the
// stack means no recording and no cost. A pluggable TraceSink observes
// records as they complete (streaming exporters, test probes).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace sqp {

/// One sample of a Chrome counter track ("C"-phase event): a named
/// track holding one or more stacked sub-series at a simulated time.
/// Emitted by the MetricsTimeline at every telemetry tick so Perfetto
/// shows queue depths, hit rates, and per-node load as counter tracks
/// aligned under the session/query spans (DESIGN.md §16).
struct CounterSample {
  std::string track;  // Perfetto counter-track name
  double t = 0;       // simulated seconds
  /// Sub-series within the track (e.g. one per worker/node); Perfetto
  /// stacks them. Keys must be stable across samples of one track.
  std::vector<std::pair<std::string, double>> values;
};

struct SpanRecord {
  enum class Kind { kSpan, kInstant };

  Kind kind = Kind::kSpan;
  std::string name;
  std::string category;
  /// Display track (Chrome thread): one per user/session, "main" else.
  std::string lane = "main";
  double start = 0;  // simulated seconds
  double end = 0;    // == start for instants
  /// Outcome: "ok", "completed", "cancelled@edit", "cancelled@go",
  /// "abandoned", "failed", ... — exported as an arg and shown in the
  /// text timeline.
  std::string status = "ok";
  std::vector<std::pair<std::string, std::string>> args;

  double duration() const { return end - start; }
};

/// Observer of completed records (spans on EndSpan, instants
/// immediately).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnRecord(const SpanRecord& record) = 0;
};

class Tracer {
 public:
  using SpanId = uint64_t;
  static constexpr SpanId kInvalidSpan = 0;

  /// Open a span at simulated time `start`. Returns a handle for
  /// EndSpan/SpanArg. Open spans are not exported until ended.
  SpanId BeginSpan(std::string name, std::string category, double start,
                   std::string lane = "main");

  /// Attach a key=value argument to an open span.
  void SpanArg(SpanId id, const std::string& key, const std::string& value);

  /// Close a span at `end` with an outcome status. Unknown ids are
  /// ignored (spans may be ended defensively on multiple paths).
  void EndSpan(SpanId id, double end, std::string status = "ok");

  /// Zero-duration event.
  void Instant(std::string name, std::string category, double t,
               std::string lane = "main",
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Record one counter-track sample (exported as a Chrome "C"-phase
  /// event). Samples of the same track should share the same key set.
  void Counter(std::string track, double t,
               std::vector<std::pair<std::string, double>> values);

  const std::vector<SpanRecord>& records() const { return records_; }
  const std::vector<CounterSample>& counter_samples() const {
    return counter_samples_;
  }
  /// Distinct counter tracks recorded so far.
  size_t counter_track_count() const;
  size_t open_spans() const { return open_.size(); }

  /// Streaming observer of completed records (nullptr to detach).
  void set_sink(TraceSink* sink) { sink_ = sink; }

  /// Drop all completed records and open spans.
  void Clear();

  /// Chrome trace_event JSON ({"traceEvents":[...]} object format):
  /// every completed span as a ph:"X" complete event, instants as
  /// ph:"i", counter samples as ph:"C" counter tracks, lanes as named
  /// threads, timestamps in microseconds sorted monotonically. Every
  /// tid used (lanes and the counter track) gets process_name /
  /// thread_name / sort-index metadata records so Perfetto shows named
  /// tracks instead of bare tids. Open spans are omitted.
  std::string ExportChromeTrace() const;

  /// Compact text timeline for tests and terminals: one line per
  /// record, sorted by start time, indented by nesting depth within
  /// the same lane.
  std::string FormatTimeline() const;

 private:
  std::map<SpanId, SpanRecord> open_;
  std::vector<SpanRecord> records_;  // completion order
  std::vector<CounterSample> counter_samples_;  // emission order
  SpanId next_id_ = 1;
  TraceSink* sink_ = nullptr;
};

/// JSON string escaping (exposed for exporter tests).
std::string JsonEscape(const std::string& text);

}  // namespace sqp
