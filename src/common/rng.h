// Deterministic random number generation for data/trace synthesis.
//
// All stochastic components (skewed data generator, user model) draw from
// an explicitly seeded Rng so that every experiment is a deterministic
// function of its seeds.
#pragma once

#include <cstdint>
#include <vector>

namespace sqp {

/// xoshiro256** generator plus the distributions the workload needs.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextUint64();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextRange(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double NextDouble(double lo, double hi);

  bool NextBool(double p_true);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Log-normal with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma);

  /// Exponential with the given rate.
  double NextExponential(double rate);

  /// Split off an independent stream (for per-user / per-table seeding).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Zipfian distribution over {0, .., n-1} with exponent theta, using the
/// Gray et al. rejection-free inverse method with precomputed constants.
/// Used to generate the paper's "high skew in fields likely to appear in
/// selections" (paper section 4.2).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace sqp
