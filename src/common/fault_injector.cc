#include "common/fault_injector.h"

namespace sqp {

namespace {
// Canonical fault points, including ones whose declaring object may
// never be constructed in a given process (e.g. multi-node points in a
// single-node test binary). "<k>" stands for a storage-node index; the
// runtime registrations use concrete indices ("node0.disk.read") and
// the drift test normalizes both sides before comparing against
// docs/FAULT_POINTS.md.
constexpr const char* kBuiltinFaultPoints[] = {
    "disk.allocate",
    "disk.read",
    "disk.write",
    "disk.crash",
    "disk.sync_delay",
    "node<k>.disk.allocate",
    "node<k>.disk.read",
    "node<k>.disk.write",
    "node<k>.disk.crash",
    "node<k>.disk.sync_delay",
    "node<k>.partition",
    "node<k>.manifest.replicate",
    "materialize.append",
    "catalog.index_build",
    "catalog.histogram_build",
    "engine.manipulation",
};
}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector = [] {
    FaultInjector built;
    for (const char* point : kBuiltinFaultPoints) {
      built.RegisterPoint(point);
    }
    return built;
  }();
  return injector;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  PointState state;
  state.spec = std::move(spec);
  points_[point] = std::move(state);
}

void FaultInjector::Disarm(const std::string& point) {
  points_.erase(point);
}

void FaultInjector::Reset() {
  points_.clear();
  total_fires_ = 0;
}

void FaultInjector::Seed(uint64_t seed) { rng_ = Rng(seed); }

Status FaultInjector::Check(const std::string& point) {
  auto it = points_.find(point);
  if (it == points_.end()) return Status::OK();
  PointState& state = it->second;
  if (state.spec.only_in_region && !InRegion()) return Status::OK();
  state.hits++;

  bool fire = false;
  switch (state.spec.trigger) {
    case FaultSpec::Trigger::kProbability:
      // Draw even when p == 0 so arming a point does not perturb the
      // deterministic stream other points see.
      fire = rng_.NextDouble() < state.spec.probability;
      break;
    case FaultSpec::Trigger::kEveryNth:
      fire = state.hits % state.spec.n == 0;
      break;
    case FaultSpec::Trigger::kOneShot:
      fire = state.hits == state.spec.n;
      break;
  }
  if (!fire) return Status::OK();
  state.fires++;
  total_fires_++;

  std::string msg = "injected fault at " + point;
  if (!state.spec.message.empty()) msg += ": " + state.spec.message;
  switch (state.spec.code) {
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case StatusCode::kDataLoss:
      return Status::DataLoss(std::move(msg));
    case StatusCode::kOk:
      break;
  }
  return Status::Internal(std::move(msg));
}

uint64_t FaultInjector::hits(const std::string& point) const {
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::fires(const std::string& point) const {
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

}  // namespace sqp
