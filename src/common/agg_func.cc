#include "common/agg_func.h"

namespace sqp {

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

}  // namespace sqp
