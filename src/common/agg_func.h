// Aggregate function tags, shared by the SQL frontend and executors.
#pragma once

namespace sqp {

enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc func);

}  // namespace sqp
