#include "common/value.h"

#include <cassert>
#include <cstdio>
#include <functional>

namespace sqp {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kInt64:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "STRING";
  }
  return "?";
}

double Value::NumericValue() const {
  if (type() == TypeId::kInt64) return static_cast<double>(AsInt64());
  assert(type() == TypeId::kDouble && "NumericValue on string");
  return AsDouble();
}

int Value::Compare(const Value& other) const {
  if (type() == TypeId::kString || other.type() == TypeId::kString) {
    assert(type() == TypeId::kString && other.type() == TypeId::kString &&
           "comparing string with numeric");
    return AsString().compare(other.AsString());
  }
  if (type() == TypeId::kInt64 && other.type() == TypeId::kInt64) {
    int64_t a = AsInt64(), b = other.AsInt64();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  double a = NumericValue(), b = other.NumericValue();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kInt64:
      return std::to_string(AsInt64());
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", AsDouble());
      return buf;
    }
    case TypeId::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case TypeId::kInt64:
      return std::hash<int64_t>{}(AsInt64());
    case TypeId::kDouble: {
      // Hash doubles through their numeric value so 3 and 3.0 (which
      // compare equal) hash equal too.
      double d = AsDouble();
      if (d == static_cast<int64_t>(d)) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case TypeId::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

size_t Value::StorageSize() const {
  switch (type()) {
    case TypeId::kInt64:
    case TypeId::kDouble:
      return 8;
    case TypeId::kString:
      return 4 + AsString().size();
  }
  return 8;
}

}  // namespace sqp
