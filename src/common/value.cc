#include "common/value.h"

#include <cassert>
#include <cstdio>
#include <functional>

namespace sqp {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kInt64:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "STRING";
  }
  return "?";
}

double Value::NumericValue() const { return NumericValueInline(); }

int Value::Compare(const Value& other) const {
  return CompareInline(other);
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kInt64:
      return std::to_string(AsInt64());
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", AsDouble());
      return buf;
    }
    case TypeId::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::Hash() const { return HashInline(); }

size_t Value::StorageSize() const {
  switch (type()) {
    case TypeId::kInt64:
    case TypeId::kDouble:
      return 8;
    case TypeId::kString:
      return 4 + AsString().size();
  }
  return 8;
}

}  // namespace sqp
