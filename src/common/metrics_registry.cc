#include "common/metrics_registry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sqp {

HistogramMetric::HistogramMetric(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); i++) counts_[i] = 0;
}

void HistogramMetric::Observe(double value) {
  size_t bucket = bounds_.size();  // overflow by default
  for (size_t i = 0; i < bounds_.size(); i++) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS add: atomic<double>::fetch_add is C++20 but not
  // universally lock-free; a CAS loop is, and contention here is nil.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

void HistogramMetric::Reset() {
  for (size_t i = 0; i <= bounds_.size(); i++) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::HistogramEntry::Quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); i++) {
    if (counts[i] == 0) continue;
    double below = static_cast<double>(seen);
    seen += counts[i];
    if (static_cast<double>(seen) < target) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: open-ended, so the best the layout can say is
      // "at least the last finite bound".
      return bounds.back();
    }
    double lower = i == 0 ? 0.0 : bounds[i - 1];
    double upper = bounds[i];
    double fraction =
        std::min(1.0, std::max(0.0, (target - below) /
                                        static_cast<double>(counts[i])));
    return lower + fraction * (upper - lower);
  }
  return bounds.back();
}

double MetricsSnapshot::HistogramEntry::Percentile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  if (cumulative_.size() != counts.size()) {
    cumulative_.resize(counts.size());
    uint64_t running = 0;
    for (size_t i = 0; i < counts.size(); i++) {
      running += counts[i];
      cumulative_[i] = running;
    }
  }
  q = std::min(1.0, std::max(0.0, q));
  double target = q * static_cast<double>(count);
  if (target == 0) {
    // Rank zero: the lower edge of the first populated bucket.
    for (size_t i = 0; i < counts.size(); i++) {
      if (counts[i] == 0) continue;
      if (i >= bounds.size()) return bounds.back();
      return i == 0 ? 0.0 : bounds[i - 1];
    }
    return bounds.back();
  }
  // First bucket whose cumulative count reaches the target rank (it is
  // necessarily populated: an empty bucket cannot cross the target).
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), target,
                             [](uint64_t cum, double t) {
                               return static_cast<double>(cum) < t;
                             });
  if (it == cumulative_.end()) return bounds.back();
  size_t i = static_cast<size_t>(it - cumulative_.begin());
  if (i >= bounds.size()) return bounds.back();  // open-ended overflow
  double below = i == 0 ? 0.0 : static_cast<double>(cumulative_[i - 1]);
  double lower = i == 0 ? 0.0 : bounds[i - 1];
  double upper = bounds[i];
  double fraction = std::min(
      1.0, std::max(0.0, (target - below) / static_cast<double>(counts[i])));
  return lower + fraction * (upper - lower);
}

std::string MetricsSnapshot::Format() const {
  std::ostringstream os;
  char line[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "  %-44s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    os << line;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(line, sizeof(line), "  %-44s %12.4f\n", name.c_str(),
                  value);
    os << line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "  %-44s n=%llu sum=%.4f mean=%.4f p50=%.4f p90=%.4f "
                  "p99=%.4f\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.sum, h.count > 0 ? h.sum / h.count : 0.0,
                  h.Percentile(0.50), h.Percentile(0.90), h.Percentile(0.99));
    os << line;
  }
  return os.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               std::vector<double> bounds) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = DefaultDurationBounds();
    slot = std::make_unique<HistogramMetric>(std::move(bounds));
  }
  return slot.get();
}

const std::vector<double>& MetricsRegistry::DefaultDurationBounds() {
  // Simulated seconds, log-ish spacing spanning sub-millisecond index
  // touches to multi-minute materializations.
  static const std::vector<double> kBounds = {
      0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10, 30, 60, 120, 300};
  return kBounds;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramEntry entry;
    entry.bounds = histogram->bounds();
    entry.counts.resize(entry.bounds.size() + 1);
    for (size_t i = 0; i < entry.counts.size(); i++) {
      entry.counts[i] = histogram->bucket_count(i);
    }
    entry.count = histogram->count();
    entry.sum = histogram->sum();
    snapshot.histograms[name] = std::move(entry);
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace sqp
