// Page checksums for torn-write detection.
//
// CRC-32 (the reflected 0xEDB88320 polynomial used by zlib, SQLite's
// WAL, and LevelDB's log format) over the full page image. The disk
// manager stores one checksum per durable page in a sidecar array and
// verifies it on every read, so a page half-written at a crash surfaces
// as kDataLoss instead of silently wrong query results.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sqp {

/// CRC-32 of `len` bytes starting at `data`.
uint32_t Crc32(const uint8_t* data, size_t len);

}  // namespace sqp
