// Runtime value model: the engine's tuples are vectors of Value.
//
// Only three physical types are needed by the TPC-H subset workload the
// paper evaluates on: 64-bit integers (keys, dates-as-int), doubles
// (prices, balances), and short strings (segments, manufacturers).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace sqp {

enum class TypeId : uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

const char* TypeName(TypeId type);

/// A single column value. Comparisons between numeric types coerce to
/// double; comparing a string with a numeric is a logic error.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  TypeId type() const { return static_cast<TypeId>(v_.index()); }
  bool is_numeric() const { return type() != TypeId::kString; }

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric view of an int64 or double value (asserts on strings).
  double NumericValue() const;

  double NumericValueInline() const {
    if (type() == TypeId::kInt64) return static_cast<double>(AsInt64());
    assert(type() == TypeId::kDouble && "NumericValue on string");
    return AsDouble();
  }

  /// Three-way comparison; totally ordered within numeric and string
  /// domains. Asserts when comparing string with numeric.
  int Compare(const Value& other) const;

  /// Same comparison, defined inline for batch-kernel inner loops
  /// where the out-of-line call (and its un-inlined type dispatch)
  /// shows up per row. Compare() delegates here — one definition.
  int CompareInline(const Value& other) const {
    if (type() == TypeId::kString || other.type() == TypeId::kString) {
      assert(type() == TypeId::kString && other.type() == TypeId::kString &&
             "comparing string with numeric");
      return AsString().compare(other.AsString());
    }
    if (type() == TypeId::kInt64 && other.type() == TypeId::kInt64) {
      int64_t a = AsInt64(), b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = NumericValueInline(), b = other.NumericValueInline();
    return a < b ? -1 : (a > b ? 1 : 0);
  }

  /// Overwrite this value from `other`, reusing existing storage when
  /// the active type matches (a string slot assigned a string keeps
  /// its heap buffer). For batch kernels recycling output rows.
  void AssignFrom(const Value& other) {
    switch (other.v_.index()) {
      case 0:
        v_ = *std::get_if<int64_t>(&other.v_);
        break;
      case 1:
        v_ = *std::get_if<double>(&other.v_);
        break;
      default:
        v_ = *std::get_if<std::string>(&other.v_);
        break;
    }
  }

  /// In-place setters for deserializing into recycled tuples.
  void Set(int64_t v) { v_ = v; }
  void Set(double v) { v_ = v; }
  void SetString(const char* data, size_t len) {
    if (std::string* s = std::get_if<std::string>(&v_)) {
      s->assign(data, len);  // reuse the existing buffer
    } else {
      v_ = std::string(data, len);
    }
  }

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  std::string ToString() const;

  /// Stable hash for hash joins and duplicate detection.
  size_t Hash() const;

  /// Same hash, inline for batch-kernel inner loops. Hash() delegates
  /// here — one definition.
  size_t HashInline() const {
    switch (type()) {
      case TypeId::kInt64:
        return std::hash<int64_t>{}(AsInt64());
      case TypeId::kDouble: {
        // Hash doubles through their numeric value so 3 and 3.0 (which
        // compare equal) hash equal too.
        double d = AsDouble();
        if (d == static_cast<int64_t>(d)) {
          return std::hash<int64_t>{}(static_cast<int64_t>(d));
        }
        return std::hash<double>{}(d);
      }
      case TypeId::kString:
        return std::hash<std::string>{}(AsString());
    }
    return 0;
  }

  /// Approximate in-memory/on-page footprint in bytes, used by the
  /// storage layer to translate tuples into page counts.
  size_t StorageSize() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace sqp
