// Runtime value model: the engine's tuples are vectors of Value.
//
// Only three physical types are needed by the TPC-H subset workload the
// paper evaluates on: 64-bit integers (keys, dates-as-int), doubles
// (prices, balances), and short strings (segments, manufacturers).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace sqp {

enum class TypeId : uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

const char* TypeName(TypeId type);

/// A single column value. Comparisons between numeric types coerce to
/// double; comparing a string with a numeric is a logic error.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  TypeId type() const { return static_cast<TypeId>(v_.index()); }
  bool is_numeric() const { return type() != TypeId::kString; }

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric view of an int64 or double value (asserts on strings).
  double NumericValue() const;

  /// Three-way comparison; totally ordered within numeric and string
  /// domains. Asserts when comparing string with numeric.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  std::string ToString() const;

  /// Stable hash for hash joins and duplicate detection.
  size_t Hash() const;

  /// Approximate in-memory/on-page footprint in bytes, used by the
  /// storage layer to translate tuples into page counts.
  size_t StorageSize() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace sqp
