#include "common/attribution.h"

#include <cstdio>
#include <sstream>

#include "common/cost_meter.h"
#include "common/metrics_registry.h"

namespace sqp {

const char* Attribution::KindName(Kind kind) {
  switch (kind) {
    case Kind::kQuery:
      return "query";
    case Kind::kManipulation:
      return "manipulation";
    case Kind::kMaintenance:
      return "maintenance";
  }
  return "unknown";
}

Attribution::Attribution(const CostMeter* meter, MetricsRegistry* registry)
    : meter_(meter),
      registry_(registry != nullptr ? registry
                                    : &MetricsRegistry::Global()) {
  // Register the attr.* family eagerly so the docs drift test sees it
  // whenever a Database exists, not only after the first scope closes.
  for (Kind kind : {Kind::kQuery, Kind::kManipulation, Kind::kMaintenance}) {
    std::string base = std::string("attr.") + KindName(kind);
    registry_->GetHistogram(base + ".seconds",
                            MetricsRegistry::DefaultDurationBounds());
    registry_->GetCounter(base + ".blocks");
    registry_->GetCounter(base + ".tuples");
  }
  registry_->GetGauge("attr.sessions");
}

void Attribution::SetSession(std::string label) {
  session_ = std::move(label);
}

double Attribution::Seconds(const Totals& t) const {
  const CostConfig& config = meter_->config();
  return static_cast<double>(t.blocks) * config.io_seconds_per_block +
         static_cast<double>(t.tuples) * config.cpu_seconds_per_tuple;
}

Attribution::Totals Attribution::unattributed() const {
  Totals t;
  uint64_t meter_blocks = meter_->blocks_read() + meter_->blocks_written();
  uint64_t meter_tuples = meter_->tuples_processed();
  t.blocks = meter_blocks - attributed_.blocks;
  t.tuples = meter_tuples - attributed_.tuples;
  return t;
}

size_t Attribution::OpenFrame(Kind kind) {
  Frame frame;
  frame.kind = kind;
  frame.session = session_;
  frame.blocks0 = meter_->blocks_read() + meter_->blocks_written();
  frame.tuples0 = meter_->tuples_processed();
  stack_.push_back(std::move(frame));
  return stack_.size() - 1;
}

void Attribution::CloseFrame(size_t index, Totals* inclusive,
                             Totals* exclusive) {
  // Strict nesting: scopes are RAII on one call chain, so the closing
  // frame is the top of the stack. Defensively pop any frames a
  // non-local exit leaked above it (their work folds into this one).
  if (index >= stack_.size()) return;
  stack_.resize(index + 1);
  Frame frame = std::move(stack_.back());
  stack_.pop_back();

  Totals incl;
  incl.ops = 1;
  incl.blocks =
      meter_->blocks_read() + meter_->blocks_written() - frame.blocks0;
  incl.tuples = meter_->tuples_processed() - frame.tuples0;

  Totals excl = incl;
  // Children's inclusive totals never exceed the parent's (same meter,
  // nested interval); the subtraction cannot underflow.
  excl.blocks -= frame.children.blocks;
  excl.tuples -= frame.children.tuples;

  if (!stack_.empty()) {
    Totals child = incl;
    stack_.back().children.Add(child);
  }

  SessionRow& row = sessions_[frame.session];
  Totals* cell = nullptr;
  switch (frame.kind) {
    case Kind::kQuery:
      cell = &row.query;
      break;
    case Kind::kManipulation:
      cell = &row.manipulation;
      break;
    case Kind::kMaintenance:
      cell = &row.maintenance;
      break;
  }
  cell->Add(excl);
  attributed_.Add(excl);

  std::string base = std::string("attr.") + KindName(frame.kind);
  // The histogram observes *inclusive* seconds (per-operation latency
  // for SLOs); the counters accumulate *exclusive* work (summable
  // across kinds without double counting).
  registry_->GetHistogram(base + ".seconds")->Observe(Seconds(incl));
  registry_->GetCounter(base + ".blocks")->Increment(excl.blocks);
  registry_->GetCounter(base + ".tuples")->Increment(excl.tuples);
  registry_->GetGauge("attr.sessions")
      ->Set(static_cast<double>(sessions_.size()));

  if (inclusive != nullptr) *inclusive = incl;
  if (exclusive != nullptr) *exclusive = excl;
}

std::string Attribution::FormatTable() const {
  std::ostringstream os;
  os << "per-session attributed cost (exclusive; simulated)\n";
  char line[192];
  std::snprintf(line, sizeof(line),
                "  %-16s %5s %9s %9s %9s %9s %10s %10s\n", "session", "ops",
                "query.s", "manip.s", "maint.s", "total.s", "blocks",
                "tuples");
  os << line;
  auto row_line = [&](const std::string& label, uint64_t ops, double query_s,
                      double manip_s, double maint_s, double total_s,
                      uint64_t blocks, uint64_t tuples) {
    std::snprintf(line, sizeof(line),
                  "  %-16s %5llu %9.3f %9.3f %9.3f %9.3f %10llu %10llu\n",
                  label.c_str(), static_cast<unsigned long long>(ops),
                  query_s, manip_s, maint_s, total_s,
                  static_cast<unsigned long long>(blocks),
                  static_cast<unsigned long long>(tuples));
    os << line;
  };
  for (const auto& [label, row] : sessions_) {
    Totals total = row.total();
    row_line(label.empty() ? "(system)" : label, total.ops,
             Seconds(row.query), Seconds(row.manipulation),
             Seconds(row.maintenance), Seconds(total), total.blocks,
             total.tuples);
  }
  Totals rest = unattributed();
  row_line("(unattributed)", 0, 0.0, 0.0, 0.0, Seconds(rest), rest.blocks,
           rest.tuples);
  SessionRow all;
  for (const auto& [label, row] : sessions_) {
    all.query.Add(row.query);
    all.manipulation.Add(row.manipulation);
    all.maintenance.Add(row.maintenance);
  }
  uint64_t meter_blocks = meter_->blocks_read() + meter_->blocks_written();
  uint64_t meter_tuples = meter_->tuples_processed();
  // The total row is the meter itself: per-kind sums plus the
  // unattributed remainder reconstruct it exactly (the invariant).
  row_line("total", attributed_.ops, Seconds(all.query),
           Seconds(all.manipulation), Seconds(all.maintenance),
           meter_->ElapsedSeconds(), meter_blocks, meter_tuples);
  return os.str();
}

AttributionScope::AttributionScope(Attribution* attribution,
                                   Attribution::Kind kind)
    : attribution_(attribution), closed_(attribution == nullptr) {
  if (attribution_ == nullptr) return;
  session_ = attribution_->session();
  frame_ = attribution_->OpenFrame(kind);
}

AttributionScope::~AttributionScope() { Close(); }

void AttributionScope::Close() {
  if (closed_) return;
  closed_ = true;
  attribution_->CloseFrame(frame_, &inclusive_, &exclusive_);
}

}  // namespace sqp
