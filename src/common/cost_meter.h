// Simulated-time accounting.
//
// The paper measures elapsed execution time on a real machine (dual P-II,
// Oracle 8i). Our substrate charges simulated seconds instead: every
// buffer-pool miss costs io_seconds_per_block, every tuple that flows
// through an executor costs cpu_seconds_per_tuple. This makes replays
// deterministic while preserving the ratios the experiments depend on
// (think time vs. materialization time vs. query time). See DESIGN.md §6.
#pragma once

#include <cstdint>

namespace sqp {

/// Cost-rate configuration shared by a Database instance.
struct CostConfig {
  /// Simulated seconds charged per page read from or written to "disk"
  /// (i.e., per buffer-pool miss / flush). 5 ms ~ a 2003-era random read.
  double io_seconds_per_block = 5e-3;
  /// Simulated seconds charged per tuple processed by an executor.
  double cpu_seconds_per_tuple = 4e-6;
  /// Memory budget of one hash join (pages). When the build side
  /// exceeds it, the join runs as a Grace hash join: both inputs are
  /// partitioned to disk and re-read, charging one extra write+read
  /// pass. 2003-era servers joined 100MB-1GB tables with a few MB of
  /// hash area — the spill I/O is what makes pre-joined materialized
  /// views competitive for large queries (paper Figure 6).
  uint64_t hash_join_memory_pages = 128;
};

/// Accumulates I/O and CPU work; converts to simulated seconds.
class CostMeter {
 public:
  explicit CostMeter(CostConfig config = CostConfig()) : config_(config) {}

  void ChargeBlockRead(uint64_t blocks = 1) { blocks_read_ += blocks; }
  void ChargeBlockWrite(uint64_t blocks = 1) { blocks_written_ += blocks; }
  void ChargeTuples(uint64_t tuples = 1) { tuples_ += tuples; }

  uint64_t blocks_read() const { return blocks_read_; }
  uint64_t blocks_written() const { return blocks_written_; }
  uint64_t tuples_processed() const { return tuples_; }

  double ElapsedSeconds() const {
    return (blocks_read_ + blocks_written_) * config_.io_seconds_per_block +
           tuples_ * config_.cpu_seconds_per_tuple;
  }

  /// Merge another meter's tally into this one. The parallel executors
  /// give each worker a private meter for its morsel's CPU work and
  /// fold the tallies into the query meter on the foreground thread, in
  /// morsel order, at the same points the sequential engine would have
  /// charged (DESIGN.md §15) — so totals agree at every fault boundary,
  /// not just at end of query.
  void Fold(const CostMeter& other) {
    blocks_read_ += other.blocks_read_;
    blocks_written_ += other.blocks_written_;
    tuples_ += other.tuples_;
  }

  void Reset() {
    blocks_read_ = 0;
    blocks_written_ = 0;
    tuples_ = 0;
  }

  const CostConfig& config() const { return config_; }

 private:
  CostConfig config_;
  uint64_t blocks_read_ = 0;
  uint64_t blocks_written_ = 0;
  uint64_t tuples_ = 0;
};

/// RAII scope that snapshots a meter and reports the delta, used to
/// time a single query or manipulation within a long-lived Database.
class CostScope {
 public:
  explicit CostScope(const CostMeter& meter)
      : meter_(meter),
        blocks0_(meter.blocks_read() + meter.blocks_written()),
        tuples0_(meter.tuples_processed()),
        seconds0_(meter.ElapsedSeconds()) {}

  double ElapsedSeconds() const {
    return meter_.ElapsedSeconds() - seconds0_;
  }
  uint64_t ElapsedBlocks() const {
    return meter_.blocks_read() + meter_.blocks_written() - blocks0_;
  }
  uint64_t ElapsedTuples() const {
    return meter_.tuples_processed() - tuples0_;
  }

 private:
  const CostMeter& meter_;
  uint64_t blocks0_;
  uint64_t tuples0_;
  double seconds0_;
};

}  // namespace sqp
