#include "common/metrics_timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/metrics_registry.h"
#include "common/task_scheduler.h"
#include "common/tracing.h"

namespace sqp {

namespace {

/// Deterministic compact number rendering for dumps: integers print
/// without a decimal point, everything else as %.10g (enough digits to
/// round-trip every value the simulator produces).
std::string FormatNum(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// storage.node<k>.disk.<leaf> → k (as string), or "" when not a
/// per-node disk series with that leaf.
std::string NodeIndex(const std::string& series, const std::string& leaf) {
  static const std::string kPrefix = "storage.node";
  if (series.compare(0, kPrefix.size(), kPrefix) != 0) return "";
  size_t i = kPrefix.size();
  size_t digits = 0;
  while (i + digits < series.size() &&
         series[i + digits] >= '0' && series[i + digits] <= '9') {
    digits++;
  }
  if (digits == 0) return "";
  if (series.compare(i + digits, std::string::npos, ".disk." + leaf) != 0) {
    return "";
  }
  return series.substr(i, digits);
}

}  // namespace

MetricsTimeline::MetricsTimeline(MetricsTimelineOptions options,
                                 MetricsRegistry* registry)
    : options_(options),
      registry_(registry != nullptr ? registry : &MetricsRegistry::Global()) {
  if (options_.interval <= 0) options_.interval = 1.0;
  if (options_.capacity == 0) options_.capacity = 1;
  // Register the self-metrics eagerly so the docs drift test sees the
  // telemetry family whenever a timeline exists.
  registry_->GetCounter("telemetry.ticks");
  registry_->GetCounter("telemetry.ticks_dropped");
  registry_->GetGauge("telemetry.series");
}

void MetricsTimeline::BeginEpoch(std::string label) {
  epoch_ = std::move(label);
  next_multiple_ = 0;
  last_tick_t_ = -1;
}

void MetricsTimeline::AdvanceTo(double t) {
  if (t < 0) return;
  // Fire every interval multiple in (last tick, t]. next_multiple_ is
  // the epoch-local phase: multiple 0 is the epoch's baseline sample.
  while (static_cast<double>(next_multiple_) * options_.interval <=
         t + 1e-12) {
    double tick_t = static_cast<double>(next_multiple_) * options_.interval;
    EmitTick(tick_t);
    next_multiple_++;
  }
}

void MetricsTimeline::Flush(double t) {
  AdvanceTo(t);
  if (t > last_tick_t_ + 1e-12) EmitTick(t);
}

void MetricsTimeline::AttachScheduler(const TaskScheduler* scheduler) {
  scheduler_ = scheduler;
  prev_worker_steals_.clear();
}

bool MetricsTimeline::IsDeterministicSeries(const std::string& series) {
  // Families whose values depend on the thread count, not the replay
  // seed: scheduler/morsel activity is wall-clock observability, the
  // batch counters follow the execution *shape* (the fused parallel
  // probe produces different batch boundaries than the sequential
  // pipeline even though rows and charges are identical), and
  // telemetry.series counts these very families once they register.
  static const char* kWallClockPrefixes[] = {"scheduler.", "exec.parallel.",
                                             "spec.parallel.", "exec.batch."};
  for (const char* prefix : kWallClockPrefixes) {
    if (series.rfind(prefix, 0) == 0) return false;
  }
  return series != "telemetry.series";
}

void MetricsTimeline::EmitTick(double t) {
  // Bump the tick counter *before* snapshotting so the tick sees its
  // own ordinal — the count is a pure function of simulated time, so
  // this stays deterministic.
  registry_->GetCounter("telemetry.ticks")->Increment();

  MetricsSnapshot snapshot = registry_->Snapshot();

  TimelineTick tick;
  tick.epoch = epoch_;
  tick.index = tick_index_++;
  tick.t = t;
  tick.points.reserve(snapshot.counters.size() + snapshot.gauges.size() +
                      2 * snapshot.histograms.size());
  auto add_point = [&](const std::string& series, double value) {
    TimelineTick::Point point;
    point.series = series;
    point.value = value;
    auto [it, inserted] = prev_.emplace(series, 0.0);
    point.delta = value - it->second;
    it->second = value;
    tick.points.push_back(std::move(point));
  };
  // std::map iteration is name-sorted, and histogram-derived series
  // sort adjacently, so one merged pass keeps points sorted by name.
  for (const auto& [name, value] : snapshot.counters) {
    add_point(name, static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) add_point(name, value);
  for (const auto& [name, entry] : snapshot.histograms) {
    add_point(name + ".count", static_cast<double>(entry.count));
    add_point(name + ".sum", entry.sum);
  }
  std::sort(tick.points.begin(), tick.points.end(),
            [](const TimelineTick::Point& a, const TimelineTick::Point& b) {
              return a.series < b.series;
            });
  registry_->GetGauge("telemetry.series")
      ->Set(static_cast<double>(tick.points.size()));

  // Perfetto counter tracks, aligned under the spans at this tick.
  if (tracer_ != nullptr) {
    const std::string prefix = epoch_.empty() ? "" : epoch_ + "/";
    auto delta_of = [&](const std::string& series) {
      auto it = std::lower_bound(
          tick.points.begin(), tick.points.end(), series,
          [](const TimelineTick::Point& p, const std::string& name) {
            return p.series < name;
          });
      if (it == tick.points.end() || it->series != series) return 0.0;
      return it->delta;
    };
    auto value_of = [&](const std::string& series, bool* found) {
      auto it = std::lower_bound(
          tick.points.begin(), tick.points.end(), series,
          [](const TimelineTick::Point& p, const std::string& name) {
            return p.series < name;
          });
      *found = it != tick.points.end() && it->series == series;
      return *found ? it->value : 0.0;
    };

    if (scheduler_ != nullptr) {
      auto samples = scheduler_->SampleWorkers();
      prev_worker_steals_.resize(samples.size(), 0);
      std::vector<std::pair<std::string, double>> depth;
      std::vector<std::pair<std::string, double>> steals;
      for (size_t k = 0; k < samples.size(); k++) {
        std::string key = "worker" + std::to_string(k);
        depth.emplace_back(key,
                           static_cast<double>(samples[k].queued_foreground +
                                               samples[k].queued_background));
        uint64_t stolen = samples[k].tasks_stolen;
        steals.emplace_back(
            key, static_cast<double>(stolen - prev_worker_steals_[k]));
        prev_worker_steals_[k] = stolen;
      }
      tracer_->Counter(prefix + "scheduler.queue_depth", t, std::move(depth));
      tracer_->Counter(prefix + "scheduler.steal_rate", t, std::move(steals));
    }

    double hits = delta_of("bufferpool.hits");
    double misses = delta_of("bufferpool.misses");
    double accesses = hits + misses;
    tracer_->Counter(prefix + "bufferpool.hit_rate", t,
                     {{"ratio", accesses > 0 ? hits / accesses : 0.0}});

    std::vector<std::pair<std::string, double>> node_reads;
    std::vector<std::pair<std::string, double>> node_writes;
    for (const auto& point : tick.points) {
      std::string node = NodeIndex(point.series, "reads");
      if (!node.empty()) node_reads.emplace_back("node" + node, point.delta);
      node = NodeIndex(point.series, "writes");
      if (!node.empty()) node_writes.emplace_back("node" + node, point.delta);
    }
    bool have_disk = false;
    double disk_reads = value_of("storage.disk.reads", &have_disk);
    if (have_disk) {
      (void)disk_reads;
      tracer_->Counter(prefix + "storage.disk.io", t,
                       {{"reads", delta_of("storage.disk.reads")},
                        {"writes", delta_of("storage.disk.writes")}});
    }
    if (!node_reads.empty()) {
      tracer_->Counter(prefix + "storage.node.reads", t,
                       std::move(node_reads));
    }
    if (!node_writes.empty()) {
      tracer_->Counter(prefix + "storage.node.writes", t,
                       std::move(node_writes));
    }

    bool have = false;
    double cache_pages = value_of("spec.cache.pages", &have);
    if (have) {
      bool have_views = false;
      double views = value_of("spec.cache.views", &have_views);
      std::vector<std::pair<std::string, double>> values{
          {"pages", cache_pages}};
      if (have_views) values.emplace_back("views", views);
      tracer_->Counter(prefix + "spec.cache.pages", t, std::move(values));
    }

    double active_jobs = value_of("sim.active_jobs", &have);
    if (have) {
      tracer_->Counter(prefix + "sim.jobs", t,
                       {{"active", active_jobs},
                        {"completed", delta_of("sim.jobs_completed")}});
    }

    double xshard = value_of("storage.node.cross_shard_pages", &have);
    if (have) {
      (void)xshard;
      tracer_->Counter(prefix + "storage.cross_shard_pages", t,
                       {{"pages",
                         delta_of("storage.node.cross_shard_pages")}});
    }
  }

  last_tick_t_ = t;
  ticks_.push_back(std::move(tick));
  while (ticks_.size() > options_.capacity) {
    ticks_.pop_front();
    dropped_++;
    registry_->GetCounter("telemetry.ticks_dropped")->Increment();
  }
}

std::string MetricsTimeline::FormatCsv(bool include_nondeterministic) const {
  std::ostringstream os;
  os << "epoch,tick,t,series,value,delta,rate\n";
  for (const TimelineTick& tick : ticks_) {
    for (const TimelineTick::Point& point : tick.points) {
      if (!include_nondeterministic &&
          !IsDeterministicSeries(point.series)) {
        continue;
      }
      os << tick.epoch << "," << tick.index << "," << FormatNum(tick.t)
         << "," << point.series << "," << FormatNum(point.value) << ","
         << FormatNum(point.delta) << ","
         << FormatNum(point.delta / options_.interval) << "\n";
    }
  }
  return os.str();
}

std::string MetricsTimeline::FormatJson(bool include_nondeterministic) const {
  std::ostringstream os;
  os << "{\"interval\":" << FormatNum(options_.interval)
     << ",\"dropped\":" << dropped_ << ",\"ticks\":[";
  bool first_tick = true;
  for (const TimelineTick& tick : ticks_) {
    if (!first_tick) os << ",";
    first_tick = false;
    os << "\n{\"epoch\":\"" << JsonEscape(tick.epoch)
       << "\",\"tick\":" << tick.index << ",\"t\":" << FormatNum(tick.t)
       << ",\"series\":{";
    bool first_point = true;
    for (const TimelineTick::Point& point : tick.points) {
      if (!include_nondeterministic &&
          !IsDeterministicSeries(point.series)) {
        continue;
      }
      if (!first_point) os << ",";
      first_point = false;
      os << "\"" << JsonEscape(point.series) << "\":["
         << FormatNum(point.value) << "," << FormatNum(point.delta) << "]";
    }
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace sqp
