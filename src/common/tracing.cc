#include "common/tracing.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sqp {

Tracer::SpanId Tracer::BeginSpan(std::string name, std::string category,
                                 double start, std::string lane) {
  SpanId id = next_id_++;
  SpanRecord record;
  record.kind = SpanRecord::Kind::kSpan;
  record.name = std::move(name);
  record.category = std::move(category);
  record.lane = std::move(lane);
  record.start = start;
  record.end = start;
  open_.emplace(id, std::move(record));
  return id;
}

void Tracer::SpanArg(SpanId id, const std::string& key,
                     const std::string& value) {
  auto it = open_.find(id);
  if (it == open_.end()) return;
  it->second.args.emplace_back(key, value);
}

void Tracer::EndSpan(SpanId id, double end, std::string status) {
  auto it = open_.find(id);
  if (it == open_.end()) return;
  SpanRecord record = std::move(it->second);
  open_.erase(it);
  // A span can never end before it started (clock is simulated and
  // monotone); clamp defensively so exports stay well-formed.
  record.end = std::max(end, record.start);
  record.status = std::move(status);
  records_.push_back(record);
  if (sink_ != nullptr) sink_->OnRecord(records_.back());
}

void Tracer::Instant(std::string name, std::string category, double t,
                     std::string lane,
                     std::vector<std::pair<std::string, std::string>> args) {
  SpanRecord record;
  record.kind = SpanRecord::Kind::kInstant;
  record.name = std::move(name);
  record.category = std::move(category);
  record.lane = std::move(lane);
  record.start = t;
  record.end = t;
  record.args = std::move(args);
  records_.push_back(std::move(record));
  if (sink_ != nullptr) sink_->OnRecord(records_.back());
}

void Tracer::Clear() {
  open_.clear();
  records_.clear();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Sorted copy: by start time; at equal starts spans precede instants
/// and longer spans precede shorter (parents before children).
std::vector<const SpanRecord*> SortedRecords(
    const std::vector<SpanRecord>& records) {
  std::vector<const SpanRecord*> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(&r);
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     if (a->start != b->start) return a->start < b->start;
                     if (a->kind != b->kind) {
                       return a->kind == SpanRecord::Kind::kSpan;
                     }
                     return a->end > b->end;
                   });
  return out;
}

int64_t Micros(double sim_seconds) {
  return static_cast<int64_t>(std::llround(sim_seconds * 1e6));
}

}  // namespace

std::string Tracer::ExportChromeTrace() const {
  std::vector<const SpanRecord*> sorted = SortedRecords(records_);

  // Deterministic lane -> tid mapping (alphabetical).
  std::map<std::string, int> lanes;
  for (const SpanRecord* r : sorted) lanes.emplace(r->lane, 0);
  int tid = 1;
  for (auto& [lane, id] : lanes) id = tid++;

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) os << ",";
    first = false;
    os << "\n" << event;
  };

  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
       "\"args\":{\"name\":\"sqp session (simulated time)\"}}");
  for (const auto& [lane, id] : lanes) {
    std::ostringstream meta;
    meta << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << id
         << ",\"args\":{\"name\":\"" << JsonEscape(lane) << "\"}}";
    emit(meta.str());
  }

  for (const SpanRecord* r : sorted) {
    std::ostringstream event;
    event << "{\"name\":\"" << JsonEscape(r->name) << "\",\"cat\":\""
          << JsonEscape(r->category) << "\",\"pid\":1,\"tid\":"
          << lanes[r->lane] << ",\"ts\":" << Micros(r->start);
    if (r->kind == SpanRecord::Kind::kSpan) {
      event << ",\"ph\":\"X\",\"dur\":" << Micros(r->end - r->start);
    } else {
      event << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    event << ",\"args\":{\"status\":\"" << JsonEscape(r->status) << "\"";
    for (const auto& [key, value] : r->args) {
      event << ",\"" << JsonEscape(key) << "\":\"" << JsonEscape(value)
            << "\"";
    }
    event << "}}";
    emit(event.str());
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

std::string Tracer::FormatTimeline() const {
  std::vector<const SpanRecord*> sorted = SortedRecords(records_);
  std::ostringstream os;
  for (size_t i = 0; i < sorted.size(); i++) {
    const SpanRecord& r = *sorted[i];
    // Nesting depth: spans in the same lane that contain this record.
    int depth = 0;
    for (size_t j = 0; j < i; j++) {
      const SpanRecord& outer = *sorted[j];
      if (outer.kind != SpanRecord::Kind::kSpan) continue;
      if (outer.lane != r.lane) continue;
      if (outer.start <= r.start + 1e-12 && outer.end >= r.end - 1e-12) {
        depth++;
      }
    }
    char head[96];
    if (r.kind == SpanRecord::Kind::kSpan) {
      std::snprintf(head, sizeof(head), "[%10.3f .. %10.3f] %-8s ",
                    r.start, r.end, r.lane.c_str());
    } else {
      std::snprintf(head, sizeof(head), "[%10.3f %13s %-8s ", r.start,
                    "]", r.lane.c_str());
    }
    os << head;
    for (int d = 0; d < depth; d++) os << "  ";
    os << r.category << ": " << r.name;
    if (r.status != "ok") os << " (" << r.status << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace sqp
