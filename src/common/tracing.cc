#include "common/tracing.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

namespace sqp {

Tracer::SpanId Tracer::BeginSpan(std::string name, std::string category,
                                 double start, std::string lane) {
  SpanId id = next_id_++;
  SpanRecord record;
  record.kind = SpanRecord::Kind::kSpan;
  record.name = std::move(name);
  record.category = std::move(category);
  record.lane = std::move(lane);
  record.start = start;
  record.end = start;
  open_.emplace(id, std::move(record));
  return id;
}

void Tracer::SpanArg(SpanId id, const std::string& key,
                     const std::string& value) {
  auto it = open_.find(id);
  if (it == open_.end()) return;
  it->second.args.emplace_back(key, value);
}

void Tracer::EndSpan(SpanId id, double end, std::string status) {
  auto it = open_.find(id);
  if (it == open_.end()) return;
  SpanRecord record = std::move(it->second);
  open_.erase(it);
  // A span can never end before it started (clock is simulated and
  // monotone); clamp defensively so exports stay well-formed.
  record.end = std::max(end, record.start);
  record.status = std::move(status);
  records_.push_back(record);
  if (sink_ != nullptr) sink_->OnRecord(records_.back());
}

void Tracer::Instant(std::string name, std::string category, double t,
                     std::string lane,
                     std::vector<std::pair<std::string, std::string>> args) {
  SpanRecord record;
  record.kind = SpanRecord::Kind::kInstant;
  record.name = std::move(name);
  record.category = std::move(category);
  record.lane = std::move(lane);
  record.start = t;
  record.end = t;
  record.args = std::move(args);
  records_.push_back(std::move(record));
  if (sink_ != nullptr) sink_->OnRecord(records_.back());
}

void Tracer::Counter(std::string track, double t,
                     std::vector<std::pair<std::string, double>> values) {
  CounterSample sample;
  sample.track = std::move(track);
  sample.t = t;
  sample.values = std::move(values);
  counter_samples_.push_back(std::move(sample));
}

size_t Tracer::counter_track_count() const {
  std::set<std::string> tracks;
  for (const auto& sample : counter_samples_) tracks.insert(sample.track);
  return tracks.size();
}

void Tracer::Clear() {
  open_.clear();
  records_.clear();
  counter_samples_.clear();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Sorted copy: by start time; at equal starts spans precede instants
/// and longer spans precede shorter (parents before children).
std::vector<const SpanRecord*> SortedRecords(
    const std::vector<SpanRecord>& records) {
  std::vector<const SpanRecord*> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(&r);
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     if (a->start != b->start) return a->start < b->start;
                     if (a->kind != b->kind) {
                       return a->kind == SpanRecord::Kind::kSpan;
                     }
                     return a->end > b->end;
                   });
  return out;
}

int64_t Micros(double sim_seconds) {
  return static_cast<int64_t>(std::llround(sim_seconds * 1e6));
}

}  // namespace

namespace {

/// Format one double as compact JSON (no trailing zeros beyond what
/// %.6g keeps, never NaN/Inf — those would unbalance the JSON).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string Tracer::ExportChromeTrace() const {
  std::vector<const SpanRecord*> sorted = SortedRecords(records_);

  // Deterministic lane -> tid mapping (alphabetical). tid 0 is reserved
  // for the telemetry counter tracks.
  std::map<std::string, int> lanes;
  for (const SpanRecord* r : sorted) lanes.emplace(r->lane, 0);
  int tid = 1;
  for (auto& [lane, id] : lanes) id = tid++;

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) os << ",";
    first = false;
    os << "\n" << event;
  };

  // Metadata records first: a process name + sort index, then a
  // thread_name and thread_sort_index for *every* tid the trace uses
  // (each lane plus the counter track), so Perfetto labels every track
  // instead of showing bare tids.
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
       "\"args\":{\"name\":\"sqp session (simulated time)\"}}");
  emit("{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
       "\"args\":{\"sort_index\":1}}");
  auto emit_thread_meta = [&](int id, const std::string& name) {
    std::ostringstream meta;
    meta << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << id
         << ",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
    emit(meta.str());
    std::ostringstream sort;
    sort << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
         << "\"tid\":" << id << ",\"args\":{\"sort_index\":" << id << "}}";
    emit(sort.str());
  };
  if (!counter_samples_.empty()) emit_thread_meta(0, "telemetry");
  for (const auto& [lane, id] : lanes) emit_thread_meta(id, lane);

  // Merge spans/instants with counter samples into one monotone
  // timestamp stream (counter samples are emitted in nondecreasing
  // simulated time; a stable sort keeps emission order at ties).
  std::vector<const CounterSample*> counters;
  counters.reserve(counter_samples_.size());
  for (const auto& sample : counter_samples_) counters.push_back(&sample);
  std::stable_sort(counters.begin(), counters.end(),
                   [](const CounterSample* a, const CounterSample* b) {
                     return a->t < b->t;
                   });

  auto emit_span = [&](const SpanRecord* r) {
    std::ostringstream event;
    event << "{\"name\":\"" << JsonEscape(r->name) << "\",\"cat\":\""
          << JsonEscape(r->category) << "\",\"pid\":1,\"tid\":"
          << lanes[r->lane] << ",\"ts\":" << Micros(r->start);
    if (r->kind == SpanRecord::Kind::kSpan) {
      event << ",\"ph\":\"X\",\"dur\":" << Micros(r->end - r->start);
    } else {
      event << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    event << ",\"args\":{\"status\":\"" << JsonEscape(r->status) << "\"";
    for (const auto& [key, value] : r->args) {
      event << ",\"" << JsonEscape(key) << "\":\"" << JsonEscape(value)
            << "\"";
    }
    event << "}}";
    emit(event.str());
  };
  auto emit_counter = [&](const CounterSample* c) {
    std::ostringstream event;
    event << "{\"name\":\"" << JsonEscape(c->track)
          << "\",\"cat\":\"telemetry\",\"ph\":\"C\",\"pid\":1,\"tid\":0,"
          << "\"ts\":" << Micros(c->t) << ",\"args\":{";
    bool first_arg = true;
    for (const auto& [key, value] : c->values) {
      if (!first_arg) event << ",";
      first_arg = false;
      event << "\"" << JsonEscape(key) << "\":" << JsonNumber(value);
    }
    event << "}}";
    emit(event.str());
  };

  size_t si = 0, ci = 0;
  while (si < sorted.size() || ci < counters.size()) {
    bool take_span =
        ci >= counters.size() ||
        (si < sorted.size() && sorted[si]->start <= counters[ci]->t);
    if (take_span) {
      emit_span(sorted[si++]);
    } else {
      emit_counter(counters[ci++]);
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

std::string Tracer::FormatTimeline() const {
  std::vector<const SpanRecord*> sorted = SortedRecords(records_);
  std::ostringstream os;
  for (size_t i = 0; i < sorted.size(); i++) {
    const SpanRecord& r = *sorted[i];
    // Nesting depth: spans in the same lane that contain this record.
    int depth = 0;
    for (size_t j = 0; j < i; j++) {
      const SpanRecord& outer = *sorted[j];
      if (outer.kind != SpanRecord::Kind::kSpan) continue;
      if (outer.lane != r.lane) continue;
      if (outer.start <= r.start + 1e-12 && outer.end >= r.end - 1e-12) {
        depth++;
      }
    }
    char head[96];
    if (r.kind == SpanRecord::Kind::kSpan) {
      std::snprintf(head, sizeof(head), "[%10.3f .. %10.3f] %-8s ",
                    r.start, r.end, r.lane.c_str());
    } else {
      std::snprintf(head, sizeof(head), "[%10.3f %13s %-8s ", r.start,
                    "]", r.lane.c_str());
    }
    os << head;
    for (int d = 0; d < depth; d++) os << "  ";
    os << r.category << ": " << r.name;
    if (r.status != "ok") os << " (" << r.status << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace sqp
