#include "common/status.h"

namespace sqp {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace sqp
