// Minimal leveled logging to stderr.
//
// Used by the speculation engine to narrate issue/cancel/GC decisions when
// verbose mode is enabled; silent by default so benches stay clean.
#pragma once

#include <sstream>
#include <string>

namespace sqp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogMessage(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= GetLogLevel()) LogMessage(level_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= GetLogLevel()) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace internal

#define SQP_LOG_DEBUG ::sqp::internal::LogLine(::sqp::LogLevel::kDebug)
#define SQP_LOG_INFO ::sqp::internal::LogLine(::sqp::LogLevel::kInfo)
#define SQP_LOG_WARN ::sqp::internal::LogLine(::sqp::LogLevel::kWarn)
#define SQP_LOG_ERROR ::sqp::internal::LogLine(::sqp::LogLevel::kError)

}  // namespace sqp
