// Task-parallel worker pool (DESIGN.md §15).
//
// A fixed-size pool of worker threads in the mxtasking/tunadb
// worker-pool style: each worker owns two task deques (foreground query
// work, background speculation work) and steals from its peers when its
// own queues drain. The scheduler exists to move *uncharged* CPU work —
// predicate evaluation, tuple decode, hash probing — off the query
// thread; it never owns determinism-sensitive state:
//
//   * Tasks must touch only data handed to them at submit time (their
//     morsel) plus frozen shared structures (a built hash table, page
//     byte snapshots). They never charge a CostMeter, fetch through the
//     buffer pool, or fire fault points — the submitting (foreground)
//     thread replays all of that in sequential order when it folds the
//     morsel's results (see exec/executors.cc).
//   * Tasks never block, submit, or wait; only the foreground thread
//     submits and waits, helping execute queued tasks while it does.
//
// Two priority classes order the *queues*, not correctness: workers
// drain foreground tasks (interactive queries) before background ones
// (speculative materializations), so speculation soaks up idle workers
// without delaying the user's query. With zero workers the scheduler is
// never constructed and every parallel code path is compiled out of the
// execution — bit-identical to the single-threaded engine.
//
// Observability: each worker keeps a private metrics shard (tasks run,
// tasks stolen) with no shared hot counter; FoldStats() folds the
// shards into the `scheduler.*` registry counters in fixed
// worker-index order on the foreground thread. Task totals are
// deterministic (every submitted task runs exactly once); the steal
// split is wall-clock scheduling and is documented as such.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sqp {

class TaskScheduler {
 public:
  enum class Priority { kForeground, kBackground };

  /// Spawn `workers` pool threads (>= 1; a zero-thread scheduler has no
  /// reason to exist — callers gate construction on exec_threads > 1).
  explicit TaskScheduler(size_t workers);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  size_t worker_count() const { return workers_.size(); }

  /// Enqueue `fn` on a worker queue (round-robin). `fn` must be
  /// self-contained: no charging, no blocking, no submitting (see file
  /// comment). Called from the foreground thread.
  void Submit(std::function<void()> fn,
              Priority priority = Priority::kForeground);

  /// Run one queued task on the calling thread (foreground helping).
  /// Returns false when every queue is empty.
  bool Help();

  /// Block until `pred()` is true, executing queued tasks while
  /// waiting. `pred` is typically "this morsel's results are
  /// published" (an acquire load of the morsel's done flag).
  void WaitFor(const std::function<bool()>& pred);

  /// Fold the per-worker metrics shards into the `scheduler.*`
  /// registry counters, in worker-index order. Foreground thread only;
  /// also called by the destructor after the pool is joined.
  void FoldStats();

  /// One worker's observable state, sampled for telemetry counter
  /// tracks (DESIGN.md §16). Queue depths take the worker's lock
  /// briefly; counters are relaxed reads. Wall-clock observability
  /// only — like scheduler.steals, never part of simulated results.
  struct WorkerSample {
    size_t queued_foreground = 0;
    size_t queued_background = 0;
    uint64_t tasks_run = 0;
    uint64_t tasks_stolen = 0;
  };

  /// Sample every worker, in worker-index order.
  std::vector<WorkerSample> SampleWorkers() const;

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> foreground;
    std::deque<std::function<void()>> background;
    // Private metrics shard: touched only by this worker's thread (and
    // by FoldStats after quiescence), relaxed atomics keep TSAN honest
    // about the fold-while-running read.
    std::atomic<uint64_t> tasks_run{0};
    std::atomic<uint64_t> tasks_stolen{0};
  };

  /// Pop one task: own queues first (foreground before background),
  /// then steal from peers in index order. `self` is the calling
  /// worker's index, or workers_.size() for the foreground thread.
  bool PopTask(size_t self, std::function<void()>* fn, bool* stolen);

  /// Wake the foreground waiter, if one is registered.
  void NotifyDone();

  void WorkerLoop(size_t index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Parking lot: workers sleep here when every queue is empty; Submit
  // wakes one. pending_ is the global queued-task count — checked under
  // park_mu_ before sleeping so a submit cannot slip between a failed
  // scan and the wait.
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<uint64_t> pending_{0};
  /// Workers currently blocked on park_cv_; Submit skips the wakeup
  /// lock + notify when zero (a parking worker re-checks pending_
  /// under park_mu_, so the fast path cannot lose a wakeup).
  std::atomic<int> parked_{0};
  std::atomic<bool> stop_{false};

  // Completion signal for WaitFor. Workers notify only while a waiter
  // is registered (done_waiters_ > 0): uncontended completions skip the
  // lock + notify syscall entirely, which matters when morsels are tiny
  // and the host is oversubscribed. The race (a completion landing
  // between a waiter's registration and its wait) is bounded by the
  // waiter's timed re-poll.
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<int> done_waiters_{0};

  std::atomic<uint64_t> submit_rr_{0};
  uint64_t folded_tasks_ = 0;
  uint64_t folded_steals_ = 0;
};

}  // namespace sqp
