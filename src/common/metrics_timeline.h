// Deterministic time-series telemetry (DESIGN.md §16).
//
// The registry (metrics_registry.h) answers "how much, in total?" —
// one cumulative snapshot at the end of a run. This sampler answers
// "when?": it snapshots the registry every `interval` *simulated*
// seconds into ring-buffered ticks (value + delta per series), so a
// replay shows scheduler queues filling, the speculative cache
// churning, or one storage node saturating while it happens.
//
// Determinism contract: ticks fire at fixed multiples of the sampling
// interval on the simulated clock, driven from the same clock-advance
// points (SimServer::AdvanceTo, replayer event loops) that drive the
// engine — never from wall time. Every series the engine charges
// through CostMeter/simulated I/O is therefore byte-identical across
// same-seed replays at any exec_threads. The handful of
// thread-count-dependent families (`scheduler.*`, `exec.parallel.*`,
// `spec.parallel.*`, the shape-dependent `exec.batch.*`, and the
// `telemetry.series` gauge that counts them) are sampled too —
// Perfetto counter tracks want them — but excluded from the
// deterministic dump by default; FormatCsv/FormatJson take an opt-in
// flag to include them.
//
// Epochs: serial harnesses (replay_trace over several single-user
// traces) restart the simulated clock at zero per replay. BeginEpoch()
// resets the tick phase so each replay gets its own clean time axis;
// the epoch label lands in the dump rows and prefixes the Perfetto
// counter-track names (empty label = no prefix, the common single-run
// case). Counter *deltas* stay valid across epochs because registry
// counters are cumulative for the process lifetime.
//
// Counter tracks: with a Tracer attached, every tick also emits Chrome
// "C"-phase samples (tracing.h) — per-worker scheduler queue depth and
// steal rate (needs AttachScheduler), buffer-pool hit rate, per-node
// storage read/write load, speculative-cache pages, simulator job
// occupancy, and cross-shard transfer pages — aligned under the
// session/query spans in Perfetto.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace sqp {

class MetricsRegistry;
class TaskScheduler;
class Tracer;

struct MetricsTimelineOptions {
  /// Simulated seconds between ticks (`telemetry_sample_interval`).
  double interval = 1.0;
  /// Max retained ticks (ring buffer): older ticks are dropped —
  /// counted in dropped_ticks() and `telemetry.ticks_dropped` — so a
  /// long soak cannot grow without bound.
  size_t capacity = 100000;
};

/// One sample of every registry series at a tick boundary.
struct TimelineTick {
  struct Point {
    std::string series;  // registry name (+ ".count"/".sum" for histos)
    double value = 0;    // cumulative value at the tick
    double delta = 0;    // change since the previous tick (any epoch)
  };

  std::string epoch;   // BeginEpoch label ("" until the first epoch)
  uint64_t index = 0;  // global tick number (monotone, counts drops)
  double t = 0;        // simulated seconds, epoch-local clock
  std::vector<Point> points;  // sorted by series name
};

class MetricsTimeline {
 public:
  /// `registry` defaults to MetricsRegistry::Global() when null.
  explicit MetricsTimeline(MetricsTimelineOptions options = {},
                           MetricsRegistry* registry = nullptr);

  /// Start a new epoch: resets the tick phase to simulated time zero
  /// and tags subsequent ticks (and counter tracks) with `label`.
  void BeginEpoch(std::string label);

  /// Advance the sampled clock to simulated time `t` (epoch-local),
  /// emitting one tick per interval multiple in (last, t]. Idempotent
  /// for non-advancing calls; the clock never moves backwards within
  /// an epoch.
  void AdvanceTo(double t);

  /// Force a final tick at exactly `t` (end-of-epoch state) if the
  /// last tick fired earlier. Call when a replay finishes so the final
  /// totals land in the series even when the run ends mid-interval.
  void Flush(double t);

  /// Attach a tracer: every tick emits Chrome counter-track samples.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Attach the worker pool so ticks can sample per-worker queue
  /// depth / steal rate (wall-clock observability; the resulting
  /// `scheduler.worker<k>.*` series are nondeterministic by contract).
  void AttachScheduler(const TaskScheduler* scheduler);

  const std::deque<TimelineTick>& ticks() const { return ticks_; }
  /// Ticks emitted over the timeline's lifetime, including dropped.
  uint64_t tick_count() const { return tick_index_; }
  uint64_t dropped_ticks() const { return dropped_; }
  double interval() const { return options_.interval; }

  /// True when `series` is simulated-clock deterministic — i.e. NOT in
  /// the thread-count-dependent families excluded from deterministic
  /// dumps (`scheduler.*`, `exec.parallel.*`, `spec.parallel.*`,
  /// `exec.batch.*`, `telemetry.series`).
  static bool IsDeterministicSeries(const std::string& series);

  /// CSV dump: header + one row per (tick, series):
  ///   epoch,tick,t,series,value,delta,rate
  /// with rate = delta / interval. Deterministic filter on by default.
  std::string FormatCsv(bool include_nondeterministic = false) const;

  /// JSON dump (same content, machine-shaped):
  ///   {"interval":..,"dropped":..,"ticks":[{"epoch":..,"tick":..,
  ///    "t":..,"series":{"name":[value,delta],..}},..]}
  std::string FormatJson(bool include_nondeterministic = false) const;

 private:
  /// Snapshot the registry (and scheduler, if attached) into one tick
  /// at epoch-local time `t`, emit counter tracks, ring-buffer it.
  void EmitTick(double t);

  MetricsTimelineOptions options_;
  MetricsRegistry* registry_;  // never null after construction
  Tracer* tracer_ = nullptr;
  const TaskScheduler* scheduler_ = nullptr;

  std::string epoch_;
  uint64_t next_multiple_ = 0;  // next interval multiple to fire
  double last_tick_t_ = -1;     // epoch-local time of the last tick
  uint64_t tick_index_ = 0;
  uint64_t dropped_ = 0;

  std::deque<TimelineTick> ticks_;
  /// Previous cumulative value per series (across epochs) for deltas.
  std::map<std::string, double> prev_;
  /// Previous per-worker steal counts for the steal-rate track.
  std::vector<uint64_t> prev_worker_steals_;
};

}  // namespace sqp
