#include "common/task_scheduler.h"

#include <chrono>

#include "common/metrics_registry.h"

namespace sqp {

TaskScheduler::TaskScheduler(size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; i++) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Register the scheduler family eagerly so the docs drift test sees
  // it whenever a parallel database exists.
  auto& registry = MetricsRegistry::Global();
  registry.GetGauge("scheduler.workers")
      ->Set(static_cast<double>(workers));
  registry.GetCounter("scheduler.tasks");
  registry.GetCounter("scheduler.steals");
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; i++) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
  FoldStats();
}

void TaskScheduler::Submit(std::function<void()> fn, Priority priority) {
  size_t target =
      submit_rr_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    Worker& w = *workers_[target];
    std::lock_guard<std::mutex> lock(w.mu);
    if (priority == Priority::kForeground) {
      w.foreground.push_back(std::move(fn));
    } else {
      w.background.push_back(std::move(fn));
    }
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Wake a parked worker only when one exists: busy workers re-check
  // pending_ themselves, and skipping the lock + notify syscall on
  // every submit matters when morsels are small. A worker entering the
  // park re-checks pending_ under park_mu_ (and the cv wait re-checks
  // its predicate before blocking), so this fast-path read cannot lose
  // a wakeup.
  if (parked_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_one();
  }
}

bool TaskScheduler::PopTask(size_t self, std::function<void()>* fn,
                            bool* stolen) {
  const size_t n = workers_.size();
  // Own queues first (workers only; the foreground helper has none).
  if (self < n) {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.foreground.empty()) {
      *fn = std::move(w.foreground.front());
      w.foreground.pop_front();
      *stolen = false;
      return true;
    }
    if (!w.background.empty()) {
      *fn = std::move(w.background.front());
      w.background.pop_front();
      *stolen = false;
      return true;
    }
  }
  // Steal: every peer's foreground work outranks anyone's background
  // work, so speculation never delays a query morsel.
  for (int pass = 0; pass < 2; pass++) {
    for (size_t k = 0; k < n; k++) {
      size_t victim = (self + 1 + k) % n;
      if (victim == self) continue;
      Worker& w = *workers_[victim];
      std::lock_guard<std::mutex> lock(w.mu);
      auto& queue = pass == 0 ? w.foreground : w.background;
      if (queue.empty()) continue;
      // Steal from the back: the owner drains the front, so contention
      // on a long morsel run stays low.
      *fn = std::move(queue.back());
      queue.pop_back();
      *stolen = true;
      return true;
    }
  }
  return false;
}

bool TaskScheduler::Help() {
  std::function<void()> fn;
  bool stolen = false;
  if (!PopTask(workers_.size(), &fn, &stolen)) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  fn();
  NotifyDone();
  return true;
}

void TaskScheduler::NotifyDone() {
  // Uncontended completions skip the lock + notify entirely; see the
  // done_waiters_ comment in the header.
  if (done_waiters_.load(std::memory_order_acquire) > 0) {
    {
      std::lock_guard<std::mutex> lock(done_mu_);
    }
    done_cv_.notify_all();
  }
}

void TaskScheduler::WaitFor(const std::function<bool()>& pred) {
  while (!pred()) {
    if (Help()) continue;
    done_waiters_.fetch_add(1, std::memory_order_release);
    {
      std::unique_lock<std::mutex> lock(done_mu_);
      if (!pred()) {
        // Bounded wait: completion notifies, but a bounded sleep also
        // re-polls for work that appeared without a completion (fresh
        // submits land on worker queues, not here) and covers the
        // benign completion-vs-registration race of the waiter fast
        // path.
        done_cv_.wait_for(lock, std::chrono::milliseconds(2));
      }
    }
    done_waiters_.fetch_sub(1, std::memory_order_release);
  }
}

void TaskScheduler::WorkerLoop(size_t index) {
  Worker& self = *workers_[index];
  for (;;) {
    std::function<void()> fn;
    bool stolen = false;
    if (PopTask(index, &fn, &stolen)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      fn();
      self.tasks_run.fetch_add(1, std::memory_order_relaxed);
      if (stolen) self.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
      NotifyDone();
      continue;
    }
    std::unique_lock<std::mutex> lock(park_mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    if (pending_.load(std::memory_order_acquire) > 0) continue;
    parked_.fetch_add(1, std::memory_order_release);
    park_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    parked_.fetch_sub(1, std::memory_order_release);
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

std::vector<TaskScheduler::WorkerSample> TaskScheduler::SampleWorkers() const {
  std::vector<WorkerSample> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) {
    WorkerSample sample;
    {
      std::lock_guard<std::mutex> lock(w->mu);
      sample.queued_foreground = w->foreground.size();
      sample.queued_background = w->background.size();
    }
    sample.tasks_run = w->tasks_run.load(std::memory_order_relaxed);
    sample.tasks_stolen = w->tasks_stolen.load(std::memory_order_relaxed);
    out.push_back(sample);
  }
  return out;
}

void TaskScheduler::FoldStats() {
  // Fixed worker-index fold order (DESIGN.md §15): the shards are
  // private per worker, so one ordered pass is race-free after the pool
  // quiesces and merely approximate while it runs.
  uint64_t tasks = 0;
  uint64_t steals = 0;
  for (const auto& w : workers_) {
    tasks += w->tasks_run.load(std::memory_order_relaxed);
    steals += w->tasks_stolen.load(std::memory_order_relaxed);
  }
  auto& registry = MetricsRegistry::Global();
  if (tasks > folded_tasks_) {
    registry.GetCounter("scheduler.tasks")->Increment(tasks - folded_tasks_);
    folded_tasks_ = tasks;
  }
  if (steals > folded_steals_) {
    registry.GetCounter("scheduler.steals")
        ->Increment(steals - folded_steals_);
    folded_steals_ = steals;
  }
}

}  // namespace sqp
