// Deterministic fault injection for robustness testing.
//
// Production code declares *fault points* — named places where an
// operation may be made to fail — with SQP_INJECT_FAULT("disk.write").
// When no fault is armed the check is a map lookup on an empty registry
// (effectively free); tests arm points with probability, every-Nth, or
// one-shot triggers and the point then returns an error Status that
// propagates through the normal Status/Result plumbing.
//
// Faults are deterministic: the schedule is a pure function of the
// injector's seed (drawn through the shared Rng), so a failing chaos run
// replays exactly. By default an armed fault only fires inside a
// ScopedFaultRegion — the speculation engine brackets manipulation work
// with one, so injected faults hit speculative work while final-query
// execution proceeds unharmed (the paper's best-effort invariant).
// Tests that want faults everywhere set FaultSpec::only_in_region=false.
//
// The simulator is single-threaded; the registry is not synchronized.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace sqp {

struct FaultSpec {
  enum class Trigger {
    kProbability,  // fire on each hit with probability `probability`
    kEveryNth,     // fire on every n-th hit (n, 2n, 3n, ...)
    kOneShot,      // fire exactly once, on the n-th hit
  };

  Trigger trigger = Trigger::kProbability;
  double probability = 0.0;
  uint64_t n = 1;
  /// The Status code the point returns when the fault fires.
  /// kResourceExhausted is retryable (transient); kInternal is not.
  StatusCode code = StatusCode::kResourceExhausted;
  std::string message;
  /// Fire only inside a ScopedFaultRegion (see file comment).
  bool only_in_region = true;

  static FaultSpec Probability(
      double p, StatusCode code = StatusCode::kResourceExhausted) {
    FaultSpec spec;
    spec.trigger = Trigger::kProbability;
    spec.probability = p;
    spec.code = code;
    return spec;
  }
  static FaultSpec EveryNth(
      uint64_t n, StatusCode code = StatusCode::kResourceExhausted) {
    FaultSpec spec;
    spec.trigger = Trigger::kEveryNth;
    spec.n = n == 0 ? 1 : n;
    spec.code = code;
    return spec;
  }
  static FaultSpec OneShot(
      uint64_t nth = 1, StatusCode code = StatusCode::kResourceExhausted) {
    FaultSpec spec;
    spec.trigger = Trigger::kOneShot;
    spec.n = nth == 0 ? 1 : nth;
    spec.code = code;
    return spec;
  }
};

class FaultInjector {
 public:
  /// The process-wide registry every fault point consults.
  static FaultInjector& Global();

  /// Arm (or re-arm, resetting counters) one fault point.
  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);

  /// Disarm everything, zero counters, leave the region depth alone.
  void Reset();

  /// Reseed the trigger stream (call before arming for a new schedule).
  void Seed(uint64_t seed);

  /// Evaluate one fault point. OK unless the point is armed and fires.
  Status Check(const std::string& point);

  /// Record `point` in the catalogue of declared fault points. Fault
  /// sites register at construction (DiskManager, router, manifest) or
  /// through the canonical builtin list; the drift test compares this
  /// set against docs/FAULT_POINTS.md so the catalogue stays honest.
  void RegisterPoint(const std::string& point) {
    registered_points_.insert(point);
  }
  const std::set<std::string>& RegisteredPoints() const {
    return registered_points_;
  }

  uint64_t hits(const std::string& point) const;
  uint64_t fires(const std::string& point) const;
  uint64_t total_fires() const { return total_fires_; }
  bool armed() const { return !points_.empty(); }

  void EnterRegion() { region_depth_++; }
  void ExitRegion() { region_depth_--; }
  bool InRegion() const { return region_depth_ > 0; }

 private:
  struct PointState {
    FaultSpec spec;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  std::map<std::string, PointState> points_;
  /// Every declared fault point (survives Reset(); doc-drift check).
  std::set<std::string> registered_points_;
  Rng rng_{0};
  int region_depth_ = 0;
  uint64_t total_fires_ = 0;
};

/// RAII marker for "speculative work in progress": region-scoped faults
/// fire only while at least one of these is alive.
class ScopedFaultRegion {
 public:
  ScopedFaultRegion() { FaultInjector::Global().EnterRegion(); }
  ~ScopedFaultRegion() { FaultInjector::Global().ExitRegion(); }
  ScopedFaultRegion(const ScopedFaultRegion&) = delete;
  ScopedFaultRegion& operator=(const ScopedFaultRegion&) = delete;
};

/// Declare a fault point: returns the injected Status from the enclosing
/// function when the point fires.
#define SQP_INJECT_FAULT(point)                                     \
  do {                                                              \
    if (::sqp::FaultInjector::Global().armed()) {                   \
      SQP_RETURN_IF_ERROR(::sqp::FaultInjector::Global().Check(point)); \
    }                                                               \
  } while (0)

}  // namespace sqp
