// Status / Result error model, in the style of RocksDB's Status.
//
// Library code in sqp never throws for anticipated failures (bad SQL,
// missing table, constraint violations); it returns Status or Result<T>.
// Logic errors (broken invariants) are guarded with assertions.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sqp {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kAlreadyExists,
  kNotSupported,
  kInternal,
  kCancelled,
};

/// Outcome of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

/// A value or an error. Use `ok()` before dereferencing.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {    // NOLINT implicit
    assert(!std::get<Status>(v_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(v_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

/// Propagate a non-OK Status from the current function.
#define SQP_RETURN_IF_ERROR(expr)        \
  do {                                   \
    ::sqp::Status _st = (expr);          \
    if (!_st.ok()) return _st;           \
  } while (0)

}  // namespace sqp
