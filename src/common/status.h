// Status / Result error model, in the style of RocksDB's Status.
//
// Library code in sqp never throws for anticipated failures (bad SQL,
// missing table, constraint violations); it returns Status or Result<T>.
// Logic errors (broken invariants) are guarded with assertions.
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace sqp {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kAlreadyExists,
  kNotSupported,
  kInternal,
  kCancelled,
  /// A resource limit or transient exhaustion (storage budget, injected
  /// transient fault). Retryable: the same operation may succeed later.
  kResourceExhausted,
  /// Durable data is unrecoverably lost or corrupt: a torn page failed
  /// its checksum, or the disk crashed and must be reopened. Never
  /// retryable — the damage is in the stored bytes, not the operation.
  kDataLoss,
  /// The system is not in a state where this operation is allowed
  /// (e.g. killing a node would break manifest quorum). The operation
  /// was refused before any state changed.
  kFailedPrecondition,
};

/// Outcome of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }

  /// Whether retrying the failed operation may succeed (transient
  /// failures: resource exhaustion). Permanent errors — bad input,
  /// broken invariants — are not retryable.
  bool IsRetryable() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

/// A value or an error. Use `ok()` before dereferencing.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {    // NOLINT implicit
    // A Result built from an OK status carries neither a value nor an
    // error; continuing would dereference an empty variant later, far
    // from the bug. Fail here with a readable message in every build.
    if (std::get<Status>(v_).ok()) {
      std::fprintf(stderr,
                   "FATAL: Result<T> constructed from an OK Status; "
                   "return the value instead\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(v_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

/// Propagate a non-OK Status from the current function.
#define SQP_RETURN_IF_ERROR(expr)        \
  do {                                   \
    ::sqp::Status _st = (expr);          \
    if (!_st.ok()) return _st;           \
  } while (0)

#define SQP_STATUS_CONCAT_IMPL(a, b) a##b
#define SQP_STATUS_CONCAT(a, b) SQP_STATUS_CONCAT_IMPL(a, b)

/// Evaluate a Result<T> expression; on error propagate its Status from
/// the current function, otherwise assign the value to `lhs` (which may
/// declare a new variable: SQP_ASSIGN_OR_RETURN(auto x, F());).
#define SQP_ASSIGN_OR_RETURN(lhs, expr)                             \
  auto SQP_STATUS_CONCAT(_sqp_result_, __LINE__) = (expr);          \
  if (!SQP_STATUS_CONCAT(_sqp_result_, __LINE__).ok()) {            \
    return SQP_STATUS_CONCAT(_sqp_result_, __LINE__).status();      \
  }                                                                 \
  lhs = std::move(*SQP_STATUS_CONCAT(_sqp_result_, __LINE__))

}  // namespace sqp
