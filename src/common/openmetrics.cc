#include "common/openmetrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/metrics_registry.h"

namespace sqp {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dots
/// (and anything else) map to underscores.
std::string Sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string Num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

std::string FormatOpenMetrics(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = Sanitize(name);
    os << "# TYPE " << prom << " counter\n";
    os << prom << "_total " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string prom = Sanitize(name);
    os << "# TYPE " << prom << " gauge\n";
    os << prom << " " << Num(value) << "\n";
  }
  for (const auto& [name, entry] : snapshot.histograms) {
    std::string prom = Sanitize(name);
    os << "# TYPE " << prom << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < entry.bounds.size(); i++) {
      cumulative += i < entry.counts.size() ? entry.counts[i] : 0;
      os << prom << "_bucket{le=\"" << Num(entry.bounds[i]) << "\"} "
         << cumulative << "\n";
    }
    os << prom << "_bucket{le=\"+Inf\"} " << entry.count << "\n";
    os << prom << "_sum " << Num(entry.sum) << "\n";
    os << prom << "_count " << entry.count << "\n";
  }
  os << "# EOF\n";
  return os.str();
}

}  // namespace sqp
