// Comparison operators shared by predicates, histograms, and the planner.
#pragma once

#include <cassert>

namespace sqp {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

inline const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

inline bool EvalCompare(int cmp, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  assert(false && "unknown CompareOp");
  return false;
}

}  // namespace sqp
