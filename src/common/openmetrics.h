// OpenMetrics / Prometheus text exposition of a MetricsSnapshot
// (DESIGN.md §16). The registry's dotted `<layer>.<subsystem>.<metric>`
// names become underscore-joined Prometheus names (dots are invalid
// there); counters gain the conventional `_total` suffix; histograms
// expose cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
// Output ends with `# EOF` per the OpenMetrics spec, so the dump can
// be scraped by any Prometheus-compatible toolchain or diffed as text.
#pragma once

#include <string>

namespace sqp {

struct MetricsSnapshot;

/// Render `snapshot` in OpenMetrics text format. Deterministic:
/// instruments sort by name, numbers render with a fixed format.
std::string FormatOpenMetrics(const MetricsSnapshot& snapshot);

}  // namespace sqp
