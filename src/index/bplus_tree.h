// In-memory B+-tree keyed by Value with Rid payloads (duplicates allowed).
//
// Nodes are memory-resident; the executor converts a scan's leaf-node
// touches and tree height into simulated I/O (see IndexScanExecutor).
// This approximates an on-disk index without a second on-disk format.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/value.h"
#include "storage/page.h"

namespace sqp {

/// Inclusive/exclusive endpoints of a one-dimensional key range.
/// Unset endpoints mean unbounded.
struct KeyRange {
  std::optional<Value> lo;
  bool lo_inclusive = true;
  std::optional<Value> hi;
  bool hi_inclusive = true;

  bool Contains(const Value& v) const;

  static KeyRange All() { return KeyRange{}; }
  static KeyRange Exactly(Value v) {
    return KeyRange{v, true, std::move(v), true};
  }
};

/// Result of a range scan, including the physical touch counts the cost
/// model needs.
struct IndexScanStats {
  size_t leaves_touched = 0;
  size_t height = 0;
};

class BPlusTree {
 public:
  explicit BPlusTree(size_t fanout = 64);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  void Insert(const Value& key, const Rid& rid);

  /// Collect rids whose key falls in `range`, in key order.
  /// `stats` (optional) receives physical touch counts.
  std::vector<Rid> RangeScan(const KeyRange& range,
                             IndexScanStats* stats = nullptr) const;

  /// Estimate leaf pages touched by a scan returning `matches` entries,
  /// without running it.
  size_t EstimateLeavesTouched(size_t matches) const;

  size_t size() const { return size_; }
  size_t height() const { return height_; }
  size_t leaf_count() const { return leaf_count_; }
  size_t fanout() const { return fanout_; }

  /// Validate B+-tree structural invariants (ordering, fill, linkage);
  /// used by property tests. Returns false and stops at first violation.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct SplitResult;

  SplitResult InsertRec(Node* node, const Value& key, const Rid& rid);
  const Node* FindLeaf(const Value& key) const;

  size_t fanout_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t height_ = 1;
  size_t leaf_count_ = 1;
};

}  // namespace sqp
