#include "index/bplus_tree.h"

#include <algorithm>
#include <cassert>

namespace sqp {

bool KeyRange::Contains(const Value& v) const {
  if (lo.has_value()) {
    int c = v.Compare(*lo);
    if (c < 0 || (c == 0 && !lo_inclusive)) return false;
  }
  if (hi.has_value()) {
    int c = v.Compare(*hi);
    if (c > 0 || (c == 0 && !hi_inclusive)) return false;
  }
  return true;
}

struct BPlusTree::Node {
  bool leaf = true;
  std::vector<Value> keys;
  // Leaf payloads, parallel to keys.
  std::vector<Rid> rids;
  // Internal children: children.size() == keys.size() + 1.
  std::vector<std::unique_ptr<Node>> children;
  // Leaf sibling chain.
  Node* next = nullptr;
};

struct BPlusTree::SplitResult {
  // Empty when no split happened.
  std::unique_ptr<Node> new_right;
  Value separator;
};

BPlusTree::BPlusTree(size_t fanout) : fanout_(fanout) {
  assert(fanout_ >= 4);
  root_ = std::make_unique<Node>();
}

BPlusTree::~BPlusTree() = default;

namespace {
// First index i with keys[i] > key (upper bound): duplicates of `key`
// route left so equal keys cluster at the end of the left sibling chain.
size_t UpperBound(const std::vector<Value>& keys, const Value& key) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (keys[mid].Compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// First index i with keys[i] >= key (lower bound).
size_t LowerBound(const std::vector<Value>& keys, const Value& key) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (keys[mid].Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}
}  // namespace

BPlusTree::SplitResult BPlusTree::InsertRec(Node* node, const Value& key,
                                            const Rid& rid) {
  if (node->leaf) {
    size_t pos = UpperBound(node->keys, key);
    node->keys.insert(node->keys.begin() + pos, key);
    node->rids.insert(node->rids.begin() + pos, rid);
    if (node->keys.size() <= fanout_) return {};
    // Split leaf in half; the separator is the first key of the right.
    size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>();
    right->leaf = true;
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->rids.assign(node->rids.begin() + mid, node->rids.end());
    node->keys.resize(mid);
    node->rids.resize(mid);
    right->next = node->next;
    node->next = right.get();
    leaf_count_++;
    Value sep = right->keys.front();
    return SplitResult{std::move(right), std::move(sep)};
  }

  size_t child_idx = UpperBound(node->keys, key);
  SplitResult split = InsertRec(node->children[child_idx].get(), key, rid);
  if (!split.new_right) return {};
  node->keys.insert(node->keys.begin() + child_idx, split.separator);
  node->children.insert(node->children.begin() + child_idx + 1,
                        std::move(split.new_right));
  if (node->keys.size() <= fanout_) return {};
  // Split internal node; middle key moves up.
  size_t mid = node->keys.size() / 2;
  auto right = std::make_unique<Node>();
  right->leaf = false;
  Value sep = node->keys[mid];
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  for (size_t i = mid + 1; i < node->children.size(); i++) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  return SplitResult{std::move(right), std::move(sep)};
}

void BPlusTree::Insert(const Value& key, const Rid& rid) {
  SplitResult split = InsertRec(root_.get(), key, rid);
  if (split.new_right) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(split.separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split.new_right));
    root_ = std::move(new_root);
    height_++;
  }
  size_++;
}

const BPlusTree::Node* BPlusTree::FindLeaf(const Value& key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t idx = LowerBound(node->keys, key);
    // Route equal keys left (they were inserted left of the separator).
    node = node->children[idx].get();
  }
  return node;
}

std::vector<Rid> BPlusTree::RangeScan(const KeyRange& range,
                                      IndexScanStats* stats) const {
  std::vector<Rid> out;
  const Node* leaf;
  size_t start;
  if (range.lo.has_value()) {
    leaf = FindLeaf(*range.lo);
    start = LowerBound(leaf->keys, *range.lo);
    // Duplicates of lo may live in the preceding leaves; FindLeaf routed
    // left of the separator so `leaf` holds the first occurrence, but if
    // lo is exclusive we may need to skip equal keys below.
  } else {
    const Node* node = root_.get();
    while (!node->leaf) node = node->children.front().get();
    leaf = node;
    start = 0;
  }
  size_t leaves = 1;
  while (leaf != nullptr) {
    for (size_t i = start; i < leaf->keys.size(); i++) {
      const Value& k = leaf->keys[i];
      if (range.hi.has_value()) {
        int c = k.Compare(*range.hi);
        if (c > 0 || (c == 0 && !range.hi_inclusive)) {
          if (stats != nullptr) {
            stats->leaves_touched = leaves;
            stats->height = height_;
          }
          return out;
        }
      }
      if (range.Contains(k)) out.push_back(leaf->rids[i]);
    }
    leaf = leaf->next;
    if (leaf != nullptr) leaves++;
    start = 0;
  }
  if (stats != nullptr) {
    stats->leaves_touched = leaves;
    stats->height = height_;
  }
  return out;
}

size_t BPlusTree::EstimateLeavesTouched(size_t matches) const {
  size_t per_leaf = std::max<size_t>(1, fanout_ / 2);
  return 1 + matches / per_leaf;
}

bool BPlusTree::CheckInvariants() const {
  // Walk the whole tree: keys non-decreasing within nodes, children
  // bracketed by separators, leaf chain sorted, size matches.
  struct Walker {
    size_t counted = 0;
    bool ok = true;

    void Walk(const Node* node, const Value* lo, const Value* hi) {
      if (!ok) return;
      for (size_t i = 0; i + 1 < node->keys.size(); i++) {
        if (node->keys[i].Compare(node->keys[i + 1]) > 0) {
          ok = false;
          return;
        }
      }
      if (!node->keys.empty()) {
        if (lo != nullptr && node->keys.front().Compare(*lo) < 0) ok = false;
        if (hi != nullptr && node->keys.back().Compare(*hi) > 0) ok = false;
        if (!ok) return;
      }
      if (node->leaf) {
        if (node->keys.size() != node->rids.size()) {
          ok = false;
          return;
        }
        counted += node->keys.size();
        return;
      }
      if (node->children.size() != node->keys.size() + 1) {
        ok = false;
        return;
      }
      for (size_t i = 0; i < node->children.size(); i++) {
        const Value* child_lo = i == 0 ? lo : &node->keys[i - 1];
        const Value* child_hi = i == node->keys.size() ? hi : &node->keys[i];
        Walk(node->children[i].get(), child_lo, child_hi);
        if (!ok) return;
      }
    }
  } walker;
  walker.Walk(root_.get(), nullptr, nullptr);
  if (!walker.ok) return false;
  if (walker.counted != size_) return false;

  // Leaf chain covers all leaves in order.
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  size_t chain = 0, chained_leaves = 0;
  const Value* prev = nullptr;
  while (node != nullptr) {
    chained_leaves++;
    for (const Value& k : node->keys) {
      if (prev != nullptr && prev->Compare(k) > 0) return false;
      prev = &k;
      chain++;
    }
    node = node->next;
  }
  return chain == size_ && chained_leaves == leaf_count_;
}

}  // namespace sqp
