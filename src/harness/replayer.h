// Single-user trace replayer (paper §4.1).
//
// Each trace is replayed twice — once under normal processing, once
// under speculative processing — against the same loaded database, with
// a cold buffer pool at the start of each replay. Event timestamps in
// the trace are think-time offsets; the replayer maps them onto the
// simulated clock by inserting each query's execution delay after its
// GO, so speculation gets exactly the think time the user exhibited.
#pragma once

#include <vector>

#include "db/database.h"
#include "harness/metrics.h"
#include "sim/sim_server.h"
#include "speculation/engine.h"
#include "trace/trace.h"

namespace sqp {

struct ReplayOptions {
  bool speculation = true;
  SpeculationEngineOptions engine;
  /// View mode for query execution under *normal* processing (kCostBased
  /// lets normal runs exploit pre-materialized views — Figure 6's
  /// "Views" configuration; with an empty registry it is a no-op).
  ViewMode normal_view_mode = ViewMode::kCostBased;
  /// Reset the buffer pool before the replay (paper methodology).
  bool cold_start = true;
  /// Historical traces to pretrain the Learner on before the replay
  /// (the paper's Learner "observes users over time"; experiments
  /// pretrain on the other users' sessions, leave-one-out).
  const std::vector<Trace>* pretrain_traces = nullptr;
  /// Optional span tracer (DESIGN.md §9): the replayer records a
  /// session span, edit instants, a query span per GO, and passes the
  /// tracer down to the engine for manipulation spans. Null = off.
  Tracer* tracer = nullptr;
  /// Display lane for this replay's spans (e.g. "user3").
  std::string trace_lane = "main";
  /// Run every final query with EXPLAIN ANALYZE (DESIGN.md §11): each
  /// QueryRecord carries a rendered per-operator profile and the
  /// profile JSON attaches to the query's trace span. Profiling is
  /// also implied by an attached tracer. Never affects simulated time.
  bool explain = false;
  /// Optional telemetry sampler (DESIGN.md §16): the replayer starts an
  /// epoch (labelled `session_label`, or "user<id>" when empty), hands
  /// the sampler to the SimServer's clock-advance points, and flushes a
  /// final tick at session end. Null = off.
  MetricsTimeline* timeline = nullptr;
  /// Session name for resource attribution and the telemetry epoch.
  /// Empty = derive "user<id>" from the trace.
  std::string session_label;
};

struct ReplayResult {
  std::vector<QueryRecord> queries;
  EngineStats engine_stats;  // zero-valued for normal replays
  double total_exec_seconds = 0;
  double session_end_time = 0;
  /// Think-time-overlap story derived from engine_stats and the two
  /// fields above (DESIGN.md §9); zero-valued for normal replays.
  OverlapStats overlap;
  /// Flight-recorder decision log (DESIGN.md §11), copied after
  /// Shutdown so every recorded round has a terminal outcome. Empty
  /// for normal replays (a disabled engine never evaluates candidates).
  std::vector<DecisionRecord> decisions;
  /// Learner calibration (Brier + reliability buckets) at session end.
  CalibrationReport calibration;
};

class TraceReplayer {
 public:
  TraceReplayer(Database* db, ReplayOptions options)
      : db_(db), options_(std::move(options)) {}

  /// Replay one trace; leaves no speculative views behind.
  Result<ReplayResult> Replay(const Trace& trace);

 private:
  Database* db_;
  ReplayOptions options_;
};

}  // namespace sqp
