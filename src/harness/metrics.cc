#include "harness/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace sqp {

double Improvement(const std::vector<QueryRecord>& normal,
                   const std::vector<QueryRecord>& speculative) {
  assert(normal.size() == speculative.size());
  double sum_normal = 0, sum_spec = 0;
  for (size_t i = 0; i < normal.size(); i++) {
    sum_normal += normal[i].seconds;
    sum_spec += speculative[i].seconds;
  }
  if (sum_normal <= 0) return 0;
  return 1.0 - sum_spec / sum_normal;
}

double ImprovementInRange(const std::vector<QueryRecord>& normal,
                          const std::vector<QueryRecord>& speculative,
                          double lo, double hi) {
  assert(normal.size() == speculative.size());
  double sum_normal = 0, sum_spec = 0;
  for (size_t i = 0; i < normal.size(); i++) {
    if (normal[i].seconds < lo || normal[i].seconds >= hi) continue;
    sum_normal += normal[i].seconds;
    sum_spec += speculative[i].seconds;
  }
  if (sum_normal <= 0) return 0;
  return 1.0 - sum_spec / sum_normal;
}

std::vector<Bucket> BucketImprovements(
    const std::vector<QueryRecord>& normal,
    const std::vector<QueryRecord>& speculative, const BucketOptions& opts) {
  assert(normal.size() == speculative.size());
  assert(opts.width > 0);
  size_t num_buckets = static_cast<size_t>(
      std::ceil(std::max(0.0, opts.hi - opts.lo) / opts.width));
  std::vector<Bucket> buckets(num_buckets);
  std::vector<double> sum_normal(num_buckets, 0), sum_spec(num_buckets, 0);

  for (size_t b = 0; b < num_buckets; b++) {
    buckets[b].lo = opts.lo + b * opts.width;
    buckets[b].hi = buckets[b].lo + opts.width;
    buckets[b].max_improvement = -1e9;
    buckets[b].min_improvement = 1e9;
  }

  for (size_t i = 0; i < normal.size(); i++) {
    double t = normal[i].seconds;
    if (t < opts.lo || t >= opts.hi) continue;
    size_t b = static_cast<size_t>((t - opts.lo) / opts.width);
    if (b >= num_buckets) continue;
    Bucket& bucket = buckets[b];
    bucket.count++;
    sum_normal[b] += t;
    sum_spec[b] += speculative[i].seconds;
    if (t > 0) {
      double per_query = 1.0 - speculative[i].seconds / t;
      bucket.max_improvement = std::max(bucket.max_improvement, per_query);
      bucket.min_improvement = std::min(bucket.min_improvement, per_query);
    }
  }

  std::vector<Bucket> out;
  for (size_t b = 0; b < num_buckets; b++) {
    Bucket& bucket = buckets[b];
    if (bucket.count < opts.min_count) continue;
    bucket.improvement =
        sum_normal[b] > 0 ? 1.0 - sum_spec[b] / sum_normal[b] : 0;
    bucket.avg_normal_seconds =
        bucket.count > 0 ? sum_normal[b] / bucket.count : 0;
    out.push_back(bucket);
  }
  return out;
}

BucketOptions AutoBuckets(const std::vector<QueryRecord>& normal,
                          size_t target_buckets, size_t min_count) {
  BucketOptions opts;
  opts.min_count = min_count;
  if (normal.empty()) {
    opts.hi = 1;
    return opts;
  }
  std::vector<double> times;
  times.reserve(normal.size());
  for (const auto& q : normal) times.push_back(q.seconds);
  std::sort(times.begin(), times.end());
  auto pct = [&](double p) {
    size_t idx = static_cast<size_t>(p * (times.size() - 1));
    return times[idx];
  };
  opts.lo = pct(0.05);
  opts.hi = pct(0.90);
  if (opts.hi <= opts.lo) opts.hi = opts.lo + 1;
  double raw_width = (opts.hi - opts.lo) / std::max<size_t>(1, target_buckets);
  // Snap to a friendly width.
  double mag = std::pow(10.0, std::floor(std::log10(raw_width)));
  double width = mag;
  for (double mult : {1.0, 2.0, 2.5, 5.0, 10.0}) {
    if (mag * mult >= raw_width) {
      width = mag * mult;
      break;
    }
  }
  opts.width = width;
  opts.lo = std::floor(opts.lo / width) * width;
  opts.hi = std::ceil(opts.hi / width) * width;
  return opts;
}

std::string FormatBuckets(const std::vector<Bucket>& buckets,
                          bool include_extremes) {
  std::ostringstream os;
  char line[160];
  if (include_extremes) {
    os << "  bucket(s)        n   improvement%   max%    min%\n";
  } else {
    os << "  bucket(s)        n   improvement%\n";
  }
  for (const auto& b : buckets) {
    if (include_extremes) {
      std::snprintf(line, sizeof(line),
                    "  [%6.2f,%6.2f) %4zu   %8.1f   %7.1f %7.1f\n", b.lo,
                    b.hi, b.count, 100 * b.improvement,
                    100 * b.max_improvement, 100 * b.min_improvement);
    } else {
      std::snprintf(line, sizeof(line), "  [%6.2f,%6.2f) %4zu   %8.1f\n",
                    b.lo, b.hi, b.count, 100 * b.improvement);
    }
    os << line;
  }
  return os.str();
}

EngineStats AggregateEngineStats(const std::vector<EngineStats>& stats) {
  EngineStats total;
  for (const EngineStats& s : stats) {
    total.manipulations_issued += s.manipulations_issued;
    total.manipulations_completed += s.manipulations_completed;
    total.cancelled_by_edit += s.cancelled_by_edit;
    total.cancelled_at_go += s.cancelled_at_go;
    total.abandoned_at_completion += s.abandoned_at_completion;
    total.views_garbage_collected += s.views_garbage_collected;
    total.waits_at_go += s.waits_at_go;
    total.total_wait_seconds += s.total_wait_seconds;
    total.total_manipulation_work += s.total_manipulation_work;
    total.manipulations_failed += s.manipulations_failed;
    total.retries += s.retries;
    total.speculation_suspended_events += s.speculation_suspended_events;
    total.views_evicted_for_budget += s.views_evicted_for_budget;
    total.views_recovered += s.views_recovered;
    total.views_dropped_at_recovery += s.views_dropped_at_recovery;
    total.wasted_manipulation_work += s.wasted_manipulation_work;
    total.predictions_scored += s.predictions_scored;
    total.brier_sum += s.brier_sum;
    total.completed_durations.insert(total.completed_durations.end(),
                                     s.completed_durations.begin(),
                                     s.completed_durations.end());
  }
  return total;
}

double MeanRootQError(const std::vector<QueryRecord>& records) {
  if (records.empty()) return 1.0;
  double sum = 0;
  for (const auto& q : records) {
    double act = std::max(1.0, static_cast<double>(q.row_count));
    double est = std::max(1.0, q.est_rows);
    sum += std::max(est / act, act / est);
  }
  return sum / static_cast<double>(records.size());
}

std::string FormatEngineStats(const EngineStats& stats) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "  manipulations: issued %zu, completed %zu, cancelled %zu "
                "(%zu by edit, %zu at GO), abandoned %zu, GC'd views %zu\n",
                stats.manipulations_issued, stats.manipulations_completed,
                stats.cancelled(), stats.cancelled_by_edit,
                stats.cancelled_at_go, stats.abandoned_at_completion,
                stats.views_garbage_collected);
  out += line;
  std::snprintf(line, sizeof(line),
                "  failures: %zu failed, %zu retries, %zu suspensions "
                "(circuit breaker), %zu budget evictions\n",
                stats.manipulations_failed, stats.retries,
                stats.speculation_suspended_events,
                stats.views_evicted_for_budget);
  out += line;
  if (stats.views_recovered > 0 || stats.views_dropped_at_recovery > 0) {
    std::snprintf(line, sizeof(line),
                  "  recovery: %zu views adopted, %zu dropped\n",
                  stats.views_recovered, stats.views_dropped_at_recovery);
    out += line;
  }
  if (stats.predictions_scored > 0) {
    std::snprintf(line, sizeof(line),
                  "  calibration: %zu f_sub predictions scored, "
                  "brier %.4f\n",
                  stats.predictions_scored,
                  stats.brier_sum /
                      static_cast<double>(stats.predictions_scored));
    out += line;
  }
  return out;
}

OverlapStats ComputeOverlap(const EngineStats& stats, double session_seconds,
                            double exec_seconds) {
  OverlapStats overlap;
  for (double d : stats.completed_durations) overlap.hidden_seconds += d;
  overlap.wasted_seconds = stats.wasted_manipulation_work;
  overlap.executed_seconds = overlap.hidden_seconds + overlap.wasted_seconds;
  overlap.think_seconds = std::max(0.0, session_seconds - exec_seconds);
  if (overlap.executed_seconds > 0) {
    overlap.overlap_fraction =
        overlap.hidden_seconds / overlap.executed_seconds;
    overlap.wasted_ratio = overlap.wasted_seconds / overlap.executed_seconds;
  }
  if (overlap.think_seconds > 0) {
    overlap.think_utilization =
        overlap.executed_seconds / overlap.think_seconds;
  }
  return overlap;
}

OverlapStats AggregateOverlap(const std::vector<OverlapStats>& stats) {
  OverlapStats total;
  for (const OverlapStats& s : stats) {
    total.executed_seconds += s.executed_seconds;
    total.hidden_seconds += s.hidden_seconds;
    total.wasted_seconds += s.wasted_seconds;
    total.think_seconds += s.think_seconds;
  }
  if (total.executed_seconds > 0) {
    total.overlap_fraction = total.hidden_seconds / total.executed_seconds;
    total.wasted_ratio = total.wasted_seconds / total.executed_seconds;
  }
  if (total.think_seconds > 0) {
    total.think_utilization = total.executed_seconds / total.think_seconds;
  }
  return total;
}

std::string FormatOverlapStats(const OverlapStats& overlap) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "  overlap: %.2fs speculative work executed during %.2fs of "
                "think time (%.2fs hidden, %.2fs wasted)\n",
                overlap.executed_seconds, overlap.think_seconds,
                overlap.hidden_seconds, overlap.wasted_seconds);
  out += line;
  std::snprintf(line, sizeof(line),
                "  overlap_fraction: %.3f  wasted_ratio: %.3f  "
                "think_utilization: %.3f\n",
                overlap.overlap_fraction, overlap.wasted_ratio,
                overlap.think_utilization);
  out += line;
  return out;
}

std::string FormatRecoveryStats(const RecoveryStats& stats) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "  recovery: %zu manifest records, %zu tables "
                "(%zu matviews), %zu views, %zu indexes, %zu histograms\n",
                stats.manifest_records_replayed, stats.tables_recovered,
                stats.matviews_recovered, stats.views_registered,
                stats.indexes_rebuilt, stats.histograms_rebuilt);
  out += line;
  std::snprintf(line, sizeof(line),
                "  damage: %zu corrupt matviews dropped, %zu torn pages "
                "detected, %zu orphan pages collected, %zu physical "
                "orphans collected\n",
                stats.corrupt_matviews_dropped, stats.torn_pages_detected,
                stats.orphan_pages_collected,
                stats.physical_orphans_collected);
  out += line;
  return out;
}

std::string FormatRepairStats(const RepairStats& stats) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "  repair: %zu pages re-protected, %zu shards re-homed, "
                "%zu members removed, %zu matviews requeued\n",
                stats.pages_reprotected, stats.shards_rehomed,
                stats.members_removed, stats.matviews_requeued);
  out += line;
  std::snprintf(line, sizeof(line),
                "  redundancy: %s (%zu pages remaining), %.4f simulated "
                "seconds\n",
                stats.complete ? "restored" : "incomplete",
                stats.pages_remaining, stats.repair_sim_seconds);
  out += line;
  return out;
}

}  // namespace sqp
