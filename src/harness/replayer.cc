#include "harness/replayer.h"

#include "common/metrics_timeline.h"

namespace sqp {

Result<ReplayResult> TraceReplayer::Replay(const Trace& trace) {
  if (options_.cold_start) SQP_RETURN_IF_ERROR(db_->ColdStart());

  // One simulator lane per storage node (DESIGN.md §14): speculative
  // manipulations queue on their home node's lane and only contend with
  // work on the same node. A single-node store gets the classic single
  // shared-capacity server.
  SimServer server(db_->storage().node_count());
  const std::string session = options_.session_label.empty()
                                  ? "user" + std::to_string(trace.user_id)
                                  : options_.session_label;
  // All work in a single-user replay — queries, speculation, recovery —
  // happens on this user's behalf.
  db_->attribution().SetSession(session);
  if (options_.timeline != nullptr) {
    // Each replay restarts the simulated clock at zero: give it its own
    // telemetry epoch so tick times stay epoch-local and monotone.
    options_.timeline->BeginEpoch(session +
                                  (options_.speculation ? "/spec" : "/normal"));
    server.set_timeline(options_.timeline);
  }
  SpeculationEngineOptions engine_options = options_.engine;
  engine_options.enabled = options_.speculation;
  engine_options.tracer = options_.tracer;
  engine_options.trace_lane = options_.trace_lane;
  SpeculationEngine engine(db_, &server, engine_options);
  // Normal replays still need the partial query tracked (for parity of
  // bookkeeping) but issue no manipulations.
  if (options_.speculation && options_.pretrain_traces != nullptr) {
    engine.PretrainLearner(*options_.pretrain_traces);
  }

  ReplayResult result;
  double exec_offset = 0;  // accumulated query execution delays
  size_t query_index = 0;

  Tracer* tracer = options_.tracer;
  Tracer::SpanId session_span = Tracer::kInvalidSpan;
  if (tracer != nullptr && !trace.events.empty()) {
    session_span =
        tracer->BeginSpan("session user" + std::to_string(trace.user_id),
                          "session", trace.events.front().timestamp,
                          options_.trace_lane);
    tracer->SpanArg(session_span, "mode",
                    options_.speculation ? "speculative" : "normal");
    tracer->SpanArg(session_span, "events",
                    std::to_string(trace.events.size()));
  }

  for (const auto& event : trace.events) {
    double sim_time = event.timestamp + exec_offset;
    server.AdvanceTo(sim_time);

    if (event.type != TraceEventType::kGo) {
      if (tracer != nullptr) {
        tracer->Instant(TraceEventTypeName(event.type), "edit", sim_time,
                        options_.trace_lane);
      }
      SQP_RETURN_IF_ERROR(engine.OnUserEvent(event, sim_time));
      continue;
    }

    // GO: finish speculation bookkeeping first. Under the paper's
    // convention this cancels any incomplete manipulation; under the §7
    // wait policy it may tell us to delay the query until a
    // near-complete materialization lands.
    QueryGraph final_query = engine.partial();
    auto submit_time = engine.OnGo(sim_time);
    if (!submit_time.ok()) return submit_time.status();
    if (*submit_time > sim_time) {
      server.AdvanceTo(*submit_time);
      SQP_RETURN_IF_ERROR(engine.ResolveWait(*submit_time));
    }

    ExecuteOptions exec;
    exec.view_mode =
        options_.speculation ? engine.final_view_mode() : options_.normal_view_mode;
    exec.explain_analyze = options_.explain || tracer != nullptr;
    auto query_result = db_->Execute(final_query, exec);
    if (!query_result.ok()) return query_result.status();

    // The query runs alone on the server (manipulations were cancelled),
    // but route it through the simulator for uniformity with the
    // multi-user replayer. On a multi-node store the replica-read
    // cursor picks the lane — a deterministic stand-in for "whichever
    // node the balanced reads last touched".
    SimServer::JobId job = server.Submit(
        query_result->seconds,
        db_->storage().read_cursor() % server.lanes());
    double done = server.RunUntilComplete(job);
    // User-perceived response time: any §7 wait is part of it.
    double duration = done - sim_time;
    exec_offset += duration;
    if (tracer != nullptr) {
      Tracer::SpanId query_span =
          tracer->BeginSpan("query " + std::to_string(query_index), "query",
                            sim_time, options_.trace_lane);
      tracer->SpanArg(query_span, "exec_s",
                      std::to_string(query_result->seconds));
      tracer->SpanArg(query_span, "rows",
                      std::to_string(query_result->row_count));
      for (const auto& view : query_result->views_used) {
        tracer->SpanArg(query_span, "view", view);
      }
      if (query_result->profile != nullptr) {
        // Perfetto renders span args inline, so the per-operator
        // profile shows up on the query span itself (DESIGN.md §11).
        tracer->SpanArg(query_span, "plan_profile",
                        query_result->profile->FormatJson());
      }
      tracer->EndSpan(query_span, done);
    }
    // Results are on screen; speculation may use the examination pause.
    SQP_RETURN_IF_ERROR(engine.OnQueryResult(done));

    QueryRecord record;
    record.index = query_index++;
    record.user_id = trace.user_id;
    record.query = std::move(final_query);
    record.seconds = duration;
    record.row_count = query_result->row_count;
    record.views_used = query_result->views_used;
    record.go_sim_time = sim_time;
    record.plan_explain = query_result->plan_explain;
    record.est_rows = query_result->est_rows;
    if (query_result->profile != nullptr) {
      record.plan_profile = query_result->profile->FormatText();
    }
    result.total_exec_seconds += duration;
    result.queries.push_back(std::move(record));
  }

  // Leave the database as we found it. Shutdown stamps terminal
  // outcomes on everything the flight recorder still has pending, so
  // copy the decision log after it.
  SQP_RETURN_IF_ERROR(engine.Shutdown());
  result.engine_stats = engine.stats();
  result.decisions.assign(engine.flight_recorder().records().begin(),
                          engine.flight_recorder().records().end());
  result.calibration = engine.flight_recorder().calibration();
  result.session_end_time = server.now();
  result.overlap = ComputeOverlap(result.engine_stats,
                                  result.session_end_time,
                                  result.total_exec_seconds);
  if (tracer != nullptr && session_span != Tracer::kInvalidSpan) {
    tracer->SpanArg(session_span, "queries",
                    std::to_string(result.queries.size()));
    tracer->EndSpan(session_span, result.session_end_time);
  }
  if (options_.timeline != nullptr) {
    options_.timeline->Flush(result.session_end_time);
  }
  db_->attribution().SetSession("");
  return result;
}

}  // namespace sqp
