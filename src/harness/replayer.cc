#include "harness/replayer.h"

namespace sqp {

Result<ReplayResult> TraceReplayer::Replay(const Trace& trace) {
  if (options_.cold_start) SQP_RETURN_IF_ERROR(db_->ColdStart());

  SimServer server;
  SpeculationEngineOptions engine_options = options_.engine;
  engine_options.enabled = options_.speculation;
  SpeculationEngine engine(db_, &server, engine_options);
  // Normal replays still need the partial query tracked (for parity of
  // bookkeeping) but issue no manipulations.
  if (options_.speculation && options_.pretrain_traces != nullptr) {
    engine.PretrainLearner(*options_.pretrain_traces);
  }

  ReplayResult result;
  double exec_offset = 0;  // accumulated query execution delays
  size_t query_index = 0;

  for (const auto& event : trace.events) {
    double sim_time = event.timestamp + exec_offset;
    server.AdvanceTo(sim_time);

    if (event.type != TraceEventType::kGo) {
      SQP_RETURN_IF_ERROR(engine.OnUserEvent(event, sim_time));
      continue;
    }

    // GO: finish speculation bookkeeping first. Under the paper's
    // convention this cancels any incomplete manipulation; under the §7
    // wait policy it may tell us to delay the query until a
    // near-complete materialization lands.
    QueryGraph final_query = engine.partial();
    auto submit_time = engine.OnGo(sim_time);
    if (!submit_time.ok()) return submit_time.status();
    if (*submit_time > sim_time) {
      server.AdvanceTo(*submit_time);
      SQP_RETURN_IF_ERROR(engine.ResolveWait(*submit_time));
    }

    ExecuteOptions exec;
    exec.view_mode =
        options_.speculation ? engine.final_view_mode() : options_.normal_view_mode;
    auto query_result = db_->Execute(final_query, exec);
    if (!query_result.ok()) return query_result.status();

    // The query runs alone on the server (manipulations were cancelled),
    // but route it through the simulator for uniformity with the
    // multi-user replayer.
    SimServer::JobId job = server.Submit(query_result->seconds);
    double done = server.RunUntilComplete(job);
    // User-perceived response time: any §7 wait is part of it.
    double duration = done - sim_time;
    exec_offset += duration;
    // Results are on screen; speculation may use the examination pause.
    SQP_RETURN_IF_ERROR(engine.OnQueryResult(done));

    QueryRecord record;
    record.index = query_index++;
    record.user_id = trace.user_id;
    record.query = std::move(final_query);
    record.seconds = duration;
    record.row_count = query_result->row_count;
    record.views_used = query_result->views_used;
    record.go_sim_time = sim_time;
    record.plan_explain = query_result->plan_explain;
    result.total_exec_seconds += duration;
    result.queries.push_back(std::move(record));
  }

  // Leave the database as we found it.
  SQP_RETURN_IF_ERROR(engine.Shutdown());
  result.engine_stats = engine.stats();
  result.session_end_time = server.now();
  return result;
}

}  // namespace sqp
