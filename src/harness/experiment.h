// Experiment drivers: the top half of each bench binary.
//
// Each driver loads a dataset, generates (or accepts) user traces,
// replays them under the configurations an experiment compares, and
// returns aligned per-query records that the metrics module buckets.
// DESIGN.md §4 maps each paper artifact to one of these drivers.
#pragma once

#include <vector>

#include "db/database.h"
#include "harness/metrics.h"
#include "harness/multi_user_replayer.h"
#include "harness/replayer.h"
#include "trace/trace_generator.h"
#include "workload/datagen.h"

namespace sqp {

struct ExperimentConfig {
  tpch::Scale scale = tpch::Scale::kSmall;
  size_t num_users = 15;
  uint64_t data_seed = 42;
  uint64_t trace_seed = 1234;
  /// "32 MB" equivalent: the small dataset is ~3x this (DESIGN.md §2).
  size_t buffer_pool_pages = 180;
  CostConfig cost;
  SpeculationEngineOptions engine;
  UserModelParams user_model;
  /// See tpch::LoadOptions::prepare_skewed_fields (ablation E8 sets
  /// false so histogram/index-creation manipulations have room to act).
  bool prepare_skewed_fields = true;
  /// Morsel worker pool width for the built database (DESIGN.md §15);
  /// 1 = serial execution.
  size_t exec_threads = 1;
  /// Simulated storage nodes (DESIGN.md §12); 1 = single-node store.
  size_t storage_nodes = 1;
  /// Optional span tracer threaded through replays and recovery
  /// (DESIGN.md §9). Null = off.
  Tracer* tracer = nullptr;
  /// Optional telemetry sampler (DESIGN.md §16): BuildDatabase attaches
  /// the scheduler probe, drivers attach it to their SimServers, and
  /// speculative replays feed it counter tracks. Null = off.
  MetricsTimeline* timeline = nullptr;
};

/// Build a database loaded with the configured dataset.
Result<std::unique_ptr<Database>> BuildDatabase(const ExperimentConfig& cfg);

/// Generate the configured trace set.
std::vector<Trace> BuildTraces(const ExperimentConfig& cfg);

struct SingleUserResult {
  std::vector<QueryRecord> normal;       // aligned with speculative
  std::vector<QueryRecord> speculative;
  std::vector<EngineStats> engine_stats;  // one per trace

  double overall_improvement = 0;
  double avg_materialization_seconds = 0;
  /// Fraction of issued manipulations still running at GO (cancelled by
  /// the conservative convention) — paper §6.1 reports 17/25/30 %.
  double noncompletion_rate = 0;
  /// Fraction cancelled earlier because an edit removed their benefit.
  double edit_cancellation_rate = 0;
  /// Fraction of speculative final queries whose plan used >=1 view.
  double rewritten_query_fraction = 0;

  size_t manipulations_issued = 0;
  size_t manipulations_completed = 0;

  /// Aggregated think-time-overlap story across the speculative replays
  /// (DESIGN.md §9).
  OverlapStats overlap;
};

/// E3/E4/E5: replay every trace twice (normal, speculative).
Result<SingleUserResult> RunSingleUserExperiment(const ExperimentConfig& cfg);

/// Materialize the join of every connected subset (>= 2 relations) of
/// the TPC-H subset schema, all attributes kept — Figure 6's extreme
/// pre-materialized-views configuration. Returns the view count.
Result<size_t> PrematerializeAllJoins(Database* db);

struct MatViewsResult {
  std::vector<QueryRecord> normal;      // no views, no speculation
  std::vector<QueryRecord> views_only;  // pre-materialized views
  std::vector<QueryRecord> spec_only;   // speculation, no views
  std::vector<QueryRecord> spec_views;  // both
};

/// E6 (Figure 6): four aligned runs per trace.
Result<MatViewsResult> RunMatViewsExperiment(const ExperimentConfig& cfg);

struct MultiUserResult {
  std::vector<QueryRecord> normal;
  std::vector<QueryRecord> speculative;
  std::vector<EngineStats> engine_stats;
  double overall_improvement = 0;
  /// Aggregated across all users and groups (DESIGN.md §9).
  OverlapStats overlap;
  /// Per-session attributed cost table over the whole experiment
  /// (Attribution::FormatTable — DESIGN.md §16): one row per session,
  /// plus "(unattributed)" and a "total" row equal to the meter.
  std::string attribution_table;
};

/// E7 (Figure 7): traces replayed in groups of `group_size` concurrent
/// users; speculative vs normal.
Result<MultiUserResult> RunMultiUserExperiment(const ExperimentConfig& cfg,
                                               size_t group_size = 3);

}  // namespace sqp
