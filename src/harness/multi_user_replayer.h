// Multi-user replayer (paper §6.3): several traces replayed
// simultaneously against one database and one processor-sharing server,
// so queries and speculative manipulations of different users slow each
// other down. Each user gets an independent speculation engine (the
// paper's cost model deliberately ignores other users).
#pragma once

#include <memory>
#include <vector>

#include "db/database.h"
#include "harness/metrics.h"
#include "sim/sim_server.h"
#include "speculation/engine.h"
#include "trace/trace.h"

namespace sqp {

struct MultiUserReplayOptions {
  bool speculation = true;
  /// Per-user engines clone these options (with distinct table
  /// prefixes). The paper's multi-user runs restrict the manipulation
  /// space to selection materializations only.
  SpeculationEngineOptions engine;
  ViewMode normal_view_mode = ViewMode::kCostBased;
  bool cold_start = true;
  /// Optional span tracer (DESIGN.md §9): each user's session, queries,
  /// and manipulations land on a "user<N>" lane, so the exported Chrome
  /// trace shows the users' overlap on the shared server.
  Tracer* tracer = nullptr;
  /// Run every final query with EXPLAIN ANALYZE (DESIGN.md §11); also
  /// implied by an attached tracer. Never affects simulated time.
  bool explain = false;
  /// Optional telemetry sampler (DESIGN.md §16), driven from the shared
  /// server's clock-advance points. The whole multi-user run is one
  /// epoch (one shared simulated clock). Null = off.
  MetricsTimeline* timeline = nullptr;
  /// Epoch label for this run's ticks and counter tracks ("" = plain
  /// track names, the single-run case).
  std::string timeline_epoch;
};

struct MultiUserReplayResult {
  /// Per-user query records, index-aligned with the input traces.
  std::vector<std::vector<QueryRecord>> per_user;
  std::vector<EngineStats> engine_stats;
  double session_end_time = 0;
  /// Per-user overlap stories, index-aligned with engine_stats
  /// (DESIGN.md §9).
  std::vector<OverlapStats> overlap;

  /// All query records flattened (order: user-major).
  std::vector<QueryRecord> Flatten() const;
};

class MultiUserReplayer {
 public:
  MultiUserReplayer(Database* db, MultiUserReplayOptions options)
      : db_(db), options_(std::move(options)) {}

  Result<MultiUserReplayResult> Replay(const std::vector<Trace>& traces);

 private:
  Database* db_;
  MultiUserReplayOptions options_;
};

}  // namespace sqp
