#include "harness/multi_user_replayer.h"

#include <cassert>
#include <limits>

#include "common/metrics_timeline.h"

namespace sqp {

std::vector<QueryRecord> MultiUserReplayResult::Flatten() const {
  std::vector<QueryRecord> out;
  for (const auto& user : per_user) {
    out.insert(out.end(), user.begin(), user.end());
  }
  return out;
}

Result<MultiUserReplayResult> MultiUserReplayer::Replay(
    const std::vector<Trace>& traces) {
  if (options_.cold_start) SQP_RETURN_IF_ERROR(db_->ColdStart());

  // One simulator lane per storage node (DESIGN.md §14); single-node
  // stores get the classic shared-capacity server the paper's §6.3
  // experiment assumes.
  SimServer server(db_->storage().node_count());
  if (options_.timeline != nullptr) {
    options_.timeline->BeginEpoch(options_.timeline_epoch);
    server.set_timeline(options_.timeline);
  }
  const size_t n = traces.size();

  struct UserState {
    std::unique_ptr<SpeculationEngine> engine;
    size_t next_event = 0;
    double exec_offset = 0;  // accumulated query delays
    bool waiting = false;    // query in flight
    SimServer::JobId job = 0;
    double go_time = 0;
    QueryRecord pending;
    size_t query_index = 0;
    std::string lane = "main";
    double total_exec = 0;  // final-query seconds (user-perceived)
    double last_time = 0;   // last event/completion on this session
    Tracer::SpanId session_span = Tracer::kInvalidSpan;
    Tracer::SpanId query_span = Tracer::kInvalidSpan;
  };
  std::vector<UserState> users(n);
  Tracer* tracer = options_.tracer;
  for (size_t u = 0; u < n; u++) {
    SpeculationEngineOptions opts = options_.engine;
    opts.enabled = options_.speculation;
    opts.table_prefix = "spec_u" + std::to_string(u) + "_mv_";
    // See the assert below: waiting at GO would break event ordering.
    opts.go_policy = GoPolicy::kCancelIncomplete;
    users[u].lane = "user" + std::to_string(u);
    opts.tracer = tracer;
    opts.trace_lane = users[u].lane;
    users[u].engine =
        std::make_unique<SpeculationEngine>(db_, &server, std::move(opts));
    if (tracer != nullptr && !traces[u].events.empty()) {
      users[u].session_span = tracer->BeginSpan(
          "session user" + std::to_string(traces[u].user_id), "session",
          traces[u].events.front().timestamp, users[u].lane);
      tracer->SpanArg(users[u].session_span, "mode",
                      options_.speculation ? "speculative" : "normal");
    }
  }

  MultiUserReplayResult result;
  result.per_user.resize(n);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (;;) {
    // Earliest pending user event among non-waiting users.
    double t_event = kInf;
    size_t who = n;
    for (size_t u = 0; u < n; u++) {
      UserState& user = users[u];
      if (user.waiting || user.next_event >= traces[u].events.size()) {
        continue;
      }
      double t =
          traces[u].events[user.next_event].timestamp + user.exec_offset;
      if (t < t_event) {
        t_event = t;
        who = u;
      }
    }
    double t_completion = server.NextCompletionTime();
    bool any_waiting = false;
    for (const auto& user : users) any_waiting |= user.waiting;

    if (t_event == kInf && !any_waiting) break;  // all sessions done

    if (t_completion <= t_event) {
      // A job finishes first: advance and settle completed queries.
      assert(t_completion < kInf);
      server.AdvanceTo(t_completion);
      for (size_t u = 0; u < n; u++) {
        UserState& user = users[u];
        if (!user.waiting || !server.IsComplete(user.job)) continue;
        // Speculation issued from the result examination pause below
        // charges this user's session.
        db_->attribution().SetSession("user" +
                                      std::to_string(traces[u].user_id));
        double done = server.CompletionTime(user.job);
        double duration = done - user.go_time;
        user.exec_offset += duration;
        user.total_exec += duration;
        user.last_time = done;
        user.pending.seconds = duration;
        result.per_user[u].push_back(std::move(user.pending));
        user.waiting = false;
        if (tracer != nullptr) {
          tracer->EndSpan(user.query_span, done);
          user.query_span = Tracer::kInvalidSpan;
        }
        SQP_RETURN_IF_ERROR(user.engine->OnQueryResult(done));
      }
      continue;
    }

    // Process the next user event.
    assert(who < n);
    UserState& user = users[who];
    const TraceEvent& event = traces[who].events[user.next_event++];
    double sim_time = event.timestamp + user.exec_offset;
    // Sessions interleave on the shared clock: name the owner before
    // any engine/database work this event triggers (DESIGN.md §16).
    db_->attribution().SetSession("user" +
                                  std::to_string(traces[who].user_id));
    server.AdvanceTo(sim_time);

    user.last_time = sim_time;
    if (event.type != TraceEventType::kGo) {
      if (tracer != nullptr) {
        tracer->Instant(TraceEventTypeName(event.type), "edit", sim_time,
                        user.lane);
      }
      SQP_RETURN_IF_ERROR(user.engine->OnUserEvent(event, sim_time));
      continue;
    }

    QueryGraph final_query = user.engine->partial();
    auto submit_time = user.engine->OnGo(sim_time);
    if (!submit_time.ok()) return submit_time.status();
    // The §7 wait policy is a single-user feature: honouring it here
    // would advance the shared clock past other users' pending events.
    assert(*submit_time <= sim_time + 1e-9 &&
           "kWaitIfWorthwhile is not supported in multi-user replays");

    ExecuteOptions exec;
    exec.view_mode = options_.speculation ? user.engine->final_view_mode()
                                          : options_.normal_view_mode;
    exec.explain_analyze = options_.explain || tracer != nullptr;
    auto query_result = db_->Execute(final_query, exec);
    if (!query_result.ok()) return query_result.status();

    // Lane choice mirrors the single-user replayer: the deterministic
    // replica-read cursor stands in for the node the query's balanced
    // reads last touched (always lane 0 on single-node stores).
    user.job = server.Submit(query_result->seconds,
                             db_->storage().read_cursor() % server.lanes());
    user.go_time = sim_time;
    user.waiting = true;
    if (tracer != nullptr) {
      user.query_span =
          tracer->BeginSpan("query " + std::to_string(user.query_index),
                            "query", sim_time, user.lane);
      tracer->SpanArg(user.query_span, "exec_s",
                      std::to_string(query_result->seconds));
      if (query_result->profile != nullptr) {
        tracer->SpanArg(user.query_span, "plan_profile",
                        query_result->profile->FormatJson());
      }
    }
    user.pending = QueryRecord{};
    user.pending.index = user.query_index++;
    user.pending.user_id = traces[who].user_id;
    user.pending.query = std::move(final_query);
    user.pending.row_count = query_result->row_count;
    user.pending.views_used = query_result->views_used;
    user.pending.go_sim_time = sim_time;
    user.pending.plan_explain = query_result->plan_explain;
    user.pending.est_rows = query_result->est_rows;
    if (query_result->profile != nullptr) {
      user.pending.plan_profile = query_result->profile->FormatText();
    }
  }

  // Teardown is system work, not any one session's.
  db_->attribution().SetSession("");
  for (size_t u = 0; u < n; u++) {
    SQP_RETURN_IF_ERROR(users[u].engine->Shutdown());
    result.engine_stats.push_back(users[u].engine->stats());
    result.overlap.push_back(ComputeOverlap(users[u].engine->stats(),
                                            users[u].last_time,
                                            users[u].total_exec));
    if (tracer != nullptr &&
        users[u].session_span != Tracer::kInvalidSpan) {
      tracer->EndSpan(users[u].session_span, users[u].last_time);
    }
  }
  result.session_end_time = server.now();
  if (options_.timeline != nullptr) {
    options_.timeline->Flush(result.session_end_time);
  }
  return result;
}

}  // namespace sqp
