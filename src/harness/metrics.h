// Experiment metrics (paper §4.1 / §6).
//
// The paper's metric: improvement = 1 − Σ time_spec / Σ time_normal over
// a query set of interest, presented as bar charts of improvement per
// execution-time bucket (bucketed by the query's time under *normal*
// processing, each bucket holding ≥5 queries for robustness).
#pragma once

#include <string>
#include <vector>

#include "optimizer/query_graph.h"
#include "speculation/engine.h"

namespace sqp {

/// One executed query in a replay.
struct QueryRecord {
  size_t index = 0;  // position within the trace
  uint64_t user_id = 0;
  QueryGraph query;
  double seconds = 0;  // measured (simulated) execution time
  uint64_t row_count = 0;
  std::vector<std::string> views_used;
  double go_sim_time = 0;
  /// Physical plan rendering (for diagnostics).
  std::string plan_explain;
  /// Planner's root-cardinality estimate for the executed plan; with
  /// row_count it gives the root Q-error (DESIGN.md §11).
  double est_rows = 0;
  /// Rendered EXPLAIN ANALYZE profile (empty unless the replay ran with
  /// explain enabled).
  std::string plan_profile;
};

/// Paper metric over matched query sets.
double Improvement(const std::vector<QueryRecord>& normal,
                   const std::vector<QueryRecord>& speculative);

/// Paper metric restricted to queries whose *normal* time falls in
/// [lo, hi) — the paper computes its headline averages over the
/// presented time interval only ("these intervals contain the majority
/// of queries and are used for the entire presentation", §6).
double ImprovementInRange(const std::vector<QueryRecord>& normal,
                          const std::vector<QueryRecord>& speculative,
                          double lo, double hi);

struct Bucket {
  double lo = 0, hi = 0;  // normal-execution-time range [lo, hi)
  size_t count = 0;
  double improvement = 0;      // 1 - sum(spec)/sum(normal)
  double max_improvement = 0;  // best per-query improvement
  double min_improvement = 0;  // worst per-query (max penalty, negative)
  double avg_normal_seconds = 0;
};

struct BucketOptions {
  /// Bucket edges [lo, lo+width, ...]; queries outside [lo, hi) are
  /// dropped (the paper's "initial time ranges that include the great
  /// majority of queries").
  double lo = 0;
  double hi = 0;
  double width = 1;
  /// Buckets with fewer queries are suppressed (paper: ≥5).
  size_t min_count = 5;
};

/// Bucket matched (normal, speculative) pairs by normal time.
std::vector<Bucket> BucketImprovements(
    const std::vector<QueryRecord>& normal,
    const std::vector<QueryRecord>& speculative, const BucketOptions& opts);

/// Pick a bucket range covering the bulk of the distribution:
/// [~p5, ~p90] of normal times split into `target_buckets` buckets.
BucketOptions AutoBuckets(const std::vector<QueryRecord>& normal,
                          size_t target_buckets = 10, size_t min_count = 5);

/// Render buckets as an aligned text table (one row per bucket).
std::string FormatBuckets(const std::vector<Bucket>& buckets,
                          bool include_extremes);

/// Sum engine counters across replays (one EngineStats per trace).
EngineStats AggregateEngineStats(const std::vector<EngineStats>& stats);

/// Mean root Q-error (max(est/act, act/est), clamped to ≥ 1 row on both
/// sides) over a set of executed queries — the bench-level cardinality-
/// accuracy figure (DESIGN.md §11). Returns 1 for an empty set.
double MeanRootQError(const std::vector<QueryRecord>& records);

/// Derived think-time-overlap story (DESIGN.md §9): how much speculative
/// work the engine hid under the user's think time, and how much it
/// wasted. The paper's bet is that manipulation work is "free" when it
/// overlaps think time — these ratios quantify that bet for a replay.
struct OverlapStats {
  /// Total simulated seconds of manipulation work executed (completed +
  /// the executed fraction of cancelled/abandoned work).
  double executed_seconds = 0;
  /// Seconds of that work that paid off: completed manipulations whose
  /// results were adopted (sum of EngineStats::completed_durations).
  double hidden_seconds = 0;
  /// Seconds that never paid off: executed fraction of cancellations
  /// plus results abandoned at completion.
  double wasted_seconds = 0;
  /// Think time available for hiding work: session duration minus final
  /// query execution time.
  double think_seconds = 0;
  /// hidden / executed — fraction of manipulation work that completed
  /// under think time and was adopted.
  double overlap_fraction = 0;
  /// wasted / executed — fraction of manipulation work thrown away.
  double wasted_ratio = 0;
  /// executed / think — how much of the user's think time the engine
  /// kept the server busy with speculation.
  double think_utilization = 0;
};

/// Derive the overlap story from an engine's counters plus the replay's
/// wall clock: `session_seconds` is the full simulated session span and
/// `exec_seconds` the time spent executing final queries (their
/// difference is think time).
OverlapStats ComputeOverlap(const EngineStats& stats, double session_seconds,
                            double exec_seconds);

/// Sum absolute seconds across replays and recompute the ratios.
OverlapStats AggregateOverlap(const std::vector<OverlapStats>& stats);

/// Two-line rendering: absolute seconds, then the ratios.
std::string FormatOverlapStats(const OverlapStats& overlap);

/// Two-line summary of an engine's lifecycle and failure counters —
/// issued/completed/cancelled plus failures, retries, circuit-breaker
/// suspensions, and budget evictions, so degraded runs are visible in
/// experiment reports.
std::string FormatEngineStats(const EngineStats& stats);

/// Two-line summary of a Database::Reopen(): what recovery replayed and
/// what damage (torn pages, corrupt matviews, orphans) it handled.
std::string FormatRecoveryStats(const RecoveryStats& stats);

/// Two-line summary of a Database::Repair(): re-protection work done
/// and whether one-replica redundancy is fully restored.
std::string FormatRepairStats(const RepairStats& stats);

}  // namespace sqp
