#include "harness/experiment.h"

#include <set>

#include "common/metrics_timeline.h"

namespace sqp {

Result<std::unique_ptr<Database>> BuildDatabase(const ExperimentConfig& cfg) {
  DatabaseOptions options;
  options.buffer_pool_pages = cfg.buffer_pool_pages;
  options.cost = cfg.cost;
  options.exec_threads = cfg.exec_threads;
  options.storage_nodes = cfg.storage_nodes;
  options.tracer = cfg.tracer;
  auto db = std::make_unique<Database>(options);
  if (cfg.timeline != nullptr) {
    cfg.timeline->set_tracer(cfg.tracer);
    cfg.timeline->AttachScheduler(db->scheduler());
  }
  tpch::LoadOptions load;
  load.scale = cfg.scale;
  load.seed = cfg.data_seed;
  load.prepare_skewed_fields = cfg.prepare_skewed_fields;
  Status status = tpch::LoadTpch(db.get(), load);
  if (!status.ok()) return status;
  return db;
}

std::vector<Trace> BuildTraces(const ExperimentConfig& cfg) {
  TraceGeneratorOptions options;
  options.params = cfg.user_model;
  options.num_users = cfg.num_users;
  options.seed = cfg.trace_seed;
  return GenerateTraces(options);
}

Result<SingleUserResult> RunSingleUserExperiment(
    const ExperimentConfig& cfg) {
  auto db = BuildDatabase(cfg);
  if (!db.ok()) return db.status();
  std::vector<Trace> traces = BuildTraces(cfg);

  SingleUserResult result;
  std::vector<OverlapStats> per_replay_overlap;
  for (size_t t = 0; t < traces.size(); t++) {
    const Trace& trace = traces[t];
    ReplayOptions normal_opts;
    normal_opts.speculation = false;
    TraceReplayer normal_replayer(db->get(), normal_opts);
    auto normal = normal_replayer.Replay(trace);
    if (!normal.ok()) return normal.status();

    // Leave-one-out pretraining: the Learner has observed the *other*
    // users before this session starts.
    std::vector<Trace> history;
    history.reserve(traces.size() - 1);
    for (size_t o = 0; o < traces.size(); o++) {
      if (o != t) history.push_back(traces[o]);
    }
    ReplayOptions spec_opts;
    spec_opts.speculation = true;
    spec_opts.engine = cfg.engine;
    spec_opts.pretrain_traces = &history;
    TraceReplayer spec_replayer(db->get(), spec_opts);
    auto spec = spec_replayer.Replay(trace);
    if (!spec.ok()) return spec.status();

    result.normal.insert(result.normal.end(), normal->queries.begin(),
                         normal->queries.end());
    result.speculative.insert(result.speculative.end(),
                              spec->queries.begin(), spec->queries.end());
    result.engine_stats.push_back(spec->engine_stats);
    per_replay_overlap.push_back(spec->overlap);
  }
  result.overlap = AggregateOverlap(per_replay_overlap);

  result.overall_improvement = Improvement(result.normal, result.speculative);
  double mat_total = 0;
  size_t mat_count = 0, issued = 0, at_go = 0, by_edit = 0, completed = 0;
  for (const auto& stats : result.engine_stats) {
    for (double d : stats.completed_durations) {
      mat_total += d;
      mat_count++;
    }
    issued += stats.manipulations_issued;
    at_go += stats.cancelled_at_go;
    by_edit += stats.cancelled_by_edit;
    completed += stats.manipulations_completed;
  }
  if (mat_count > 0) result.avg_materialization_seconds = mat_total / mat_count;
  if (issued > 0) {
    result.noncompletion_rate = static_cast<double>(at_go) / issued;
    result.edit_cancellation_rate = static_cast<double>(by_edit) / issued;
  }
  result.manipulations_issued = issued;
  result.manipulations_completed = completed;
  size_t rewritten = 0;
  for (const auto& q : result.speculative) {
    if (!q.views_used.empty()) rewritten++;
  }
  if (!result.speculative.empty()) {
    result.rewritten_query_fraction =
        static_cast<double>(rewritten) / result.speculative.size();
  }
  return result;
}

Result<size_t> PrematerializeAllJoins(Database* db) {
  // Collect the single-edge adjacency (composite template counts as one
  // adjacency with both edges).
  const auto& templates = tpch::FkJoinTemplates();
  const auto& names = tpch::TableNames();
  const size_t n = names.size();

  auto rel_index = [&](const std::string& rel) -> size_t {
    for (size_t i = 0; i < n; i++) {
      if (names[i] == rel) return i;
    }
    return n;
  };

  size_t created = 0;
  // Every subset of >= 2 relations whose induced FK subgraph is
  // connected gets its join materialized with all attributes (§6.2).
  for (uint32_t mask = 1; mask < (1u << n); mask++) {
    if (__builtin_popcount(mask) < 2) continue;
    QueryGraph graph;
    for (const auto& tmpl : templates) {
      bool inside = true;
      for (const auto& edge : tmpl.edges) {
        if (((mask >> rel_index(edge.left_table)) & 1) == 0 ||
            ((mask >> rel_index(edge.right_table)) & 1) == 0) {
          inside = false;
          break;
        }
      }
      if (inside) {
        for (const auto& edge : tmpl.edges) graph.AddJoin(edge);
      }
    }
    if (graph.relations().size() !=
        static_cast<size_t>(__builtin_popcount(mask))) {
      continue;  // some relation has no incident FK edge in the subset
    }
    if (!graph.IsConnected()) continue;
    std::string name = "pre_mv_" + std::to_string(mask);
    auto mat = db->Materialize(graph, name);
    if (!mat.ok()) return mat.status();
    created++;
  }
  return created;
}

Result<MatViewsResult> RunMatViewsExperiment(const ExperimentConfig& cfg) {
  MatViewsResult result;

  // Runs without pre-materialized views.
  {
    auto db = BuildDatabase(cfg);
    if (!db.ok()) return db.status();
    std::vector<Trace> traces = BuildTraces(cfg);
    for (const Trace& trace : traces) {
      ReplayOptions normal_opts;
      normal_opts.speculation = false;
      // Baseline must not exploit any views.
      normal_opts.normal_view_mode = ViewMode::kNone;
      auto normal = TraceReplayer(db->get(), normal_opts).Replay(trace);
      if (!normal.ok()) return normal.status();

      ReplayOptions spec_opts;
      spec_opts.speculation = true;
      spec_opts.engine = cfg.engine;
      auto spec = TraceReplayer(db->get(), spec_opts).Replay(trace);
      if (!spec.ok()) return spec.status();

      result.normal.insert(result.normal.end(), normal->queries.begin(),
                           normal->queries.end());
      result.spec_only.insert(result.spec_only.end(), spec->queries.begin(),
                              spec->queries.end());
    }
  }

  // Runs on top of pre-materialized views (fresh database).
  {
    auto db = BuildDatabase(cfg);
    if (!db.ok()) return db.status();
    auto created = PrematerializeAllJoins(db->get());
    if (!created.ok()) return created.status();
    std::vector<Trace> traces = BuildTraces(cfg);
    for (const Trace& trace : traces) {
      ReplayOptions views_opts;
      views_opts.speculation = false;
      views_opts.normal_view_mode = ViewMode::kCostBased;
      auto views = TraceReplayer(db->get(), views_opts).Replay(trace);
      if (!views.ok()) return views.status();

      ReplayOptions both_opts;
      both_opts.speculation = true;
      both_opts.engine = cfg.engine;
      // The final query may combine speculative results with the
      // pre-materialized views (cost-based choice).
      both_opts.engine.final_query_view_mode = ViewMode::kCostBased;
      auto both = TraceReplayer(db->get(), both_opts).Replay(trace);
      if (!both.ok()) return both.status();

      result.views_only.insert(result.views_only.end(),
                               views->queries.begin(), views->queries.end());
      result.spec_views.insert(result.spec_views.end(),
                               both->queries.begin(), both->queries.end());
    }
  }
  return result;
}

Result<MultiUserResult> RunMultiUserExperiment(const ExperimentConfig& cfg,
                                               size_t group_size) {
  auto db = BuildDatabase(cfg);
  if (!db.ok()) return db.status();
  std::vector<Trace> traces = BuildTraces(cfg);

  MultiUserResult result;
  std::vector<OverlapStats> per_user_overlap;
  for (size_t start = 0; start + group_size <= traces.size();
       start += group_size) {
    std::vector<Trace> group(traces.begin() + start,
                             traces.begin() + start + group_size);

    MultiUserReplayOptions normal_opts;
    normal_opts.speculation = false;
    auto normal = MultiUserReplayer(db->get(), normal_opts).Replay(group);
    if (!normal.ok()) return normal.status();

    MultiUserReplayOptions spec_opts;
    spec_opts.speculation = true;
    spec_opts.engine = cfg.engine;
    spec_opts.tracer = cfg.tracer;
    spec_opts.timeline = cfg.timeline;
    // One epoch per group replay (each gets a fresh shared clock);
    // scale + group label keeps multi-scale dumps distinguishable.
    spec_opts.timeline_epoch = std::string(tpch::ScaleName(cfg.scale)) +
                               "/g" + std::to_string(start / group_size);
    auto spec = MultiUserReplayer(db->get(), spec_opts).Replay(group);
    if (!spec.ok()) return spec.status();

    auto flat_normal = normal->Flatten();
    auto flat_spec = spec->Flatten();
    result.normal.insert(result.normal.end(), flat_normal.begin(),
                         flat_normal.end());
    result.speculative.insert(result.speculative.end(), flat_spec.begin(),
                              flat_spec.end());
    result.engine_stats.insert(result.engine_stats.end(),
                               spec->engine_stats.begin(),
                               spec->engine_stats.end());
    per_user_overlap.insert(per_user_overlap.end(), spec->overlap.begin(),
                            spec->overlap.end());
  }
  result.overall_improvement = Improvement(result.normal, result.speculative);
  result.overlap = AggregateOverlap(per_user_overlap);
  result.attribution_table = (*db)->attribution().FormatTable();
  return result;
}

}  // namespace sqp
