// Multi-user demo (paper §6.3): three analysts exploring the same
// database simultaneously on a processor-sharing server, with and
// without speculation (restricted to selection materializations, as the
// paper does to limit interference).
#include <cstdio>

#include "harness/experiment.h"

using namespace sqp;

int main() {
  std::printf("Loading the TPC-H subset (small scale, 96MB-equivalent "
              "buffer pool)...\n");
  ExperimentConfig cfg;
  cfg.scale = tpch::Scale::kSmall;
  cfg.num_users = 3;
  cfg.buffer_pool_pages = 3 * cfg.buffer_pool_pages;
  auto db = BuildDatabase(cfg);
  if (!db.ok()) {
    std::printf("load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::vector<Trace> traces = BuildTraces(cfg);

  MultiUserReplayOptions normal_opts;
  normal_opts.speculation = false;
  auto normal = MultiUserReplayer(db->get(), normal_opts).Replay(traces);
  if (!normal.ok()) {
    std::printf("replay failed: %s\n", normal.status().ToString().c_str());
    return 1;
  }

  MultiUserReplayOptions spec_opts;
  spec_opts.speculation = true;
  spec_opts.engine.speculator.space.join_materializations = false;  // §6.3
  auto spec = MultiUserReplayer(db->get(), spec_opts).Replay(traces);
  if (!spec.ok()) {
    std::printf("replay failed: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-6s %10s %12s %12s %9s\n", "user", "queries",
              "normal(s)", "spec(s)", "gain%");
  for (size_t u = 0; u < traces.size(); u++) {
    double n_total = 0, s_total = 0;
    for (const auto& q : normal->per_user[u]) n_total += q.seconds;
    for (const auto& q : spec->per_user[u]) s_total += q.seconds;
    std::printf("%-6zu %10zu %12.1f %12.1f %8.1f%%\n", u,
                normal->per_user[u].size(), n_total, s_total,
                n_total > 0 ? 100 * (1 - s_total / n_total) : 0.0);
  }

  std::printf("\nPer-user speculation activity:\n");
  for (size_t u = 0; u < spec->engine_stats.size(); u++) {
    const EngineStats& st = spec->engine_stats[u];
    std::printf("  user %zu: issued %zu, completed %zu, cancelled %zu\n", u,
                st.manipulations_issued, st.manipulations_completed,
                st.cancelled());
  }
  std::printf(
      "\nSessions finished at t=%.0fs (normal) vs t=%.0fs (speculative)\n",
      normal->session_end_time, spec->session_end_time);
  return 0;
}
