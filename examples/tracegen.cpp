// tracegen: generate user-session trace files (the paper's recorded
// SQUID sessions, §4.1) for offline replay with replay_trace.
//
// Usage: tracegen <output-dir> [num_users] [seed]
#include <cstdio>
#include <cstdlib>

#include "trace/trace_generator.h"

using namespace sqp;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: tracegen <output-dir> [num_users] [seed]\n");
    return 1;
  }
  TraceGeneratorOptions options;
  options.num_users = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 15;
  options.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1234;

  std::vector<Trace> traces = GenerateTraces(options);
  Status status = SaveTraces(traces, argv[1]);
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return 1;
  }

  TraceStats stats = ComputeTraceStats(traces);
  std::printf("wrote %zu traces to %s\n", traces.size(), argv[1]);
  std::printf("  queries/trace: %.1f  selections/query: %.2f  "
              "relations/query: %.2f\n",
              stats.avg_queries_per_trace, stats.avg_selections_per_query,
              stats.avg_relations_per_query);
  std::printf("  formulation seconds: min %.1f / med %.1f / avg %.1f / "
              "max %.0f\n",
              stats.min_duration, stats.p50_duration, stats.avg_duration,
              stats.max_duration);
  return 0;
}
