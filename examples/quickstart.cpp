// Quickstart: the paper's introduction example, end to end.
//
// Builds a small employee database, simulates a user formulating
//   SELECT name FROM employee WHERE age < 30
// on the visual interface, and shows the speculation engine
// materializing the age predicate during think time so the final query
// runs against the (much smaller) speculative result.
#include <cstdio>

#include "common/rng.h"
#include "db/database.h"
#include "harness/replayer.h"
#include "sim/sim_server.h"
#include "speculation/engine.h"
#include "sql/binder.h"

using namespace sqp;

int main() {
  // --- a database with one relation: employee(name, age, salary) ---
  DatabaseOptions options;
  options.buffer_pool_pages = 64;  // small pool: scans hit "disk"
  Database db(options);

  Schema employee({{"name", TypeId::kString},
                   {"age", TypeId::kInt64},
                   {"salary", TypeId::kDouble}});
  if (!db.CreateTable("employee", employee).ok()) return 1;

  std::vector<Tuple> rows;
  Rng rng(7);
  for (int i = 0; i < 50000; i++) {
    rows.push_back(Tuple{Value("emp_" + std::to_string(i)),
                         Value(rng.NextInt(18, 65)),
                         Value(rng.NextDouble(30000, 150000))});
  }
  if (!db.BulkLoad("employee", rows).ok()) return 1;
  db.ColdStart();

  // --- the user starts formulating; the engine watches ---
  SimServer server;
  SpeculationEngineOptions engine_options;
  SpeculationEngine engine(&db, &server, engine_options);

  // t = 1s: the user places the predicate age < 30 (paper Figure 1, t1).
  TraceEvent add_pred;
  add_pred.type = TraceEventType::kAddSelection;
  add_pred.timestamp = 1.0;
  add_pred.selection = SelectionPred{"employee", "age", CompareOp::kLt,
                                     Value(int64_t{30})};
  server.AdvanceTo(1.0);
  if (!engine.OnUserEvent(add_pred, 1.0).ok()) return 1;
  std::printf("t=1s   user adds predicate: age < 30\n");
  std::printf("       engine issued %zu manipulation(s) asynchronously\n",
              engine.stats().manipulations_issued);

  // t = 20s: think time has passed; the user clicks GO.
  server.AdvanceTo(20.0);
  if (!engine.OnGo(20.0).ok()) return 1;
  std::printf("t=20s  GO — %zu manipulation(s) completed in time\n",
              engine.stats().manipulations_completed);

  // The final query, via the SQL frontend.
  auto query =
      ParseAndBind("SELECT name FROM employee WHERE age < 30", db.catalog());
  if (!query.ok()) {
    std::printf("bind error: %s\n", query.status().ToString().c_str());
    return 1;
  }

  ExecuteOptions exec;
  exec.view_mode = engine.final_view_mode();  // speculative rewriting
  auto speculative = db.Execute(*query, exec);
  if (!speculative.ok()) return 1;

  db.ColdStart();  // compare fairly: cold cache for the normal run too
  exec.view_mode = ViewMode::kNone;
  auto normal = db.Execute(*query, exec);
  if (!normal.ok()) return 1;

  std::printf("\nfinal query: SELECT name FROM employee WHERE age < 30\n");
  std::printf("  normal execution:      %6.3f s  (%llu rows)\n",
              normal->seconds,
              static_cast<unsigned long long>(normal->row_count));
  std::printf("  speculative execution: %6.3f s  (%llu rows)\n",
              speculative->seconds,
              static_cast<unsigned long long>(speculative->row_count));
  std::printf("  improvement:           %6.1f %%\n",
              100.0 * (1.0 - speculative->seconds / normal->seconds));
  std::printf("\nspeculative plan used views:");
  for (const auto& v : speculative->views_used) std::printf(" %s", v.c_str());
  std::printf("\n%s", speculative->plan_explain.c_str());
  return 0;
}
