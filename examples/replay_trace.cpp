// replay_trace: replay saved trace files against a freshly loaded
// TPC-H subset, normal vs speculative — the paper's §4.1 methodology
// as a standalone tool.
//
// Usage: replay_trace <trace-dir> [scale: small|medium|large]
#include <cstdio>
#include <cstring>

#include "harness/experiment.h"

using namespace sqp;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: replay_trace <trace-dir> [small|medium|large]\n");
    return 1;
  }
  tpch::Scale scale = tpch::Scale::kSmall;
  if (argc > 2) {
    if (std::strcmp(argv[2], "medium") == 0) scale = tpch::Scale::kMedium;
    if (std::strcmp(argv[2], "large") == 0) scale = tpch::Scale::kLarge;
  }

  auto traces = LoadTraces(argv[1]);
  if (!traces.ok()) {
    std::printf("error: %s\n", traces.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu traces; loading %s dataset...\n", traces->size(),
              tpch::ScaleName(scale));

  ExperimentConfig cfg;
  cfg.scale = scale;
  auto db = BuildDatabase(cfg);
  if (!db.ok()) {
    std::printf("error: %s\n", db.status().ToString().c_str());
    return 1;
  }

  std::printf("%-6s %8s %12s %12s %9s %9s %7s %7s\n", "user", "queries",
              "normal(s)", "spec(s)", "gain%", "manips", "cancel", "failed");
  double total_normal = 0, total_spec = 0;
  std::vector<EngineStats> all_stats;
  for (const Trace& trace : *traces) {
    ReplayOptions normal_opts;
    normal_opts.speculation = false;
    auto normal = TraceReplayer(db->get(), normal_opts).Replay(trace);
    if (!normal.ok()) {
      std::printf("replay failed: %s\n",
                  normal.status().ToString().c_str());
      return 1;
    }
    ReplayOptions spec_opts;
    spec_opts.speculation = true;
    auto spec = TraceReplayer(db->get(), spec_opts).Replay(trace);
    if (!spec.ok()) {
      std::printf("replay failed: %s\n", spec.status().ToString().c_str());
      return 1;
    }
    double gain = normal->total_exec_seconds > 0
                      ? 100 * (1 - spec->total_exec_seconds /
                                       normal->total_exec_seconds)
                      : 0;
    std::printf("%-6llu %8zu %12.1f %12.1f %8.1f%% %4zu/%zu %7zu %7zu\n",
                static_cast<unsigned long long>(trace.user_id),
                normal->queries.size(), normal->total_exec_seconds,
                spec->total_exec_seconds, gain,
                spec->engine_stats.manipulations_completed,
                spec->engine_stats.manipulations_issued,
                spec->engine_stats.cancelled(),
                spec->engine_stats.manipulations_failed);
    total_normal += normal->total_exec_seconds;
    total_spec += spec->total_exec_seconds;
    all_stats.push_back(spec->engine_stats);
  }
  if (total_normal > 0) {
    std::printf("\noverall improvement: %.1f%%\n",
                100 * (1 - total_spec / total_normal));
  }
  std::printf("\nengine totals:\n%s",
              FormatEngineStats(AggregateEngineStats(all_stats)).c_str());
  return 0;
}
