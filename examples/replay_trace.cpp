// replay_trace: replay saved trace files against a freshly loaded
// TPC-H subset, normal vs speculative — the paper's §4.1 methodology
// as a standalone tool.
//
// Usage: replay_trace <trace-dir> [scale: small|medium|large]
//                     [--trace-json <file>] [--timeline] [--metrics]
//                     [--explain] [--decisions] [--metrics-prom <file>]
//                     [--timeline-series <file>] [--telemetry-interval s]
//
//   --trace-json <file>  export the speculative replays as Chrome
//                        trace_event JSON (open in chrome://tracing or
//                        https://ui.perfetto.dev) — DESIGN.md §9
//   --timeline           print the compact text timeline
//   --metrics            dump the unified metrics registry at the end
//   --explain            run final queries under EXPLAIN ANALYZE and
//                        print each annotated plan (est vs. actual
//                        rows, Q-error, batches, pages, simulated
//                        cost) — DESIGN.md §11
//   --decisions          dump the speculation flight recorder: every
//                        Speculator round with its Cost⊆ decomposition,
//                        chosen minimizer, terminal outcome, and the
//                        learner calibration report — DESIGN.md §11
//   --metrics-prom <f>   write the final registry snapshot in
//                        OpenMetrics text format (DESIGN.md §16)
//   --timeline-series <f> write the sampled time-series dump (CSV; .json
//                        extension switches to JSON). Deterministic:
//                        byte-identical across same-seed replays at any
//                        exec_threads — DESIGN.md §16
//   --telemetry-interval <s>  simulated seconds between samples
//                        (default 1.0)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/metrics_registry.h"
#include "common/metrics_timeline.h"
#include "common/openmetrics.h"
#include "common/tracing.h"
#include "harness/experiment.h"
#include "speculation/flight_recorder.h"

using namespace sqp;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf(
        "usage: replay_trace <trace-dir> [small|medium|large]\n"
        "                    [--trace-json <file>] [--timeline] "
        "[--metrics]\n"
        "                    [--explain] [--decisions]\n"
        "                    [--metrics-prom <file>] "
        "[--timeline-series <file>]\n"
        "                    [--telemetry-interval <seconds>]\n");
    return 1;
  }
  tpch::Scale scale = tpch::Scale::kSmall;
  std::string trace_json;
  std::string metrics_prom;
  std::string timeline_series;
  double telemetry_interval = 1.0;
  bool print_timeline = false;
  bool print_metrics = false;
  bool print_explain = false;
  bool print_decisions = false;
  for (int i = 2; i < argc; i++) {
    if (std::strcmp(argv[i], "medium") == 0) scale = tpch::Scale::kMedium;
    if (std::strcmp(argv[i], "large") == 0) scale = tpch::Scale::kLarge;
    if (std::strcmp(argv[i], "--trace-json") == 0 && i + 1 < argc) {
      trace_json = argv[++i];
    }
    if (std::strcmp(argv[i], "--metrics-prom") == 0 && i + 1 < argc) {
      metrics_prom = argv[++i];
    }
    if (std::strcmp(argv[i], "--timeline-series") == 0 && i + 1 < argc) {
      timeline_series = argv[++i];
    }
    if (std::strcmp(argv[i], "--telemetry-interval") == 0 && i + 1 < argc) {
      telemetry_interval = std::atof(argv[++i]);
    }
    if (std::strcmp(argv[i], "--timeline") == 0) print_timeline = true;
    if (std::strcmp(argv[i], "--metrics") == 0) print_metrics = true;
    if (std::strcmp(argv[i], "--explain") == 0) print_explain = true;
    if (std::strcmp(argv[i], "--decisions") == 0) print_decisions = true;
  }

  auto traces = LoadTraces(argv[1]);
  if (!traces.ok()) {
    std::printf("error: %s\n", traces.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu traces; loading %s dataset...\n", traces->size(),
              tpch::ScaleName(scale));

  ExperimentConfig cfg;
  cfg.scale = scale;
  auto db = BuildDatabase(cfg);
  if (!db.ok()) {
    std::printf("error: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // One tracer across all speculative replays: each user lands on its
  // own lane, so the export shows the sessions stacked (DESIGN.md §9).
  Tracer tracer;
  bool want_trace = !trace_json.empty() || print_timeline;

  // One sampler across all replays: each speculative replay is its own
  // epoch (its own simulated-clock zero), labelled by session so the
  // dump rows and counter tracks stay distinguishable (DESIGN.md §16).
  MetricsTimelineOptions timeline_options;
  timeline_options.interval = telemetry_interval > 0 ? telemetry_interval : 1.0;
  MetricsTimeline timeline(timeline_options);
  bool want_series = !timeline_series.empty();
  if (!trace_json.empty()) {
    timeline.set_tracer(&tracer);
    timeline.AttachScheduler((*db)->scheduler());
  }

  std::printf("%-6s %8s %12s %12s %9s %9s %7s %7s\n", "user", "queries",
              "normal(s)", "spec(s)", "gain%", "manips", "cancel", "failed");
  double total_normal = 0, total_spec = 0;
  std::vector<EngineStats> all_stats;
  std::vector<OverlapStats> all_overlap;
  std::string explain_out;    // --explain: annotated plans, per user
  std::string decisions_out;  // --decisions: flight-recorder dumps
  for (const Trace& trace : *traces) {
    ReplayOptions normal_opts;
    normal_opts.speculation = false;
    auto normal = TraceReplayer(db->get(), normal_opts).Replay(trace);
    if (!normal.ok()) {
      std::printf("replay failed: %s\n",
                  normal.status().ToString().c_str());
      return 1;
    }
    ReplayOptions spec_opts;
    spec_opts.speculation = true;
    spec_opts.explain = print_explain;
    if (want_trace) {
      spec_opts.tracer = &tracer;
      spec_opts.trace_lane = "user" + std::to_string(trace.user_id);
    }
    if (want_series || !trace_json.empty()) spec_opts.timeline = &timeline;
    auto spec = TraceReplayer(db->get(), spec_opts).Replay(trace);
    if (!spec.ok()) {
      std::printf("replay failed: %s\n", spec.status().ToString().c_str());
      return 1;
    }
    if (print_explain) {
      for (const auto& record : spec->queries) {
        char head[128];
        std::snprintf(head, sizeof(head),
                      "user %llu query %zu: rows=%llu est=%.0f\n",
                      static_cast<unsigned long long>(trace.user_id),
                      record.index,
                      static_cast<unsigned long long>(record.row_count),
                      record.est_rows);
        explain_out += head;
        explain_out += record.plan_profile;
      }
    }
    if (print_decisions) {
      decisions_out +=
          "user " + std::to_string(trace.user_id) + " decision log:\n";
      for (const auto& record : spec->decisions) {
        decisions_out += FormatDecisionRecord(record);
      }
      decisions_out += spec->calibration.Format();
    }
    double gain = normal->total_exec_seconds > 0
                      ? 100 * (1 - spec->total_exec_seconds /
                                       normal->total_exec_seconds)
                      : 0;
    std::printf("%-6llu %8zu %12.1f %12.1f %8.1f%% %4zu/%zu %7zu %7zu\n",
                static_cast<unsigned long long>(trace.user_id),
                normal->queries.size(), normal->total_exec_seconds,
                spec->total_exec_seconds, gain,
                spec->engine_stats.manipulations_completed,
                spec->engine_stats.manipulations_issued,
                spec->engine_stats.cancelled(),
                spec->engine_stats.manipulations_failed);
    total_normal += normal->total_exec_seconds;
    total_spec += spec->total_exec_seconds;
    all_stats.push_back(spec->engine_stats);
    all_overlap.push_back(spec->overlap);
  }
  if (total_normal > 0) {
    std::printf("\noverall improvement: %.1f%%\n",
                100 * (1 - total_spec / total_normal));
  }
  std::printf("\nengine totals:\n%s",
              FormatEngineStats(AggregateEngineStats(all_stats)).c_str());
  std::printf("%s", FormatOverlapStats(AggregateOverlap(all_overlap)).c_str());

  if (print_explain) {
    std::printf("\nexplain analyze (speculative replays):\n%s",
                explain_out.c_str());
  }
  if (print_decisions) {
    std::printf("\nspeculation flight recorder:\n%s",
                decisions_out.c_str());
  }
  if (print_timeline) {
    std::printf("\ntimeline (speculative replays):\n%s",
                tracer.FormatTimeline().c_str());
  }
  if (!trace_json.empty()) {
    std::ofstream out(trace_json);
    if (!out) {
      std::printf("error: cannot write %s\n", trace_json.c_str());
      return 1;
    }
    out << tracer.ExportChromeTrace();
    std::printf("\nwrote Chrome trace (%zu records) to %s\n"
                "open it in chrome://tracing or https://ui.perfetto.dev\n",
                tracer.records().size(), trace_json.c_str());
  }
  if (print_metrics) {
    std::printf("\nmetrics registry:\n%s",
                MetricsRegistry::Global().Snapshot().Format().c_str());
  }
  if (want_series) {
    std::ofstream out(timeline_series);
    if (!out) {
      std::printf("error: cannot write %s\n", timeline_series.c_str());
      return 1;
    }
    bool json = timeline_series.size() >= 5 &&
                timeline_series.compare(timeline_series.size() - 5, 5,
                                        ".json") == 0;
    out << (json ? timeline.FormatJson() : timeline.FormatCsv());
    std::printf("\nwrote timeline series (%llu ticks) to %s\n",
                static_cast<unsigned long long>(timeline.tick_count()),
                timeline_series.c_str());
  }
  if (!metrics_prom.empty()) {
    std::ofstream out(metrics_prom);
    if (!out) {
      std::printf("error: cannot write %s\n", metrics_prom.c_str());
      return 1;
    }
    out << FormatOpenMetrics(MetricsRegistry::Global().Snapshot());
    std::printf("wrote OpenMetrics snapshot to %s\n", metrics_prom.c_str());
  }
  return 0;
}
