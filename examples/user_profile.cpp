// Learner demo (paper §3.4): train the user-profile models on recorded
// sessions, then open the hood on one speculation decision — showing
// the probability terms that weigh each candidate manipulation.
#include <cstdio>

#include "harness/experiment.h"
#include "speculation/speculator.h"

using namespace sqp;

int main() {
  ExperimentConfig cfg;
  cfg.scale = tpch::Scale::kSmall;
  cfg.num_users = 10;
  auto db = BuildDatabase(cfg);
  if (!db.ok()) {
    std::printf("load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::vector<Trace> history = BuildTraces(cfg);

  SimServer server;
  SpeculationEngine engine(db->get(), &server);
  engine.PretrainLearner(history);
  const Learner& learner = engine.learner();

  std::printf("Learner profile after observing %zu sessions:\n",
              history.size());
  std::printf("  formulations seen:        %zu\n",
              learner.survival().observed_formulations());
  std::printf("  selection retention/query: %.2f  (lifetime %.1f queries)\n",
              learner.retention().RetentionProbability(false),
              1.0 / (1.0 - learner.retention().RetentionProbability(false)));
  std::printf("  join retention/query:      %.2f  (lifetime %.1f queries)\n",
              learner.retention().RetentionProbability(true),
              1.0 / (1.0 - learner.retention().RetentionProbability(true)));
  std::printf("  P(1s manipulation completes | just started): %.2f\n",
              learner.think_time().ProbCompleteInTime(0, 1.0));
  std::printf("  P(10s manipulation completes | just started): %.2f\n",
              learner.think_time().ProbCompleteInTime(0, 10.0));
  std::printf("  P(10s manipulation completes | 20s elapsed):  %.2f\n",
              learner.think_time().ProbCompleteInTime(20.0, 10.0));

  // A partial query mid-formulation: σ(orders) ⋈ lineitem, plus a
  // selection on part.
  QueryGraph partial;
  JoinPred j1;
  j1.left_table = "orders";
  j1.left_column = "o_orderkey";
  j1.right_table = "lineitem";
  j1.right_column = "l_orderkey";
  partial.AddJoin(j1);
  SelectionPred s1;
  s1.table = "orders";
  s1.column = "o_totalprice";
  s1.op = CompareOp::kLt;
  s1.constant = Value(40000.0);
  partial.AddSelection(s1);
  SelectionPred s2;
  s2.table = "lineitem";
  s2.column = "l_quantity";
  s2.op = CompareOp::kLe;
  s2.constant = Value(int64_t{3});
  partial.AddSelection(s2);

  SpeculationCostModel model(db->get(), &learner);
  Speculator speculator(db->get(), &model);
  SpeculationDecision decision = speculator.Decide(partial, /*elapsed=*/3.0);

  std::printf("\nPartial query: %s\n", partial.ToSql().c_str());
  std::printf("\n%-52s %8s %6s %6s %6s %9s\n", "candidate manipulation",
              "Cost_sub", "f_sub", "P(cpl)", "E[use]", "duration");
  for (const auto& [m, eval] : decision.considered) {
    std::string desc = m.Describe();
    if (desc.size() > 52) desc = desc.substr(0, 49) + "...";
    std::printf("%-52s %8.3f %6.2f %6.2f %6.2f %8.2fs\n", desc.c_str(),
                eval.score, eval.containment_probability,
                eval.completion_probability, eval.expected_uses,
                eval.estimated_duration);
  }
  if (decision.chosen.has_value()) {
    std::printf("\nSpeculator picks: %s\n",
                decision.chosen->Describe().c_str());
  } else {
    std::printf("\nSpeculator picks: m0 (do nothing)\n");
  }
  return 0;
}
