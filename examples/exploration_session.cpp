// Exploration session: the paper's full pipeline on the TPC-H subset.
//
// Generates one simulated analyst session (calibrated to the paper's §5
// user profile), replays it twice against the same database — normal and
// speculative — and prints the per-query comparison plus the engine's
// bookkeeping, i.e. a miniature of the paper's Figure 4 methodology.
//
// Usage: exploration_session [user_seed]
#include <cstdio>
#include <cstdlib>

#include "harness/experiment.h"

using namespace sqp;

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2003;

  std::printf("Loading the TPC-H subset (small scale)...\n");
  ExperimentConfig cfg;
  cfg.scale = tpch::Scale::kSmall;
  cfg.num_users = 1;
  cfg.trace_seed = seed;
  auto db = BuildDatabase(cfg);
  if (!db.ok()) {
    std::printf("load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  std::vector<Trace> traces = BuildTraces(cfg);
  const Trace& trace = traces.front();
  std::printf("Generated a session with %zu queries (%zu events).\n\n",
              trace.QueryCount(), trace.events.size());

  ReplayOptions normal_opts;
  normal_opts.speculation = false;
  auto normal = TraceReplayer(db->get(), normal_opts).Replay(trace);
  if (!normal.ok()) {
    std::printf("normal replay failed: %s\n",
                normal.status().ToString().c_str());
    return 1;
  }

  ReplayOptions spec_opts;
  spec_opts.speculation = true;
  auto spec = TraceReplayer(db->get(), spec_opts).Replay(trace);
  if (!spec.ok()) {
    std::printf("speculative replay failed: %s\n",
                spec.status().ToString().c_str());
    return 1;
  }

  std::printf("%-4s %9s %9s %8s  %s\n", "#", "normal", "spec", "gain%",
              "query (views used)");
  for (size_t i = 0; i < normal->queries.size(); i++) {
    const auto& n = normal->queries[i];
    const auto& s = spec->queries[i];
    double gain = n.seconds > 0 ? 100 * (1 - s.seconds / n.seconds) : 0;
    std::string sql = n.query.ToSql();
    if (sql.size() > 60) sql = sql.substr(0, 57) + "...";
    std::printf("%-4zu %8.2fs %8.2fs %7.1f%%  %s", i + 1, n.seconds,
                s.seconds, gain, sql.c_str());
    if (!s.views_used.empty()) {
      std::printf("  [%zu view%s]", s.views_used.size(),
                  s.views_used.size() == 1 ? "" : "s");
    }
    std::printf("\n");
  }

  const EngineStats& stats = spec->engine_stats;
  std::printf("\nSession summary\n");
  std::printf("  total execution, normal:      %8.2fs\n",
              normal->total_exec_seconds);
  std::printf("  total execution, speculative: %8.2fs\n",
              spec->total_exec_seconds);
  std::printf("  improvement:                  %8.1f%%\n",
              100 * (1 - spec->total_exec_seconds /
                             normal->total_exec_seconds));
  std::printf("  manipulations issued:         %zu\n",
              stats.manipulations_issued);
  std::printf("  completed / cancelled@GO / cancelled@edit / abandoned: "
              "%zu / %zu / %zu / %zu\n",
              stats.manipulations_completed, stats.cancelled_at_go,
              stats.cancelled_by_edit, stats.abandoned_at_completion);
  std::printf("  views garbage-collected:      %zu\n",
              stats.views_garbage_collected);
  return 0;
}
