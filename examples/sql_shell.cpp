// sql_shell: an interactive textual query interface with speculation —
// the variant the paper sketches in §2 footnote 1 ("one can envision
// speculation in the context of a textual query interface").
//
// The analyst *previews* a query (the partial query on the canvas),
// *thinks* (simulated seconds pass; the engine runs manipulations in the
// background), and finally *goes*. The shell narrates what the
// speculation subsystem does.
//
// Commands (also accepted from a pipe; try `sql_shell --demo`):
//   preview SELECT ...   set/update the partial query
//   think N              let N seconds of think time pass
//   go                   submit the current partial query
//   sql SELECT ...       run a statement directly (aggregates, ORDER BY,
//                        LIMIT supported); benefits from live views
//   explain              show the current plan for the partial query
//   stats                engine statistics
//   tables               list tables
//   quit
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "sql/binder.h"

using namespace sqp;

namespace {

/// Feed the structural diff old -> new to the engine as edit events.
Status ApplyDiff(SpeculationEngine* engine, const QueryGraph& next,
                 double sim_time) {
  QueryGraph current = engine->partial();
  for (const auto& sel : current.selections()) {
    if (!next.HasSelection(sel.Key())) {
      TraceEvent e;
      e.type = TraceEventType::kRemoveSelection;
      e.selection = sel;
      SQP_RETURN_IF_ERROR(engine->OnUserEvent(e, sim_time));
    }
  }
  for (const auto& join : current.joins()) {
    if (!next.HasJoin(join.Key())) {
      TraceEvent e;
      e.type = TraceEventType::kRemoveJoin;
      e.join = join;
      SQP_RETURN_IF_ERROR(engine->OnUserEvent(e, sim_time));
    }
  }
  for (const auto& join : next.joins()) {
    if (!engine->partial().HasJoin(join.Key())) {
      TraceEvent e;
      e.type = TraceEventType::kAddJoin;
      e.join = join;
      SQP_RETURN_IF_ERROR(engine->OnUserEvent(e, sim_time));
    }
  }
  for (const auto& sel : next.selections()) {
    if (!engine->partial().HasSelection(sel.Key())) {
      TraceEvent e;
      e.type = TraceEventType::kAddSelection;
      e.selection = sel;
      SQP_RETURN_IF_ERROR(engine->OnUserEvent(e, sim_time));
    }
  }
  return Status::OK();
}

const char* kDemoScript =
    "preview SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey"
    " AND o_totalprice < 20000\n"
    "think 15\n"
    "stats\n"
    "go\n"
    "think 8\n"
    "preview SELECT * FROM orders, lineitem, part WHERE o_orderkey = "
    "l_orderkey AND l_partkey = p_partkey AND o_totalprice < 20000\n"
    "think 10\n"
    "go\n"
    "sql SELECT p_mfgr, COUNT(*), AVG(l_quantity) FROM orders, lineitem, "
    "part WHERE o_orderkey = l_orderkey AND l_partkey = p_partkey AND "
    "o_totalprice < 20000 GROUP BY p_mfgr ORDER BY p_mfgr\n"
    "stats\n"
    "quit\n";

}  // namespace

int main(int argc, char** argv) {
  bool demo = argc > 1 && std::strcmp(argv[1], "--demo") == 0;

  std::printf("Loading the TPC-H subset (small scale)...\n");
  ExperimentConfig cfg;
  cfg.scale = tpch::Scale::kSmall;
  auto db = BuildDatabase(cfg);
  if (!db.ok()) {
    std::printf("load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Database& database = **db;

  SimServer server;
  SpeculationEngine engine(&database, &server);
  double clock = 0;

  std::istringstream demo_input(kDemoScript);
  std::istream& in = demo ? static_cast<std::istream&>(demo_input)
                          : std::cin;

  std::printf("sqp shell — type 'preview SELECT ...', 'think N', 'go'.\n");
  std::string line;
  while (std::printf("sqp[t=%.0fs]> ", clock), std::fflush(stdout),
         std::getline(in, line)) {
    if (demo) std::printf("%s\n", line.c_str());
    std::istringstream ls(line);
    std::string cmd;
    ls >> cmd;
    if (cmd.empty()) continue;

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "tables") {
      for (const auto& name : database.catalog().TableNames()) {
        const TableInfo* t = database.catalog().GetTable(name);
        std::printf("  %-16s %8llu rows  %s\n", name.c_str(),
                    static_cast<unsigned long long>(t->stats.row_count()),
                    t->schema.ToString().c_str());
      }
      continue;
    }

    if (cmd == "think") {
      double seconds = 0;
      ls >> seconds;
      size_t before = engine.stats().manipulations_completed;
      clock += seconds;
      server.AdvanceTo(clock);
      (void)engine.OnQueryResult(clock);  // lazy sync + re-issue
      if (engine.stats().manipulations_completed > before) {
        std::printf("  [%.0fs pass; a speculative materialization "
                    "completed: %zu view(s) ready]\n",
                    seconds, engine.live_views().size());
      } else {
        std::printf("  [%.0fs pass]\n", seconds);
      }
      continue;
    }

    if (cmd == "preview") {
      std::string sql = line.substr(line.find("preview") + 8);
      auto graph = ParseAndBind(sql, database.catalog());
      if (!graph.ok()) {
        std::printf("  error: %s\n", graph.status().ToString().c_str());
        continue;
      }
      Status status = ApplyDiff(&engine, *graph, clock);
      if (!status.ok()) {
        std::printf("  error: %s\n", status.ToString().c_str());
        continue;
      }
      std::printf("  partial query: %s\n",
                  engine.partial().ToSql().c_str());
      if (engine.stats().manipulations_issued > 0) {
        std::printf("  [engine: %zu issued, %zu completed, %zu live "
                    "view(s)]\n",
                    engine.stats().manipulations_issued,
                    engine.stats().manipulations_completed,
                    engine.live_views().size());
      }
      continue;
    }

    if (cmd == "explain") {
      auto plan = database.planner().Plan(engine.partial(),
                                          &database.views(),
                                          engine.final_view_mode());
      if (!plan.ok()) {
        std::printf("  error: %s\n", plan.status().ToString().c_str());
        continue;
      }
      std::printf("%s", plan->Explain().c_str());
      continue;
    }

    if (cmd == "go") {
      QueryGraph final_query = engine.partial();
      if (final_query.empty()) {
        std::printf("  nothing to run — preview a query first\n");
        continue;
      }
      auto submit = engine.OnGo(clock);
      if (!submit.ok()) {
        std::printf("  error: %s\n", submit.status().ToString().c_str());
        continue;
      }
      ExecuteOptions opts;
      opts.view_mode = engine.final_view_mode();
      auto result = database.Execute(final_query, opts);
      if (!result.ok()) {
        std::printf("  error: %s\n", result.status().ToString().c_str());
        continue;
      }
      clock += result->seconds;
      server.AdvanceTo(clock);
      std::printf("  %llu rows in %.2f simulated seconds",
                  static_cast<unsigned long long>(result->row_count),
                  result->seconds);
      if (!result->views_used.empty()) {
        std::printf("  (rewritten via");
        for (const auto& v : result->views_used) {
          std::printf(" %s", v.c_str());
        }
        std::printf(")");
      }
      std::printf("\n");
      (void)engine.OnQueryResult(clock);
      continue;
    }

    if (cmd == "sql") {
      std::string sql = line.substr(line.find("sql") + 4);
      ExecuteOptions opts;
      opts.keep_rows = true;
      opts.view_mode = ViewMode::kCostBased;
      auto result = database.ExecuteSql(sql, opts);
      if (!result.ok()) {
        std::printf("  error: %s\n", result.status().ToString().c_str());
        continue;
      }
      clock += result->seconds;
      server.AdvanceTo(clock);
      std::printf("  %s\n", result->schema.ToString().c_str());
      size_t shown = 0;
      for (const auto& row : result->rows) {
        if (shown++ >= 10) {
          std::printf("  ... (%llu rows total)\n",
                      static_cast<unsigned long long>(result->row_count));
          break;
        }
        std::printf("  (");
        for (size_t i = 0; i < row.size(); i++) {
          std::printf("%s%s", i > 0 ? ", " : "", row[i].ToString().c_str());
        }
        std::printf(")\n");
      }
      std::printf("  %.2f simulated seconds\n", result->seconds);
      continue;
    }

    if (cmd == "stats") {
      const EngineStats& st = engine.stats();
      std::printf("  issued %zu | completed %zu | cancelled %zu | "
                  "abandoned %zu | GC'd %zu | live views %zu\n",
                  st.manipulations_issued, st.manipulations_completed,
                  st.cancelled(), st.abandoned_at_completion,
                  st.views_garbage_collected, engine.live_views().size());
      continue;
    }

    std::printf("  unknown command: %s\n", cmd.c_str());
  }
  std::printf("\nbye\n");
  return 0;
}
