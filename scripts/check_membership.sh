#!/usr/bin/env bash
# Run the membership fuzz harness under distinct base seeds.
#
# Each membership_test invocation internally replays 10 randomized
# membership schedules starting at SQP_MEMBERSHIP_SEED, each on a fresh
# 4-node (quorum-3) database: joins, decommissions, quorum-guarded
# kills, budgeted repairs, and plug-pull crashes fire at random event
# boundaries while a synthetic speculation session replays, with
# low-probability joint-quorum and rebalance-copy faults armed
# throughout. The default sweep of 10 base seeds covers 100 schedules
# (SQP_SWEEP_SEEDS scales the base-seed count; the nightly CI uses
# 100 -> 1000 schedules). Every schedule must (a) return final-query
# results bit-identical to a fault-free run, (b) end with zero orphan
# pages and zero shadow-only pages once repair completes, and (c) leave
# the manifest configuration healthy (quorum reachable, no transition
# left open).
#
# Every seed runs even after a failure; failed seeds are listed at the
# end and the script exits non-zero, so one failure cannot mask another.
#
# Usage: scripts/check_membership.sh [path-to-membership_test-binary]
set -euo pipefail

BIN="${1:-build/tests/membership_test}"
if [ ! -x "$BIN" ]; then
  echo "error: membership_test binary not found at '$BIN'" >&2
  echo "build it first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

SWEEP_SEEDS="${SQP_SWEEP_SEEDS:-10}"
failed_seeds=()
for ((i = 0; i < SWEEP_SEEDS; i++)); do
  seed=$((1 + i * 100))
  echo "=== membership sweep: base seed $seed ==="
  if ! SQP_MEMBERSHIP_SEED="$seed" "$BIN" \
      --gtest_filter='MembershipFuzzTest.*' --gtest_brief=1; then
    failed_seeds+=("$seed")
  fi
done

if [ "${#failed_seeds[@]}" -gt 0 ]; then
  echo "check_membership: FAILED seeds: ${failed_seeds[*]}" >&2
  exit 1
fi
echo "check_membership: all $SWEEP_SEEDS seed sweeps passed"
