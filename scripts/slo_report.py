#!/usr/bin/env python3
"""SLO health report over telemetry artifacts (DESIGN.md §16).

Consumes the artifacts the benches and replay tools already emit --
OpenMetrics snapshots (``--metrics-prom`` / ``SQP_METRICS_PROM``),
timeline series dumps (``--timeline-series`` / ``SQP_TIMELINE_CSV``),
and ``BENCH_*.json`` capture files from ``run_bench_json.sh`` -- and
evaluates a fixed set of service-level objectives:

  query_latency_p99       p99 of attr.query.seconds (simulated s)
  maintenance_p99         p99 of attr.maintenance.seconds -- the
                          inclusive duration of recovery/repair passes
  plan_q_error_mean       mean of exec.plan.q_error
  learner_brier           spec.learner.brier gauge
  parallel_fallback_rate  exec.parallel.fallbacks / exec.parallel.morsels
  telemetry_dropped       telemetry.ticks_dropped (ring-buffer overflow)

Every input is a deterministic function of the replay seed, so the
report is pass/fail-stable in CI: same commit + same seed -> same
verdict. Objectives whose inputs are absent (e.g. no threaded run ->
no exec.parallel.morsels) are reported as SKIP, not failures.

Usage:
  scripts/slo_report.py [--prom FILE]... [--timeline FILE]...
                        [--bench-json DIR] [-o REPORT.md]
                        [--slo NAME=THRESHOLD]...

Exit code: 0 when no objective fails, 1 otherwise (CI runs this
non-blocking and publishes the report as an artifact).
"""

import argparse
import glob
import json
import math
import os
import re
import sys

# name -> (default threshold, comparator, description)
DEFAULT_SLOS = {
    "query_latency_p99": (300.0, "<=", "p99 attr.query.seconds (sim s)"),
    "maintenance_p99": (300.0, "<=",
                        "p99 attr.maintenance.seconds: recovery/repair"),
    "plan_q_error_mean": (8.0, "<=", "mean exec.plan.q_error"),
    "learner_brier": (0.35, "<=",
                      "spec.learner.brier (0.25 = chance; small-cohort "
                      "CI runs sit slightly above it)"),
    "parallel_fallback_rate": (0.05, "<=",
                               "exec.parallel.fallbacks / morsels"),
    "telemetry_dropped": (0.0, "<=", "telemetry.ticks_dropped"),
}


def parse_openmetrics(path):
    """Parse an OpenMetrics text file into {name: value} samples.

    Histogram buckets land as (name, le) -> cumulative count under the
    "buckets" key; _sum/_count/_total suffixes stay on the sample name.
    """
    samples = {}
    buckets = {}  # metric -> [(le, cumulative count)]
    line_re = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)")
    for line in open(path, encoding="utf-8"):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = line_re.match(line)
        if not m:
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            v = float(value)
        except ValueError:
            continue
        if name.endswith("_bucket"):
            le = re.search(r'le="([^"]*)"', labels)
            if le:
                edge = math.inf if le.group(1) == "+Inf" else float(
                    le.group(1))
                buckets.setdefault(name[:-len("_bucket")], []).append(
                    (edge, v))
            continue
        samples[name] = v
    samples["__buckets__"] = buckets
    return samples


def merge_metrics(files):
    """Merge several OpenMetrics files: last writer wins per sample.

    The benches each dump one snapshot; passing several reports on the
    union (e.g. fig7 plus a recovery-heavy replay).
    """
    merged = {"__buckets__": {}}
    for path in files:
        s = parse_openmetrics(path)
        b = s.pop("__buckets__")
        merged.update(s)
        merged["__buckets__"].update(b)
    return merged


def histogram_percentile(buckets, q):
    """Percentile from cumulative (le, count) pairs, interpolated."""
    if not buckets:
        return None
    buckets = sorted(buckets)
    total = buckets[-1][1]
    if total <= 0:
        return None
    target = q * total
    prev_edge, prev_count = 0.0, 0.0
    for edge, count in buckets:
        if count >= target:
            if math.isinf(edge):
                return prev_edge  # overflow bucket: pin to last edge
            span = count - prev_count
            frac = (target - prev_count) / span if span > 0 else 0.0
            return prev_edge + frac * (edge - prev_edge)
        prev_edge, prev_count = edge, count
    return prev_edge


def timeline_health(paths):
    """Scan timeline CSV dumps: tick counts and monotonicity breaks.

    Returns (ticks, monotonicity_violations). Counters must never show
    a negative delta; a violation means the sampler or a reset leaked
    into a dump that claims to be deterministic.
    """
    # Gauge families whose names would otherwise trip the counter-ish
    # pattern below: speculative-cache occupancy shrinks at GC/eviction
    # and the active-job gauge falls as jobs drain.
    gauge_re = re.compile(r"^(spec\.cache\.|sim\.active_jobs$|"
                          r"attr\.sessions$|telemetry\.series$)")
    ticks = set()
    violations = 0
    for path in paths:
        with open(path, encoding="utf-8") as f:
            header = f.readline().strip().split(",")
            try:
                i_tick = header.index("tick")
                i_series = header.index("series")
                i_delta = header.index("delta")
            except ValueError:
                continue
            for line in f:
                parts = line.rstrip("\n").split(",")
                if len(parts) <= max(i_tick, i_series, i_delta):
                    continue
                ticks.add((path, parts[i_tick]))
                series = parts[i_series]
                # Gauges may legitimately fall; counter families the
                # engine owns must not.
                if gauge_re.match(series):
                    continue
                if series.endswith((".count", ".sum")) or \
                        re.search(r"(reads|writes|hits|misses|pages|ticks|"
                                  r"jobs_|runs|blocks|tuples)", series):
                    try:
                        if float(parts[i_delta]) < -1e-9:
                            violations += 1
                    except ValueError:
                        pass
    return len(ticks), violations


def bench_json_signals(bench_dir):
    """Scrape q-error / brier / improvement lines from BENCH_*.json."""
    out = {}
    for path in sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json"))):
        try:
            doc = json.load(open(path, encoding="utf-8"))
        except (OSError, ValueError):
            continue
        for line in doc.get("stdout_lines", []):
            m = re.search(r"plan q-error \(mean\):\s*([0-9.]+)", line)
            if m:
                out.setdefault("plan_q_error_mean", []).append(
                    float(m.group(1)))
            m = re.search(r"learner brier:\s*([0-9.]+)", line)
            if m:
                out.setdefault("learner_brier", []).append(float(m.group(1)))
    return out


def evaluate(metrics, timeline_paths, bench_dir, thresholds):
    """Compute every objective; returns [(name, value, verdict)]."""
    buckets = metrics.get("__buckets__", {})
    rows = []

    def add(name, value):
        threshold, op, _ = thresholds[name]
        if value is None:
            rows.append((name, None, "SKIP"))
            return
        ok = value <= threshold if op == "<=" else value >= threshold
        rows.append((name, value, "PASS" if ok else "FAIL"))

    add("query_latency_p99",
        histogram_percentile(buckets.get("attr_query_seconds", []), 0.99))
    add("maintenance_p99",
        histogram_percentile(buckets.get("attr_maintenance_seconds", []),
                             0.99))

    q_sum = metrics.get("exec_plan_q_error_sum")
    q_count = metrics.get("exec_plan_q_error_count")
    q_mean = q_sum / q_count if q_sum is not None and q_count else None
    if q_mean is None and bench_dir:
        vals = bench_json_signals(bench_dir).get("plan_q_error_mean")
        q_mean = max(vals) if vals else None
    add("plan_q_error_mean", q_mean)

    brier = metrics.get("spec_learner_brier")
    if brier is None and bench_dir:
        vals = bench_json_signals(bench_dir).get("learner_brier")
        brier = max(vals) if vals else None
    add("learner_brier", brier)

    morsels = metrics.get("exec_parallel_morsels_total")
    fallbacks = metrics.get("exec_parallel_fallbacks_total")
    add("parallel_fallback_rate",
        fallbacks / morsels if morsels else None)

    add("telemetry_dropped", metrics.get("telemetry_ticks_dropped_total"))

    if timeline_paths:
        ticks, violations = timeline_health(timeline_paths)
        rows.append(("timeline_ticks", float(ticks), "INFO"))
        rows.append(("timeline_monotonicity_violations", float(violations),
                     "PASS" if violations == 0 else "FAIL"))
    return rows


def format_report(rows, thresholds):
    lines = ["# SLO health report", ""]
    lines.append("| objective | value | threshold | verdict |")
    lines.append("|---|---|---|---|")
    for name, value, verdict in rows:
        if name in thresholds:
            threshold, op, desc = thresholds[name]
            bound = "%s %g" % (op, threshold)
        else:
            bound, desc = "-", ""
        shown = "-" if value is None else "%.4g" % value
        lines.append("| `%s` | %s | %s | %s |" % (name, shown, bound,
                                                  verdict))
    lines.append("")
    for name, _, _ in rows:
        if name in thresholds:
            lines.append("* `%s` — %s" % (name, thresholds[name][2]))
    lines.append("")
    failed = [name for name, _, v in rows if v == "FAIL"]
    skipped = [name for name, _, v in rows if v == "SKIP"]
    lines.append("**%s** (%d failed, %d skipped)" %
                 ("FAIL" if failed else "PASS", len(failed), len(skipped)))
    lines.append("")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--prom", action="append", default=[],
                        help="OpenMetrics snapshot file (repeatable)")
    parser.add_argument("--timeline", action="append", default=[],
                        help="timeline series CSV dump (repeatable)")
    parser.add_argument("--bench-json", default=None,
                        help="directory of BENCH_*.json capture files")
    parser.add_argument("--slo", action="append", default=[],
                        metavar="NAME=THRESHOLD",
                        help="override an objective threshold")
    parser.add_argument("-o", "--output", default=None,
                        help="write the markdown report here (else stdout)")
    args = parser.parse_args()

    thresholds = dict(DEFAULT_SLOS)
    for override in args.slo:
        name, _, value = override.partition("=")
        if name not in thresholds or not value:
            parser.error("unknown --slo %r (objectives: %s)" %
                         (override, ", ".join(sorted(thresholds))))
        old = thresholds[name]
        thresholds[name] = (float(value), old[1], old[2])

    metrics = merge_metrics(args.prom) if args.prom else {"__buckets__": {}}
    rows = evaluate(metrics, args.timeline, args.bench_json, thresholds)
    report = format_report(rows, thresholds)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(report)
        print("wrote %s" % args.output)
    sys.stdout.write(report)
    return 1 if any(v == "FAIL" for _, _, v in rows) else 0


if __name__ == "__main__":
    sys.exit(main())
