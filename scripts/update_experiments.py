#!/usr/bin/env python3
"""Splice bench_output.txt sections into EXPERIMENTS.md.

Each `<!-- RESULTS:key -->` marker in EXPERIMENTS.md is replaced by the
corresponding bench's output (fenced as a code block). Idempotent: the
spliced block is wrapped in begin/end markers and regenerated in place.
"""
import re
import sys

BENCH_FOR_KEY = {
    "think_time": "bench_think_time",
    "fig4": "bench_fig4_improvement",
    "fig5": "bench_fig5_extremes",
    "fig6": "bench_fig6_matviews",
    "fig7": "bench_fig7_multiuser",
    "ablation": "bench_ablation_manipulations",
    "memory": "bench_memory_resident",
    "cost_model": "bench_cost_model",
    "micro": "bench_engine_micro",
}


def bench_sections(output_path):
    sections = {}
    current = None
    for line in open(output_path):
        m = re.match(r"^===== .*/(\w+) =====$", line)
        if m:
            current = m.group(1)
            sections[current] = []
        elif current:
            sections[current].append(line.rstrip("\n"))
    return {k: "\n".join(v).strip() for k, v in sections.items()}


def main():
    bench_out = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    md_path = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    sections = bench_sections(bench_out)
    text = open(md_path).read()

    for key, bench in BENCH_FOR_KEY.items():
        if bench not in sections:
            print(f"warning: {bench} missing from {bench_out}")
            continue
        block = (f"<!-- RESULTS:{key} -->\n```\n{sections[bench]}\n```\n"
                 f"<!-- /RESULTS:{key} -->")
        # Replace either the bare marker or a previously spliced block.
        spliced = re.compile(
            r"<!-- RESULTS:" + key + r" -->.*?<!-- /RESULTS:" + key +
            r" -->", re.S)
        if spliced.search(text):
            text = spliced.sub(lambda _: block, text)
        else:
            text = text.replace(f"<!-- RESULTS:{key} -->", block)

    open(md_path, "w").write(text)
    print(f"updated {md_path} from {bench_out}")


if __name__ == "__main__":
    main()
