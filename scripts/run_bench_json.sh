#!/usr/bin/env bash
# Run every bench binary and emit one machine-readable BENCH_<name>.json
# per bench next to the text output, so dashboards and regression
# tooling can consume results without scraping logs.
#
# Each JSON file records the bench name, git revision, run timestamp,
# exit code, the bench environment knobs, and the captured stdout as a
# line array (the benches print aligned text tables; downstream tooling
# parses the lines it cares about).
#
# Usage: scripts/run_bench_json.sh [output-dir] [bench-binary...]
#   output-dir defaults to bench_json/; with no binaries listed, every
#   executable under build/bench/ is run. Bench knobs (SQP_USERS,
#   SQP_SCALES, SQP_SEED, SQP_EXEC_THREADS) are honored as usual.
#
# Each JSON also records `host_cores` (hardware threads on the machine)
# and the SQP_EXEC_THREADS knob, so bench_compare.py consumers can tell
# a scaling regression from a comparison across differently-sized
# hosts before trusting parallel.* wall-clock figures.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${1:-bench_json}"
shift || true
mkdir -p "$OUT_DIR"

BENCHES=("$@")
if [ "${#BENCHES[@]}" -eq 0 ]; then
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    BENCHES+=("$b")
  done
fi
if [ "${#BENCHES[@]}" -eq 0 ]; then
  echo "error: no bench binaries found; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build" >&2
  exit 1
fi

GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
TIMESTAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
HOST_CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"

for bench in "${BENCHES[@]}"; do
  name="$(basename "$bench")"
  echo "=== $name ==="
  stdout_file="$(mktemp)"
  exit_code=0
  "$bench" >"$stdout_file" 2>&1 || exit_code=$?
  cat "$stdout_file"

  json_file="$OUT_DIR/BENCH_${name}.json"
  STDOUT_FILE="$stdout_file" BENCH_NAME="$name" GIT_REV="$GIT_REV" \
  TIMESTAMP="$TIMESTAMP" EXIT_CODE="$exit_code" JSON_FILE="$json_file" \
  HOST_CORES="$HOST_CORES" \
  python3 - <<'PY'
import json
import os

with open(os.environ["STDOUT_FILE"], "r", errors="replace") as f:
    lines = f.read().splitlines()

doc = {
    "bench": os.environ["BENCH_NAME"],
    "git_rev": os.environ["GIT_REV"],
    "timestamp": os.environ["TIMESTAMP"],
    "exit_code": int(os.environ["EXIT_CODE"]),
    "host_cores": int(os.environ.get("HOST_CORES", "0")),
    "env": {
        k: os.environ[k]
        for k in ("SQP_USERS", "SQP_SCALES", "SQP_SEED",
                  "SQP_EXEC_THREADS")
        if k in os.environ
    },
    "stdout_lines": lines,
}
with open(os.environ["JSON_FILE"], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PY
  rm -f "$stdout_file"
  echo "wrote $json_file (exit $exit_code)"
  if [ "$exit_code" -ne 0 ]; then
    echo "error: $name exited non-zero" >&2
    exit "$exit_code"
  fi
done
echo "all benches done; JSON in $OUT_DIR/"
