#!/usr/bin/env bash
# Run the crash-recovery chaos harness under distinct base seeds.
#
# Each crash_recovery_test invocation internally replays 10 randomized
# crash schedules starting at SQP_CRASH_SEED, so the default sweep of
# 10 base seeds covers 100 schedules (SQP_SWEEP_SEEDS scales the
# base-seed count; the nightly CI uses 100 -> 1000 schedules). Every
# schedule must (a) return final-query results bit-identical to a
# crash-free run, (b) detect every torn page instead of serving it, and
# (c) leave zero orphan pages after recovery.
#
# Every seed runs even after a failure; failed seeds are listed at the
# end and the script exits non-zero, so one failure cannot mask another.
#
# Usage: scripts/check_crash.sh [path-to-crash_recovery_test-binary]
set -euo pipefail

BIN="${1:-build/tests/crash_recovery_test}"
if [ ! -x "$BIN" ]; then
  echo "error: crash_recovery_test binary not found at '$BIN'" >&2
  echo "build it first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

SWEEP_SEEDS="${SQP_SWEEP_SEEDS:-10}"
failed_seeds=()
for ((i = 0; i < SWEEP_SEEDS; i++)); do
  seed=$((1 + i * 100))
  echo "=== crash sweep: base seed $seed ==="
  if ! SQP_CRASH_SEED="$seed" "$BIN" \
      --gtest_filter='CrashChaosTest.*' --gtest_brief=1; then
    failed_seeds+=("$seed")
  fi
done

if [ "${#failed_seeds[@]}" -gt 0 ]; then
  echo "check_crash: FAILED seeds: ${failed_seeds[*]}" >&2
  exit 1
fi
echo "check_crash: all $SWEEP_SEEDS seed sweeps passed"
