#!/usr/bin/env bash
# Run the crash-recovery chaos harness under 10 distinct base seeds.
#
# Each crash_recovery_test invocation internally replays 10 randomized
# crash schedules starting at SQP_CRASH_SEED, so this sweep covers 100
# schedules. Every schedule must (a) return final-query results
# bit-identical to a crash-free run, (b) detect every torn page instead
# of serving it, and (c) leave zero orphan pages after recovery.
#
# Usage: scripts/check_crash.sh [path-to-crash_recovery_test-binary]
set -euo pipefail

BIN="${1:-build/tests/crash_recovery_test}"
if [ ! -x "$BIN" ]; then
  echo "error: crash_recovery_test binary not found at '$BIN'" >&2
  echo "build it first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

for seed in 1 101 201 301 401 501 601 701 801 901; do
  echo "=== crash sweep: base seed $seed ==="
  SQP_CRASH_SEED="$seed" "$BIN" \
    --gtest_filter='CrashChaosTest.*' --gtest_brief=1
done
echo "check_crash: all 10 seed sweeps passed"
