#!/usr/bin/env bash
# Run the node-loss chaos harness under distinct base seeds.
#
# Each node_loss_test invocation internally replays 10 randomized
# schedules starting at SQP_NODELOSS_SEED, each on a fresh 4-node
# (quorum-3) database: per-node transient partitions and disk faults
# fire inside speculative work throughout, one randomly chosen storage
# node is permanently killed at a random event boundary, and random
# plug-pull crashes land on the survivors. The default sweep of 10 base
# seeds covers 100 schedules (SQP_SWEEP_SEEDS scales the base-seed
# count; the nightly CI uses 100 -> 1000 schedules). Every schedule
# must (a) return final-query results bit-identical to a fault-free
# run, (b) recover the manifest from a quorum of surviving replicas,
# and (c) leave zero orphan pages on every surviving node.
#
# Every seed runs even after a failure; failed seeds are listed at the
# end and the script exits non-zero, so one failure cannot mask another.
#
# Usage: scripts/check_nodeloss.sh [path-to-node_loss_test-binary]
set -euo pipefail

BIN="${1:-build/tests/node_loss_test}"
if [ ! -x "$BIN" ]; then
  echo "error: node_loss_test binary not found at '$BIN'" >&2
  echo "build it first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

SWEEP_SEEDS="${SQP_SWEEP_SEEDS:-10}"
failed_seeds=()
for ((i = 0; i < SWEEP_SEEDS; i++)); do
  seed=$((1 + i * 100))
  echo "=== node-loss sweep: base seed $seed ==="
  if ! SQP_NODELOSS_SEED="$seed" "$BIN" \
      --gtest_filter='NodeLossChaosTest.*' --gtest_brief=1; then
    failed_seeds+=("$seed")
  fi
done

if [ "${#failed_seeds[@]}" -gt 0 ]; then
  echo "check_nodeloss: FAILED seeds: ${failed_seeds[*]}" >&2
  exit 1
fi
echo "check_nodeloss: all $SWEEP_SEEDS seed sweeps passed"
