#!/usr/bin/env bash
# check_format.sh — report clang-format drift across the C++ sources.
#
# Usage: scripts/check_format.sh [--strict]
#
# Default mode only warns (exit 0) so environments without clang-format,
# or with a different clang-format major version, never break the build;
# --strict exits 1 when any file needs reformatting (the CI format job
# runs strict but is itself marked non-blocking).
set -u

strict=0
[[ "${1:-}" == "--strict" ]] && strict=1

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed; skipping"
  exit 0
fi

mapfile -t files < <(find src tests bench examples \
  -name '*.cc' -o -name '*.h' -o -name '*.cpp' | sort)

dirty=()
for f in "${files[@]}"; do
  if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
    dirty+=("$f")
  fi
done

if [[ ${#dirty[@]} -eq 0 ]]; then
  echo "check_format: ${#files[@]} files clean"
  exit 0
fi

echo "check_format: ${#dirty[@]} of ${#files[@]} files need reformatting:"
printf '  %s\n' "${dirty[@]}"
echo "run: clang-format -i <file> (style: .clang-format)"
[[ $strict -eq 1 ]] && exit 1
exit 0
