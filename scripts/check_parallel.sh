#!/usr/bin/env bash
# Run the parallel-vs-sequential differential under distinct
# fault-schedule base seeds.
#
# Each exec_parallel_test invocation replays every differential at
# exec_threads 1, 2, 4 and 8: rows, CostMeter charges and EXPLAIN
# ANALYZE actuals must be bit-identical at every thread count, and the
# fault-schedule rounds (seeded from SQP_CHAOS_SEED, like the chaos
# sweep) must fail at the same point with the same charges. The default
# sweep covers 10 base seeds; SQP_SWEEP_SEEDS scales the count (the
# nightly CI uses more, and additionally runs this suite under TSAN).
#
# Every seed runs even after a failure; failed seeds are listed at the
# end and the script exits non-zero, so one failure cannot mask another.
#
# Usage: scripts/check_parallel.sh [exec_parallel_test-binary]
set -euo pipefail

BIN="${1:-build/tests/exec_parallel_test}"
if [ ! -x "$BIN" ]; then
  echo "error: exec_parallel_test binary not found at '$BIN'" >&2
  echo "build it first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

SWEEP_SEEDS="${SQP_SWEEP_SEEDS:-10}"
failed_seeds=()
for ((i = 0; i < SWEEP_SEEDS; i++)); do
  seed=$((1 + i * 100))
  echo "=== parallel sweep: base seed $seed ==="
  if ! SQP_CHAOS_SEED="$seed" "$BIN" --gtest_brief=1; then
    failed_seeds+=("$seed")
  fi
done

if [ "${#failed_seeds[@]}" -gt 0 ]; then
  echo "check_parallel: FAILED seeds: ${failed_seeds[*]}" >&2
  exit 1
fi
echo "check_parallel: all $SWEEP_SEEDS seed sweeps passed"
