#!/usr/bin/env bash
# Run the chaos test under distinct fault-schedule base seeds.
#
# Each chaos_test invocation internally replays 10 seeds starting at
# SQP_CHAOS_SEED, so the default sweep of 10 base seeds covers 100
# randomized fault schedules (SQP_SWEEP_SEEDS scales the base-seed
# count; the nightly CI uses 100 -> 1000 schedules). Every schedule
# must leave final query results bit-identical to a no-speculation run
# and restore the disk's live-page count.
#
# When a second binary is given (exec_batch_test), each seed also runs
# the batch-vs-tuple differential under the same fault schedules,
# asserting the two execution interfaces stay bit-identical (results
# AND simulated charges) while storage faults fire.
#
# Every seed runs even after a failure; failed seeds are listed at the
# end and the script exits non-zero, so one failure cannot mask another.
#
# Usage: scripts/check_chaos.sh [chaos_test-binary] [exec_batch_test-binary]
set -euo pipefail

BIN="${1:-build/tests/chaos_test}"
BATCH_BIN="${2:-}"
if [ ! -x "$BIN" ]; then
  echo "error: chaos_test binary not found at '$BIN'" >&2
  echo "build it first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
if [ -n "$BATCH_BIN" ] && [ ! -x "$BATCH_BIN" ]; then
  echo "error: exec_batch_test binary not found at '$BATCH_BIN'" >&2
  exit 1
fi

SWEEP_SEEDS="${SQP_SWEEP_SEEDS:-10}"
failed_seeds=()
for ((i = 0; i < SWEEP_SEEDS; i++)); do
  seed=$((1 + i * 100))
  echo "=== chaos sweep: base seed $seed ==="
  if ! SQP_CHAOS_SEED="$seed" "$BIN" \
      --gtest_filter='ChaosReplayTest.*' --gtest_brief=1; then
    failed_seeds+=("$seed")
  fi
  if [ -n "$BATCH_BIN" ]; then
    if ! SQP_CHAOS_SEED="$seed" "$BATCH_BIN" \
        --gtest_filter='*FaultScheduleBitIdentical*' --gtest_brief=1; then
      failed_seeds+=("$seed(batch)")
    fi
  fi
done

if [ "${#failed_seeds[@]}" -gt 0 ]; then
  echo "check_chaos: FAILED seeds: ${failed_seeds[*]}" >&2
  exit 1
fi
echo "check_chaos: all $SWEEP_SEEDS seed sweeps passed"
