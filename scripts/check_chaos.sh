#!/usr/bin/env bash
# Run the chaos test under 10 distinct fault-schedule base seeds.
#
# Each chaos_test invocation internally replays 10 seeds starting at
# SQP_CHAOS_SEED, so this sweep covers 100 randomized fault schedules.
# Every schedule must leave final query results bit-identical to a
# no-speculation run and restore the disk's live-page count.
#
# When a second binary is given (exec_batch_test), each seed also runs
# the batch-vs-tuple differential under the same fault schedules,
# asserting the two execution interfaces stay bit-identical (results
# AND simulated charges) while storage faults fire.
#
# Usage: scripts/check_chaos.sh [chaos_test-binary] [exec_batch_test-binary]
set -euo pipefail

BIN="${1:-build/tests/chaos_test}"
BATCH_BIN="${2:-}"
if [ ! -x "$BIN" ]; then
  echo "error: chaos_test binary not found at '$BIN'" >&2
  echo "build it first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
if [ -n "$BATCH_BIN" ] && [ ! -x "$BATCH_BIN" ]; then
  echo "error: exec_batch_test binary not found at '$BATCH_BIN'" >&2
  exit 1
fi

for seed in 1 101 201 301 401 501 601 701 801 901; do
  echo "=== chaos sweep: base seed $seed ==="
  SQP_CHAOS_SEED="$seed" "$BIN" \
    --gtest_filter='ChaosReplayTest.*' --gtest_brief=1
  if [ -n "$BATCH_BIN" ]; then
    SQP_CHAOS_SEED="$seed" "$BATCH_BIN" \
      --gtest_filter='*FaultScheduleBitIdentical*' --gtest_brief=1
  fi
done
echo "check_chaos: all 10 seed sweeps passed"
