#!/usr/bin/env bash
# Run the chaos test under 10 distinct fault-schedule base seeds.
#
# Each chaos_test invocation internally replays 10 seeds starting at
# SQP_CHAOS_SEED, so this sweep covers 100 randomized fault schedules.
# Every schedule must leave final query results bit-identical to a
# no-speculation run and restore the disk's live-page count.
#
# Usage: scripts/check_chaos.sh [path-to-chaos_test-binary]
set -euo pipefail

BIN="${1:-build/tests/chaos_test}"
if [ ! -x "$BIN" ]; then
  echo "error: chaos_test binary not found at '$BIN'" >&2
  echo "build it first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

for seed in 1 101 201 301 401 501 601 701 801 901; do
  echo "=== chaos sweep: base seed $seed ==="
  SQP_CHAOS_SEED="$seed" "$BIN" \
    --gtest_filter='ChaosReplayTest.*' --gtest_brief=1
done
echo "check_chaos: all 10 seed sweeps passed"
