#!/usr/bin/env bash
# Paper-strength experiment sweep: 15 simulated users (the paper's
# cohort) at every dataset scale. Expect several hours on one core;
# results land in paper_bench_output.txt. The default `for b in
# build/bench/*` sweep uses smaller cohorts and finishes in ~1 hour.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j

export SQP_USERS=15
{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===== $b (SQP_USERS=$SQP_USERS) ====="
    "$b"
  done
} 2>&1 | tee paper_bench_output.txt
