#!/usr/bin/env bash
# Docs gate: drift tests + markdown link check.
#
# Runs the two doc-drift test binaries — fault_points_test (code vs.
# docs/FAULT_POINTS.md) and metrics_catalog_test (code vs.
# docs/METRICS.md) — and then checks every relative link and anchor in
# the repository's tracked markdown files for a target that actually
# exists. External (http/https/mailto) links are not fetched: the gate
# must stay deterministic and offline.
#
# Usage: scripts/check_docs.sh [fault_points_test-binary] [metrics_catalog_test-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

FAULT_BIN="${1:-build/tests/fault_points_test}"
METRICS_BIN="${2:-build/tests/metrics_catalog_test}"

fail=0
for bin in "$FAULT_BIN" "$METRICS_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "error: drift-test binary not found at '$bin'" >&2
    echo "build it first: cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
  echo "=== $(basename "$bin") ==="
  if ! "$bin" --gtest_brief=1; then
    fail=1
  fi
done

echo "=== markdown link check ==="
if ! python3 - <<'PY'
import os
import re
import subprocess
import sys

# Tracked + untracked-but-not-ignored markdown: generated/output trees
# (build/, bench_json/, ...) are gitignored and never gate the docs.
files = subprocess.run(
    ["git", "ls-files", "-c", "-o", "--exclude-standard", "*.md"],
    capture_output=True, text=True, check=True,
).stdout.split()

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
broken = []
for path in files:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    base = os.path.dirname(path)
    for target in LINK_RE.findall(text):
        if re.match(r"^(https?|mailto):", target):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue  # pure in-page anchor
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            broken.append(f"{path}: {target}")

if broken:
    print("broken relative links:", file=sys.stderr)
    for b in broken:
        print(f"  {b}", file=sys.stderr)
    sys.exit(1)
print(f"checked {len(files)} markdown files, all relative links resolve")
PY
then
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: drift tests and link check passed"
