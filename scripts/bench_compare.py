#!/usr/bin/env python3
"""Diff two bench_json runs and flag regressions.

Usage:
  scripts/bench_compare.py BASELINE CURRENT [--threshold PCT]
                           [--gate REGEX] [--gate-lower REGEX] [--verbose]

BASELINE and CURRENT are either directories holding BENCH_*.json files
(as written by scripts/run_bench_json.sh) or two individual BENCH_*.json
files. The tool parses every `key: number` pair out of each bench's
captured stdout_lines (e.g. "overall improvement: 12.3 %",
"overlap_fraction: 0.800"), scoped by the "--- <scale> dataset" section
headers the benches print, then prints a per-bench delta table.

Exit status:
  0  no gated metric regressed by more than --threshold percent
  1  at least one regression past the threshold, or a bench/metric
     present in the baseline is missing from the current run
  2  usage / IO error

Gated metrics (--gate, default "improvement") are treated as
higher-is-better; a drop of more than --threshold percent (absolute
percentage-points for %-valued metrics, relative otherwise) fails the
comparison. Metrics matching --gate-lower (default
"(^|:: )(recovery|repair|shard_plan|parallel)\\." — the simulated
recovery, time-to-redundancy and shard-planning figures of
bench_recovery / bench_shard_plan, plus the thread-scaling wall-clock
ratios of bench_exec_batch, section-scoped keys included) are gated
lower-is-better instead: an *increase* past the threshold fails.
Everything else is reported but never fails the run.

One-sided metrics are tolerated: a non-gated metric present only in the
baseline is reported under "removed metrics", one present only in the
current run under "added metrics" — neither fails the comparison, so
benches may grow or drop informational lines between runs. A *gated*
metric missing from the current run still fails.
"""

import argparse
import json
import os
import re
import sys

# "key: 12.3" / "key: 12.3 %" / "key: -0.5s" — key must look like prose
# or a snake_case identifier, value a decimal number.  Multiple pairs
# per line are all captured ("overlap_fraction: 0.800  wasted_ratio: ...").
PAIR_RE = re.compile(
    r"([A-Za-z][A-Za-z0-9_ .()-]*?):\s*(-?\d+(?:\.\d+)?)\s*(%|s\b)?"
)
SECTION_RE = re.compile(r"^---\s*(.+?)\s*---$")


def parse_bench(doc):
    """Extract {metric_key: (value, is_percent)} from one BENCH json doc."""
    metrics = {}
    section = ""
    for raw in doc.get("stdout_lines", []):
        line = raw.strip()
        m = SECTION_RE.match(line)
        if m:
            section = m.group(1)
            continue
        for key, value, unit in PAIR_RE.findall(line):
            name = " ".join(key.strip().lower().split())
            full = f"{section} :: {name}" if section else name
            # Keep the first occurrence per section; benches may repeat
            # a label (e.g. per-bucket rows) and the headline comes first.
            if full not in metrics:
                metrics[full] = (float(value), unit == "%")
    return metrics


def load_run(path):
    """Return {bench_name: metrics} from a dir of BENCH_*.json or one file."""
    files = []
    if os.path.isdir(path):
        files = sorted(
            os.path.join(path, f)
            for f in os.listdir(path)
            if f.startswith("BENCH_") and f.endswith(".json")
        )
    elif os.path.isfile(path):
        files = [path]
    if not files:
        raise FileNotFoundError(f"no BENCH_*.json found at {path}")
    run = {}
    for f in files:
        with open(f) as fh:
            doc = json.load(fh)
        run[doc.get("bench", os.path.basename(f))] = parse_bench(doc)
    return run


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline dir or BENCH_*.json file")
    ap.add_argument("current", help="current dir or BENCH_*.json file")
    ap.add_argument(
        "--threshold", type=float, default=5.0,
        help="max allowed regression on gated metrics, percent (default 5)")
    ap.add_argument(
        "--gate", default="improvement",
        help="regex selecting higher-is-better metrics that can fail the "
             "run (default: 'improvement')")
    ap.add_argument(
        "--gate-lower", default=r"(^|:: )(recovery|repair|shard_plan|parallel)\.",
        help="regex selecting lower-is-better metrics (times, waste, "
             "scaling ratios) that fail the run when they *rise* "
             r"(default: '(^|:: )(recovery|repair|shard_plan|parallel)\.')")
    ap.add_argument(
        "--verbose", action="store_true",
        help="print every parsed metric, not just gated and changed ones")
    args = ap.parse_args()

    try:
        base = load_run(args.baseline)
        curr = load_run(args.current)
    except (FileNotFoundError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    gate = re.compile(args.gate)
    gate_lower = re.compile(args.gate_lower)
    failures = []

    for bench in sorted(base):
        if bench not in curr:
            failures.append(f"{bench}: missing from current run")
            print(f"== {bench} ==\n  MISSING from current run")
            continue
        print(f"== {bench} ==")
        b_metrics, c_metrics = base[bench], curr[bench]
        shown = 0
        removed = []
        for key in sorted(b_metrics):
            b_val, is_pct = b_metrics[key]
            gated_hi = bool(gate.search(key))
            gated_lo = bool(gate_lower.search(key))
            gated = gated_hi or gated_lo
            if key not in c_metrics:
                if gated:
                    failures.append(f"{bench}: '{key}' missing from current")
                    print(f"  {key}: {b_val:g} -> MISSING")
                else:
                    removed.append(key)
                continue
            c_val, _ = c_metrics[key]
            # %-valued metrics diff in absolute points; others relatively.
            # Lower-is-better metrics regress on a rise; a baseline of
            # exactly zero regresses on any rise at all (relative delta
            # is undefined, and 0 -> anything is a real slowdown).
            if is_pct:
                delta = c_val - b_val
                delta_str = f"{delta:+.2f} pts"
            else:
                delta = (c_val - b_val) / abs(b_val) * 100 if b_val else 0.0
                delta_str = f"{delta:+.2f} %"
            regressed = (gated_hi and delta < -args.threshold) or (
                gated_lo and (delta > args.threshold
                              or (b_val == 0 and c_val > 0)))
            changed = abs(c_val - b_val) > 1e-12
            if gated or args.verbose or changed:
                flag = "  <-- REGRESSION" if regressed else ""
                print(f"  {key}: {b_val:g} -> {c_val:g}  ({delta_str}){flag}")
                shown += 1
            if regressed:
                failures.append(
                    f"{bench}: '{key}' {b_val:g} -> {c_val:g} ({delta_str})")
        if shown == 0:
            print("  (no gated or changed metrics)")
        added = sorted(set(c_metrics) - set(b_metrics))
        if removed:
            print(f"  removed metrics ({len(removed)}): "
                  f"{', '.join(removed)}")
        if added:
            print(f"  added metrics ({len(added)}): {', '.join(added)}")

    extra = sorted(set(curr) - set(base))
    if extra:
        print(f"new benches (no baseline): {', '.join(extra)}")

    if failures:
        print(f"\n{len(failures)} regression(s) past "
              f"{args.threshold:g}% threshold:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nno regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
