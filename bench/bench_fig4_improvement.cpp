// Figure 4 (+ §6.1 text, E3/E5): average relative performance of
#include <algorithm>
// speculation per execution-time bucket, for the three dataset sizes.
//
// Prints, per scale: the bucket series (improvement % vs normal-time
// bucket), the overall average improvement, the average materialization
// time, and the manipulation non-completion rate — the numbers the paper
// reports as 42/28/20 % improvement, 6/9/10 s materializations, and
// 17/25/30 % non-completion for 100 MB / 500 MB / 1 GB.
#include "bench_common.h"
#include "harness/metrics.h"

using namespace sqp;

int main() {
  std::printf("=== Figure 4: speculation vs normal, per-bucket ===\n");
  for (tpch::Scale scale : benchutil::ScalesFromEnv()) {
    ExperimentConfig cfg = benchutil::DefaultConfig(
        scale, benchutil::DefaultUsersForScale(scale, 6));
    auto result = RunSingleUserExperiment(cfg);
    if (!result.ok()) {
      std::printf("experiment failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n--- %s dataset (paper: %s), %zu users, %zu queries ---\n",
                tpch::ScaleName(scale), tpch::ScalePaperLabel(scale),
                cfg.num_users, result->normal.size());
    BucketOptions buckets = AutoBuckets(result->normal);
    auto series = BucketImprovements(result->normal, result->speculative,
                                     buckets);
    std::printf("%s", FormatBuckets(series, /*include_extremes=*/false).c_str());
    std::printf("  improvement in range:        %5.1f %%  (paper metric)\n",
                100 * ImprovementInRange(result->normal, result->speculative,
                                         buckets.lo, buckets.hi));
    std::printf("  improvement, all queries:    %5.1f %%\n",
                100 * result->overall_improvement);
    std::printf("  avg materialization:         %5.2f s\n",
                result->avg_materialization_seconds);
    std::printf("  manipulation non-completion: %5.1f %%  (at GO)\n",
                100 * result->noncompletion_rate);
    std::printf("  cancelled by user edits:     %5.1f %%\n",
                100 * result->edit_cancellation_rate);
    std::printf("  manipulations issued/done:   %zu / %zu\n",
                result->manipulations_issued,
                result->manipulations_completed);
    std::printf("  queries rewritten via views: %5.1f %%\n",
                100 * result->rewritten_query_fraction);
    // Introspection columns (DESIGN.md §11): planner estimate quality
    // and learner calibration, diffable via bench_compare.py.
    std::printf("  plan q-error (mean):         %5.2f\n",
                MeanRootQError(result->speculative));
    EngineStats agg = AggregateEngineStats(result->engine_stats);
    if (agg.predictions_scored > 0) {
      std::printf("  learner brier:               %6.4f\n",
                  agg.brier_sum /
                      static_cast<double>(agg.predictions_scored));
    }
    // Think-time-overlap story (DESIGN.md §9): how much speculative
    // work was hidden under think time vs thrown away.
    std::printf("%s", FormatOverlapStats(result->overlap).c_str());

    if (std::getenv("SQP_DEBUG_QUERIES") != nullptr) {
      std::vector<size_t> order(result->normal.size());
      for (size_t i = 0; i < order.size(); i++) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        double da = result->speculative[a].seconds - result->normal[a].seconds;
        double db = result->speculative[b].seconds - result->normal[b].seconds;
        return da < db;
      });
      auto dump = [&](size_t i) {
        const auto& n = result->normal[i];
        const auto& s = result->speculative[i];
        std::printf("    n=%6.2fs s=%6.2fs views=[", n.seconds, s.seconds);
        for (const auto& v : s.views_used) std::printf("%s ", v.c_str());
        std::printf("] %s\n", n.query.ToSql().c_str());
      };
      std::printf("  best 8:\n");
      for (size_t k = 0; k < 8 && k < order.size(); k++) dump(order[k]);
      std::printf("  worst 8:\n");
      for (size_t k = 0; k < 8 && k < order.size(); k++) {
        dump(order[order.size() - 1 - k]);
      }
    }
  }
  return 0;
}
