// Figure 5 (E4): maximum performance improvement and maximum penalty
// per execution-time bucket, three dataset sizes.
//
// The paper observes improvements approaching 100% for some queries
// (e.g. a 40 s query answered sub-second from a materialization) while
// penalties stay much smaller and rare — mostly short queries whose
// forced rewriting replaced an indexed base relation with an unindexed
// materialized one.
#include "bench_common.h"
#include "harness/metrics.h"

using namespace sqp;

int main() {
  std::printf("=== Figure 5: max improvement / max penalty per bucket ===\n");
  for (tpch::Scale scale : benchutil::ScalesFromEnv()) {
    ExperimentConfig cfg = benchutil::DefaultConfig(
        scale, benchutil::DefaultUsersForScale(scale, 6));
    auto result = RunSingleUserExperiment(cfg);
    if (!result.ok()) {
      std::printf("experiment failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n--- %s dataset (paper: %s), %zu users, %zu queries ---\n",
                tpch::ScaleName(scale), tpch::ScalePaperLabel(scale),
                cfg.num_users, result->normal.size());
    BucketOptions buckets = AutoBuckets(result->normal);
    auto series =
        BucketImprovements(result->normal, result->speculative, buckets);
    std::printf("%s",
                FormatBuckets(series, /*include_extremes=*/true).c_str());

    // Global extremes, as the paper calls out in the text.
    double best = -1e9, worst = 1e9;
    size_t best_i = 0, worst_i = 0;
    for (size_t i = 0; i < result->normal.size(); i++) {
      if (result->normal[i].seconds <= 0) continue;
      double imp =
          1.0 - result->speculative[i].seconds / result->normal[i].seconds;
      if (imp > best) {
        best = imp;
        best_i = i;
      }
      if (imp < worst) {
        worst = imp;
        worst_i = i;
      }
    }
    std::printf("  best : %5.1f %%  (%.2fs -> %.2fs)\n", 100 * best,
                result->normal[best_i].seconds,
                result->speculative[best_i].seconds);
    std::printf("  worst: %5.1f %%  (%.2fs -> %.2fs)\n", 100 * worst,
                result->normal[worst_i].seconds,
                result->speculative[worst_i].seconds);
  }
  return 0;
}
