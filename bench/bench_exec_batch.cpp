// Batch vs. tuple execution wall-clock microbenchmark.
//
// Builds a 100k-row fact table joined against a 10k-row dim table with
// a pushed-down selection, then drives *identical* executor trees
// through the tuple-at-a-time interface (Next) and the batch interface
// (NextBatch), timing real wall-clock per drained row. Simulated
// CostMeter charges are identical by construction (exec_batch_test
// proves it); this bench quantifies the real-time win of DESIGN.md §10.
//
// A second section sweeps the same scan+join across exec_threads
// 1/2/4/8 (DESIGN.md §15): the morsel-parallel engine must produce the
// identical rows and CostMeter charges at every setting (checked here,
// not just in tests), and the `parallel.t<k>_over_t1` wall-clock ratios
// are gated lower-is-better by bench_compare.py. On a many-core host
// the 8-thread ratio should sit well under 1; on a single hardware
// thread it degrades gracefully toward 1.
//
// Output is bench_compare.py-friendly: `batch improvement` is the gated
// higher-is-better headline.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "db/database.h"
#include "exec/executors.h"

using namespace sqp;

namespace {

constexpr size_t kFactRows = 100000;
constexpr size_t kDimRows = 10000;
constexpr int kReps = 5;

std::unique_ptr<Database> BuildDb(size_t exec_threads = 1) {
  DatabaseOptions options;
  options.buffer_pool_pages = 8192;  // tables fit: measure CPU, not I/O
  options.exec_threads = exec_threads;
  auto db = std::make_unique<Database>(options);

  Schema dim_schema({{"d_id", TypeId::kInt64}, {"d_v", TypeId::kInt64}});
  Schema fact_schema({{"f_id", TypeId::kInt64},
                      {"f_did", TypeId::kInt64},
                      {"f_v", TypeId::kInt64}});
  if (!db->CreateTable("dim", dim_schema).ok() ||
      !db->CreateTable("fact", fact_schema).ok()) {
    std::fprintf(stderr, "table setup failed\n");
    std::exit(1);
  }

  Rng rng(42);
  std::vector<Tuple> dim_rows;
  dim_rows.reserve(kDimRows);
  for (size_t i = 0; i < kDimRows; i++) {
    dim_rows.push_back(
        Tuple{Value(static_cast<int64_t>(i)), Value(rng.NextInt(0, 999))});
  }
  std::vector<Tuple> fact_rows;
  fact_rows.reserve(kFactRows);
  for (size_t i = 0; i < kFactRows; i++) {
    fact_rows.push_back(
        Tuple{Value(static_cast<int64_t>(i)),
              Value(rng.NextInt(0, static_cast<int64_t>(kDimRows) - 1)),
              Value(rng.NextInt(0, 99))});
  }
  if (!db->BulkLoad("dim", dim_rows).ok() ||
      !db->BulkLoad("fact", fact_rows).ok()) {
    std::fprintf(stderr, "bulk load failed\n");
    std::exit(1);
  }
  return db;
}

/// Fresh scan(fact, f_v < 60) ⋈ dim executor tree. With the database's
/// scheduler attached, scan morsels and the fused probe run on workers.
std::unique_ptr<Executor> BuildTree(Database* db,
                                    bool parallel = false) {
  TableInfo* dim = db->catalog().GetTable("dim");
  TableInfo* fact = db->catalog().GetTable("fact");
  SelectionPred pred;
  pred.table = "fact";
  pred.column = "f_v";
  pred.op = CompareOp::kLt;
  pred.constant = Value(static_cast<int64_t>(60));
  auto bound = BindSelection(pred, fact->schema);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind failed\n");
    std::exit(1);
  }
  auto build = std::make_unique<SeqScanExecutor>(dim, &db->buffer_pool(),
                                                 &db->meter());
  auto probe = std::make_unique<SeqScanExecutor>(
      fact, &db->buffer_pool(), &db->meter(),
      std::vector<BoundSelection>{*bound});
  ExecParallel par{parallel ? db->scheduler() : nullptr, false};
  build->EnableParallel(par);
  probe->EnableParallel(par);
  auto join = std::make_unique<HashJoinExecutor>(std::move(build),
                                                 std::move(probe),
                                                 /*build_key=*/0,
                                                 /*probe_key=*/1, &db->meter(),
                                                 /*build_rows_hint=*/kDimRows);
  join->EnableParallel(par);
  return join;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Drain via Next(); returns rows produced, records seconds.
size_t RunTuple(Database* db, double* seconds) {
  auto exec = BuildTree(db);
  auto start = std::chrono::steady_clock::now();
  if (!exec->Init().ok()) std::exit(1);
  size_t rows = 0;
  for (;;) {
    auto row = exec->Next();
    if (!row.ok()) std::exit(1);
    if (!row->has_value()) break;
    rows++;
  }
  *seconds = SecondsSince(start);
  return rows;
}

/// Drain via NextBatch(); returns rows produced, records seconds.
size_t RunBatch(Database* db, double* seconds, bool parallel = false) {
  auto exec = BuildTree(db, parallel);
  auto start = std::chrono::steady_clock::now();
  if (!exec->Init().ok()) std::exit(1);
  size_t rows = 0;
  TupleBatch batch;
  for (;;) {
    auto more = exec->NextBatch(&batch);
    if (!more.ok()) std::exit(1);
    if (batch.empty()) break;
    rows += batch.size();
  }
  *seconds = SecondsSince(start);
  return rows;
}

/// Thread-scaling sweep: same scan+join on a fresh database per thread
/// count; returns the best wall seconds and checks rows + CostMeter
/// tuple charges are bit-identical to the exec_threads=1 run.
double RunScaling(size_t exec_threads, size_t* rows_out,
                  uint64_t* tuples_out) {
  auto db = BuildDb(exec_threads);
  double s = 0;
  RunBatch(db.get(), &s, /*parallel=*/true);  // warm
  uint64_t t0 = db->meter().tuples_processed();
  double best = 1e9;
  size_t rows = 0;
  for (int rep = 0; rep < kReps; rep++) {
    rows = RunBatch(db.get(), &s, /*parallel=*/true);
    best = std::min(best, s);
  }
  *rows_out = rows;
  // Per-rep charge: identical across thread counts or the morsel
  // engine broke determinism.
  *tuples_out = (db->meter().tuples_processed() - t0) / kReps;
  return best;
}

}  // namespace

int main() {
  auto db = BuildDb();

  // Warm both paths once (page cache, allocator), then alternate timed
  // reps and keep the fastest of each (least scheduler noise).
  double s = 0;
  size_t tuple_rows = RunTuple(db.get(), &s);
  size_t batch_rows = RunBatch(db.get(), &s);
  if (tuple_rows != batch_rows) {
    std::fprintf(stderr, "row mismatch: %zu vs %zu\n", tuple_rows,
                 batch_rows);
    return 1;
  }

  double tuple_best = 1e9;
  double batch_best = 1e9;
  for (int rep = 0; rep < kReps; rep++) {
    RunTuple(db.get(), &s);
    tuple_best = std::min(tuple_best, s);
    RunBatch(db.get(), &s);
    batch_best = std::min(batch_best, s);
  }

  double denom = static_cast<double>(tuple_rows);
  double tuple_ns = tuple_best * 1e9 / denom;
  double batch_ns = batch_best * 1e9 / denom;
  double speedup = tuple_best / batch_best;

  std::printf("--- 100k scan+join ---\n");
  std::printf("fact_rows: %zu\n", kFactRows);
  std::printf("joined_rows: %zu\n", tuple_rows);
  std::printf("tuple_ns_per_row: %.1f\n", tuple_ns);
  std::printf("batch_ns_per_row: %.1f\n", batch_ns);
  std::printf("speedup: %.2f\n", speedup);
  std::printf("batch improvement: %.1f %%\n", (speedup - 1.0) * 100.0);

  // ---- morsel-parallel scaling sweep (DESIGN.md §15) ----
  std::printf("--- parallel scaling ---\n");
  const size_t thread_counts[] = {1, 2, 4, 8};
  double wall[4] = {0, 0, 0, 0};
  size_t rows_at[4] = {0, 0, 0, 0};
  uint64_t tuples_at[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; i++) {
    wall[i] = RunScaling(thread_counts[i], &rows_at[i], &tuples_at[i]);
    if (rows_at[i] != rows_at[0] || tuples_at[i] != tuples_at[0]) {
      std::fprintf(stderr,
                   "determinism violation at %zu threads: rows %zu vs %zu, "
                   "tuple charges %llu vs %llu\n",
                   thread_counts[i], rows_at[i], rows_at[0],
                   static_cast<unsigned long long>(tuples_at[i]),
                   static_cast<unsigned long long>(tuples_at[0]));
      return 1;
    }
    std::printf("wall_ms_t%zu: %.2f\n", thread_counts[i], wall[i] * 1e3);
  }
  // Gated lower-is-better: the wall-clock ratio vs the 1-thread engine
  // (0.5 = 2x speedup; 1.0 = no scaling, e.g. a single-core host).
  for (int i = 1; i < 4; i++) {
    std::printf("parallel.t%zu_over_t1: %.3f\n", thread_counts[i],
                wall[i] / wall[0]);
  }
  return 0;
}
