// Cost-model verification (E10): Theorem 3.1 in action.
//
// Builds an explicit finite query universe Q over the part–partsupp
// sub-schema, assigns each query a probability f(q), and compares
//   Cost(m)  = Σ_q f(q)·cost(q, m)          (global, intractable form)
//   Cost⊆(m) = f⊆(q_m)·(cost(q_m,m) − cost(q_m,m∅))   (Theorem 3.1)
// manipulation by manipulation. The two must agree on the ranking (and
// in particular on the argmin) whenever P1/P2 hold — P1 holds exactly in
// this engine (a view is only used when contained), P2 approximately.
//
// Also prints the multi-query lookahead extension: expected uses of a
// materialization as the horizon n grows.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "speculation/learner.h"

using namespace sqp;

namespace {

QueryGraph MakeSel(const char* table, const char* column, CompareOp op,
                   Value v) {
  QueryGraph g;
  SelectionPred s;
  s.table = table;
  s.column = column;
  s.op = op;
  s.constant = std::move(v);
  g.AddSelection(s);
  return g;
}

QueryGraph MakeJoin() {
  QueryGraph g;
  JoinPred j;
  j.left_table = "part";
  j.left_column = "p_partkey";
  j.right_table = "partsupp";
  j.right_column = "ps_partkey";
  g.AddJoin(j);
  return g;
}

}  // namespace

int main() {
  ExperimentConfig cfg =
      benchutil::DefaultConfig(tpch::Scale::kSmall, 1);
  auto db = BuildDatabase(cfg);
  if (!db.ok()) {
    std::printf("load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Database& database = **db;

  // Atomic parts: two selections and one join.
  QueryGraph s1 = MakeSel("part", "p_size", CompareOp::kLt, Value(int64_t{8}));
  QueryGraph s2 = MakeSel("partsupp", "ps_supplycost", CompareOp::kLt,
                          Value(120.0));
  QueryGraph j = MakeJoin();

  // The finite universe Q with probabilities f(q).
  struct WeightedQuery {
    QueryGraph q;
    double f;
  };
  std::vector<WeightedQuery> universe = {
      {s1, 0.10},
      {s2, 0.10},
      {j, 0.15},
      {j.Union(s1), 0.20},
      {j.Union(s2), 0.15},
      {j.Union(s1).Union(s2), 0.30},
  };

  // Manipulations: materializations of each connected sub-query + m∅.
  std::vector<QueryGraph> manipulations = {s1, s2, j, j.Union(s1),
                                           j.Union(s2),
                                           j.Union(s1).Union(s2)};

  const Planner& planner = database.planner();

  auto cost_with_view = [&](const QueryGraph& q,
                            const QueryGraph* view_def) -> double {
    ViewRegistry registry;
    if (view_def != nullptr) {
      // Cost of scanning the hypothetical materialization: register a
      // fake view over an actually materialized table.
      registry.Register(ViewDefinition{"hypo_view", *view_def});
    }
    auto plan =
        planner.Plan(q, &registry,
                     view_def != nullptr ? ViewMode::kForced : ViewMode::kNone);
    return plan.ok() ? plan->est_cost : 0;
  };

  std::printf("=== Theorem 3.1: global Cost(m) vs local Cost_sub(m) ===\n\n");
  std::printf("%-34s %12s %12s\n", "manipulation q_m", "Cost(m)",
              "Cost_sub(m)");

  std::vector<std::pair<double, double>> scores;
  for (const QueryGraph& qm : manipulations) {
    // Materialize q_m for real so the view table has true stats.
    auto mat = database.Materialize(qm, "hypo_view");
    if (!mat.ok()) {
      std::printf("materialize failed: %s\n",
                  mat.status().ToString().c_str());
      return 1;
    }

    // Global form: sum over the universe. Subtract the m∅ baseline so
    // the value is comparable to Cost⊆ (which is relative to m∅).
    double cost_m = 0, cost_null = 0;
    for (const auto& wq : universe) {
      cost_m += wq.f * cost_with_view(wq.q, &qm);
      cost_null += wq.f * cost_with_view(wq.q, nullptr);
    }
    double global = cost_m - cost_null;

    // Local form: f⊆(q_m) × (cost(q_m, m) − cost(q_m, m∅)).
    double f_contain = 0;
    for (const auto& wq : universe) {
      if (wq.q.ContainsSubgraph(qm)) f_contain += wq.f;
    }
    double local =
        f_contain * (cost_with_view(qm, &qm) - cost_with_view(qm, nullptr));

    std::printf("%-34s %12.4f %12.4f\n", qm.ToSql().substr(0, 34).c_str(),
                global, local);
    scores.emplace_back(global, local);
    if (!database.DropTable("hypo_view").ok()) return 1;
  }

  // Agreement diagnostics. P1 holds exactly in this engine; P2 only
  // approximately (the paper calls both approximations), so we report
  // the metrics that matter for the Speculator: does the local form
  // put the global winner at/near the top, preserve benefit signs, and
  // correlate in rank?
  auto rank_of = [&](bool local) {
    std::vector<size_t> idx(scores.size());
    for (size_t i = 0; i < idx.size(); i++) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return (local ? scores[a].second : scores[a].first) <
             (local ? scores[b].second : scores[b].first);
    });
    return idx;
  };
  auto global_rank = rank_of(false);
  auto local_rank = rank_of(true);
  bool argmin_top1 = global_rank[0] == local_rank[0];
  bool argmin_top2 =
      argmin_top1 ||
      (local_rank.size() > 1 && global_rank[0] == local_rank[1]);
  // Regret: how much of the globally achievable benefit is lost by
  // picking the *local* argmin instead? This is the metric that matters
  // to the Speculator (near-ties make binary rank checks noisy).
  double global_min = scores[global_rank[0]].first;
  double regret =
      global_min < 0
          ? (scores[local_rank[0]].first - global_min) / -global_min
          : 0.0;
  size_t sign_agree = 0;
  for (const auto& [g, l] : scores) {
    if ((g < 0) == (l < 0)) sign_agree++;
  }
  std::vector<size_t> gpos(scores.size()), lpos(scores.size());
  for (size_t i = 0; i < scores.size(); i++) {
    gpos[global_rank[i]] = i;
    lpos[local_rank[i]] = i;
  }
  double d2 = 0;
  for (size_t i = 0; i < scores.size(); i++) {
    double d = static_cast<double>(gpos[i]) - static_cast<double>(lpos[i]);
    d2 += d * d;
  }
  double n = static_cast<double>(scores.size());
  double spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
  std::printf("\nglobal argmin in local top-1: %s   top-2: %s   "
              "regret of local choice: %.1f%%\n",
              argmin_top1 ? "YES" : "no", argmin_top2 ? "YES" : "no",
              100 * regret);
  std::printf("benefit-sign agreement: %zu/%zu   Spearman rho: %.2f\n",
              sign_agree, scores.size(), spearman);

  // Lookahead extension: expected uses under the retention model.
  std::printf("\n=== Multi-query lookahead: expected uses of q_m ===\n");
  Learner learner;
  std::printf("%-22s", "horizon n:");
  for (int n : {1, 2, 4, 8}) std::printf(" %8d", n);
  std::printf("\n%-22s", "selection view");
  for (int n : {1, 2, 4, 8}) {
    std::printf(" %8.2f", learner.retention().ExpectedUses(s1, n));
  }
  std::printf("\n%-22s", "join view");
  for (int n : {1, 2, 4, 8}) {
    std::printf(" %8.2f", learner.retention().ExpectedUses(j, n));
  }
  std::printf("\n%-22s", "join+selection view");
  for (int n : {1, 2, 4, 8}) {
    std::printf(" %8.2f", learner.retention().ExpectedUses(j.Union(s1), n));
  }
  std::printf("\n");
  return 0;
}
