// Shared helpers for the experiment benches.
//
// Env knobs (all optional):
//   SQP_USERS=<n>   simulated users per experiment (default per bench)
//   SQP_SCALES=s,m,l  subset of dataset scales to run (default all)
//   SQP_SEED=<n>    data/trace seed override
//   SQP_EXEC_THREADS=<n>  morsel worker pool width (default 1 = serial)
//   SQP_NODES=<n>   simulated storage nodes (default 1)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace sqp {
namespace benchutil {

inline size_t UsersFromEnv(size_t default_users) {
  const char* env = std::getenv("SQP_USERS");
  if (env == nullptr) return default_users;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : default_users;
}

/// Fewer simulated users at larger scales keeps default bench runs to a
/// few minutes; SQP_USERS overrides (the paper used 15 throughout).
inline size_t DefaultUsersForScale(tpch::Scale scale, size_t base) {
  switch (scale) {
    case tpch::Scale::kSmall:
      return base;
    case tpch::Scale::kMedium:
      return std::max<size_t>(3, base / 2);
    case tpch::Scale::kLarge:
      return std::max<size_t>(3, base / 3);
  }
  return base;
}

inline std::vector<tpch::Scale> ScalesFromEnv() {
  const char* env = std::getenv("SQP_SCALES");
  std::vector<tpch::Scale> all = {tpch::Scale::kSmall, tpch::Scale::kMedium,
                                  tpch::Scale::kLarge};
  if (env == nullptr) return all;
  std::vector<tpch::Scale> out;
  for (const char* p = env; *p; p++) {
    if (*p == 's') out.push_back(tpch::Scale::kSmall);
    if (*p == 'm') out.push_back(tpch::Scale::kMedium);
    if (*p == 'l') out.push_back(tpch::Scale::kLarge);
  }
  return out.empty() ? all : out;
}

inline uint64_t SeedFromEnv(uint64_t default_seed) {
  const char* env = std::getenv("SQP_SEED");
  if (env == nullptr) return default_seed;
  return static_cast<uint64_t>(std::atoll(env));
}

/// Default experiment configuration for one scale. The buffer pool is
/// the "32 MB" equivalent: ~1/3 of the small dataset (DESIGN.md §2).
inline ExperimentConfig DefaultConfig(tpch::Scale scale,
                                      size_t default_users) {
  ExperimentConfig cfg;
  cfg.scale = scale;
  cfg.num_users = UsersFromEnv(default_users);
  cfg.data_seed = SeedFromEnv(42);
  cfg.trace_seed = SeedFromEnv(42) + 7;
  const char* cpu = std::getenv("SQP_CPU_COST");
  if (cpu != nullptr) cfg.cost.cpu_seconds_per_tuple = std::atof(cpu);
  const char* threads = std::getenv("SQP_EXEC_THREADS");
  if (threads != nullptr && std::atol(threads) > 0) {
    cfg.exec_threads = static_cast<size_t>(std::atol(threads));
  }
  const char* nodes = std::getenv("SQP_NODES");
  if (nodes != nullptr && std::atol(nodes) > 0) {
    cfg.storage_nodes = static_cast<size_t>(std::atol(nodes));
  }
  return cfg;
}

}  // namespace benchutil
}  // namespace sqp
