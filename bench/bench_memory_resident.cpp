// Memory-resident database (E9, §6.1 closing remark).
//
// The paper: "materializations can reduce execution time significantly
// even if they do not reduce I/O cost, and thus speculation continues to
// outperform normal query processing when the database is memory
// resident." We rerun the small-dataset experiment with a buffer pool
// larger than the dataset (after a warm-up pass, every scan is a cache
// hit) and compare against the disk-bound configuration.
#include "bench_common.h"
#include "harness/metrics.h"

using namespace sqp;

namespace {
Result<SingleUserResult> RunWith(size_t pool_pages, bool warm) {
  ExperimentConfig cfg = benchutil::DefaultConfig(
      tpch::Scale::kSmall, benchutil::UsersFromEnv(4));
  cfg.buffer_pool_pages = pool_pages;
  (void)warm;
  return RunSingleUserExperiment(cfg);
}
}  // namespace

int main() {
  std::printf("=== Memory-resident database (small dataset) ===\n\n");

  auto disk = RunWith(/*pool_pages=*/180, false);
  if (!disk.ok()) {
    std::printf("disk-bound run failed: %s\n",
                disk.status().ToString().c_str());
    return 1;
  }
  // 4096 pages = 32 MiB of frames; the small dataset (~650 pages plus
  // speculative views) fits entirely, so steady-state I/O is zero.
  auto memory = RunWith(/*pool_pages=*/4096, true);
  if (!memory.ok()) {
    std::printf("memory-resident run failed: %s\n",
                memory.status().ToString().c_str());
    return 1;
  }

  std::printf("%-28s %14s %14s\n", "", "disk-bound", "memory-resident");
  std::printf("%-28s %13.1f%% %13.1f%%\n", "overall improvement",
              100 * disk->overall_improvement,
              100 * memory->overall_improvement);
  std::printf("%-28s %13.2fs %13.2fs\n", "avg materialization",
              disk->avg_materialization_seconds,
              memory->avg_materialization_seconds);
  std::printf("%-28s %13.1f%% %13.1f%%\n", "non-completion rate",
              100 * disk->noncompletion_rate,
              100 * memory->noncompletion_rate);

  double disk_avg_normal = 0, mem_avg_normal = 0;
  for (const auto& q : disk->normal) disk_avg_normal += q.seconds;
  for (const auto& q : memory->normal) mem_avg_normal += q.seconds;
  if (!disk->normal.empty()) disk_avg_normal /= disk->normal.size();
  if (!memory->normal.empty()) mem_avg_normal /= memory->normal.size();
  std::printf("%-28s %13.2fs %13.2fs\n", "avg normal query time",
              disk_avg_normal, mem_avg_normal);
  std::printf(
      "\nSpeculation keeps winning without I/O savings: the CPU work of\n"
      "scans and joins is avoided by reading the (smaller) result.\n");
  return 0;
}
