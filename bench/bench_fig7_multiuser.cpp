// Figure 7 (E7): three simultaneous users, 96 MB buffer pool.
//
// Traces are replayed in groups of three against one database and one
// processor-sharing server; the manipulation space is restricted to
// selection materializations to reduce interference (§6.3). The buffer
// pool is scaled 3x over the single-user setting, matching the paper's
// 32 MB -> 96 MB scale-up. Paper shape: speculation still wins for most
// queries, less than single-user, with nontrivial penalties appearing
// at the largest dataset where the server is already saturated.
// Telemetry env knobs (all optional, DESIGN.md §16):
//   SQP_TRACE_JSON=<f>    Chrome trace (spans + counter tracks)
//   SQP_TIMELINE_CSV=<f>  sampled time-series dump (.json → JSON)
//   SQP_METRICS_PROM=<f>  final registry snapshot, OpenMetrics text
#include <fstream>

#include "bench_common.h"
#include "common/metrics_registry.h"
#include "common/metrics_timeline.h"
#include "common/openmetrics.h"
#include "common/tracing.h"
#include "harness/metrics.h"

using namespace sqp;

namespace {

const char* EnvFile(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : nullptr;
}

bool WriteFile(const char* path, const std::string& content,
               const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::printf("error: cannot write %s\n", path);
    return false;
  }
  out << content;
  std::printf("wrote %s to %s\n", what, path);
  return true;
}

}  // namespace

int main() {
  std::printf("=== Figure 7: three simultaneous users ===\n");
  const char* trace_json = EnvFile("SQP_TRACE_JSON");
  const char* timeline_csv = EnvFile("SQP_TIMELINE_CSV");
  const char* metrics_prom = EnvFile("SQP_METRICS_PROM");
  Tracer tracer;
  MetricsTimeline timeline;
  bool want_telemetry = trace_json != nullptr || timeline_csv != nullptr;
  for (tpch::Scale scale : benchutil::ScalesFromEnv()) {
    ExperimentConfig cfg = benchutil::DefaultConfig(
        scale, benchutil::DefaultUsersForScale(scale, 6));
    // Round down to a multiple of the group size.
    cfg.num_users = std::max<size_t>(3, (cfg.num_users / 3) * 3);
    cfg.buffer_pool_pages = 3 * cfg.buffer_pool_pages;  // "96 MB"
    // Selection-only manipulation space (§6.3).
    cfg.engine.speculator.space.join_materializations = false;
    if (trace_json != nullptr) cfg.tracer = &tracer;
    if (want_telemetry) cfg.timeline = &timeline;
    auto result = RunMultiUserExperiment(cfg, /*group_size=*/3);
    if (!result.ok()) {
      std::printf("experiment failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n--- %s dataset (paper: %s), %zu users, %zu queries ---\n",
                tpch::ScaleName(scale), tpch::ScalePaperLabel(scale),
                cfg.num_users, result->normal.size());
    BucketOptions buckets = AutoBuckets(result->normal);
    auto series =
        BucketImprovements(result->normal, result->speculative, buckets);
    std::printf("%s", FormatBuckets(series, true).c_str());
    std::printf("  overall improvement: %5.1f %%\n",
                100 * result->overall_improvement);
    std::printf("%s", FormatOverlapStats(result->overlap).c_str());
    std::printf("  plan q-error (mean): %5.2f\n",
                MeanRootQError(result->speculative));
    EngineStats agg = AggregateEngineStats(result->engine_stats);
    if (agg.predictions_scored > 0) {
      std::printf("  learner brier: %6.4f\n",
                  agg.brier_sum /
                      static_cast<double>(agg.predictions_scored));
    }

    std::printf("  attributed cost (speculative runs):\n%s",
                result->attribution_table.c_str());

    // §7 extension: load-aware issuing (speculate only when the server
    // is idle) — the paper's proposed fix for the 1GB penalties.
    // Telemetry stays on the main run only (re-attaching would repeat
    // the per-group epoch labels).
    ExperimentConfig aware = cfg;
    aware.tracer = nullptr;
    aware.timeline = nullptr;
    aware.engine.only_issue_when_idle = true;
    auto aware_result = RunMultiUserExperiment(aware, 3);
    if (aware_result.ok()) {
      std::printf("  with load-aware issuing (sec. 7): %5.1f %%\n",
                  100 * aware_result->overall_improvement);
    }
  }

  if (trace_json != nullptr &&
      !WriteFile(trace_json, tracer.ExportChromeTrace(), "Chrome trace")) {
    return 1;
  }
  if (timeline_csv != nullptr) {
    std::string path = timeline_csv;
    bool json = path.size() >= 5 &&
                path.compare(path.size() - 5, 5, ".json") == 0;
    if (!WriteFile(timeline_csv,
                   json ? timeline.FormatJson() : timeline.FormatCsv(),
                   "timeline series")) {
      return 1;
    }
  }
  if (metrics_prom != nullptr &&
      !WriteFile(metrics_prom,
                 FormatOpenMetrics(MetricsRegistry::Global().Snapshot()),
                 "OpenMetrics snapshot")) {
    return 1;
  }
  return 0;
}
