// Figure 7 (E7): three simultaneous users, 96 MB buffer pool.
//
// Traces are replayed in groups of three against one database and one
// processor-sharing server; the manipulation space is restricted to
// selection materializations to reduce interference (§6.3). The buffer
// pool is scaled 3x over the single-user setting, matching the paper's
// 32 MB -> 96 MB scale-up. Paper shape: speculation still wins for most
// queries, less than single-user, with nontrivial penalties appearing
// at the largest dataset where the server is already saturated.
#include "bench_common.h"
#include "harness/metrics.h"

using namespace sqp;

int main() {
  std::printf("=== Figure 7: three simultaneous users ===\n");
  for (tpch::Scale scale : benchutil::ScalesFromEnv()) {
    ExperimentConfig cfg = benchutil::DefaultConfig(
        scale, benchutil::DefaultUsersForScale(scale, 6));
    // Round down to a multiple of the group size.
    cfg.num_users = std::max<size_t>(3, (cfg.num_users / 3) * 3);
    cfg.buffer_pool_pages = 3 * cfg.buffer_pool_pages;  // "96 MB"
    // Selection-only manipulation space (§6.3).
    cfg.engine.speculator.space.join_materializations = false;
    auto result = RunMultiUserExperiment(cfg, /*group_size=*/3);
    if (!result.ok()) {
      std::printf("experiment failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n--- %s dataset (paper: %s), %zu users, %zu queries ---\n",
                tpch::ScaleName(scale), tpch::ScalePaperLabel(scale),
                cfg.num_users, result->normal.size());
    BucketOptions buckets = AutoBuckets(result->normal);
    auto series =
        BucketImprovements(result->normal, result->speculative, buckets);
    std::printf("%s", FormatBuckets(series, true).c_str());
    std::printf("  overall improvement: %5.1f %%\n",
                100 * result->overall_improvement);
    std::printf("%s", FormatOverlapStats(result->overlap).c_str());
    std::printf("  plan q-error (mean): %5.2f\n",
                MeanRootQError(result->speculative));
    EngineStats agg = AggregateEngineStats(result->engine_stats);
    if (agg.predictions_scored > 0) {
      std::printf("  learner brier: %6.4f\n",
                  agg.brier_sum /
                      static_cast<double>(agg.predictions_scored));
    }

    // §7 extension: load-aware issuing (speculate only when the server
    // is idle) — the paper's proposed fix for the 1GB penalties.
    ExperimentConfig aware = cfg;
    aware.engine.only_issue_when_idle = true;
    auto aware_result = RunMultiUserExperiment(aware, 3);
    if (aware_result.ok()) {
      std::printf("  with load-aware issuing (sec. 7): %5.1f %%\n",
                  100 * aware_result->overall_improvement);
    }
  }
  return 0;
}
