// §5 table + query-structure statistics (E1/E2): user querying behaviour.
//
// Paper targets — duration of query formulation (seconds):
//   min 1 | avg 28 | max 680 | 25% 4 | 50% 11 | 75% 29
// and structure: ~42 SQL queries per trace; 1–2 selection predicates and
// ~4 relations per query; a selection survives ~3 consecutive queries,
// a join ~10.
#include <cstdio>

#include "bench_common.h"
#include "trace/trace_generator.h"

using namespace sqp;

int main() {
  size_t users = benchutil::UsersFromEnv(15);
  TraceGeneratorOptions options;
  options.num_users = users;
  options.seed = benchutil::SeedFromEnv(42) + 7;
  std::vector<Trace> traces = GenerateTraces(options);
  TraceStats stats = ComputeTraceStats(traces);

  std::printf("=== Section 5: user querying behaviour (%zu users) ===\n\n",
              users);
  std::printf("Query formulation duration (seconds):\n");
  std::printf("        %6s %6s %6s %6s %6s %6s\n", "min", "avg", "max",
              "25%", "50%", "75%");
  std::printf("paper   %6.0f %6.0f %6.0f %6.0f %6.0f %6.0f\n", 1.0, 28.0,
              680.0, 4.0, 11.0, 29.0);
  std::printf("ours    %6.1f %6.1f %6.0f %6.1f %6.1f %6.1f\n",
              stats.min_duration, stats.avg_duration, stats.max_duration,
              stats.p25_duration, stats.p50_duration, stats.p75_duration);

  std::printf("\nQuery structure:\n");
  std::printf("  %-38s paper   ours\n", "");
  std::printf("  %-38s %5.0f  %6.1f\n", "SQL queries per trace", 42.0,
              stats.avg_queries_per_trace);
  std::printf("  %-38s %5s  %6.2f\n", "selection predicates per query",
              "1-2", stats.avg_selections_per_query);
  std::printf("  %-38s %5.0f  %6.2f\n", "relations in FROM per query", 4.0,
              stats.avg_relations_per_query);
  std::printf("  %-38s %5.0f  %6.2f\n",
              "selection lifetime (consecutive queries)", 3.0,
              stats.avg_selection_lifetime);
  std::printf("  %-38s %5.0f  %6.2f\n", "join lifetime (consecutive queries)",
              10.0, stats.avg_join_lifetime);
  return 0;
}
