// Engine microbenchmarks (E11): substrate performance in real time.
//
// google-benchmark over the storage/index/exec/optimizer building
// blocks. These measure *wall-clock* cost of the simulator itself (not
// simulated seconds) — the budget that bounds how large an experiment
// replays in reasonable time.
#include <benchmark/benchmark.h>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "db/database.h"
#include "index/bplus_tree.h"
#include "sql/binder.h"
#include "stats/histogram.h"
#include "trace/trace_generator.h"
#include "workload/datagen.h"

using namespace sqp;

namespace {

void BM_BufferPoolFetchHit(benchmark::State& state) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 64);
  auto page = pool.NewPage();
  page_id_t id = page->first;
  pool.UnpinPage(id, true);
  for (auto _ : state) {
    auto p = pool.FetchPage(id);
    benchmark::DoNotOptimize(*p);
    pool.UnpinPage(id, false);
  }
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_BufferPoolFetchMiss(benchmark::State& state) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 16);
  std::vector<page_id_t> ids;
  for (int i = 0; i < 256; i++) {
    auto page = pool.NewPage();
    ids.push_back(page->first);
    pool.UnpinPage(page->first, true);
  }
  size_t i = 0;
  for (auto _ : state) {
    // Stride beyond the pool so every fetch evicts.
    auto p = pool.FetchPage(ids[(i += 17) % ids.size()]);
    benchmark::DoNotOptimize(*p);
    pool.UnpinPage(ids[i % ids.size()], false);
  }
}
BENCHMARK(BM_BufferPoolFetchMiss);

void BM_BPlusTreeInsert(benchmark::State& state) {
  Rng rng(1);
  BPlusTree tree;
  int64_t k = 0;
  for (auto _ : state) {
    tree.Insert(Value(static_cast<int64_t>(rng.NextUint64() % 100000)),
                Rid{static_cast<page_id_t>(k++), 0});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_BPlusTreeRangeScan(benchmark::State& state) {
  Rng rng(1);
  BPlusTree tree;
  for (int64_t i = 0; i < 100000; i++) {
    tree.Insert(Value(i), Rid{static_cast<page_id_t>(i), 0});
  }
  for (auto _ : state) {
    KeyRange range{Value(int64_t{40000}), true, Value(int64_t{41000}), true};
    auto rids = tree.RangeScan(range);
    benchmark::DoNotOptimize(rids);
  }
}
BENCHMARK(BM_BPlusTreeRangeScan);

void BM_HistogramBuild(benchmark::State& state) {
  Rng rng(3);
  ZipfGenerator zipf(100, 0.85);
  std::vector<Value> values;
  for (int i = 0; i < 50000; i++) {
    values.emplace_back(static_cast<int64_t>(zipf.Next(rng)));
  }
  for (auto _ : state) {
    auto h = Histogram::Build(values);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HistogramBuild);

struct LoadedDb {
  Database db;
  LoadedDb() : db([] {
    DatabaseOptions o;
    o.buffer_pool_pages = 4096;
    return o;
  }()) {
    tpch::LoadOptions load;
    load.scale = tpch::Scale::kSmall;
    Status s = tpch::LoadTpch(&db, load);
    (void)s;
  }
};

LoadedDb& SharedDb() {
  static LoadedDb instance;
  return instance;
}

void BM_SeqScanQuery(benchmark::State& state) {
  Database& db = SharedDb().db;
  auto query = ParseAndBind(
      "SELECT * FROM lineitem WHERE l_quantity < 5", db.catalog());
  for (auto _ : state) {
    auto r = db.Execute(*query);
    benchmark::DoNotOptimize(r->row_count);
  }
}
BENCHMARK(BM_SeqScanQuery)->Unit(benchmark::kMillisecond);

void BM_HashJoinQuery(benchmark::State& state) {
  Database& db = SharedDb().db;
  auto query = ParseAndBind(
      "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
      "AND o_totalprice < 30000",
      db.catalog());
  for (auto _ : state) {
    auto r = db.Execute(*query);
    benchmark::DoNotOptimize(r->row_count);
  }
}
BENCHMARK(BM_HashJoinQuery)->Unit(benchmark::kMillisecond);

void BM_PlannerFiveWay(benchmark::State& state) {
  Database& db = SharedDb().db;
  auto query = ParseAndBind(
      "SELECT * FROM customer, orders, lineitem, part, supplier WHERE "
      "c_custkey = o_custkey AND o_orderkey = l_orderkey AND "
      "l_partkey = p_partkey AND l_suppkey = s_suppkey AND p_size < 10",
      db.catalog());
  for (auto _ : state) {
    auto plan = db.planner().Plan(*query, &db.views(), ViewMode::kCostBased);
    benchmark::DoNotOptimize(plan->est_cost);
  }
}
BENCHMARK(BM_PlannerFiveWay);

void BM_TraceGeneration(benchmark::State& state) {
  UserModelParams params;
  uint64_t seed = 1;
  for (auto _ : state) {
    Trace t = GenerateTrace(params, 0, seed++);
    benchmark::DoNotOptimize(t.events.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
