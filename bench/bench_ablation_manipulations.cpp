// Ablation (E8): manipulation-space aggressiveness, §3.2 / §4.2.
//
// The paper asserts (verified experimentally by the authors) that the
// most aggressive manipulations — query materialization and rewriting —
// beat histogram creation and index creation despite their higher cost
// and specificity. This bench reproduces that ranking on a database
// whose skewed selection fields are deliberately left unprepared (no
// histograms/indexes), so the lighter manipulations have room to act,
// and also ablates the cost-model extensions (lookahead, completion
// probability, learner pretraining is exercised by default).
#include "bench_common.h"
#include "harness/metrics.h"

using namespace sqp;

namespace {

struct Policy {
  const char* name;
  SpeculationEngineOptions engine;
};

SpeculationEngineOptions BasePolicy() { return SpeculationEngineOptions{}; }

}  // namespace

int main() {
  tpch::Scale scale = tpch::Scale::kSmall;
  std::printf("=== Ablation: manipulation types & cost-model features ===\n");
  std::printf("(small dataset, skewed fields unprepared)\n\n");

  std::vector<Policy> policies;
  {
    Policy p{"materialize+rewrite (paper default)", BasePolicy()};
    policies.push_back(p);
  }
  {
    Policy p{"materialize, cost-based use", BasePolicy()};
    p.engine.speculator.space.force_rewrite = false;
    p.engine.final_query_view_mode = ViewMode::kCostBased;
    policies.push_back(p);
  }
  {
    Policy p{"selection materializations only", BasePolicy()};
    p.engine.speculator.space.join_materializations = false;
    policies.push_back(p);
  }
  {
    Policy p{"join materializations only", BasePolicy()};
    p.engine.speculator.space.selection_materializations = false;
    policies.push_back(p);
  }
  {
    Policy p{"histogram creation only", BasePolicy()};
    p.engine.speculator.space.selection_materializations = false;
    p.engine.speculator.space.join_materializations = false;
    p.engine.speculator.space.histogram_creations = true;
    policies.push_back(p);
  }
  {
    Policy p{"index creation only", BasePolicy()};
    p.engine.speculator.space.selection_materializations = false;
    p.engine.speculator.space.join_materializations = false;
    p.engine.speculator.space.index_creations = true;
    policies.push_back(p);
  }
  {
    Policy p{"no lookahead (n=1)", BasePolicy()};
    p.engine.cost_model.lookahead = 1;
    policies.push_back(p);
  }
  {
    Policy p{"no completion-probability weighting", BasePolicy()};
    p.engine.cost_model.use_completion_probability = false;
    policies.push_back(p);
  }
  {
    Policy p{"no speculation during result pauses", BasePolicy()};
    p.engine.speculate_on_results = false;
    policies.push_back(p);
  }
  {
    // §7 extension: with remaining-time feedback, delay the final query
    // for a near-complete materialization instead of cancelling it.
    Policy p{"wait at GO when worthwhile (sec. 7)", BasePolicy()};
    p.engine.go_policy = GoPolicy::kWaitIfWorthwhile;
    policies.push_back(p);
  }
  {
    // Relax the paper's one-outstanding convention (§3.1): pipeline up
    // to three manipulations, which then share server capacity.
    Policy p{"3 outstanding manipulations", BasePolicy()};
    p.engine.max_outstanding = 3;
    policies.push_back(p);
  }

  std::printf("%-40s %12s %10s %10s\n", "policy", "improvement%", "issued",
              "non-compl%");
  for (const Policy& policy : policies) {
    ExperimentConfig cfg = benchutil::DefaultConfig(
        scale, benchutil::UsersFromEnv(4));
    cfg.prepare_skewed_fields = false;
    cfg.engine = policy.engine;
    auto result = RunSingleUserExperiment(cfg);
    if (!result.ok()) {
      std::printf("%-40s failed: %s\n", policy.name,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-40s %11.1f%% %10zu %9.1f%%\n", policy.name,
                100 * result->overall_improvement,
                result->manipulations_issued,
                100 * result->noncompletion_rate);
  }
  return 0;
}
