// Shard-aware planning: co-partitioned vs. shuffling joins (DESIGN.md §14).
//
// Builds a 4-node database with a dimension table `r` and two fact
// tables of identical shape and cardinality: `s`, whose FIRST column
// carries the foreign key to r (so the hash-sharded layout co-partitions
// it with r on the join key), and `t`, whose foreign key sits in a
// non-shard column. Joining r with s is shard-local — matching keys
// hash to the same shard slot on both sides — while joining r with t
// must repartition one side, and the planner charges the simulated
// cross-shard transfer (`storage.node.cross_shard_pages`).
//
// The bench asserts the structural claims (co-partitioned plan strictly
// cheaper, zero transfer pages on the local join, non-zero on the
// shuffling one, identical row counts) and prints the headline
// `shard_plan.*` metrics, which bench_compare.py gates lower-is-better:
// a change that makes the shard-local plan charge more simulated time
// past the threshold fails the comparison.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/metrics_registry.h"
#include "common/rng.h"
#include "db/database.h"
#include "optimizer/query_graph.h"

using namespace sqp;

namespace {

constexpr size_t kRowsR = 2000;
constexpr size_t kRowsFact = 6000;
constexpr size_t kNodes = 4;

std::unique_ptr<Database> BuildDb() {
  DatabaseOptions options;
  options.buffer_pool_pages = 256;
  options.storage_nodes = kNodes;
  auto db = std::make_unique<Database>(options);

  // r is sharded on r_id (tables hash-shard on their first column).
  Schema r_schema({{"r_id", TypeId::kInt64}, {"r_pay", TypeId::kInt64}});
  // s: foreign key to r in the FIRST column -> co-partitioned with r.
  Schema s_schema({{"s_rid", TypeId::kInt64},
                   {"s_seq", TypeId::kInt64},
                   {"s_pay", TypeId::kInt64}});
  // t: identical shape, but the foreign key hides in the SECOND column,
  // so t is sharded on t_id and the join must shuffle.
  Schema t_schema({{"t_id", TypeId::kInt64},
                   {"t_rid", TypeId::kInt64},
                   {"t_pay", TypeId::kInt64}});
  if (!db->CreateTable("r", r_schema).ok() ||
      !db->CreateTable("s", s_schema).ok() ||
      !db->CreateTable("t", t_schema).ok()) {
    std::fprintf(stderr, "table setup failed\n");
    std::exit(1);
  }

  Rng rng(11);
  std::vector<Tuple> r_rows;
  r_rows.reserve(kRowsR);
  for (size_t i = 0; i < kRowsR; i++) {
    r_rows.push_back(
        Tuple{Value(static_cast<int64_t>(i)), Value(rng.NextInt(0, 99))});
  }
  // The same FK sequence feeds both fact tables, so the two joins have
  // identical result cardinalities and differ only in placement.
  std::vector<int64_t> fks;
  fks.reserve(kRowsFact);
  for (size_t i = 0; i < kRowsFact; i++) {
    fks.push_back(rng.NextInt(0, static_cast<int64_t>(kRowsR) - 1));
  }
  std::vector<Tuple> s_rows, t_rows;
  s_rows.reserve(kRowsFact);
  t_rows.reserve(kRowsFact);
  for (size_t i = 0; i < kRowsFact; i++) {
    int64_t pay = rng.NextInt(0, 999);
    s_rows.push_back(Tuple{Value(fks[i]), Value(static_cast<int64_t>(i)),
                           Value(pay)});
    t_rows.push_back(Tuple{Value(static_cast<int64_t>(i)), Value(fks[i]),
                           Value(pay)});
  }
  if (!db->BulkLoad("r", r_rows).ok() || !db->BulkLoad("s", s_rows).ok() ||
      !db->BulkLoad("t", t_rows).ok()) {
    std::fprintf(stderr, "load failed\n");
    std::exit(1);
  }
  return db;
}

QueryGraph Join(const std::string& fact, const std::string& fk_column) {
  JoinPred join;
  join.left_table = "r";
  join.left_column = "r_id";
  join.right_table = fact;
  join.right_column = fk_column;
  join.Canonicalize();
  QueryGraph q;
  q.AddJoin(join);
  return q;
}

struct Measured {
  double est_seconds = 0;
  double exec_seconds = 0;
  uint64_t rows = 0;
  uint64_t cross_shard_pages = 0;
  std::string plan_explain;
};

Measured Run(Database* db, const QueryGraph& q) {
  Measured out;
  auto plan = db->planner().Plan(q);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan failed: %s\n",
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  out.est_seconds = plan->est_cost;
  out.plan_explain = plan->Explain();

  Counter* xshard = MetricsRegistry::Global().GetCounter(
      "storage.node.cross_shard_pages");
  uint64_t before = xshard->value();
  ExecuteOptions exec;
  exec.explain_analyze = true;
  auto result = db->Execute(q, exec);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  out.exec_seconds = result->seconds;
  out.rows = result->row_count;
  out.cross_shard_pages = xshard->value() - before;
  if (result->profile != nullptr &&
      out.cross_shard_pages > 0 &&
      result->profile->FormatText().find("xshard=") == std::string::npos) {
    std::fprintf(stderr, "profile is missing the xshard actuals\n");
    std::exit(1);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("shard-aware planning: %zu-node tier, r=%zu facts=%zu\n",
              kNodes, kRowsR, kRowsFact);

  auto db = BuildDb();
  Measured local = Run(db.get(), Join("s", "s_rid"));
  Measured shuffle = Run(db.get(), Join("t", "t_rid"));

  std::printf("co-partitioned plan:\n%s", local.plan_explain.c_str());
  std::printf("shuffling plan:\n%s", shuffle.plan_explain.c_str());

  if (local.rows != shuffle.rows) {
    std::fprintf(stderr, "row counts diverge: %llu vs %llu\n",
                 static_cast<unsigned long long>(local.rows),
                 static_cast<unsigned long long>(shuffle.rows));
    return 1;
  }
  if (!(local.est_seconds < shuffle.est_seconds)) {
    std::fprintf(stderr,
                 "co-partitioned join is not cheaper (%.6f vs %.6f)\n",
                 local.est_seconds, shuffle.est_seconds);
    return 1;
  }
  if (local.cross_shard_pages != 0 || shuffle.cross_shard_pages == 0) {
    std::fprintf(stderr, "transfer charges are wrong (%llu local, %llu shuffle)\n",
                 static_cast<unsigned long long>(local.cross_shard_pages),
                 static_cast<unsigned long long>(shuffle.cross_shard_pages));
    return 1;
  }
  if (local.plan_explain.find("[shard-local]") == std::string::npos ||
      shuffle.plan_explain.find("[cross-shard") == std::string::npos) {
    std::fprintf(stderr, "plan explain is missing placement tags\n");
    return 1;
  }

  std::printf("join rows: %llu\n",
              static_cast<unsigned long long>(local.rows));
  std::printf("shard_plan.local_est_seconds: %.6f\n", local.est_seconds);
  std::printf("shard_plan.shuffle_est_seconds: %.6f\n", shuffle.est_seconds);
  std::printf("shard_plan.local_exec_seconds: %.6f\n", local.exec_seconds);
  std::printf("shard_plan.shuffle_exec_seconds: %.6f\n",
              shuffle.exec_seconds);
  std::printf("shard_plan.cross_shard_pages: %llu\n",
              static_cast<unsigned long long>(shuffle.cross_shard_pages));
  return 0;
}
