// Figure 6 (E6): speculation vs materialized views vs the combination.
//
// Three runs are compared against plain normal processing: (a) normal
// processing over pre-materialized views (the join of every connected
// relation subset, all attributes kept — the paper's extreme
// views-favouring configuration), (b) speculation without views, and
// (c) speculation on top of the views. Paper shape: speculation wins on
// shorter queries, views win as queries grow costlier, the combination
// wins almost everywhere.
#include "bench_common.h"
#include "harness/metrics.h"

using namespace sqp;

namespace {
void PrintSeries(const char* name, const std::vector<QueryRecord>& normal,
                 const std::vector<QueryRecord>& variant,
                 const BucketOptions& buckets) {
  auto series = BucketImprovements(normal, variant, buckets);
  std::printf("  %s (overall %+.1f %%):\n", name,
              100 * Improvement(normal, variant));
  std::printf("%s", FormatBuckets(series, false).c_str());
}
}  // namespace

int main() {
  std::printf(
      "=== Figure 6: speculation vs materialized views vs combo ===\n");
  for (tpch::Scale scale : benchutil::ScalesFromEnv()) {
    ExperimentConfig cfg = benchutil::DefaultConfig(
        scale, benchutil::DefaultUsersForScale(scale, 5));
    auto result = RunMatViewsExperiment(cfg);
    if (!result.ok()) {
      std::printf("experiment failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n--- %s dataset (paper: %s), %zu users, %zu queries ---\n",
                tpch::ScaleName(scale), tpch::ScalePaperLabel(scale),
                cfg.num_users, result->normal.size());
    BucketOptions buckets = AutoBuckets(result->normal);
    PrintSeries("Views     ", result->normal, result->views_only, buckets);
    PrintSeries("Spec      ", result->normal, result->spec_only, buckets);
    PrintSeries("Spec+Views", result->normal, result->spec_views, buckets);
  }
  return 0;
}
