// Node-loss recovery time on a sharded storage tier.
//
// Builds a 4-node (quorum-3) database with the canonical r/s pair plus
// a committed index and histogram, then measures the simulated seconds
// `Database::Reopen()` charges (validation scans, catch-up, orphan GC)
// in two situations: a clean restart with all nodes alive, and a
// restart after permanently losing each of the four nodes in turn (a
// fresh database per victim — node loss is permanent). Every recovered
// database must answer the canonical join with the same row count as
// the intact one and pass the per-node orphan audit.
//
// Output is bench_compare.py-friendly: the `recovery.*` lines are the
// gated lower-is-better headline metrics (--gate-lower), so a change
// that makes recovery charge more simulated time past the threshold
// fails the comparison. Simulated seconds are deterministic, so an
// unchanged tree diffs to exactly zero.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "db/database.h"
#include "optimizer/query_graph.h"

using namespace sqp;

namespace {

constexpr size_t kRowsR = 2000;
constexpr size_t kRowsS = 6000;
constexpr size_t kNodes = 4;

std::unique_ptr<Database> BuildShardedDb() {
  DatabaseOptions options;
  options.buffer_pool_pages = 256;
  options.storage_nodes = kNodes;  // quorum defaults to a majority: 3
  auto db = std::make_unique<Database>(options);

  Schema r_schema({{"r_id", TypeId::kInt64},
                   {"r_a", TypeId::kInt64},
                   {"r_b", TypeId::kDouble},
                   {"r_s", TypeId::kString}});
  Schema s_schema({{"s_id", TypeId::kInt64},
                   {"s_rid", TypeId::kInt64},
                   {"s_c", TypeId::kInt64}});
  if (!db->CreateTable("r", r_schema).ok() ||
      !db->CreateTable("s", s_schema).ok()) {
    std::fprintf(stderr, "table setup failed\n");
    std::exit(1);
  }

  Rng rng(7);
  const char* strs[] = {"alpha", "beta", "gamma"};
  std::vector<Tuple> r_rows;
  r_rows.reserve(kRowsR);
  for (size_t i = 0; i < kRowsR; i++) {
    r_rows.push_back(Tuple{Value(static_cast<int64_t>(i)),
                           Value(rng.NextInt(0, 99)),
                           Value(rng.NextDouble(0, 1000)),
                           Value(std::string(strs[i % 3]))});
  }
  std::vector<Tuple> s_rows;
  s_rows.reserve(kRowsS);
  for (size_t i = 0; i < kRowsS; i++) {
    s_rows.push_back(Tuple{
        Value(static_cast<int64_t>(i)),
        Value(rng.NextInt(0, static_cast<int64_t>(kRowsR) - 1)),
        Value(rng.NextInt(0, 49))});
  }
  if (!db->BulkLoad("r", r_rows).ok() || !db->BulkLoad("s", s_rows).ok() ||
      !db->CreateIndex("r", "r_id").ok() ||
      !db->CreateHistogram("s", "s_c").ok()) {
    std::fprintf(stderr, "load / ddl failed\n");
    std::exit(1);
  }
  return db;
}

QueryGraph JoinQuery() {
  JoinPred join;
  join.left_table = "r";
  join.left_column = "r_id";
  join.right_table = "s";
  join.right_column = "s_rid";
  join.Canonicalize();
  SelectionPred sel;
  sel.table = "r";
  sel.column = "r_a";
  sel.op = CompareOp::kLt;
  sel.constant = Value(int64_t{40});
  QueryGraph q;
  q.AddJoin(join);
  q.AddSelection(sel);
  return q;
}

uint64_t RowCount(Database* db) {
  auto result = db->Execute(JoinQuery());
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result->row_count;
}

}  // namespace

int main() {
  std::printf("node-loss recovery: %zu-node tier, quorum %zu, r=%zu s=%zu\n",
              kNodes, kNodes / 2 + 1, kRowsR, kRowsS);

  // Reference row count from an intact database, and the cost of a
  // clean restart (no node lost: manifest replay + validation only).
  uint64_t expected_rows = 0;
  double reopen_seconds = 0;
  {
    auto db = BuildShardedDb();
    expected_rows = RowCount(db.get());
    if (!db->Reopen().ok()) {
      std::fprintf(stderr, "clean reopen failed\n");
      return 1;
    }
    reopen_seconds = db->last_recovery().recovery_sim_seconds;
    if (RowCount(db.get()) != expected_rows) {
      std::fprintf(stderr, "clean reopen changed results\n");
      return 1;
    }
  }

  // Kill each node in turn on a fresh database and time the failover
  // recovery. The recovered tier must still answer the join correctly
  // and leave zero orphan physical pages on every survivor.
  double mean_seconds = 0;
  double max_seconds = 0;
  double repair_mean_seconds = 0;
  double repair_max_seconds = 0;
  for (size_t victim = 0; victim < kNodes; victim++) {
    auto db = BuildShardedDb();
    db->KillNode(victim);
    Status status = db->Reopen();
    if (!status.ok()) {
      std::fprintf(stderr, "recovery after losing node %zu failed: %s\n",
                   victim, status.ToString().c_str());
      return 1;
    }
    const RecoveryStats& stats = db->last_recovery();
    if (stats.nodes_lost != 1 || stats.orphan_pages_per_node_audit != 0 ||
        RowCount(db.get()) != expected_rows) {
      std::fprintf(stderr, "recovery after losing node %zu is wrong\n",
                   victim);
      return 1;
    }
    std::printf("victim node %zu recovery_seconds: %.6f\n", victim,
                stats.recovery_sim_seconds);
    mean_seconds += stats.recovery_sim_seconds;
    max_seconds = std::max(max_seconds, stats.recovery_sim_seconds);

    // Time-to-redundancy: the background re-protection pass that gives
    // every surviving page a second copy again, so a further node loss
    // is survivable.
    auto repaired = db->Repair();
    if (!repaired.ok() || !repaired->complete ||
        db->storage().ShadowOnlyPages() != 0 ||
        RowCount(db.get()) != expected_rows) {
      std::fprintf(stderr, "repair after losing node %zu is wrong\n",
                   victim);
      return 1;
    }
    std::printf("victim node %zu repair_seconds: %.6f (%zu pages)\n",
                victim, repaired->repair_sim_seconds,
                repaired->pages_reprotected);
    repair_mean_seconds += repaired->repair_sim_seconds;
    repair_max_seconds =
        std::max(repair_max_seconds, repaired->repair_sim_seconds);
  }
  mean_seconds /= kNodes;
  repair_mean_seconds /= kNodes;

  std::printf("join rows: %llu\n",
              static_cast<unsigned long long>(expected_rows));
  std::printf("recovery.reopen_seconds: %.6f\n", reopen_seconds);
  std::printf("recovery.node_loss_mean_seconds: %.6f\n", mean_seconds);
  std::printf("recovery.node_loss_max_seconds: %.6f\n", max_seconds);
  std::printf("repair.time_to_redundancy_mean_seconds: %.6f\n",
              repair_mean_seconds);
  std::printf("repair.time_to_redundancy_max_seconds: %.6f\n",
              repair_max_seconds);
  return 0;
}
