// Speculation cost model: Cost⊆ signs and factors, plus the Theorem 3.1
// equivalence property on an explicit finite query universe.
#include "speculation/cost_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "test_util.h"

namespace sqp {
namespace {

using testutil::RsJoin;
using testutil::Sel;

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.reset(testutil::MakeTwoTableDb(2000, 6000));
    model_ = std::make_unique<SpeculationCostModel>(db_.get(), &learner_);
  }

  Manipulation SelectionManipulation(int64_t cut) {
    Manipulation m;
    m.type = ManipulationType::kRewriteQuery;
    m.target_query.AddSelection(
        Sel("r", "r_a", CompareOp::kLt, Value(cut)));
    return m;
  }

  std::unique_ptr<Database> db_;
  Learner learner_;
  std::unique_ptr<SpeculationCostModel> model_;
};

TEST_F(CostModelTest, NullManipulationScoresZero) {
  auto eval = model_->Evaluate(Manipulation::Null(), 0);
  EXPECT_DOUBLE_EQ(eval.score, 0.0);
}

TEST_F(CostModelTest, SelectiveMaterializationIsBeneficial) {
  auto eval = model_->Evaluate(SelectionManipulation(5), 0);
  EXPECT_LT(eval.score, 0);  // negative = beneficial
  EXPECT_LT(eval.cost_with, eval.cost_without);
  EXPECT_GT(eval.containment_probability, 0);
  EXPECT_LE(eval.containment_probability, 1);
  EXPECT_GT(eval.estimated_duration, eval.cost_without);  // adds write I/O
}

TEST_F(CostModelTest, UnselectiveMaterializationIsNot) {
  // r_a < 99 keeps ~everything: scanning the copy costs as much as the
  // base table, and the write is pure overhead.
  auto eval = model_->Evaluate(SelectionManipulation(99), 0);
  EXPECT_GE(eval.score, 0);
}

TEST_F(CostModelTest, MoreSelectiveMeansMoreBeneficial) {
  auto tight = model_->Evaluate(SelectionManipulation(5), 0);
  auto loose = model_->Evaluate(SelectionManipulation(60), 0);
  EXPECT_LT(tight.score, loose.score);
}

TEST_F(CostModelTest, CompletionProbabilityDampensLateIssues) {
  // Same manipulation, evaluated early vs deep into the formulation:
  // the late evaluation must not look more attractive.
  Manipulation m = SelectionManipulation(5);
  auto early = model_->Evaluate(m, 0.0);
  CostModelOptions no_completion;
  no_completion.use_completion_probability = false;
  SpeculationCostModel raw(db_.get(), &learner_, no_completion);
  auto unweighted = raw.Evaluate(m, 0.0);
  EXPECT_LE(early.completion_probability, 1.0);
  EXPECT_GE(early.score, unweighted.score);  // dampened (less negative)
  EXPECT_DOUBLE_EQ(unweighted.completion_probability, 1.0);
}

TEST_F(CostModelTest, LookaheadAmplifiesBenefit) {
  Manipulation m = SelectionManipulation(5);
  CostModelOptions one;
  one.lookahead = 1;
  CostModelOptions eight;
  eight.lookahead = 8;
  SpeculationCostModel m1(db_.get(), &learner_, one);
  SpeculationCostModel m8(db_.get(), &learner_, eight);
  auto e1 = m1.Evaluate(m, 0);
  auto e8 = m8.Evaluate(m, 0);
  EXPECT_LT(e8.score, e1.score);  // more expected uses, more benefit
  EXPECT_GT(e8.expected_uses, e1.expected_uses);
  EXPECT_DOUBLE_EQ(e1.expected_uses, 1.0);
}

TEST_F(CostModelTest, JoinManipulationEvaluates) {
  Manipulation m;
  m.type = ManipulationType::kRewriteQuery;
  m.target_query.AddJoin(RsJoin());
  m.target_query.AddSelection(
      Sel("r", "r_a", CompareOp::kLt, Value(int64_t{10})));
  auto eval = model_->Evaluate(m, 0);
  EXPECT_LT(eval.score, 0);
  EXPECT_GT(eval.cost_without, 0);
}

TEST_F(CostModelTest, HistogramAndIndexEvaluate) {
  Manipulation hist;
  hist.type = ManipulationType::kHistogramCreation;
  hist.table = "r";
  hist.column = "r_a";
  auto he = model_->Evaluate(hist, 0);
  EXPECT_LT(he.score, 0);          // mildly beneficial
  EXPECT_GT(he.score, -0.1);       // but only mildly

  Manipulation index;
  index.type = ManipulationType::kIndexCreation;
  index.table = "r";
  index.column = "r_a";
  auto ie = model_->Evaluate(index, 0);
  EXPECT_LE(ie.score, 0);

  // The paper's finding: materialization dominates both.
  auto mat = model_->Evaluate(SelectionManipulation(5), 0);
  EXPECT_LT(mat.score, he.score);
  EXPECT_LT(mat.score, ie.score);
}

// ------------------------------------------------ Theorem 3.1 property

// On an explicit finite universe, the local Cost⊆ ranking must track the
// global Σ f(q)·cost(q,m) ranking: the global argmin lands in the local
// top-2 and Spearman correlation is high. (P1 holds exactly in this
// engine; P2 approximately, so exact rank equality is not guaranteed —
// the paper itself calls the properties approximations.)
TEST_F(CostModelTest, Theorem31RankingAgreement) {
  QueryGraph s1;
  s1.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{10})));
  QueryGraph s2;
  s2.AddSelection(Sel("s", "s_c", CompareOp::kLt, Value(int64_t{10})));
  QueryGraph j;
  j.AddJoin(RsJoin());

  struct WeightedQuery {
    QueryGraph q;
    double f;
  };
  std::vector<WeightedQuery> universe = {
      {s1, 0.15}, {s2, 0.1},          {j, 0.15},
      {j.Union(s1), 0.2}, {j.Union(s2), 0.1}, {j.Union(s1).Union(s2), 0.3},
  };
  std::vector<QueryGraph> manipulations = {
      s1, s2, j, j.Union(s1), j.Union(s2), j.Union(s1).Union(s2)};

  const Planner& planner = db_->planner();
  auto cost = [&](const QueryGraph& q, const QueryGraph* view) {
    ViewRegistry registry;
    if (view != nullptr) {
      registry.Register(ViewDefinition{"hypo", *view});
    }
    auto plan = planner.Plan(
        q, &registry, view != nullptr ? ViewMode::kForced : ViewMode::kNone);
    EXPECT_TRUE(plan.ok());
    return plan.ok() ? plan->est_cost : 0.0;
  };

  std::vector<double> global, local;
  for (const QueryGraph& qm : manipulations) {
    ASSERT_TRUE(db_->Materialize(qm, "hypo").ok());
    double g = 0;
    for (const auto& wq : universe) {
      g += wq.f * (cost(wq.q, &qm) - cost(wq.q, nullptr));
    }
    double f_contain = 0;
    for (const auto& wq : universe) {
      if (wq.q.ContainsSubgraph(qm)) f_contain += wq.f;
    }
    double l = f_contain * (cost(qm, &qm) - cost(qm, nullptr));
    global.push_back(g);
    local.push_back(l);
    ASSERT_TRUE(db_->DropTable("hypo").ok());
  }

  // Global argmin is within the local top-2.
  size_t g_best = 0, l_best = 0, l_second = 0;
  for (size_t i = 1; i < global.size(); i++) {
    if (global[i] < global[g_best]) g_best = i;
    if (local[i] < local[l_best]) {
      l_second = l_best;
      l_best = i;
    } else if (local[i] < local[l_second] || l_second == l_best) {
      l_second = i;
    }
  }
  EXPECT_TRUE(g_best == l_best || g_best == l_second)
      << "global argmin " << g_best << " local best " << l_best << "/"
      << l_second;

  // Spearman rank correlation.
  auto ranks = [](const std::vector<double>& v) {
    std::vector<size_t> idx(v.size()), rank(v.size());
    for (size_t i = 0; i < v.size(); i++) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return v[a] < v[b]; });
    for (size_t i = 0; i < idx.size(); i++) rank[idx[i]] = i;
    return rank;
  };
  auto gr = ranks(global);
  auto lr = ranks(local);
  double d2 = 0;
  for (size_t i = 0; i < gr.size(); i++) {
    double d = static_cast<double>(gr[i]) - static_cast<double>(lr[i]);
    d2 += d * d;
  }
  double n = static_cast<double>(gr.size());
  double spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
  EXPECT_GT(spearman, 0.7) << "rank correlation too weak";

  // Every beneficial-globally manipulation is beneficial-locally too
  // (sign agreement on the winners).
  for (size_t i = 0; i < global.size(); i++) {
    if (global[i] < -1e-3) EXPECT_LT(local[i], 0.0) << i;
  }
}

}  // namespace
}  // namespace sqp
