// Database facade: DDL, execution, materialization, timing, cold start.
#include "db/database.h"

#include <gtest/gtest.h>

#include <memory>

#include "sql/binder.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::RsJoin;
using testutil::Sel;

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override { db_.reset(testutil::MakeTwoTableDb(1000, 3000)); }
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, CreateTableRejectsDuplicates) {
  Schema schema({{"x", TypeId::kInt64}});
  EXPECT_TRUE(db_->CreateTable("t", schema).ok());
  EXPECT_FALSE(db_->CreateTable("t", schema).ok());
  EXPECT_FALSE(db_->CreateTable("r", schema).ok());
}

TEST_F(DatabaseTest, BulkLoadValidatesArity) {
  Schema schema({{"x", TypeId::kInt64}});
  ASSERT_TRUE(db_->CreateTable("t", schema).ok());
  std::vector<Tuple> bad = {Tuple{Value(int64_t{1}), Value(int64_t{2})}};
  EXPECT_FALSE(db_->BulkLoad("t", bad).ok());
  EXPECT_FALSE(db_->BulkLoad("missing", {}).ok());
}

TEST_F(DatabaseTest, ExecuteSelection) {
  QueryGraph q;
  q.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{10})));
  ExecuteOptions opts;
  opts.keep_rows = true;
  auto result = db_->Execute(q, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->row_count, 0u);
  EXPECT_EQ(result->rows.size(), result->row_count);
  EXPECT_GT(result->seconds, 0);
  for (const auto& row : result->rows) EXPECT_LT(row[1].AsInt64(), 10);
}

TEST_F(DatabaseTest, ExecuteJoinCardinality) {
  QueryGraph q;
  q.AddJoin(RsJoin());
  auto result = db_->Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, 3000u);  // FK join: one match per s row
}

TEST_F(DatabaseTest, MaterializeRegistersViewAndRewrites) {
  QueryGraph def;
  def.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{20})));
  auto mat = db_->Materialize(def, "v");
  ASSERT_TRUE(mat.ok());
  EXPECT_GT(mat->row_count, 0u);
  EXPECT_GT(mat->seconds, 0);
  EXPECT_TRUE(db_->views().Contains("v"));
  EXPECT_NE(db_->catalog().GetTable("v"), nullptr);
  EXPECT_TRUE(db_->catalog().GetTable("v")->is_materialized);

  ExecuteOptions opts;
  opts.view_mode = ViewMode::kForced;
  auto result = db_->Execute(def, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->views_used.size(), 1u);
  EXPECT_EQ(result->views_used[0], "v");
  EXPECT_EQ(result->row_count, mat->row_count);
}

TEST_F(DatabaseTest, MaterializeUnregisteredThenRegister) {
  QueryGraph def;
  def.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{20})));
  auto mat = db_->Materialize(def, "v", /*register_view=*/false);
  ASSERT_TRUE(mat.ok());
  EXPECT_FALSE(db_->views().Contains("v"));

  ExecuteOptions opts;
  opts.view_mode = ViewMode::kForced;
  auto before = db_->Execute(def, opts);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->views_used.empty());  // invisible until registered

  db_->RegisterView(def, "v");
  auto after = db_->Execute(def, opts);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->views_used.size(), 1u);
}

TEST_F(DatabaseTest, DropTableUnregistersView) {
  QueryGraph def;
  def.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{20})));
  ASSERT_TRUE(db_->Materialize(def, "v").ok());
  ASSERT_TRUE(db_->DropTable("v").ok());
  EXPECT_FALSE(db_->views().Contains("v"));
  EXPECT_EQ(db_->catalog().GetTable("v"), nullptr);
  EXPECT_FALSE(db_->DropTable("v").ok());
}

TEST_F(DatabaseTest, RewritingPreservesResults) {
  QueryGraph def;
  def.AddJoin(RsJoin());
  def.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{30})));
  ASSERT_TRUE(db_->Materialize(def, "v").ok());

  QueryGraph q = def;
  q.AddSelection(Sel("s", "s_c", CompareOp::kGe, Value(int64_t{10})));

  ExecuteOptions none;
  none.view_mode = ViewMode::kNone;
  ExecuteOptions forced;
  forced.view_mode = ViewMode::kForced;
  auto base = db_->Execute(q, none);
  auto rewritten = db_->Execute(q, forced);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(base->row_count, rewritten->row_count);
  EXPECT_FALSE(rewritten->views_used.empty());
}

TEST_F(DatabaseTest, RewritingIsFasterForSelectiveViews) {
  QueryGraph def;
  def.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  ASSERT_TRUE(db_->Materialize(def, "v").ok());

  db_->ColdStart();
  ExecuteOptions none;
  none.view_mode = ViewMode::kNone;
  auto base = db_->Execute(def, none);
  ASSERT_TRUE(base.ok());

  db_->ColdStart();
  ExecuteOptions forced;
  forced.view_mode = ViewMode::kForced;
  auto fast = db_->Execute(def, forced);
  ASSERT_TRUE(fast.ok());
  EXPECT_LT(fast->seconds, base->seconds);
}

TEST_F(DatabaseTest, ColdStartRestoresIoCosts) {
  QueryGraph q;
  q.AddRelation("r");
  db_->ColdStart();  // bulk load left every page resident
  auto cold1 = db_->Execute(q);
  ASSERT_TRUE(cold1.ok());
  // Second run: warm cache, cheaper.
  auto warm = db_->Execute(q);
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm->seconds, cold1->seconds);
  // After ColdStart the price returns.
  db_->ColdStart();
  auto cold2 = db_->Execute(q);
  ASSERT_TRUE(cold2.ok());
  EXPECT_NEAR(cold2->seconds, cold1->seconds, cold1->seconds * 0.05);
}

TEST_F(DatabaseTest, EstimateCostIsPositiveAndOrdersBySize) {
  QueryGraph small;
  small.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  QueryGraph big;
  big.AddJoin(RsJoin());
  auto c_small = db_->EstimateCost(small);
  auto c_big = db_->EstimateCost(big);
  ASSERT_TRUE(c_small.ok());
  ASSERT_TRUE(c_big.ok());
  EXPECT_GT(*c_small, 0);
  EXPECT_GT(*c_big, *c_small);
}

TEST_F(DatabaseTest, SqlRoundTrip) {
  auto q = ParseAndBind(
      "SELECT r_s FROM r, s WHERE r_id = s_rid AND s_c < 10",
      db_->catalog());
  ASSERT_TRUE(q.ok());
  ExecuteOptions opts;
  opts.keep_rows = true;
  auto result = db_->Execute(*q, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->schema.size(), 1u);
  EXPECT_EQ(result->schema.column(0).name, "r_s");
}

TEST_F(DatabaseTest, IndexAndHistogramDdl) {
  EXPECT_TRUE(db_->CreateIndex("r", "r_a").ok());
  EXPECT_FALSE(db_->CreateIndex("r", "r_a").ok());  // duplicate
  EXPECT_FALSE(db_->CreateIndex("r", "nope").ok());
  EXPECT_TRUE(db_->CreateHistogram("r", "r_a").ok());
  EXPECT_NE(db_->catalog().GetHistogram("r", "r_a"), nullptr);
  EXPECT_TRUE(db_->catalog().DropHistogram("r", "r_a").ok());
  EXPECT_EQ(db_->catalog().GetHistogram("r", "r_a"), nullptr);
  EXPECT_TRUE(db_->catalog().DropIndex("r", "r_a").ok());
  EXPECT_EQ(db_->catalog().GetIndex("r", "r_a"), nullptr);
}

}  // namespace
}  // namespace sqp
